"""Tests for the roofline, Amdahl, calibration, and reporting layers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import get_machine
from repro.perfmodel import (
    Bound,
    PerfResult,
    RESIDUAL_BAND,
    ResultTable,
    Roofline,
    all_calibrations,
    effective_rate,
    get_calibration,
    relative_to,
    required_vector_fraction,
    set_calibration,
    speedup_limit,
    vector_length_roof,
)
from repro.workload import Work


class TestRoofline:
    def test_ridge_point(self):
        r = Roofline(get_machine("ES"))
        assert r.ridge_intensity == pytest.approx(8.0 / 26.3)

    def test_attainable_clamped_at_peak(self):
        r = Roofline(get_machine("ES"))
        assert r.attainable(100.0) == 8.0
        assert r.attainable(0.1) == pytest.approx(2.63)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ValueError):
            Roofline(get_machine("ES")).attainable(-1.0)

    def test_classification_memory_bound(self):
        r = Roofline(get_machine("Itanium2"))
        w = Work(name="k", flops=1e8, bytes_unit=1e10)
        assert r.classify(w) is Bound.MEMORY

    def test_classification_compute_bound(self):
        r = Roofline(get_machine("ES"))
        w = Work(name="k", flops=1e12, bytes_unit=1e6)
        assert r.classify(w) is Bound.COMPUTE

    def test_classification_scalar_bound(self):
        r = Roofline(get_machine("ES"))
        w = Work(name="k", flops=1e12, bytes_unit=1e6, vector_fraction=0.1)
        assert r.classify(w) is Bound.SCALAR

    def test_vector_length_roof(self):
        es = get_machine("ES")
        assert vector_length_roof(es, 256) > vector_length_roof(es, 8)
        # superscalar machines have no VL dependence
        p3 = get_machine("Power3")
        assert vector_length_roof(p3, 8) == p3.peak_gflops

    def test_es_has_best_balance(self):
        # Table 1: ES bytes/flop = 3.29, highest in the study -> its
        # ridge sits at the lowest intensity.
        ridges = {
            m: Roofline(get_machine(m)).ridge_intensity
            for m in ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8")
        }
        assert min(ridges, key=ridges.get) == "ES"


class TestAmdahl:
    def test_effective_rate_limits(self):
        assert effective_rate(8.0, 1.0, 0.125) == pytest.approx(8.0)
        assert effective_rate(8.0, 0.0, 0.125) == pytest.approx(1.0)

    def test_half_vectorized_on_es(self):
        # 50% vectorized at 1/8 scalar speed: rate = 1/(0.5/8 + 0.5/1)
        assert effective_rate(8.0, 0.5, 0.125) == pytest.approx(1.0 / 0.5625)

    def test_speedup_limit(self):
        assert speedup_limit(0.9) == pytest.approx(10.0)
        assert math.isinf(speedup_limit(1.0))

    def test_required_vector_fraction_inverts(self):
        f = required_vector_fraction(0.6, 0.125)
        rate = effective_rate(1.0, f, 0.125)
        assert rate == pytest.approx(0.6, rel=1e-9)

    def test_required_fraction_is_severe(self):
        # sustaining 60% of peak with a 1/8 scalar unit needs >90%
        assert required_vector_fraction(0.6, 0.125) > 0.9

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_effective_rate_bounded(self, f):
        r = effective_rate(8.0, f, 0.125)
        assert 1.0 - 1e-12 <= r <= 8.0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            effective_rate(8.0, 1.5, 0.125)
        with pytest.raises(ValueError):
            required_vector_fraction(0.0, 0.125)


class TestCalibration:
    def test_default_is_unity(self):
        assert get_calibration("nonexistent-app", "ES") == 1.0

    def test_all_residuals_within_band(self):
        lo, hi = RESIDUAL_BAND
        for (app, machine), value in all_calibrations().items():
            assert lo <= value <= hi, (app, machine, value)

    def test_out_of_band_rejected(self):
        with pytest.raises(ValueError):
            set_calibration("test-app", "ES", 10.0)

    def test_every_app_has_some_calibration(self):
        apps = {app for app, _ in all_calibrations()}
        assert {"fvcam", "gtc", "lbmhd", "paratec"} <= apps


class TestReporting:
    def result(self, machine="ES", gflops=4.0, config="c", nprocs=256):
        return PerfResult(
            app="lbmhd",
            machine=machine,
            nprocs=nprocs,
            gflops_per_proc=gflops,
            config=config,
        )

    def test_pct_peak(self):
        assert self.result(gflops=4.0).pct_peak == pytest.approx(50.0)

    def test_aggregate(self):
        r = self.result(gflops=5.0, nprocs=1000)
        assert r.aggregate_tflops == pytest.approx(5.0)

    def test_table_lookup_and_render(self):
        t = ResultTable(title="t", machines=["ES", "SX-8"])
        t.add(self.result("ES", 4.0))
        t.add(self.result("SX-8", 8.0))
        assert t.lookup("c", 256, "ES").gflops_per_proc == 4.0
        assert t.best_machine("c", 256) == "SX-8"
        rendered = t.render()
        assert "ES" in rendered and "SX-8" in rendered

    def test_relative_to(self):
        rows = [self.result("ES", 4.0), self.result("SX-8", 8.0)]
        rel = relative_to(rows, "ES")
        assert rel["SX-8"] == pytest.approx(2.0)
        with pytest.raises(KeyError):
            relative_to(rows, "X1")
