"""Tests for the interconnect topology models."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines.spec import NetworkTopology
from repro.network import (
    FatTree,
    FullCrossbar,
    Hypercube4D,
    Torus2D,
    make_topology,
)

ALL_CLASSES = [
    lambda n: FullCrossbar(n),
    lambda n: FatTree(n),
    lambda n: Hypercube4D(n),
    lambda n: Torus2D(n),
]


@pytest.mark.parametrize("make", ALL_CLASSES)
class TestTopologyInvariants:
    def test_self_hops_zero(self, make):
        topo = make(16)
        for n in range(16):
            assert topo.hops(n, n) == 0

    def test_symmetry(self, make):
        topo = make(16)
        for a in range(16):
            for b in range(16):
                assert topo.hops(a, b) == topo.hops(b, a)

    def test_positive_between_distinct(self, make):
        topo = make(16)
        assert all(topo.hops(0, b) >= 1 for b in range(1, 16))

    def test_out_of_range_rejected(self, make):
        topo = make(8)
        with pytest.raises(IndexError):
            topo.hops(0, 8)

    def test_bisection_positive(self, make):
        assert make(16).bisection_links() > 0

    def test_graph_connected(self, make):
        g = make(16).build_graph()
        assert nx.is_connected(g)


class TestCrossbar:
    def test_single_hop_everywhere(self):
        topo = FullCrossbar(64)
        assert all(topo.hops(0, b) == 1 for b in range(1, 64))

    def test_no_contention(self):
        assert FullCrossbar(64).bisection_contention() == pytest.approx(1.0)


class TestFatTree:
    def test_same_switch_two_hops(self):
        topo = FatTree(64, arity=16)
        assert topo.hops(0, 15) == 2

    def test_cross_switch_more_hops(self):
        topo = FatTree(64, arity=16)
        assert topo.hops(0, 16) == 4

    def test_diameter_grows_logarithmically(self):
        small = FatTree(16, arity=4).diameter()
        large = FatTree(256, arity=4).diameter()
        assert large > small
        assert large <= 2 * 5  # 2 * ceil(log4(256)) + slack

    def test_bad_arity(self):
        with pytest.raises(ValueError):
            FatTree(16, arity=1)


class TestHypercube:
    def test_intra_subset_one_hop(self):
        topo = Hypercube4D(64, subset_size=8)
        assert topo.hops(0, 7) == 1

    def test_inter_subset_hamming(self):
        topo = Hypercube4D(64, subset_size=8)
        # subset 0 -> subset 1: hamming 1, plus 2 local hops.
        assert topo.hops(0, 8) == 3
        # subset 0 -> subset 3: hamming 2.
        assert topo.hops(0, 24) == 4

    def test_graph_matches_hops_scaling(self):
        topo = Hypercube4D(32, subset_size=8)
        g = topo.build_graph()
        assert nx.is_connected(g)


class TestTorus:
    def test_wraparound(self):
        topo = Torus2D(16)  # 4 x 4
        assert topo.hops(0, 3) == 1  # wrap in x
        assert topo.hops(0, 12) == 1  # wrap in y

    def test_manhattan_distance(self):
        topo = Torus2D(16)
        assert topo.hops(0, 5) == 2  # (1, 1)

    def test_bisection_scales_with_side(self):
        assert Torus2D(64).bisection_links() > Torus2D(16).bisection_links()


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            (NetworkTopology.FAT_TREE, FatTree),
            (NetworkTopology.OMEGA, FatTree),
            (NetworkTopology.CROSSBAR, FullCrossbar),
            (NetworkTopology.HYPERCUBE_4D, Hypercube4D),
            (NetworkTopology.TORUS_2D, Torus2D),
        ],
    )
    def test_make_topology(self, kind, cls):
        assert isinstance(make_topology(kind, 16), cls)


@given(st.integers(min_value=2, max_value=128), st.data())
def test_triangle_inequality_crossbar_and_torus(n, data):
    for topo in (FullCrossbar(n), Torus2D(n)):
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        c = data.draw(st.integers(min_value=0, max_value=n - 1))
        assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)
