"""Tests for GTC's grid, particle container, and loading."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.gtc import (
    ParticleArray,
    PoloidalGrid,
    TorusGrid,
    load_particles,
    split_particles,
)


class TestPoloidalGrid:
    def test_validation(self):
        with pytest.raises(ValueError):
            PoloidalGrid(mpsi=2, mtheta=32)
        with pytest.raises(ValueError):
            PoloidalGrid(r0=1.0, r1=0.5)

    def test_spacing(self):
        g = PoloidalGrid(mpsi=11, mtheta=10, r0=0.0 + 0.1, r1=1.1)
        assert g.dr == pytest.approx(0.1)
        assert g.dtheta == pytest.approx(2 * np.pi / 10)

    def test_locate_interior(self):
        g = PoloidalGrid(mpsi=11, mtheta=8, r0=0.1, r1=1.1)
        i, j, fi, fj = g.locate(np.array([0.25]), np.array([0.0]))
        assert i[0] == 1
        assert fi[0] == pytest.approx(0.5)
        assert j[0] == 0 and fj[0] == 0.0

    def test_locate_theta_wraps(self):
        g = PoloidalGrid(mpsi=8, mtheta=8)
        _, j, _, fj = g.locate(np.array([0.5]), np.array([2 * np.pi + 0.1]))
        _, j2, _, fj2 = g.locate(np.array([0.5]), np.array([0.1]))
        assert j[0] == j2[0]
        assert fj[0] == pytest.approx(fj2[0])

    def test_locate_clamps_radius(self):
        g = PoloidalGrid(mpsi=8, mtheta=8, r0=0.1, r1=1.0)
        i, _, fi, _ = g.locate(np.array([5.0]), np.array([0.0]))
        assert i[0] <= g.mpsi - 1
        assert 0.0 <= fi[0] < 1.0


class TestTorusGrid:
    def torus(self) -> TorusGrid:
        return TorusGrid(plane=PoloidalGrid(), ntoroidal=8)

    def test_domain_of(self):
        t = self.torus()
        dz = t.dzeta
        assert t.domain_of(np.array([0.5 * dz]))[0] == 0
        assert t.domain_of(np.array([1.5 * dz]))[0] == 1
        # wrapping
        assert t.domain_of(np.array([2 * np.pi + 0.5 * dz]))[0] == 0

    def test_domain_bounds(self):
        t = self.torus()
        lo, hi = t.domain_bounds(3)
        assert hi - lo == pytest.approx(t.dzeta)
        with pytest.raises(IndexError):
            t.domain_bounds(8)

    def test_major_radius_validation(self):
        with pytest.raises(ValueError):
            TorusGrid(plane=PoloidalGrid(), major_radius=0.5)


class TestParticleArray:
    def make(self, n=10) -> ParticleArray:
        rng = np.random.default_rng(0)
        t = TorusGrid(plane=PoloidalGrid(), ntoroidal=4)
        return load_particles(t, n, 0, rng)

    def test_length_consistency(self):
        with pytest.raises(ValueError):
            ParticleArray(r=np.zeros(3), theta=np.zeros(2), zeta=np.zeros(3),
                          vpar=np.zeros(3), weight=np.zeros(3))

    def test_pack_unpack_roundtrip(self):
        p = self.make(20)
        buf = p.pack(np.ones(20, dtype=bool))
        q = ParticleArray.unpack(buf)
        np.testing.assert_array_equal(q.r, p.r)
        np.testing.assert_array_equal(q.vpar, p.vpar)

    def test_keep_and_extend(self):
        p = self.make(10)
        mask = p.r > np.median(p.r)
        kept = p.keep(mask)
        rest = p.keep(~mask)
        merged = kept.extend(rest)
        assert len(merged) == 10
        assert merged.total_charge == pytest.approx(p.total_charge)

    def test_unpack_bad_shape(self):
        with pytest.raises(ValueError):
            ParticleArray.unpack(np.zeros((4, 3)))


class TestLoading:
    def test_particles_inside_domain(self):
        rng = np.random.default_rng(1)
        t = TorusGrid(plane=PoloidalGrid(), ntoroidal=4)
        p = load_particles(t, 1000, 2, rng)
        assert (t.domain_of(p.zeta) == 2).all()
        assert (p.r > t.plane.r0).all() and (p.r < t.plane.r1).all()

    def test_area_uniform_radial_distribution(self):
        rng = np.random.default_rng(2)
        t = TorusGrid(plane=PoloidalGrid(), ntoroidal=1)
        p = load_particles(t, 50_000, 0, rng)
        # uniform in r^2 between the squared bounds
        u = (p.r**2 - t.plane.r0**2) / (t.plane.r1**2 - t.plane.r0**2)
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.std() / hist.mean() < 0.05

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=100),
        splits=st.integers(min_value=1, max_value=7),
    )
    def test_split_partition_property(self, n, splits):
        rng = np.random.default_rng(3)
        t = TorusGrid(plane=PoloidalGrid(), ntoroidal=2)
        p = load_particles(t, n, 0, rng)
        parts = split_particles(p, splits)
        assert len(parts) == splits
        assert sum(len(q) for q in parts) == n
        total = sum(q.total_charge for q in parts)
        assert total == pytest.approx(p.total_charge)

    def test_split_balanced(self):
        p = self.make_particles(100)
        parts = split_particles(p, 3)
        sizes = [len(q) for q in parts]
        assert max(sizes) - min(sizes) <= 1

    def make_particles(self, n):
        rng = np.random.default_rng(4)
        t = TorusGrid(plane=PoloidalGrid(), ntoroidal=2)
        return load_particles(t, n, 0, rng)
