"""Tests for the D3Q27/D3Q15 lattices and their moment identities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lbmhd.lattice import (
    CS2,
    NQ_F,
    NQ_G,
    NSLOTS,
    Q15_VELOCITIES,
    Q15_WEIGHTS,
    Q27_VELOCITIES,
    Q27_WEIGHTS,
    moment0,
    moment2,
    moment4,
    opposite_index,
    slot_shifts,
)


@pytest.mark.parametrize(
    "vels,weights,n",
    [(Q27_VELOCITIES, Q27_WEIGHTS, 27), (Q15_VELOCITIES, Q15_WEIGHTS, 15)],
    ids=["D3Q27", "D3Q15"],
)
class TestLatticeIdentities:
    def test_counts(self, vels, weights, n):
        assert len(vels) == len(weights) == n

    def test_rest_vector_first(self, vels, weights, n):
        assert tuple(vels[0]) == (0, 0, 0)

    def test_weights_normalize(self, vels, weights, n):
        assert moment0(weights) == pytest.approx(1.0)

    def test_weights_positive(self, vels, weights, n):
        assert (weights > 0).all()

    def test_first_moment_vanishes(self, vels, weights, n):
        m1 = np.einsum("i,ia->a", weights, vels.astype(float))
        np.testing.assert_allclose(m1, 0.0, atol=1e-15)

    def test_second_moment_isotropic(self, vels, weights, n):
        np.testing.assert_allclose(
            moment2(vels, weights), CS2 * np.eye(3), atol=1e-14
        )

    def test_fourth_moment_isotropic(self, vels, weights, n):
        m4 = moment4(vels, weights)
        eye = np.eye(3)
        target = CS2**2 * (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye)
        )
        np.testing.assert_allclose(m4, target, atol=1e-14)

    def test_inversion_symmetric(self, vels, weights, n):
        opp = opposite_index(vels)
        np.testing.assert_array_equal(vels[opp], -vels)
        np.testing.assert_allclose(weights[opp], weights)

    def test_velocities_unique(self, vels, weights, n):
        assert len({tuple(v) for v in vels}) == n


class TestSlotLayout:
    def test_slot_count(self):
        assert NSLOTS == NQ_F + 3 * NQ_G == 72

    def test_shift_table(self):
        shifts = slot_shifts()
        assert shifts.shape == (NSLOTS, 3)
        np.testing.assert_array_equal(shifts[:NQ_F], Q27_VELOCITIES)
        # all three components of a magnetic direction shift together
        for a in range(NQ_G):
            block = shifts[NQ_F + 3 * a : NQ_F + 3 * a + 3]
            assert (block == Q15_VELOCITIES[a]).all()

    def test_q15_subset_of_q27(self):
        q27 = {tuple(v) for v in Q27_VELOCITIES}
        assert all(tuple(v) in q27 for v in Q15_VELOCITIES)
