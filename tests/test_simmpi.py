"""Tests for the simulated MPI runtime: clocks, tracing, communicator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import get_machine
from repro.simmpi import Communicator, CommTrace, Message, VirtualClock
from repro.workload import Work


class TestVirtualClock:
    def test_advance_and_elapsed(self):
        c = VirtualClock(4)
        c.advance(2, 1.5)
        assert c.elapsed == 1.5
        assert c.time(0) == 0.0

    def test_negative_rejected(self):
        c = VirtualClock(2)
        with pytest.raises(ValueError):
            c.advance(0, -1.0)

    def test_synchronize_group(self):
        c = VirtualClock(4)
        c.advance(0, 5.0)
        c.synchronize([0, 1])
        assert c.time(1) == 5.0
        assert c.time(2) == 0.0

    def test_imbalance(self):
        c = VirtualClock(2)
        assert c.imbalance() == 0.0
        c.advance(0, 4.0)
        c.advance(1, 2.0)
        assert c.imbalance() == pytest.approx(0.5)

    def test_reset(self):
        c = VirtualClock(2)
        c.advance(0, 1.0)
        c.reset()
        assert c.elapsed == 0.0


class TestCommTrace:
    def test_record_volume(self):
        t = CommTrace(4)
        t.record(0, 1, 100.0)
        t.record(0, 1, 50.0)
        assert t.matrix()[0, 1] == 150.0
        assert t.total_bytes == 150.0

    def test_partners(self):
        t = CommTrace(4)
        t.record(0, 2, 10.0)
        t.record(3, 0, 10.0)
        assert t.partners(0) == [2, 3]

    def test_kind_accounting(self):
        t = CommTrace(2)
        t.record(0, 1, 10.0, kind="ptp")
        t.record(1, 0, 20.0, kind="alltoall")
        assert t.calls["ptp"] == 1
        assert t.bytes_by_kind["alltoall"] == 20.0

    def test_render_shapes(self):
        t = CommTrace(8)
        for i in range(8):
            t.record(i, (i + 1) % 8, 1000.0)
        art = t.render()
        assert len(art.splitlines()) == 8

    def test_reset(self):
        t = CommTrace(2)
        t.record(0, 1, 5.0)
        t.reset()
        assert t.total_bytes == 0.0


class TestExchange:
    def test_payload_delivery(self):
        comm = Communicator(3)
        data = np.arange(5.0)
        out = comm.exchange([Message(src=0, dst=2, payload=data)])
        np.testing.assert_array_equal(out[2][0], data)

    def test_payload_is_copied(self):
        comm = Communicator(2)
        data = np.ones(4)
        out = comm.exchange([Message(src=0, dst=1, payload=data)])
        data[:] = 99.0
        assert out[1][0][0] == 1.0

    def test_posting_order_preserved(self):
        comm = Communicator(3)
        out = comm.exchange(
            [
                Message(src=0, dst=2, payload=np.array([1.0])),
                Message(src=1, dst=2, payload=np.array([2.0])),
            ]
        )
        assert [a[0] for a in out[2]] == [1.0, 2.0]

    def test_ideal_comm_charges_no_time(self):
        comm = Communicator(2)
        comm.exchange([Message(src=0, dst=1, payload=np.ones(1000))])
        assert comm.elapsed == 0.0

    def test_machine_comm_charges_time(self):
        comm = Communicator(32, machine=get_machine("Power3"))
        comm.exchange([Message(src=0, dst=31, payload=np.ones(100_000))])
        # Inter-node on Power3: at least latency + bytes/bw.
        assert comm.elapsed >= 16.3e-6

    def test_rank_out_of_range(self):
        comm = Communicator(2)
        with pytest.raises(IndexError):
            comm.exchange([Message(src=0, dst=5, payload=np.ones(2))])

    def test_trace_records_exchange(self):
        comm = Communicator(2, trace=True)
        comm.exchange([Message(src=0, dst=1, payload=np.ones(10))])
        assert comm.trace.matrix()[0, 1] == 80.0

    def test_receiver_waits_for_sender(self):
        comm = Communicator(32, machine=get_machine("ES"))
        w = Work(name="x", flops=1e9, bytes_unit=0.0)
        comm.compute(0, w)  # rank 0 is now ahead
        t0 = comm.time(0)
        comm.exchange([Message(src=0, dst=16, payload=np.ones(10))])
        assert comm.time(16) >= t0  # receiver waited for the send


class TestCollectiveSemantics:
    def test_allreduce_sum(self):
        comm = Communicator(4)
        out = comm.allreduce([np.full(3, float(i)) for i in range(4)])
        for arr in out:
            np.testing.assert_allclose(arr, 6.0)

    def test_allreduce_max(self):
        comm = Communicator(3)
        out = comm.allreduce(
            [np.array([1.0]), np.array([5.0]), np.array([3.0])], op="max"
        )
        assert out[0][0] == 5.0

    def test_allreduce_results_independent(self):
        comm = Communicator(2)
        out = comm.allreduce([np.ones(2), np.ones(2)])
        out[0][:] = 0.0
        assert out[1][0] == 2.0

    def test_allreduce_bad_op(self):
        comm = Communicator(2)
        with pytest.raises(KeyError):
            comm.allreduce([np.ones(1), np.ones(1)], op="xor")

    def test_allreduce_shape_mismatch(self):
        comm = Communicator(2)
        with pytest.raises(ValueError):
            comm.allreduce([np.ones(2), np.ones(3)])

    def test_alltoallv_transposes(self):
        comm = Communicator(3)
        send = [
            [np.array([10.0 * i + j]) for j in range(3)] for i in range(3)
        ]
        recv = comm.alltoallv(send)
        # recv[j][i] == send[i][j]
        for i in range(3):
            for j in range(3):
                assert recv[j][i][0] == 10.0 * i + j

    def test_gather(self):
        comm = Communicator(3)
        out = comm.gather([np.array([float(i)]) for i in range(3)])
        assert [a[0] for a in out] == [0.0, 1.0, 2.0]

    def test_barrier_synchronizes(self):
        comm = Communicator(4, machine=get_machine("ES"))
        comm.compute(0, Work(name="x", flops=1e9))
        comm.barrier()
        times = comm.times
        assert np.allclose(times, times[0])


class TestSplit:
    def test_split_groups(self):
        comm = Communicator(6)
        subs = comm.split([0, 0, 1, 1, 2, 2])
        assert [s.ranks for s in subs] == [[0, 1], [2, 3], [4, 5]]

    def test_split_shares_clock(self):
        comm = Communicator(4, machine=get_machine("ES"))
        subs = comm.split([0, 0, 1, 1])
        subs[1].compute(0, Work(name="x", flops=1e9))  # global rank 2
        assert comm.time(2) > 0.0
        assert comm.time(0) == 0.0

    def test_split_wrong_length(self):
        comm = Communicator(4)
        with pytest.raises(ValueError):
            comm.split([0, 1])

    def test_subgroup_allreduce_isolated(self):
        comm = Communicator(4)
        subs = comm.split([0, 0, 1, 1])
        out = subs[0].allreduce([np.array([1.0]), np.array([2.0])])
        assert out[0][0] == 3.0


class TestCompute:
    def test_compute_records_meter(self):
        comm = Communicator(2)
        comm.compute(0, Work(name="k", flops=123.0))
        assert comm.meter.total_flops() == 123.0

    def test_compute_all_requires_full_list(self):
        comm = Communicator(2)
        with pytest.raises(ValueError):
            comm.compute_all([Work(name="k", flops=1.0)])

    @given(st.integers(min_value=1, max_value=16))
    def test_construction_sizes(self, n):
        assert Communicator(n).nprocs == n

    def test_zero_ranks_rejected(self):
        with pytest.raises(ValueError):
            Communicator(0)
