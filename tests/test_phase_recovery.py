"""Recovery-second accounting under nested ``comm.phase()`` scopes.

The ledger contract: fault-recovery time (checkpoint writes, restart
restores, retransmits) lands in the ``recovery_s`` column of the
*innermost* phase active when it is charged — never in an enclosing
phase's bucket, and never double-booked into compute/comm/wait.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import harness
from repro.apps.lbmhd.solver import LBMHDParams
from repro.resilience import FaultPlan, MessageDrop
from repro.simmpi.comm import Communicator
from repro.simmpi.phases import UNPHASED


def _zeros(bucket, *columns) -> bool:
    return all(
        float(np.sum(getattr(bucket, col))) == 0.0 for col in columns
    )


class TestNestedPhaseRecoveryAccounting:
    def _comm(self) -> Communicator:
        comm = Communicator(4)
        comm.attach_phase_ledger()
        return comm

    def test_checkpoint_charge_lands_in_innermost_phase(self):
        comm = self._comm()
        ledger = comm.phase_ledger
        with comm.phase("outer"):
            with comm.phase("inner"):
                dt = comm.charge_checkpoint(8_000_000)
        assert dt > 0.0
        inner = ledger["inner"]
        assert np.all(inner.recovery_s > 0.0)
        assert np.allclose(inner.recovery_s, dt)
        # nothing leaked into the enclosing scope...
        assert "outer" not in ledger or _zeros(
            ledger["outer"], "recovery_s"
        )
        # ...or into the other columns of the charged bucket
        assert _zeros(inner, "compute_s", "comm_s", "wait_s")

    def test_sibling_scopes_charge_independently(self):
        comm = self._comm()
        ledger = comm.phase_ledger
        with comm.phase("outer"):
            with comm.phase("inner"):
                comm.charge_checkpoint(4_000_000)
            # back in the enclosing scope: charges go to "outer" now
            comm.charge_checkpoint(4_000_000)
        comm.charge_checkpoint(4_000_000)  # no scope at all
        same = ledger["inner"].recovery_s
        assert np.array_equal(same, ledger["outer"].recovery_s)
        assert np.array_equal(same, ledger[UNPHASED].recovery_s)
        for name in ("inner", "outer", UNPHASED):
            assert _zeros(ledger[name], "compute_s", "comm_s", "wait_s")

    def test_restart_charge_lands_in_innermost_phase(self):
        comm = self._comm()
        ledger = comm.phase_ledger
        with comm.phase("outer"):
            with comm.phase("inner"):
                dt = comm.recover_restart(1_000_000)
        assert dt > 0.0
        assert np.all(ledger["inner"].recovery_s >= dt)
        assert "outer" not in ledger or _zeros(
            ledger["outer"], "recovery_s"
        )
        assert _zeros(ledger["inner"], "compute_s", "comm_s", "wait_s")

    def test_recovery_clock_advance_matches_column(self):
        """The virtual clocks advance by exactly what the column books —
        recovery time is real time, just separately attributed."""
        comm = self._comm()
        before = comm.times.copy()
        with comm.phase("outer"):
            with comm.phase("inner"):
                comm.charge_checkpoint(2_000_000)
        advanced = comm.times - before
        assert np.allclose(
            advanced, comm.phase_ledger["inner"].recovery_s
        )


class TestSolverPhaseRecoveryAttribution:
    @pytest.mark.parametrize("executor", ["serial", "threads:2"])
    def test_faulted_lbmhd_recovery_lands_in_solver_phases(self, executor):
        """Retransmission recovery from in-phase exchanges must be
        attributed to the solver's own phases (collision/stream), and
        the fault-free twin books zero recovery anywhere."""
        params = LBMHDParams(shape=(8, 8, 8))
        plan = FaultPlan(
            faults=(MessageDrop(step=1, rate=0.5),), seed=7
        )
        faulted = harness.run(
            "lbmhd", params, steps=3, nprocs=4,
            fault_plan=plan, executor=executor,
        )
        clean = harness.run(
            "lbmhd", params, steps=3, nprocs=4, executor=executor
        )
        ledger = faulted.ledger
        recovery_total = float(ledger.totals().recovery_s.sum())
        assert recovery_total > 0.0
        in_solver_phases = sum(
            float(ledger[name].recovery_s.sum())
            for name in ledger.phases
            if name != UNPHASED
        )
        # every recovered second is attributed to a named solver phase
        assert in_solver_phases == pytest.approx(recovery_total)
        assert float(clean.ledger.totals().recovery_s.sum()) == 0.0
        # attribution never rewrites physics
        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )
