"""The unified measurement stack: RunRecord + perfdb store/ingest/trend.

Covers the ISSUE-mandated contracts:

* every legacy ``BENCH_PR1``..``BENCH_PR7`` schema ingests into
  canonical records (the *real* tracked files at the repo root, not
  synthetic fixtures);
* torn / empty campaign manifests are tolerated;
* regression detection flags a synthetic 2x slowdown while passing the
  repository's real performance trajectory;
* the store deduplicates and round-trips through JSONL.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.perfdb import (
    PerfDB,
    RunRecord,
    TrendPolicy,
    detect_regressions,
    ingest_path,
    inject_slowdown,
    pivot,
    records_from_bench,
    records_from_manifest,
    records_from_report,
    series_trends,
)
from repro.perfdb.ingest import detect_schema

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_PR*.json"))

SMOKE_SPEC = CampaignSpec(
    name="perfdb-smoke",
    apps=("lbmhd",),
    nprocs=(4,),
    seeds=(0,),
    steps=2,
    params={"lbmhd": {"shape": [8, 8, 8]}},
)


def _record(**kw) -> RunRecord:
    base = dict(
        app="lbmhd", bench="unit", variant="fast", nprocs=4,
        steps=2, wall_s=1.0, gflops=2.0, source="BENCH_PR1.json", pr=1,
    )
    base.update(kw)
    return RunRecord(**base)


# -- legacy schema ingestion (the real tracked files) ----------------------


def test_all_tracked_bench_files_present():
    names = {p.name for p in BENCH_FILES}
    assert names == {
        f"BENCH_PR{i}.json" for i in (1, 2, 3, 4, 5, 6, 7, 9, 10)
    }


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.name for p in BENCH_FILES]
)
def test_every_legacy_bench_schema_adapts(path):
    # strip any embedded canonical records so this pins the *legacy*
    # adapter for each era, even after a bench re-emits its file
    # through benchmarks/common.emit
    payload = json.loads(path.read_text())
    payload.pop("records", None)
    records = records_from_bench(payload, source=path.name)
    assert records, f"{path.name} legacy sections produced no records"
    for r in records:
        assert r.pr == int(path.stem.replace("BENCH_PR", ""))


@pytest.mark.parametrize(
    "path", BENCH_FILES, ids=[p.name for p in BENCH_FILES]
)
def test_every_tracked_bench_file_ingests(path):
    records = ingest_path(path)
    assert records, f"{path.name} produced no records"
    for r in records:
        assert isinstance(r, RunRecord)
        assert r.source == path.name
        assert r.pr == int(path.stem.replace("BENCH_PR", ""))
        assert r.wall_s >= 0.0
        assert r.bench and r.app
        # round trip through the canonical dict form
        assert RunRecord.from_dict(r.to_dict()) == r


def test_schema_sniffing_distinguishes_all_eras():
    seen = {}
    for path in BENCH_FILES:
        payload = json.loads(path.read_text())
        payload.pop("records", None)  # sniff the legacy sections
        seen[path.name] = detect_schema(payload)
    assert seen == {
        "BENCH_PR1.json": "pr1",
        "BENCH_PR2.json": "pr2",
        "BENCH_PR3.json": "pr3",
        "BENCH_PR4.json": "pr4",
        "BENCH_PR5.json": "pr5",
        "BENCH_PR6.json": "pr6",
        "BENCH_PR7.json": "pr7",
        "BENCH_PR9.json": "pr9",
        "BENCH_PR10.json": "pr10",
    }


def test_records_payloads_bypass_sniffing():
    records = ingest_path(BENCH_FILES[0])
    payload = {"records": [r.to_dict() for r in records]}
    assert detect_schema(payload) == "records"
    again = records_from_bench(payload, source=BENCH_FILES[0].name)
    assert again == records


def test_full_trajectory_spans_eras_and_pivots():
    db = PerfDB()
    total = 0
    for path in BENCH_FILES:
        total += db.add(ingest_path(path))
    assert total == len(db.all()) >= 30
    assert set(db.distinct("pr")) == {1, 2, 3, 4, 5, 6, 7, 9, 10}
    # the ISSUE acceptance pivot: gflops by app x executor x backend
    view = pivot(
        db.all(), rows=("app",), cols=("executor", "kernel_backend"),
        value="gflops", agg="best",
    )
    assert view.cells
    assert "lbmhd" in {row[0] for row, _ in view.cells}
    rendered = view.render()
    assert "lbmhd" in rendered


# -- store semantics -------------------------------------------------------


def test_store_deduplicates_on_content(tmp_path):
    db = PerfDB(tmp_path / "perf.db")
    records = ingest_path(BENCH_FILES[0])
    assert db.add(records) == len(records)
    assert db.add(records) == 0  # identical content: no new rows
    assert len(db.all()) == len(records)
    db.close()


def test_store_persists_and_queries(tmp_path):
    path = tmp_path / "perf.db"
    with PerfDB(path) as db:
        db.add([_record(pr=1), _record(pr=2, wall_s=1.1),
                _record(app="gtc", pr=2)])
    with PerfDB(path) as db:
        assert len(db.all()) == 3
        assert [r.pr for r in db.all()] == [1, 2, 2]  # trajectory order
        assert len(db.query(app="lbmhd")) == 2
        assert len(db.query(app=["lbmhd", "gtc"], pr=2)) == 2
        assert db.sources() == {"BENCH_PR1.json": 3}


def test_jsonl_round_trip(tmp_path):
    db = PerfDB()
    for path in BENCH_FILES:
        db.add(ingest_path(path))
    out = tmp_path / "records.jsonl"
    n = db.export_jsonl(out)
    assert n == len(db.all())

    db2 = PerfDB()
    assert db2.import_jsonl(out) == n
    assert db2.all() == db.all()

    # a torn trailing line (writer died mid-append) is skipped
    torn = tmp_path / "torn.jsonl"
    torn.write_text(out.read_text() + '{"app": "lb')
    db3 = PerfDB()
    assert db3.import_jsonl(torn) == n


# -- campaign manifests ----------------------------------------------------


def test_fresh_manifest_ingests_with_host_provenance(tmp_path):
    manifest = tmp_path / "smoke.manifest.jsonl"
    report = run_campaign(
        SMOKE_SPEC, cache=None, manifest=manifest, scheduler="serial"
    )
    assert report.ok
    records = records_from_manifest(manifest)
    assert len(records) == len(SMOKE_SPEC.expand())
    for r in records:
        assert r.app == "lbmhd"
        assert r.nprocs == 4
        assert r.host, "fresh journals must carry the hostname"
        assert r.cpu_count
        assert r.version
        assert r.key
    # the report-side emission agrees on identity
    direct = records_from_report(report, source=manifest.name)
    assert {r.series_key() for r in direct} == {
        r.series_key() for r in records
    }


def test_empty_and_torn_manifests_tolerated(tmp_path):
    empty = tmp_path / "empty.manifest.jsonl"
    empty.write_text("")
    assert records_from_manifest(empty) == []

    manifest = tmp_path / "torn.manifest.jsonl"
    run_campaign(
        SMOKE_SPEC, cache=None, manifest=manifest, scheduler="serial"
    )
    text = manifest.read_text()
    # chop mid-way through the final line
    manifest.write_text(text[: len(text) - 25])
    records = records_from_manifest(manifest)  # must not raise
    assert isinstance(records, list)


# -- regression detection --------------------------------------------------


def _trajectory() -> list[RunRecord]:
    records = []
    for path in BENCH_FILES:
        records.extend(ingest_path(path))
    return records


def test_real_trajectory_is_regression_free():
    findings = detect_regressions(_trajectory())
    assert findings == [], [f.describe() for f in findings]


def test_synthetic_2x_slowdown_is_flagged():
    # the CI shape: legacy trajectory plus a freshly measured point
    # that carries host provenance (as every new emission does)
    fresh = _record(bench="fresh", pr=8, host="ci-runner", cpu_count=8)
    records = _trajectory() + [fresh]
    poisoned = inject_slowdown(records, factor=2.0)
    assert len(poisoned) > len(records)
    findings = detect_regressions(poisoned)
    assert findings, "a 2x same-host slowdown must be flagged"
    for f in findings:
        assert f.ratio == pytest.approx(2.0, rel=1e-6)
        assert f.same_host
        assert f.ratio >= f.threshold
        assert f.after.source == "synthetic-slowdown"


def test_injection_needs_host_identity_to_use_tight_threshold():
    # hostless records (every pre-perfdb measurement) only get the
    # loose cross-host bar — absolute wall-clock across unknown
    # machines is not a regression signal at 2x...
    legacy = [_record(host=None, cpu_count=None)]
    assert detect_regressions(inject_slowdown(legacy, factor=2.0)) == []
    # ...but a big enough cross-host jump still trips
    assert detect_regressions(inject_slowdown(legacy, factor=4.0))


def test_same_host_pairs_use_the_tight_threshold():
    a = _record(pr=1, host="ci", cpu_count=8)
    b = replace(a, pr=2, wall_s=a.wall_s * 1.9)  # 1.9x, same host
    assert detect_regressions([a, b])  # 1.9 > 1.8 same-host ratio
    # identical slowdown across hosts stays under the loose 3.0x bar
    c = replace(b, host="other")
    assert detect_regressions([a, c]) == []
    # unknown hosts (legacy records) also get the loose bar
    d = replace(b, host=None, cpu_count=None)
    assert detect_regressions([replace(a, host=None, cpu_count=None), d]) \
        == []


def test_noise_floor_suppresses_micro_timings():
    a = _record(wall_s=2e-4, pr=1, host="ci", cpu_count=8)
    b = replace(a, pr=2, wall_s=8e-4)  # 4x but both under 1 ms
    policy = TrendPolicy()
    assert detect_regressions([a, b], policy) == []


def test_series_trends_orders_by_pr():
    records = [
        _record(pr=3, wall_s=3.0), _record(pr=1, wall_s=1.0),
        _record(pr=2, wall_s=2.0),
    ]
    (t,) = series_trends(records)
    assert len(t["points"]) == 3
    assert [p["wall_per_step"] for p in t["points"]] == [0.5, 1.0, 1.5]
    assert t["net_ratio"] == pytest.approx(3.0)


# -- query layer -----------------------------------------------------------


def test_pivot_aggregations():
    rows = [
        _record(gflops=1.0), _record(gflops=3.0, pr=2),
        _record(app="gtc", gflops=2.0),
    ]
    best = pivot(rows, rows=("app",), value="gflops", agg="best")
    assert best.cells[(("lbmhd",), ())] == 3.0  # best = max for rates
    worst = pivot(rows, rows=("app",), value="wall_s", agg="best")
    assert worst.cells[(("lbmhd",), ())] == 1.0  # best = min for times
    count = pivot(rows, rows=("app",), value="gflops", agg="count")
    assert count.cells[(("gtc",), ())] == 1

    with pytest.raises(ValueError):
        pivot(rows, rows=("nope",))
    with pytest.raises(ValueError):
        pivot(rows, value="nope")


def test_record_identity_and_uid():
    a, b = _record(), _record()
    assert a == b and a.uid() == b.uid()
    assert a.series_key() == b.series_key()
    c = _record(wall_s=9.9)
    assert c.uid() != a.uid()
    assert c.series_key() == a.series_key()  # same series, new point
    assert _record(executor="threads:4").series_key() != a.series_key()


def test_with_provenance_fills_only_unset_fields():
    r = _record(host=None, cpu_count=None, version=None)
    filled = r.with_provenance(host="ci", cpu_count=4, version="1.1.0")
    assert (filled.host, filled.cpu_count, filled.version) == \
        ("ci", 4, "1.1.0")
    kept = filled.with_provenance(host="other", version="9.9.9")
    assert kept.host == "ci" and kept.version == "1.1.0"
