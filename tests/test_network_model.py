"""Tests for the message cost and collective models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import get_machine
from repro.network import CollectiveModel, NetworkModel


def net(machine: str = "ES", nprocs: int = 64) -> NetworkModel:
    return NetworkModel(get_machine(machine), nprocs)


class TestNetworkModel:
    def test_zero_for_self_message(self):
        assert net().ptp_time(1024, 3, 3) == 0.0

    def test_latency_floor(self):
        n = net("Power3", 64)
        # A 0-byte inter-node message costs at least the MPI latency.
        assert n.ptp_time(0, 0, 32) >= 16.3e-6

    def test_bandwidth_term(self):
        n = net("ES", 64)
        t_small = n.ptp_time(1_000, 0, 16)
        t_big = n.ptp_time(100_000_000, 0, 16)
        expected = 1e8 / 1.5e9
        assert t_big - t_small == pytest.approx(expected, rel=0.01)

    def test_intra_node_cheaper(self):
        n = net("ES", 64)  # 8 cpus/node
        assert n.ptp_time(1_000_000, 0, 1) < n.ptp_time(1_000_000, 0, 32)

    def test_x1e_port_sharing_halves_bandwidth(self):
        x1 = NetworkModel(get_machine("X1"), 64)
        x1e = NetworkModel(get_machine("X1E"), 64)
        assert x1e.bandwidth_Bps == pytest.approx(2.9e9 / 2)
        assert x1.bandwidth_Bps == pytest.approx(6.3e9)

    def test_node_mapping(self):
        n = net("ES", 64)
        assert n.node_of(0) == 0
        assert n.node_of(7) == 0
        assert n.node_of(8) == 1
        with pytest.raises(IndexError):
            n.node_of(64)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            net().ptp_time(-1, 0, 9)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_monotone_in_size(self, nbytes):
        n = net("Opteron", 16)
        assert n.ptp_time(nbytes, 0, 8) <= n.ptp_time(nbytes + 1024, 0, 8)


class TestCollectives:
    def coll(self, machine="ES", nprocs=64) -> CollectiveModel:
        return CollectiveModel(net(machine, nprocs))

    def test_single_rank_free(self):
        c = self.coll(nprocs=1)
        assert c.allreduce(1024, 1) == 0.0
        assert c.alltoall(1024, 1) == 0.0
        assert c.barrier(1) == 0.0

    def test_allreduce_log_scaling(self):
        c = self.coll(nprocs=1024)
        t8 = c.allreduce(8.0, 8)
        t1024 = c.allreduce(8.0, 1024)
        # latency-dominated: ~ log2(P) growth, not linear.
        assert t1024 / t8 == pytest.approx(10 / 3, rel=0.2)

    def test_alltoall_linear_in_group(self):
        c = self.coll(nprocs=512)
        t64 = c.alltoall(1000.0, 64)
        t128 = c.alltoall(1000.0, 128)
        assert t128 > 1.8 * t64

    def test_halo_exchange_independent_of_nprocs(self):
        t_small = self.coll(nprocs=16).halo_exchange(8192, 6)
        t_large = self.coll(nprocs=1024).halo_exchange(8192, 6)
        assert t_small == pytest.approx(t_large)

    def test_crossbar_alltoall_beats_torus_shape(self):
        # Same per-pair size and group: the ES crossbar suffers no
        # bisection contention; a torus would.
        from repro.network import Torus2D

        es = self.coll("ES", 256)
        t_es = es.alltoall(10_000.0, 256)
        assert es.net.contention_factor(1.0) == pytest.approx(1.0)
        assert Torus2D(64).bisection_contention() > 1.0
        assert t_es > 0

    def test_transpose_reduces_to_alltoall(self):
        c = self.coll(nprocs=64)
        per_rank = 64_000.0
        assert c.transpose(per_rank, 64) == pytest.approx(
            c.alltoall(per_rank / 64, 64)
        )

    def test_broadcast_log_latency(self):
        c = self.coll(nprocs=256)
        assert c.broadcast(8.0, 256) > 0

    @given(st.floats(min_value=1.0, max_value=1e9))
    def test_costs_monotone_in_bytes(self, nbytes):
        c = self.coll(nprocs=64)
        assert c.allreduce(nbytes, 64) <= c.allreduce(nbytes * 2, 64)
        assert c.alltoall(nbytes, 64) <= c.alltoall(nbytes * 2, 64)
