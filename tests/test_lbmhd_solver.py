"""Integration tests for the LBMHD3D solver and its decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lbmhd import (
    LBMHD3D,
    LBMHDParams,
    CartesianDecomposition3D,
    TABLE5_ROWS,
    factor3d,
    predict,
)
from repro.machines import get_machine
from repro.simmpi import Communicator


class TestFactor3D:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16, 64, 256, 2048])
    def test_product(self, p):
        px, py, pz = factor3d(p)
        assert px * py * pz == p

    def test_near_cubic(self):
        assert factor3d(64) == (4, 4, 4)
        assert factor3d(8) == (2, 2, 2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor3d(0)


class TestDecomposition:
    def test_scatter_gather_roundtrip(self, rng):
        d = CartesianDecomposition3D.create((8, 8, 8), 8)
        arr = rng.random((5, 8, 8, 8))
        np.testing.assert_array_equal(d.gather(d.scatter(arr)), arr)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            CartesianDecomposition3D.create((9, 8, 8), 8)

    def test_coords_roundtrip(self):
        d = CartesianDecomposition3D.create((8, 8, 8), 8)
        for r in range(8):
            assert d.rank_of(*d.coords(r)) == r

    def test_neighbors_periodic(self):
        d = CartesianDecomposition3D.create((8, 8, 8), 8)  # 2x2x2
        r = 0
        assert d.neighbor(r, 0, -1) == d.neighbor(r, 0, +1)  # wrap at 2


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_parallel_matches_serial_bitwise(nprocs):
    """Decomposition independence: parallel runs are SPMD-exact."""
    params = LBMHDParams(shape=(8, 8, 8))
    ref = LBMHD3D(params, Communicator(1))
    par = LBMHD3D(params, Communicator(nprocs))
    for _ in range(4):
        ref.step()
        par.step()
    np.testing.assert_array_equal(ref.global_state(), par.global_state())


class TestConservation:
    def run_sim(self, steps=6):
        sim = LBMHD3D(LBMHDParams(shape=(8, 8, 8)), Communicator(4))
        d0 = sim.diagnostics()
        sim.run(steps)
        return d0, sim.diagnostics()

    def test_mass_conserved(self):
        d0, d1 = self.run_sim()
        assert d1.mass == pytest.approx(d0.mass, rel=1e-12)

    def test_momentum_conserved(self):
        d0, d1 = self.run_sim()
        np.testing.assert_allclose(d1.momentum, d0.momentum, atol=1e-10)

    def test_total_B_conserved(self):
        d0, d1 = self.run_sim()
        np.testing.assert_allclose(d1.total_B, d0.total_B, atol=1e-10)

    def test_energy_decays(self):
        # BGK viscosity/resistivity dissipate: total energy must not grow.
        d0, d1 = self.run_sim()
        e0 = d0.kinetic_energy + d0.magnetic_energy
        e1 = d1.kinetic_energy + d1.magnetic_energy
        assert e1 <= e0 * (1 + 1e-12)


class TestTimedRuns:
    def test_virtual_time_accumulates(self):
        sim = LBMHD3D(
            LBMHDParams(shape=(8, 8, 8)),
            Communicator(8, machine=get_machine("ES")),
        )
        sim.run(2)
        assert sim.comm.elapsed > 0.0

    def test_vector_machine_faster_than_power3(self):
        p = LBMHDParams(shape=(8, 8, 8))
        es = LBMHD3D(p, Communicator(8, machine=get_machine("ES")))
        p3 = LBMHD3D(p, Communicator(8, machine=get_machine("Power3")))
        es.run(2)
        p3.run(2)
        assert es.comm.elapsed < p3.comm.elapsed

    def test_flops_per_step(self):
        sim = LBMHD3D(LBMHDParams(shape=(8, 8, 8)), Communicator(1))
        assert sim.flops_per_step == pytest.approx(1440 * 512)


class TestMeterMatchesWorkloadGenerator:
    def test_instrumented_flops_match_analytic(self):
        """The instrumented solver and the Table 5 generator agree."""
        sim = LBMHD3D(LBMHDParams(shape=(8, 8, 8)), Communicator(4))
        sim.run(3)
        recorded = sim.comm.meter.total_flops()
        assert recorded == pytest.approx(3 * sim.flops_per_step)


class TestTable5Shape:
    """The headline qualitative claims of the paper's Table 5."""

    def row(self, grid, nprocs):
        return next(
            r for r in TABLE5_ROWS if (r.grid, r.nprocs) == (grid, nprocs)
        )

    def test_vector_machines_dominate(self):
        row = self.row(512, 256)
        worst_vector = min(
            predict(m, row).gflops_per_proc for m in ("X1", "ES", "SX-8")
        )
        best_scalar = max(
            predict(m, row).gflops_per_proc
            for m in ("Power3", "Itanium2", "Opteron")
        )
        assert worst_vector > 4 * best_scalar

    def test_es_highest_pct_peak(self):
        row = self.row(512, 256)
        machines = ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8")
        pcts = {m: predict(m, row).pct_peak for m in machines}
        assert max(pcts, key=pcts.get) == "ES"
        assert pcts["ES"] > 60.0

    def test_sx8_highest_absolute(self):
        row = self.row(512, 256)
        machines = ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8")
        rates = {m: predict(m, row).gflops_per_proc for m in machines}
        assert max(rates, key=rates.get) == "SX-8"

    def test_opteron_beats_itanium2(self):
        # "the Opteron cluster outperforms the Itanium2 system by almost
        # a factor of 2X" (memory-bandwidth story).
        row = self.row(512, 256)
        r_opt = predict("Opteron", row).gflops_per_proc
        r_ita = predict("Itanium2", row).gflops_per_proc
        assert 1.5 < r_opt / r_ita < 2.6

    def test_msp_beats_4ssp(self):
        # "the LBMHD simulation is greatly benefiting from the MSP
        # paradigm, as it outperforms the SSP approach by over 50%".
        row = self.row(512, 256)
        r_msp = predict("X1", row).gflops_per_proc
        r_4ssp = 4 * predict("X1-SSP", row).gflops_per_proc
        assert r_msp > 0.9 * r_4ssp  # MSP at least competitive ...
        # ... and with the aggregate in the right neighborhood
        assert r_msp / r_4ssp == pytest.approx(1.0, abs=0.35)

    def test_es_flat_scaling(self):
        # ES sustains ~68% of peak from 16 through 2048 processors.
        pcts = [predict("ES", r).pct_peak for r in TABLE5_ROWS]
        assert max(pcts) - min(pcts) < 10.0

    def test_es_headline_aggregate(self):
        from repro.apps.lbmhd import ES_HEADLINE

        r = predict("ES", ES_HEADLINE)
        assert r.aggregate_tflops > 20.0  # paper: "over 26 Tflop/s"
