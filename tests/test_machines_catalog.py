"""Tests for the platform catalog against the paper's Table 1."""

from __future__ import annotations

import pytest

from repro.machines import (
    MACHINES,
    PAPER_ORDER,
    MachineSpec,
    NetworkTopology,
    ProcessorKind,
    get_machine,
    list_machines,
)

# Table 1 of the paper, column for column (Power3 peak corrected to the
# prose's 1.5 Gflop/s; see catalog docstring).
TABLE1 = {
    # name: (cpus/node, clock MHz, peak GF, stream GB/s, B/F, lat us, bw GB/s)
    "Power3": (16, 375, 1.5, 0.4, 0.26, 16.3, 0.13),
    "Itanium2": (4, 1400, 5.6, 1.1, 0.19, 3.0, 0.25),
    "Opteron": (2, 2200, 4.4, 2.3, 0.51, 6.0, 0.59),
    "X1": (4, 800, 12.8, 14.9, 1.16, 7.1, 6.3),
    "X1E": (4, 1130, 18.0, 9.7, 0.54, 5.0, 2.9),
    "ES": (8, 1000, 8.0, 26.3, 3.29, 5.6, 1.5),
    "SX-8": (8, 2000, 16.0, 41.0, 2.56, 5.0, 2.0),
}


@pytest.mark.parametrize("name", sorted(TABLE1))
def test_table1_columns(name):
    cpus, clock, peak, stream, bpf, lat, bw = TABLE1[name]
    m = get_machine(name)
    assert m.node.cpus_per_node == cpus
    assert m.clock_mhz == clock
    assert m.peak_gflops == peak
    assert m.stream_bw_gbs == stream
    assert m.bytes_per_flop == pytest.approx(bpf, abs=0.015)
    assert m.mpi_latency_us == lat
    assert m.mpi_bw_gbs == bw


def test_topologies_match_table1():
    assert get_machine("Power3").topology is NetworkTopology.FAT_TREE
    assert get_machine("Itanium2").topology is NetworkTopology.FAT_TREE
    assert get_machine("Opteron").topology is NetworkTopology.FAT_TREE
    assert get_machine("X1").topology is NetworkTopology.HYPERCUBE_4D
    assert get_machine("X1E").topology is NetworkTopology.HYPERCUBE_4D
    assert get_machine("ES").topology is NetworkTopology.CROSSBAR
    assert get_machine("SX-8").topology is NetworkTopology.CROSSBAR


def test_kinds():
    for name in ("Power3", "Itanium2", "Opteron"):
        assert get_machine(name).kind is ProcessorKind.SUPERSCALAR
    for name in ("X1", "X1-SSP", "X1E", "ES", "SX-8"):
        assert get_machine(name).kind is ProcessorKind.VECTOR


def test_aliases():
    assert get_machine("earth simulator").name == "ES"
    assert get_machine("seaborg").name == "Power3"
    assert get_machine("X1 (MSP)").name == "X1"
    assert get_machine("x1 (ssp)").name == "X1-SSP"
    assert get_machine("sx8").name == "SX-8"


def test_unknown_machine_raises():
    with pytest.raises(KeyError):
        get_machine("BlueGene/L")


def test_paper_order_covers_catalog():
    assert set(PAPER_ORDER) == set(MACHINES)
    assert [m.name for m in list_machines()] == list(PAPER_ORDER)


def test_ssp_is_quarter_of_msp():
    msp, ssp = get_machine("X1"), get_machine("X1-SSP")
    assert ssp.peak_gflops == pytest.approx(msp.peak_gflops / 4)
    assert ssp.stream_bw_gbs == pytest.approx(msp.stream_bw_gbs / 4)
    assert ssp.vector.register_length == msp.vector.register_length // 4


def test_x1e_shares_network_ports():
    assert get_machine("X1E").node.network_ports_shared_by == 2
    assert get_machine("X1").node.network_ports_shared_by == 1


def test_es_gather_beats_sx8_per_flop():
    # FPLRAM vs commodity DDR2: the paper's explanation for GTC's
    # sub-2x SX-8/ES ratio despite the 2x peak — the SX-8's absolute
    # gather rate is only ~1.5x the ES's, so *per peak flop* it loses.
    es, sx8 = get_machine("ES"), get_machine("SX-8")
    es_gather = es.vector.gather_bw_fraction * es.stream_bw_gbs
    sx8_gather = sx8.vector.gather_bw_fraction * sx8.stream_bw_gbs
    assert 1.0 < sx8_gather / es_gather < 2.0  # "only about 50% higher"
    assert es_gather / es.peak_gflops > sx8_gather / sx8.peak_gflops


def test_vector_register_counts():
    # "Because the X1 has fewer vector registers than the ES/SX-8
    # (32 vs 72) ..."
    assert get_machine("X1").vector.num_registers == 32
    assert get_machine("ES").vector.num_registers == 72
    assert get_machine("SX-8").vector.num_registers == 72


def test_scalar_ratio_one_eighth_on_nec():
    # "utilize scalar units operating at one-eighth the peak of their
    # vector counterparts"
    assert get_machine("ES").vector.scalar_ratio == pytest.approx(0.125)
    assert get_machine("SX-8").vector.scalar_ratio == pytest.approx(0.125)


def test_spec_validation():
    with pytest.raises(ValueError):
        MachineSpec(
            name="bad",
            kind=ProcessorKind.VECTOR,
            clock_mhz=1000,
            peak_gflops=8,
            stream_bw_gbs=26,
            mpi_latency_us=5,
            mpi_bw_gbs=1,
            topology=NetworkTopology.CROSSBAR,
            node=get_machine("ES").node,
            vector=None,  # vector machine without a VectorSpec
        )


def test_pct_of_peak_helper():
    es = get_machine("ES")
    assert es.pct_of_peak(4.0) == pytest.approx(50.0)
