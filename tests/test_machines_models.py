"""Tests for the memory, vector-pipeline, and processor timing models."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.machines import (
    MemoryModel,
    SuperscalarModel,
    VectorModel,
    VectorPipelineModel,
    get_machine,
    make_model,
    vector_efficiency,
)
from repro.machines.vector import spill_traffic_multiplier
from repro.workload import Work


def kernel(**kw) -> Work:
    base = dict(
        name="k",
        flops=1e9,
        bytes_unit=1e9,
        vector_fraction=0.99,
        avg_vector_length=256.0,
    )
    base.update(kw)
    return Work(**base)


class TestMemoryModel:
    def test_stream_time_matches_table1(self):
        mm = MemoryModel(get_machine("ES"))
        w = Work(name="triad", flops=0.0, bytes_unit=26.3e9)
        assert mm.traffic_time(w) == pytest.approx(1.0)

    def test_gather_slower_than_stream(self, machine_name):
        mm = MemoryModel(get_machine(machine_name))
        streamed = Work(name="s", flops=0.0, bytes_unit=1e9)
        gathered = Work(name="g", flops=0.0, bytes_gather=1e9)
        assert mm.traffic_time(gathered) > mm.traffic_time(streamed)

    def test_cache_fraction_speeds_up_cached_machines(self):
        mm = MemoryModel(get_machine("Opteron"))
        cold = Work(name="c", flops=0.0, bytes_unit=1e9, cache_fraction=0.0)
        warm = Work(name="w", flops=0.0, bytes_unit=1e9, cache_fraction=0.8)
        assert mm.traffic_time(warm) < mm.traffic_time(cold)

    def test_cache_fraction_noop_on_cacheless_vector(self):
        mm = MemoryModel(get_machine("ES"))
        cold = Work(name="c", flops=0.0, bytes_unit=1e9, cache_fraction=0.0)
        warm = Work(name="w", flops=0.0, bytes_unit=1e9, cache_fraction=0.8)
        assert mm.traffic_time(warm) == pytest.approx(mm.traffic_time(cold))

    def test_x1_ecache_helps(self):
        mm = MemoryModel(get_machine("X1"))
        cold = Work(name="c", flops=0.0, bytes_unit=1e9, cache_fraction=0.0)
        warm = Work(name="w", flops=0.0, bytes_unit=1e9, cache_fraction=0.8)
        assert mm.traffic_time(warm) < mm.traffic_time(cold)

    def test_scalar_traffic_override_only_on_superscalar(self):
        w = Work(name="k", flops=0.0, bytes_unit=1e9, scalar_bytes_unit=4e9)
        t_opteron = MemoryModel(get_machine("Opteron")).traffic_time(w)
        t_opteron_base = MemoryModel(get_machine("Opteron")).traffic_time(
            Work(name="k", flops=0.0, bytes_unit=1e9)
        )
        assert t_opteron == pytest.approx(4.0 * t_opteron_base)
        t_es = MemoryModel(get_machine("ES")).traffic_time(w)
        t_es_base = MemoryModel(get_machine("ES")).traffic_time(
            Work(name="k", flops=0.0, bytes_unit=1e9)
        )
        assert t_es == pytest.approx(t_es_base)


class TestVectorPipeline:
    def test_efficiency_increases_with_length(self):
        es = get_machine("ES")
        effs = [vector_efficiency(es.vector, vl) for vl in (8, 32, 128, 256)]
        assert effs == sorted(effs)
        assert effs[-1] > 0.8

    def test_efficiency_bounds(self):
        es = get_machine("ES")
        assert 0.0 < vector_efficiency(es.vector, 1) < 1.0
        assert vector_efficiency(es.vector, 0) == 0.0

    @given(st.floats(min_value=1.0, max_value=1e4))
    def test_efficiency_in_unit_interval(self, vl):
        es = get_machine("ES")
        assert 0.0 < vector_efficiency(es.vector, vl) < 1.0

    def test_spill_none_with_enough_registers(self):
        es = get_machine("ES")
        assert spill_traffic_multiplier(es.vector, 48.0) == 1.0

    def test_spill_on_x1_for_complex_loops(self):
        # 48 live temporaries vs 32 registers: the LBMHD collision case.
        x1 = get_machine("X1")
        mult = spill_traffic_multiplier(x1.vector, 48.0)
        assert mult > 1.0

    def test_scalar_gflops(self):
        es = get_machine("ES")
        assert VectorPipelineModel(es).scalar_gflops() == pytest.approx(1.0)


class TestProcessorModels:
    def test_factory_dispatch(self):
        assert isinstance(make_model(get_machine("Opteron")), SuperscalarModel)
        assert isinstance(make_model(get_machine("ES")), VectorModel)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            SuperscalarModel(get_machine("ES"))
        with pytest.raises(ValueError):
            VectorModel(get_machine("Power3"))

    def test_rate_never_exceeds_peak(self, machine_name):
        spec = get_machine(machine_name)
        model = make_model(spec)
        for intensity_scale in (0.1, 1.0, 10.0, 100.0):
            w = kernel(bytes_unit=1e9 / intensity_scale)
            assert model.sustained_gflops(w) <= spec.peak_gflops * 1.0001

    def test_time_positive(self, machine_name):
        model = make_model(get_machine(machine_name))
        assert model.time(kernel()) > 0.0

    def test_blas3_runs_near_peak(self, machine_name):
        spec = get_machine(machine_name)
        model = make_model(spec)
        w = kernel(blas3_fraction=1.0, bytes_unit=0.0)
        rate = model.sustained_gflops(w)
        assert rate == pytest.approx(
            spec.peak_gflops * spec.blas3_efficiency, rel=1e-6
        )

    def test_unvectorized_code_crawls_on_vector_machines(self):
        es = make_model(get_machine("ES"))
        vec = kernel(vector_fraction=1.0, bytes_unit=0.0)
        scal = kernel(vector_fraction=0.0, bytes_unit=0.0)
        # Scalar unit at 1/8 of peak: at least ~7x slower.
        assert es.time(scal) > 6.0 * es.time(vec)

    def test_amdahl_monotone_in_vector_fraction(self):
        es = make_model(get_machine("ES"))
        times = [
            es.time(kernel(vector_fraction=f, bytes_unit=0.0))
            for f in (0.0, 0.25, 0.5, 0.75, 1.0)
        ]
        assert times == sorted(times, reverse=True)

    def test_memory_bound_kernel_rate_tracks_stream(self):
        # A very low intensity kernel: Opteron/Itanium2 rate ratio should
        # roughly follow their STREAM ratio (the paper's LBMHD argument).
        w = kernel(flops=1e8, bytes_unit=1e9)  # 0.1 flops/byte
        r_opt = make_model(get_machine("Opteron")).sustained_gflops(w)
        r_ita = make_model(get_machine("Itanium2")).sustained_gflops(w)
        stream_ratio = 2.3 / 1.1
        assert r_opt / r_ita == pytest.approx(stream_ratio, rel=0.15)

    def test_fma_penalty_on_opteron(self):
        opt = make_model(get_machine("Opteron"))
        p3 = make_model(get_machine("Power3"))
        w_fma = kernel(fma_fraction=1.0, bytes_unit=0.0)
        # Power3 reaches a higher fraction of peak on FMA-rich compute.
        assert p3.pct_peak(w_fma) > opt.pct_peak(w_fma)

    def test_short_vectors_hurt_vector_machines_only(self):
        w_long = kernel(avg_vector_length=256.0, bytes_unit=0.0)
        w_short = kernel(avg_vector_length=8.0, bytes_unit=0.0)
        es = make_model(get_machine("ES"))
        assert es.time(w_short) > 2.0 * es.time(w_long)
        opt = make_model(get_machine("Opteron"))
        assert opt.time(w_short) == pytest.approx(opt.time(w_long))

    @given(st.floats(min_value=1e6, max_value=1e12))
    def test_time_linear_in_flops(self, flops):
        model = make_model(get_machine("ES"))
        w1 = kernel(flops=flops, bytes_unit=flops)
        w2 = kernel(flops=2 * flops, bytes_unit=2 * flops)
        assert model.time(w2) == pytest.approx(2 * model.time(w1), rel=1e-9)
