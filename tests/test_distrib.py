"""repro.distrib — wire protocol, fault handling, and the scheduler seam.

Fast tests use stub runners and hand-rolled protocol exchanges over
real sockets (loopback, ephemeral ports); the end-to-end class runs
genuine solver configs through ``run_campaign`` with a distrib
executor and compares against a serial sweep bit for bit.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import __version__
from repro.campaign.cache import ResultCache
from repro.campaign.engine import resolve_scheduler, run_campaign
from repro.campaign.spec import CampaignSpec, RunConfig
from repro.distrib import (
    Coordinator,
    DistribExecutor,
    DistribWorker,
    ProtocolError,
    RemoteRunError,
    WorkerError,
    is_distrib_spec,
    parse_endpoint,
    recv_msg,
    send_msg,
)
from repro.distrib import protocol as proto
from repro.perfdb.ingest import records_from_manifest

#: A fast fake result shaped like a worker result dict.
def _stub_result(config, host="stub-host", **over):
    out = {
        "label": str(config.get("app", "?")),
        "wall_s": 0.01,
        "gflops": 1.0,
        "diagnostics": {"x": 1.0},
        "host": host,
        "cpu_count": 2,
        "version": __version__,
    }
    out.update(over)
    return out


def _jobs(n, cache_root=None):
    return [
        (
            RunConfig(app="lbmhd", nprocs=2, steps=1, seed=i).to_dict(),
            cache_root,
        )
        for i in range(n)
    ]


def _consume(coord, jobs, local_fn=None):
    """Drive coord.dispatch on a thread; returns (results, thread)."""
    results = []

    def run():
        results.extend(coord.dispatch(jobs, local_fn))

    t = threading.Thread(target=run, daemon=True)
    t.start()
    return results, t


def _fake_hello(coord, *, name="fake", version=__version__):
    """A raw protocol client: connect + hello; returns (sock, reply)."""
    sock = socket.create_connection(("127.0.0.1", coord.port), timeout=5)
    sock.settimeout(5)
    send_msg(
        sock,
        {
            "type": "hello",
            "name": name,
            "host": "fakehost",
            "cpu_count": 1,
            "version": version,
        },
    )
    return sock, recv_msg(sock)


def _pull_one(sock):
    """Raw client asks for work until a ``run`` arrives."""
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        send_msg(sock, {"type": "next"})
        reply = recv_msg(sock)
        if reply is None:
            raise AssertionError("coordinator hung up while pulling")
        if reply["type"] == "run":
            return reply
        time.sleep(0.05)
    raise AssertionError("never got a run message")


@pytest.fixture
def coord():
    c = Coordinator(
        timeout_s=30,
        max_attempts=3,
        grace_s=60,  # effectively never fall back locally
        heartbeat_timeout_s=10,
        local_fallback=False,
    )
    c.ensure_started()
    yield c
    c.stop()


# -- the wire format -------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            msg = {"type": "run", "config": {"app": "lbmhd", "n": [1, 2]}}
            send_msg(a, msg)
            assert recv_msg(b) == msg
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(proto.HEADER.pack(100) + b"only ten b")
            a.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_msg(b)
        finally:
            b.close()

    def test_missing_payload_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(proto.HEADER.pack(10))  # header, then silence
            a.close()
            with pytest.raises(ProtocolError, match="between header"):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_length_raises(self, monkeypatch):
        monkeypatch.setattr(proto, "MAX_FRAME", 64)
        a, b = socket.socketpair()
        try:
            a.sendall(proto.HEADER.pack(65) + b"x" * 65)
            with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
                recv_msg(b)
            with pytest.raises(ProtocolError, match="refusing to send"):
                send_msg(a, {"blob": "y" * 100})
        finally:
            a.close()
            b.close()

    @pytest.mark.parametrize(
        "payload, fragment",
        [(b"not json at all", "undecodable"), (b"[1, 2]", "JSON object")],
    )
    def test_bad_payloads_raise(self, payload, fragment):
        a, b = socket.socketpair()
        try:
            a.sendall(proto.HEADER.pack(len(payload)) + payload)
            with pytest.raises(ProtocolError, match=fragment):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_parse_endpoint(self):
        assert parse_endpoint("10.0.0.5:7713") == ("10.0.0.5", 7713)
        assert parse_endpoint("distrib:10.0.0.5:7713") == (
            "10.0.0.5",
            7713,
        )
        assert parse_endpoint(" DISTRIB:localhost:80 ") == (
            "localhost",
            80,
        )

    @pytest.mark.parametrize(
        "bad", ["no-port", "host:", ":123", "host:abc", "host:70000"]
    )
    def test_bad_endpoints_raise(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


# -- the scheduler seam ----------------------------------------------------


class TestSchedulerSeam:
    def test_is_distrib_spec(self):
        assert is_distrib_spec("distrib:127.0.0.1:0")
        assert is_distrib_spec("  DISTRIB:host:1 ")
        assert not is_distrib_spec("processes:4")
        assert not is_distrib_spec(None)

    def test_resolve_scheduler_builds_distrib_executor(self):
        ex = resolve_scheduler("distrib:127.0.0.1:0")
        assert isinstance(ex, DistribExecutor)
        assert not ex.coordinator.started  # lazy: no socket yet
        assert not ex.segment_support().ok
        ex.close()

    def test_plain_specs_still_resolve(self):
        assert resolve_scheduler("serial").name == "serial"

    def test_env_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIB_TIMEOUT", "12.5")
        monkeypatch.setenv("REPRO_DISTRIB_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_DISTRIB_GRACE", "0.5")
        monkeypatch.setenv("REPRO_DISTRIB_LOCAL", "0")
        ex = DistribExecutor.from_spec("distrib:127.0.0.1:0")
        c = ex.coordinator
        assert c.timeout_s == 12.5
        assert c.attempts.max_attempts == 7
        assert c.grace_s == 0.5
        assert c.local_fallback is False
        ex.close()

    def test_bad_env_knob_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIB_ATTEMPTS", "many")
        with pytest.raises(ValueError, match="REPRO_DISTRIB_ATTEMPTS"):
            DistribExecutor.from_spec("distrib:127.0.0.1:0")


# -- dispatch and fault handling (stub runners) ----------------------------


class TestDispatchFaults:
    def test_two_workers_split_the_sweep(self, coord):
        barrier = threading.Barrier(2)
        gate_timeout = 10

        def runner(config):
            barrier.wait(timeout=gate_timeout)
            return _stub_result(config)

        workers = [
            DistribWorker(coord.endpoint, name=f"w{i}", runner=runner)
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=w.run, daemon=True) for w in workers
        ]
        for t in threads:
            t.start()
        results, consumer = _consume(coord, _jobs(2))
        consumer.join(timeout=30)
        assert not consumer.is_alive()
        assert len(results) == 2
        names = {p["result"]["worker"] for _, p, exc in results if p}
        assert names == {"w0", "w1"}  # the barrier forces real mixing
        assert coord.stats.completed == 2

    def test_worker_death_mid_config_is_retried_elsewhere(self, coord):
        results, consumer = _consume(coord, _jobs(1))
        sock, welcome = _fake_hello(coord, name="doomed")
        assert welcome["type"] == "welcome"
        run = _pull_one(sock)
        assert run["config"]["app"] == "lbmhd"
        sock.close()  # SIGKILL equivalent: vanish mid-config

        rescue = DistribWorker(
            coord.endpoint, name="rescue", runner=_stub_result
        )
        threading.Thread(target=rescue.run, daemon=True).start()
        consumer.join(timeout=30)
        assert not consumer.is_alive()
        (index, payload, exc) = results[0]
        assert exc is None and payload["result"]["worker"] == "rescue"
        assert coord.stats.dead_workers == 1
        assert coord.stats.retried == 1

    def test_heartbeat_silence_declares_the_worker_dead(self):
        c = Coordinator(
            timeout_s=60,
            heartbeat_timeout_s=0.4,
            grace_s=60,
            local_fallback=False,
        )
        c.ensure_started()
        try:
            results, consumer = _consume(c, _jobs(1))
            sock, _ = _fake_hello(c, name="silent")
            _pull_one(sock)  # take the config, then never heartbeat
            rescue = DistribWorker(
                c.endpoint, name="rescue", runner=_stub_result
            )
            threading.Thread(target=rescue.run, daemon=True).start()
            consumer.join(timeout=30)
            assert not consumer.is_alive()
            assert results[0][2] is None
            assert c.stats.dead_workers >= 1
            sock.close()
        finally:
            c.stop()

    def test_per_config_timeout_reassigns(self):
        """The deadline is absolute: heartbeats prove liveness but do
        not buy a stalled worker more time."""
        c = Coordinator(
            timeout_s=0.4,
            heartbeat_timeout_s=60,
            grace_s=60,
            local_fallback=False,
        )
        c.ensure_started()
        try:
            results, consumer = _consume(c, _jobs(1))
            sock, _ = _fake_hello(c, name="stalled")
            run = _pull_one(sock)
            stop_beat = threading.Event()

            def beat():
                while not stop_beat.is_set():
                    try:
                        send_msg(
                            sock,
                            {"type": "heartbeat", "tid": run["tid"]},
                        )
                    except OSError:
                        return
                    time.sleep(0.1)

            threading.Thread(target=beat, daemon=True).start()
            rescue = DistribWorker(
                c.endpoint, name="rescue", runner=_stub_result
            )
            threading.Thread(target=rescue.run, daemon=True).start()
            consumer.join(timeout=30)
            assert not consumer.is_alive()
            stop_beat.set()
            sock.close()
            assert results[0][2] is None
            assert results[0][1]["result"]["worker"] == "rescue"
            assert c.stats.timeouts >= 1
            assert c.stats.retried >= 1
        finally:
            c.stop()

    def test_attempt_budget_exhaustion_carries_the_history(self):
        c = Coordinator(
            timeout_s=30,
            max_attempts=2,
            grace_s=60,
            local_fallback=False,
        )
        c.ensure_started()
        try:

            def always_broken(config):
                raise ValueError("kaboom")

            w = DistribWorker(
                c.endpoint, name="broken", runner=always_broken
            )
            threading.Thread(target=w.run, daemon=True).start()
            results, consumer = _consume(c, _jobs(1))
            consumer.join(timeout=30)
            assert not consumer.is_alive()
            index, payload, exc = results[0]
            assert payload is None
            assert isinstance(exc, RemoteRunError)
            assert "2/2 attempt(s) failed" in str(exc)
            assert "kaboom" in str(exc)
            assert c.stats.failed == 1 and c.stats.retried == 1
        finally:
            c.stop()

    def test_local_fallback_when_no_workers_connect(self):
        c = Coordinator(
            timeout_s=30, grace_s=0.1, local_fallback=True
        )
        c.ensure_started()
        try:
            done = []

            def local_fn(job):
                config, _root = job
                done.append(config["seed"])
                return {
                    "key": RunConfig.from_dict(config).key(),
                    "result": _stub_result(config),
                }

            results = list(c.dispatch(_jobs(3), local_fn))
            assert len(results) == 3 and all(
                e is None for _, _, e in results
            )
            assert sorted(done) == [0, 1, 2]
            assert c.stats.local_runs == 3
            assert c.stats.dispatched == 0  # nothing went remote
        finally:
            c.stop()

    def test_version_mismatch_is_rejected_at_hello(self, coord):
        sock, reply = _fake_hello(coord, version="0.0.1")
        try:
            assert reply["type"] == "reject"
            assert "version mismatch" in reply["reason"]
            assert coord.stats.rejected_workers == 1
        finally:
            sock.close()

    def test_rejected_distribworker_raises_workererror(
        self, coord, monkeypatch
    ):
        monkeypatch.setattr("repro.distrib.worker.__version__", "9.9.9")
        w = DistribWorker(coord.endpoint, name="old")
        with pytest.raises(WorkerError, match="version mismatch"):
            w.run()

    def test_duplicate_names_are_deduplicated(self, coord):
        s1, r1 = _fake_hello(coord, name="twin")
        s2, r2 = _fake_hello(coord, name="twin")
        try:
            assert r1["name"] == "twin"
            assert r2["name"] == "twin#2"
            assert len(coord.workers()) == 2
        finally:
            s1.close()
            s2.close()

    def test_coordinator_publishes_into_the_cache(self, coord, tmp_path):
        w = DistribWorker(coord.endpoint, name="w", runner=_stub_result)
        threading.Thread(target=w.run, daemon=True).start()
        jobs = _jobs(2, cache_root=str(tmp_path))
        results, consumer = _consume(coord, jobs)
        consumer.join(timeout=30)
        assert not consumer.is_alive()
        cache = ResultCache(tmp_path)
        assert len(cache) == 2
        for config_dict, _root in jobs:
            entry = cache.get(RunConfig.from_dict(config_dict))
            assert entry is not None and entry["worker"] == "w"
        assert cache.lifetime_stats().puts == 2


# -- end to end through run_campaign ---------------------------------------


SPEC = CampaignSpec(
    name="distrib-e2e",
    apps=("lbmhd",),
    nprocs=(2,),
    seeds=(0, 1),
    steps=1,
    params={"lbmhd": {"shape": [8, 8, 8]}},
)


class TestEndToEnd:
    def test_two_worker_campaign_matches_serial_bitwise(self, tmp_path):
        serial = run_campaign(
            SPEC, cache=tmp_path / "serial", scheduler="serial"
        )
        assert serial.ok

        ex = resolve_scheduler("distrib:127.0.0.1:0")
        ex.coordinator.grace_s = 60  # force the remote path
        ex.coordinator.local_fallback = False
        ex.coordinator.ensure_started()
        workers = [
            DistribWorker(ex.coordinator.endpoint, name=f"w{i}")
            for i in range(2)
        ]
        for w in workers:
            threading.Thread(target=w.run, daemon=True).start()
        try:
            remote = run_campaign(
                SPEC,
                cache=tmp_path / "remote",
                manifest=tmp_path / "remote.jsonl",
                scheduler=ex,
            )
        finally:
            ex.close()
        assert remote.ok
        assert ex.stats.completed == 2 and ex.stats.local_runs == 0

        serial_cache = ResultCache(tmp_path / "serial")
        remote_cache = ResultCache(tmp_path / "remote")
        assert len(serial_cache) == len(remote_cache) == 2
        for cfg in SPEC.expand():
            a = serial_cache.get(cfg)
            b = remote_cache.get(cfg)
            assert a is not None and b is not None
            # bitwise: every numerical outcome identical; only wall
            # clock and provenance may differ between the two sweeps
            assert a["diagnostics"] == b["diagnostics"]
            assert a["flops_per_step"] == b["flops_per_step"]
            assert a["virtual_elapsed_s"] == b["virtual_elapsed_s"]

    def test_manifest_provenance_flows_into_perfdb(self, tmp_path):
        barrier = threading.Barrier(2)

        def runner(config):
            barrier.wait(timeout=10)
            return _stub_result(
                config, host=f"node-{threading.get_ident() % 7}"
            )

        ex = resolve_scheduler("distrib:127.0.0.1:0")
        ex.coordinator.grace_s = 60
        ex.coordinator.ensure_started()
        for i in range(2):
            w = DistribWorker(
                ex.coordinator.endpoint, name=f"prov{i}", runner=runner
            )
            threading.Thread(target=w.run, daemon=True).start()
        try:
            report = run_campaign(
                SPEC,
                cache=tmp_path / "cache",
                manifest=tmp_path / "m.jsonl",
                scheduler=ex,
            )
        finally:
            ex.close()
        assert report.ok
        records = records_from_manifest(tmp_path / "m.jsonl")
        assert len(records) == 2
        workers_seen = {
            r.extra_dict().get("worker") for r in records
        }
        assert workers_seen == {"prov0", "prov1"}
        for r in records:
            assert r.host and r.host.startswith("node-")
            assert r.cpu_count == 2
            assert r.version == __version__


# -- the CLI ---------------------------------------------------------------


class TestCli:
    def test_worker_exits_zero_when_coordinator_goes_away(self, coord):
        from repro.distrib.cli import main

        rc = {}

        def run_cli():
            rc["code"] = main(
                ["worker", coord.endpoint, "--quiet"]
            )

        t = threading.Thread(target=run_cli, daemon=True)
        t.start()
        deadline = time.monotonic() + 10
        while not coord.workers() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert coord.workers()
        coord.stop()
        t.join(timeout=10)
        assert not t.is_alive()
        assert rc["code"] == 0

    def test_rejected_worker_exits_two(self, coord, monkeypatch, capsys):
        from repro.distrib.cli import main

        monkeypatch.setattr("repro.distrib.worker.__version__", "9.9.9")
        assert main(["worker", coord.endpoint]) == 2
        assert "version mismatch" in capsys.readouterr().err

    def test_bad_endpoint_is_a_usage_error(self):
        from repro.distrib.cli import main

        with pytest.raises(ValueError):
            main(["worker", "no-port-here"])

    def test_scheduler_spec_pastes_into_the_worker_cli(self, coord):
        # the exact --scheduler string works as the worker endpoint
        w = DistribWorker(f"distrib:{coord.endpoint}", name="paste")
        assert (w.host, w.port) == ("127.0.0.1", coord.port)
