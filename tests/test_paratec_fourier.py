"""Tests for PARATEC's G-sphere, load balancing, and parallel 3-D FFT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.paratec import (
    GSphere,
    ParallelFFT3D,
    SphereDistribution,
    load_balance_columns,
)
from repro.simmpi import Communicator

SPHERE = GSphere(ecut=8.0, grid_shape=(12, 12, 12))


class TestGSphere:
    def test_cutoff_respected(self):
        assert (SPHERE.kinetic <= 8.0 + 1e-12).all()

    def test_includes_origin_and_symmetric(self):
        vecs = {tuple(v) for v in SPHERE.vectors}
        assert (0, 0, 0) in vecs
        assert all((-a, -b, -c) in vecs for a, b, c in vecs)

    def test_count_matches_direct_enumeration(self):
        count = 0
        for a in range(-5, 6):
            for b in range(-5, 6):
                for c in range(-5, 6):
                    if 0.5 * (a * a + b * b + c * c) <= 8.0:
                        count += 1
        assert SPHERE.num_g == count

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            GSphere(ecut=8.0, grid_shape=(8, 8, 8))

    def test_columns_partition_points(self):
        cols = SPHERE.columns()
        total = sum(len(pts) for _, pts in cols)
        assert total == SPHERE.num_g
        # every column shares a single (gx, gy)
        for (gx, gy), pts in cols:
            assert (SPHERE.vectors[pts, 0] == gx).all()
            assert (SPHERE.vectors[pts, 1] == gy).all()

    def test_equatorial_columns_longest(self):
        cols = dict_by_key = {k: len(p) for k, p in SPHERE.columns()}
        assert dict_by_key[(0, 0)] == max(dict_by_key.values())


class TestLoadBalance:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 7, 16])
    def test_imbalance_bounded_by_longest_column(self, nranks):
        dist = SphereDistribution(SPHERE, nranks)
        cols = SPHERE.columns()
        longest = max(len(p) for _, p in cols)
        assert dist.max_imbalance() <= longest

    def test_all_points_assigned_once(self):
        dist = SphereDistribution(SPHERE, 5)
        seen = np.concatenate([dist.points_of(r) for r in range(5)])
        assert len(seen) == SPHERE.num_g
        assert len(np.unique(seen)) == SPHERE.num_g

    def test_scatter_gather_roundtrip(self, rng):
        dist = SphereDistribution(SPHERE, 4)
        x = rng.standard_normal(SPHERE.num_g)
        np.testing.assert_array_equal(dist.gather(dist.scatter(x)), x)

    def test_greedy_is_deterministic(self):
        a = SphereDistribution(SPHERE, 4)
        b = SphereDistribution(SPHERE, 4)
        for r in range(4):
            np.testing.assert_array_equal(a.points_of(r), b.points_of(r))

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_counts_sum_property(self, nranks):
        dist = SphereDistribution(SPHERE, nranks)
        assert dist.counts().sum() == SPHERE.num_g


class TestParallelFFT:
    def make(self, nranks):
        dist = SphereDistribution(SPHERE, nranks)
        return dist, ParallelFFT3D(dist, Communicator(nranks))

    def dense_reference(self, psi):
        dense = np.zeros(SPHERE.grid_shape, dtype=complex)
        ix, iy, iz = SPHERE.grid_indices()
        dense[ix, iy, iz] = psi
        return np.fft.ifftn(dense)

    @pytest.mark.parametrize("nranks", [1, 2, 4, 5])
    def test_matches_numpy_ifftn(self, nranks, rng):
        dist, fft = self.make(nranks)
        psi = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(
            SPHERE.num_g
        )
        slabs = fft.sphere_to_real(dist.scatter(psi))
        np.testing.assert_allclose(
            fft.gather_slabs(slabs), self.dense_reference(psi), atol=1e-13
        )

    @pytest.mark.parametrize("nranks", [1, 3, 4])
    def test_roundtrip_identity(self, nranks, rng):
        dist, fft = self.make(nranks)
        psi = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(
            SPHERE.num_g
        )
        back = dist.gather(fft.real_to_sphere(fft.sphere_to_real(dist.scatter(psi))))
        np.testing.assert_allclose(back, psi, atol=1e-12)

    def test_cutoff_projection(self, rng):
        # real-space noise loses its super-cutoff content on the way back
        dist, fft = self.make(2)
        slabs = [
            rng.standard_normal(fft.slab_shape(r))
            + 1j * rng.standard_normal(fft.slab_shape(r))
            for r in range(2)
        ]
        coeffs = fft.real_to_sphere(slabs)
        # round trip from the sphere is now exact (projection idempotent)
        slabs2 = fft.sphere_to_real(coeffs)
        coeffs2 = fft.real_to_sphere(slabs2)
        for a, b in zip(coeffs, coeffs2):
            np.testing.assert_allclose(a, b, atol=1e-12)

    def test_parseval_within_projection(self, rng):
        dist, fft = self.make(3)
        psi = rng.standard_normal(SPHERE.num_g) * 1j
        slabs = fft.sphere_to_real(dist.scatter(psi))
        n = np.prod(SPHERE.grid_shape)
        real_norm = sum(float((np.abs(s) ** 2).sum()) for s in slabs)
        # ifftn normalization: |psi|^2 = N * |psi(r)|^2
        assert real_norm * n == pytest.approx(float((np.abs(psi) ** 2).sum()))

    def test_communicator_size_mismatch(self):
        dist = SphereDistribution(SPHERE, 2)
        with pytest.raises(ValueError):
            ParallelFFT3D(dist, Communicator(3))

    def test_transposes_traced(self):
        dist = SphereDistribution(SPHERE, 4)
        comm = Communicator(4, trace=True)
        fft = ParallelFFT3D(dist, comm)
        psi = np.ones(SPHERE.num_g, dtype=complex)
        fft.sphere_to_real(dist.scatter(psi))
        assert comm.trace.bytes_by_kind["alltoall"] > 0
