"""Transport edge cases reachable through the public Communicator API.

Pins down behavior the apps rely on implicitly: a rank may message
itself, same-tag messages between one pair never overtake each other
(FIFO posting order), and zero-byte traffic is legitimate through both
the data-moving and the accounting-only exchange paths — including on
a communicator driven by the threaded executor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines.catalog import get_machine
from repro.simmpi import Communicator
from repro.simmpi.comm import Message
from repro.workload import Work

POWER3 = get_machine("Power3")


class TestSelfSend:
    def test_exchange_delivers_self_message(self):
        comm = Communicator(4)
        payload = np.arange(5.0)
        out = comm.exchange([Message(src=2, dst=2, payload=payload)])
        assert list(out) == [2]
        assert np.array_equal(out[2][0], payload)

    def test_self_message_is_copied_by_default(self):
        comm = Communicator(2)
        payload = np.ones(3)
        out = comm.exchange([Message(src=0, dst=0, payload=payload)])
        payload[:] = -1.0
        assert np.array_equal(out[0][0], np.ones(3))

    def test_sendrecv_self(self):
        comm = Communicator(3)
        got = comm.sendrecv(1, 1, np.full(4, 7.0))
        assert np.array_equal(got, np.full(4, 7.0))

    def test_self_send_is_free_on_the_wire(self):
        """A self-send never touches the network model (cost 0)."""
        comm = Communicator(2, machine=POWER3)
        before = comm.times.copy()
        comm.exchange([Message(src=0, dst=0, payload=np.ones(64))])
        assert comm.times[0] == before[0]
        # a real neighbor message does pay
        comm.exchange([Message(src=0, dst=1, payload=np.ones(64))])
        assert comm.times[1] > before[1]


class TestDuplicateTags:
    def test_same_tag_messages_arrive_in_posting_order(self):
        """Non-overtaking: same (src, dst, tag) preserves FIFO order."""
        comm = Communicator(2)
        first = comm.isend(0, 1, np.array([1.0]), tag=9)
        second = comm.isend(0, 1, np.array([2.0]), tag=9)
        comm.waitall()
        assert first.data is not None and second.data is not None
        assert first.data[0] == 1.0
        assert second.data[0] == 2.0

    def test_mixed_tags_still_fifo_per_pair(self):
        comm = Communicator(2)
        reqs = [
            comm.isend(0, 1, np.array([float(i)]), tag=i % 2)
            for i in range(6)
        ]
        received = comm.waitall()
        # delivery order at the receiver is posting order, tags or not
        assert [p[0] for p in received[1]] == [float(i) for i in range(6)]
        assert [r.data[0] for r in reqs] == [float(i) for i in range(6)]

    def test_waitall_drains_pending(self):
        comm = Communicator(2)
        comm.isend(0, 1, np.zeros(1), tag=3)
        comm.isend(0, 1, np.zeros(1), tag=3)
        assert comm.pending_requests == 2
        comm.waitall()
        assert comm.pending_requests == 0
        assert comm.waitall() == {}


class TestZeroByteMessages:
    def test_exchange_zero_byte_payload(self):
        comm = Communicator(2, trace=True)
        out = comm.exchange([Message(src=0, dst=1, payload=np.empty(0))])
        assert out[1][0].size == 0
        assert comm.trace.matrix()[0, 1] == 0
        # counted as a call even though it carries no bytes
        assert comm.trace.calls["ptp"] == 1

    @pytest.mark.parametrize("executor", ["serial", "threads:4"])
    def test_exchange_phase_zero_bytes_threaded(self, executor):
        """The accounting-only bulk path accepts zero-size messages on
        a threaded communicator and books identical ledgers."""
        comm = Communicator(
            4, machine=POWER3, trace=True, executor=executor
        )
        ledger = comm.attach_phase_ledger()
        with comm.phase("halo"):
            comm.exchange_phase([0, 1, 2], [1, 2, 3], 0)
            # threaded compute segments around it stay legal
            comm.map_ranks(
                lambda r: comm.compute(r, Work(name="noop", flops=1.0e3))
            )
        bucket = ledger.bucket("halo")
        assert bucket.messages.sum() == 3
        assert bucket.nbytes.sum() == 0
        # zero bytes still pay wire latency on a modeled machine
        assert bucket.comm_s.sum() > 0.0

    def test_exchange_phase_threaded_matches_serial(self):
        def run(executor):
            comm = Communicator(4, machine=POWER3, executor=executor)
            ledger = comm.attach_phase_ledger()
            with comm.phase("halo"):
                comm.exchange_phase([0, 1, 2, 3], [1, 2, 3, 0], [0, 8, 0, 16])
            return comm.times.copy(), ledger.bucket("halo")

        t_serial, b_serial = run("serial")
        t_threads, b_threads = run("threads:4")
        assert np.array_equal(t_serial, t_threads)
        for attr in ("compute_s", "comm_s", "wait_s", "nbytes", "messages"):
            assert np.array_equal(
                getattr(b_serial, attr), getattr(b_threads, attr)
            ), attr

    def test_exchange_phase_rejects_bad_sizes(self):
        comm = Communicator(2)
        with pytest.raises(ValueError):
            comm.exchange_phase([0], [1], [4, 4])
        with pytest.raises(ValueError):
            comm.exchange_phase([0], [1], -1)
        with pytest.raises(IndexError):
            comm.exchange_phase([0], [5], 4)

    def test_exchange_inside_map_ranks_raises(self):
        comm = Communicator(2, executor="threads:2")

        def bad(rank):
            comm.exchange_phase([0], [1], 0)

        with pytest.raises(RuntimeError):
            comm.map_ranks(bad)
