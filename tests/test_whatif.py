"""Pinned oracles for the three paper counterfactuals.

These numbers come from the architectural models alone (no solver
runs, no RNG), so they are exact functions of the machine catalog and
the perfmodel — any drift means a model or catalog change, which must
be deliberate.
"""

from __future__ import annotations

import pytest

from repro.experiments import whatif


def test_whatif_cases_registry_matches_run():
    assert set(whatif.WHATIF_CASES) == {
        "sx8_fplram", "x1_registers", "sensitivity",
    }
    data = whatif.run()
    assert set(data) == {"sx8_fplram", "x1_registers", "es_sensitivity"}
    # run() is the registry's cases, evaluated
    assert data["sx8_fplram"] == whatif.WHATIF_CASES["sx8_fplram"]()
    assert data["es_sensitivity"] == whatif.WHATIF_CASES["sensitivity"]()


class TestSX8WithFPLRAM:
    def test_pinned_rates(self):
        out = whatif.sx8_with_fplram()
        assert out["stock"] == pytest.approx(2.2511065618094315, rel=1e-9)
        assert out["fplram"] == pytest.approx(2.806341577655231, rel=1e-9)
        assert out["speedup"] == pytest.approx(1.2466498144803522, rel=1e-9)

    def test_fplram_helps_gtc(self):
        # the paper's claim: faster memory "would certainly increase
        # GTC performance" — and by a material margin
        out = whatif.sx8_with_fplram()
        assert out["speedup"] > 1.1


class TestX1WithESRegisters:
    def test_pinned_rates(self):
        out = whatif.x1_with_es_registers()
        assert out["stock"] == pytest.approx(9.239118013340978, rel=1e-9)
        assert out["more_registers"] == pytest.approx(
            9.358305384029471, rel=1e-9
        )
        assert out["speedup"] == pytest.approx(1.0129002974652332, rel=1e-9)

    def test_effect_is_small(self):
        # matches the paper's own surprise: no real spill penalty
        out = whatif.x1_with_es_registers()
        assert 1.0 < out["speedup"] < 1.05


class TestSensitivityProfiles:
    # elasticity of the modeled ES rate per machine parameter; 1.0
    # means the parameter binds, 0.0 means it is slack
    EXPECTED = {
        "lbmhd": {
            "peak_gflops": 0.8758460385359161,
            "stream_bw_gbs": 0.0,
            "vector.gather_bw_fraction": 0.0,
            "vector.scalar_ratio": 0.035772987564780326,
            "blas3_efficiency": 0.0,
        },
        "gtc": {
            "peak_gflops": 0.0338221067826016,
            "stream_bw_gbs": 0.9621987542734693,
            "vector.gather_bw_fraction": 0.9554528314436718,
            "vector.scalar_ratio": 0.0338221067826016,
            "blas3_efficiency": 0.0,
        },
        "paratec": {
            "peak_gflops": 0.9375745983913979,
            "stream_bw_gbs": 0.0,
            "vector.gather_bw_fraction": 0.0,
            "vector.scalar_ratio": 0.07419334356886707,
            "blas3_efficiency": 0.5144307449760317,
        },
        "fvcam": {
            "peak_gflops": 0.8288293415100333,
            "stream_bw_gbs": 0.0,
            "vector.gather_bw_fraction": 0.0,
            "vector.scalar_ratio": 0.12206224598217247,
            "blas3_efficiency": 0.0,
        },
    }

    def test_pinned_profiles(self):
        profiles = whatif.sensitivity_profiles()
        assert set(profiles) == set(self.EXPECTED)
        for app, expected in self.EXPECTED.items():
            assert profiles[app] == pytest.approx(expected, rel=1e-9), app

    def test_binding_parameters_match_the_paper_reading(self):
        profiles = whatif.sensitivity_profiles()
        top = {
            app: max(prof, key=prof.get) for app, prof in profiles.items()
        }
        # LBMHD rides the vector pipes, GTC the gather rate (via
        # stream bw), PARATEC peak + BLAS3, FVCAM mostly peak
        assert top["lbmhd"] == "peak_gflops"
        assert top["gtc"] == "stream_bw_gbs"
        assert top["paratec"] == "peak_gflops"
        assert top["fvcam"] == "peak_gflops"

    def test_render_mentions_every_counterfactual(self):
        text = whatif.render()
        assert "SX-8 + FPLRAM" in text
        assert "72 vector registers" in text
        for param in whatif.SENSITIVITY_PARAMS:
            assert param in text
