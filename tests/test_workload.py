"""Unit and property tests for the Work descriptor algebra."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload import Work, WorkloadMeter, combine


def make_work(**kw) -> Work:
    base = dict(name="k", flops=100.0, bytes_unit=50.0, bytes_gather=10.0)
    base.update(kw)
    return Work(**base)


class TestWorkValidation:
    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            make_work(flops=-1.0)

    def test_negative_traffic_rejected(self):
        with pytest.raises(ValueError):
            make_work(bytes_unit=-1.0)
        with pytest.raises(ValueError):
            make_work(bytes_gather=-1.0)
        with pytest.raises(ValueError):
            make_work(scalar_bytes_unit=-1.0)

    @pytest.mark.parametrize(
        "field", ["vector_fraction", "blas3_fraction", "fma_fraction", "cache_fraction"]
    )
    def test_fraction_bounds(self, field):
        with pytest.raises(ValueError):
            make_work(**{field: 1.5})
        with pytest.raises(ValueError):
            make_work(**{field: -0.1})

    def test_vector_length_minimum(self):
        with pytest.raises(ValueError):
            make_work(avg_vector_length=0.5)


class TestWorkProperties:
    def test_intensity(self):
        w = make_work(flops=120.0, bytes_unit=30.0, bytes_gather=10.0)
        assert w.intensity == pytest.approx(3.0)

    def test_intensity_infinite_without_traffic(self):
        w = Work(name="pure", flops=10.0)
        assert math.isinf(w.intensity)

    def test_unit_bytes_on_families(self):
        w = make_work(bytes_unit=100.0, scalar_bytes_unit=400.0)
        assert w.unit_bytes_on(superscalar=False) == 100.0
        assert w.unit_bytes_on(superscalar=True) == 400.0

    def test_unit_bytes_defaults_to_vector_traffic(self):
        w = make_work(scalar_bytes_unit=None)
        assert w.unit_bytes_on(superscalar=True) == w.bytes_unit


class TestScaling:
    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_scaled_extensive_quantities(self, factor):
        w = make_work(scalar_bytes_unit=200.0)
        s = w.scaled(factor)
        assert s.flops == pytest.approx(w.flops * factor)
        assert s.bytes_unit == pytest.approx(w.bytes_unit * factor)
        assert s.scalar_bytes_unit == pytest.approx(200.0 * factor)

    def test_scaled_preserves_intensive(self):
        w = make_work(vector_fraction=0.7, avg_vector_length=40.0)
        s = w.scaled(3.0)
        assert s.vector_fraction == w.vector_fraction
        assert s.avg_vector_length == w.avg_vector_length

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            make_work().scaled(-1.0)


class TestCombining:
    def test_flops_add(self):
        a, b = make_work(flops=10.0), make_work(flops=30.0)
        assert a.combined(b).flops == 40.0

    def test_fraction_is_flop_weighted(self):
        a = make_work(flops=10.0, vector_fraction=1.0)
        b = make_work(flops=30.0, vector_fraction=0.0)
        assert a.combined(b).vector_fraction == pytest.approx(0.25)

    def test_vector_length_harmonic_mean(self):
        a = make_work(flops=10.0, avg_vector_length=10.0)
        b = make_work(flops=10.0, avg_vector_length=30.0)
        # harmonic: 1 / (0.5/10 + 0.5/30) = 15
        assert a.combined(b).avg_vector_length == pytest.approx(15.0)

    def test_combine_empty_list(self):
        w = combine([], name="empty")
        assert w.flops == 0.0 and w.name == "empty"

    @given(
        st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=8
        )
    )
    def test_combine_preserves_total_flops(self, flops_list):
        works = [make_work(flops=f) for f in flops_list]
        assert combine(works).flops == pytest.approx(sum(flops_list))

    def test_scalar_bytes_mixed_none(self):
        a = make_work(bytes_unit=100.0, scalar_bytes_unit=300.0)
        b = make_work(bytes_unit=50.0, scalar_bytes_unit=None)
        c = a.combined(b)
        # b falls back to its bytes_unit on scalar machines.
        assert c.scalar_bytes_unit == pytest.approx(350.0)


class TestWorkloadMeter:
    def test_record_and_total(self):
        meter = WorkloadMeter()
        meter.record(make_work(flops=5.0))
        meter.record(make_work(flops=7.0))
        assert meter.total_flops() == pytest.approx(12.0)
        assert meter.total().flops == pytest.approx(12.0)

    def test_by_kernel_grouping(self):
        meter = WorkloadMeter()
        meter.record(make_work(name="a", flops=1.0))
        meter.record(make_work(name="b", flops=2.0))
        meter.record(make_work(name="a", flops=3.0))
        groups = meter.by_kernel()
        assert groups["a"].flops == pytest.approx(4.0)
        assert groups["b"].flops == pytest.approx(2.0)

    def test_reset(self):
        meter = WorkloadMeter()
        meter.record(make_work())
        meter.reset()
        assert meter.total_flops() == 0.0
