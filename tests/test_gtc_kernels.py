"""Tests for GTC's deposition, Poisson solve, push, and shift kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.gtc import (
    ParticleArray,
    PoloidalGrid,
    TorusGrid,
    deposit_scalar,
    deposit_work,
    deposit_work_vector,
    electric_field,
    gather_field,
    laplacian,
    load_particles,
    push_particles,
    push_work,
    solve_poisson,
    work_vector_memory_overhead,
)
from repro.apps.gtc.push import PushParams
from repro.apps.gtc.shift import classify, shift_particles
from repro.apps.gtc.decomp import GTCDecomposition, choose_decomposition
from repro.simmpi import Communicator

GRID = PoloidalGrid(mpsi=16, mtheta=24)
TORUS = TorusGrid(plane=GRID, ntoroidal=4)


def particles(n=2000, seed=0, domain=0) -> ParticleArray:
    return load_particles(TORUS, n, domain, np.random.default_rng(seed))


class TestDeposition:
    def test_conserves_total_charge(self):
        p = particles()
        rho = deposit_scalar(GRID, p)
        assert rho.sum() == pytest.approx(p.total_charge, rel=1e-12)

    def test_gyro_averaged_conserves_charge(self):
        p = particles()
        rho = deposit_scalar(GRID, p, gyro_radius=0.05)
        assert rho.sum() == pytest.approx(p.total_charge, rel=1e-12)

    @pytest.mark.parametrize("copies", [1, 3, 8, 64])
    def test_work_vector_matches_scalar(self, copies):
        p = particles()
        a = deposit_scalar(GRID, p, gyro_radius=0.04)
        b = deposit_work_vector(GRID, p, num_copies=copies, gyro_radius=0.04)
        np.testing.assert_allclose(a, b, atol=1e-11)

    def test_work_vector_bad_copies(self):
        with pytest.raises(ValueError):
            deposit_work_vector(GRID, particles(10), num_copies=0)

    def test_empty_particles(self):
        p = particles(0)
        rho = deposit_scalar(GRID, p)
        assert rho.sum() == 0.0

    def test_single_particle_at_node(self):
        # a particle exactly on a node deposits all weight there
        p = ParticleArray(
            r=np.array([GRID.r0 + 3 * GRID.dr]),
            theta=np.array([5 * GRID.dtheta]),
            zeta=np.array([0.1]),
            vpar=np.array([0.0]),
            weight=np.array([2.5]),
        )
        rho = deposit_scalar(GRID, p)
        assert rho[3, 5] == pytest.approx(2.5)

    def test_memory_overhead_formula(self):
        assert work_vector_memory_overhead(GRID, 256) == 256 * GRID.num_points * 8

    def test_work_descriptor_scaling(self):
        w1 = deposit_work(100, vectorized=True)
        w2 = deposit_work(200, vectorized=True)
        assert w2.flops == pytest.approx(2 * w1.flops)
        assert deposit_work(100, vectorized=False).vector_fraction == 0.0


class TestPoisson:
    def test_solver_inverts_discrete_laplacian(self, rng):
        phi_true = rng.standard_normal(GRID.shape)
        rho = -laplacian(GRID, phi_true)
        phi = solve_poisson(GRID, rho)
        np.testing.assert_allclose(phi, phi_true, atol=1e-11)

    def test_laplacian_of_harmonic_mode(self):
        # a pure theta-harmonic stays a pure harmonic under the operator
        theta = GRID.thetas
        phi = np.outer(np.sin(np.pi * np.arange(GRID.mpsi) / (GRID.mpsi - 1)),
                       np.cos(3 * theta))
        lap = laplacian(GRID, phi)
        spec = np.abs(np.fft.rfft(lap, axis=1))
        # all energy in harmonic m=3
        m_energy = spec.sum(axis=0)
        assert m_energy[3] > 100 * (m_energy.sum() - m_energy[3] + 1e-30)

    def test_electric_field_of_linear_potential_is_uniformish(self):
        r = GRID.radii
        phi = np.repeat(r[:, None], GRID.mtheta, axis=1)
        e_r, e_theta = electric_field(GRID, phi)
        np.testing.assert_allclose(
            e_r[1:-1], -1.0, atol=1e-9
        )
        np.testing.assert_allclose(e_theta, 0.0, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            solve_poisson(GRID, np.zeros((3, 3)))
        with pytest.raises(ValueError):
            laplacian(GRID, np.zeros((3, 3)))


class TestGatherPush:
    def test_gather_constant_field(self):
        p = particles(500)
        e_r = np.full(GRID.shape, 1.5)
        e_t = np.full(GRID.shape, -0.5)
        er_p, et_p = gather_field(GRID, e_r, e_t, p)
        np.testing.assert_allclose(er_p, 1.5, atol=1e-12)
        np.testing.assert_allclose(et_p, -0.5, atol=1e-12)

    def test_gather_deposit_adjointness(self):
        """<deposit(p), phi> == <w, gather(phi)(p)> — the CIC pair."""
        p = particles(300)
        rng = np.random.default_rng(5)
        phi = rng.standard_normal(GRID.shape)
        rho = deposit_scalar(GRID, p)
        lhs = float((rho * phi).sum())
        phi_at_p, _ = gather_field(GRID, phi, phi, p)
        rhs = float((p.weight * phi_at_p).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_push_zero_field_is_free_streaming(self):
        # No E field: radius fixed, theta advances only by the parallel
        # transit term, zeta by v_par / R0.
        p = particles(100)
        zeros = np.zeros(len(p))
        params = PushParams(dt=0.1)
        out = push_particles(TORUS, p, zeros, zeros, params)
        np.testing.assert_allclose(out.r, p.r)
        expected_theta = np.mod(
            p.theta
            + 0.1 * p.vpar / (params.safety_q * TORUS.major_radius * p.r),
            2 * np.pi,
        )
        np.testing.assert_allclose(out.theta, expected_theta)
        expected_zeta = p.zeta + 0.1 * p.vpar / TORUS.major_radius
        np.testing.assert_allclose(out.zeta, expected_zeta)

    def test_push_reflects_at_walls(self):
        p = particles(500)
        big_e_theta = np.full(len(p), 50.0)  # strong inward/outward drift
        out = push_particles(TORUS, p, np.zeros(len(p)), big_e_theta,
                             PushParams(dt=0.5))
        assert (out.r >= GRID.r0).all() and (out.r <= GRID.r1).all()

    def test_push_work_descriptor(self):
        assert push_work(10, True).vector_fraction > 0.9
        assert push_work(10, False).avg_vector_length == 1.0


class TestShift:
    def test_classify_single_hop(self):
        p = particles(200, domain=1)
        # nudge some into the neighbors
        p.zeta[:20] -= TORUS.dzeta  # into domain 0
        p.zeta[20:40] += TORUS.dzeta  # into domain 2
        stay, left, right = classify(TORUS, 1, p)
        assert stay.sum() == 160 and left.sum() == 20 and right.sum() == 20

    def test_classify_rejects_multi_hop(self):
        p = particles(10, domain=0)
        p.zeta[0] += 2.5 * TORUS.dzeta
        with pytest.raises(ValueError):
            classify(TORUS, 0, p)

    def test_shift_conserves_particles_and_charge(self):
        comm = Communicator(4)
        decomp = GTCDecomposition(ntoroidal=4, npe_per_domain=1)
        pops = [particles(100, seed=d, domain=d) for d in range(4)]
        for d, p in enumerate(pops):
            p.zeta[:10] += TORUS.dzeta * 0.99  # push some over the edge
        total_before = sum(len(p) for p in pops)
        charge_before = sum(p.total_charge for p in pops)
        out = shift_particles(
            comm,
            TORUS,
            [decomp.domain_of(r) for r in range(4)],
            [decomp.shift_neighbors(r) for r in range(4)],
            pops,
        )
        assert sum(len(p) for p in out) == total_before
        assert sum(p.total_charge for p in out) == pytest.approx(charge_before)
        # every particle now lives in its rank's domain
        for rank, p in enumerate(out):
            if len(p):
                assert (TORUS.domain_of(p.zeta) == decomp.domain_of(rank)).all()


class TestDecomposition:
    def test_rank_mapping_roundtrip(self):
        d = GTCDecomposition(ntoroidal=4, npe_per_domain=3)
        for r in range(d.nprocs):
            assert d.rank_of(d.domain_of(r), d.split_of(r)) == r

    def test_shift_neighbors_preserve_split(self):
        d = GTCDecomposition(ntoroidal=4, npe_per_domain=3)
        left, right = d.shift_neighbors(5)  # domain 1, split 2
        assert d.split_of(left) == d.split_of(5)
        assert d.domain_of(left) == 0 and d.domain_of(right) == 2

    def test_choose_decomposition(self):
        d = choose_decomposition(2048)
        assert d.ntoroidal == 64 and d.npe_per_domain == 32
        d = choose_decomposition(64)
        assert d.ntoroidal == 64 and d.npe_per_domain == 1
        d = choose_decomposition(48)
        assert d.nprocs == 48

    @given(st.integers(min_value=1, max_value=4096))
    @settings(max_examples=50, deadline=None)
    def test_choose_always_consistent(self, p):
        d = choose_decomposition(p)
        assert d.nprocs == p
        assert d.ntoroidal <= 64
