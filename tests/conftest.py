"""Shared fixtures for the reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import list_machines
from repro.simmpi import Communicator


@pytest.fixture(params=[m.name for m in list_machines()])
def machine_name(request) -> str:
    """Every platform of Table 1, one at a time."""
    return request.param


@pytest.fixture
def ideal_comm4() -> Communicator:
    """A 4-rank communicator with no cost models (pure numerics)."""
    return Communicator(4)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20050512)
