"""Coverage for smaller public APIs not exercised elsewhere."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import MemoryModel, get_machine
from repro.perfmodel import ResultTable
from repro.perfmodel.report import PerfResult
from repro.simmpi import CommTrace, Communicator
from repro.workload import Work, combine


class TestMemoryModelExtras:
    def test_effective_bandwidth_between_gather_and_stream(self):
        mm = MemoryModel(get_machine("ES"))
        w = Work(name="mix", flops=0.0, bytes_unit=5e8, bytes_gather=5e8)
        eff = mm.effective_bandwidth(w)
        assert mm.gather_bw < eff < mm.stream_bw

    def test_effective_bandwidth_no_traffic(self):
        mm = MemoryModel(get_machine("ES"))
        assert mm.effective_bandwidth(Work(name="p", flops=1.0)) == float(
            "inf"
        )

    def test_cacheless_vector_machines(self):
        assert not MemoryModel(get_machine("ES")).has_cache()
        assert MemoryModel(get_machine("Power3")).has_cache()
        assert MemoryModel(get_machine("X1")).has_cache()  # Ecache


class TestTraceExtras:
    def test_max_pair_and_nonzero(self):
        t = CommTrace(4)
        t.record(0, 1, 10.0)
        t.record(0, 1, 5.0)
        t.record(2, 3, 7.0)
        assert t.max_pair_volume() == 15.0
        assert t.nonzero_pairs() == 2

    def test_render_downsamples_large_p(self):
        t = CommTrace(64)
        for i in range(64):
            t.record(i, (i + 1) % 64, 100.0)
        art = t.render(width=16)
        assert len(art.splitlines()) == 16


class TestResultTableExtras:
    def test_row_keys_ordered_and_unique(self):
        table = ResultTable(title="t", machines=["ES"])
        for cfg, p in (("a", 1), ("a", 1), ("b", 2)):
            table.add(
                PerfResult(
                    app="x", machine="ES", nprocs=p,
                    gflops_per_proc=1.0, config=cfg,
                )
            )
        assert table.row_keys() == [("a", 1), ("b", 2)]

    def test_missing_cell_renders_dash(self):
        table = ResultTable(title="t", machines=["ES", "SX-8"])
        table.add(
            PerfResult(
                app="x", machine="ES", nprocs=1,
                gflops_per_proc=1.0, config="c",
            )
        )
        assert "--" in table.render()

    def test_best_machine_none_when_empty(self):
        table = ResultTable(title="t", machines=["ES"])
        assert table.best_machine("c", 1) is None


class TestWorkCombineExtras:
    def test_combine_custom_name(self):
        w = combine(
            [Work(name="a", flops=1.0), Work(name="b", flops=1.0)],
            name="fused",
        )
        assert w.name == "fused"

    def test_combined_zero_flops(self):
        a = Work(name="a", flops=0.0)
        b = Work(name="b", flops=0.0)
        assert a.combined(b).flops == 0.0


class TestCommunicatorRepr:
    def test_times_vector(self):
        comm = Communicator(3, machine=get_machine("ES"))
        comm.compute(1, Work(name="k", flops=1e9))
        times = comm.times
        assert times.shape == (3,)
        assert times[1] > times[0] == times[2] == 0.0

    def test_reset_clock(self):
        comm = Communicator(2, machine=get_machine("ES"))
        comm.compute(0, Work(name="k", flops=1e9))
        comm.reset_clock()
        assert comm.elapsed == 0.0

    def test_compute_all(self):
        comm = Communicator(2, machine=get_machine("ES"))
        dt = comm.compute_all(
            [Work(name="k", flops=1e9), Work(name="k", flops=2e9)]
        )
        assert dt > 0
        assert comm.time(1) > comm.time(0)
