"""Per-rank arenas under concurrency: checkout must never alias.

Rank-independent scratch keys ("lbmhd.collide.rho", "paratec.line",
...) were safe when ranks stepped in lockstep; with a thread pool two
ranks can hold the "same" buffer simultaneously.  ``Arena.for_rank``
gives each rank a disjoint child pool, and the pool bookkeeping itself
is lock-guarded so concurrent checkout cannot corrupt it.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.runtime import Arena


class TestForRank:
    def test_children_are_cached(self):
        arena = Arena()
        assert arena.for_rank(3) is arena.for_rank(3)
        assert arena.for_rank(0) is not arena.for_rank(1)

    def test_same_key_disjoint_buffers(self):
        arena = Arena()
        a = arena.for_rank(0).scratch("k", (16,))
        b = arena.for_rank(1).scratch("k", (16,))
        assert a is not b
        assert not np.shares_memory(a, b)

    def test_child_distinct_from_parent_key(self):
        arena = Arena()
        parent = arena.scratch("k", (16,))
        child = arena.for_rank(0).scratch("k", (16,))
        assert not np.shares_memory(parent, child)

    def test_aggregate_stats_include_children(self):
        arena = Arena()
        arena.for_rank(0).scratch("k", (4,), np.float64)
        arena.for_rank(1).scratch("k", (4,), np.float64)
        assert arena.num_buffers >= 2
        assert arena.nbytes >= 2 * 4 * 8

    def test_clear_releases_children(self):
        arena = Arena()
        child = arena.for_rank(0)
        child.scratch("k", (4,))
        arena.clear()
        assert arena.num_buffers == 0
        # a fresh child is handed out after clear
        assert arena.for_rank(0) is not child


class TestConcurrentCheckout:
    def test_two_threads_same_key_never_alias(self):
        """The regression the ISSUE names: concurrent checkout of the
        same scratch key from two threads must hand out disjoint
        buffers whose contents survive the other thread's writes."""
        arena = Arena()
        nthreads = 2
        iterations = 200
        start = threading.Barrier(nthreads, timeout=10.0)
        failures: list[str] = []

        def worker(rank: int) -> None:
            child = arena.for_rank(rank)
            start.wait()
            for i in range(iterations):
                buf = child.scratch("shared.key", (256,), np.float64)
                buf.fill(rank * 1000 + i)
                # yield so the other thread's checkout interleaves
                if i % 8 == 0:
                    threading.Event().wait(0)
                if not (buf == rank * 1000 + i).all():
                    failures.append(
                        f"rank {rank} iteration {i}: buffer clobbered"
                    )
                    return

        threads = [
            threading.Thread(target=worker, args=(r,))
            for r in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert not failures, failures
        assert not np.shares_memory(
            arena.for_rank(0).scratch("shared.key", (256,)),
            arena.for_rank(1).scratch("shared.key", (256,)),
        )

    def test_concurrent_for_rank_returns_single_child(self):
        """Racing for_rank(r) calls must agree on one child arena."""
        arena = Arena()
        nthreads = 8
        start = threading.Barrier(nthreads, timeout=10.0)
        children: list[Arena] = [None] * nthreads

        def worker(i: int) -> None:
            start.wait()
            children[i] = arena.for_rank(7)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(c is children[0] for c in children)

    def test_concurrent_distinct_keys_pool_consistent(self):
        """Hammering one arena with distinct keys from many threads
        leaves the pool bookkeeping intact (no lost or doubled
        buffers)."""
        arena = Arena()
        nthreads = 8
        keys_per_thread = 50
        start = threading.Barrier(nthreads, timeout=10.0)

        def worker(t: int) -> None:
            start.wait()
            for k in range(keys_per_thread):
                buf = arena.scratch(f"key.{t}.{k}", (8,), np.float64)
                buf.fill(t * 100 + k)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)

        assert arena.num_buffers == nthreads * keys_per_thread
        for t in range(nthreads):
            for k in range(keys_per_thread):
                buf = arena.scratch(f"key.{t}.{k}", (8,), np.float64)
                assert (buf == t * 100 + k).all()

    def test_concurrent_same_key_same_arena_single_buffer(self):
        """Without for_rank isolation, racing checkouts of one key on
        one arena still resolve to exactly one pooled buffer."""
        arena = Arena()
        nthreads = 8
        start = threading.Barrier(nthreads, timeout=10.0)
        got: list[np.ndarray] = [None] * nthreads

        def worker(i: int) -> None:
            start.wait()
            got[i] = arena.scratch("one.key", (32,), np.float64)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(nthreads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert all(g is got[0] for g in got)
        assert arena.num_buffers == 1
