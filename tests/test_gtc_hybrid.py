"""Tests for the GTC hybrid-mode (MPI/OpenMP) feasibility analysis."""

from __future__ import annotations

import pytest

from repro.apps.gtc import (
    PoloidalGrid,
    analyze_hybrid,
    hybrid_rate_factor,
    max_plane_points,
    memory_footprint_ratio,
)
from repro.apps.gtc.hybrid import grid_copies_per_cpu, supports_plane
from repro.machines import get_machine


class TestMemoryArgument:
    def test_vector_machines_need_256_copies(self):
        for m in ("X1", "ES", "SX-8"):
            assert grid_copies_per_cpu(get_machine(m)) == 256

    def test_superscalar_one_copy(self):
        for m in ("Power3", "Itanium2", "Opteron"):
            assert grid_copies_per_cpu(get_machine(m)) == 1

    def test_footprint_ratio_is_the_papers_256x(self):
        ratio = memory_footprint_ratio(
            get_machine("ES"), get_machine("Opteron")
        )
        assert ratio == 256.0

    def test_vector_plane_limit_orders_of_magnitude_smaller(self):
        es_limit = max_plane_points(get_machine("ES"))
        p3_limit = max_plane_points(get_machine("Power3"))
        assert p3_limit > 50 * es_limit

    def test_paper_grid_fits_everywhere(self):
        # the Table 4 benchmark plane (~32K points) fits on every machine
        from repro.apps.gtc.workload import PAPER_PLANE

        for m in ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8"):
            assert supports_plane(get_machine(m), PAPER_PLANE)

    def test_high_resolution_plane_excluded_on_es(self):
        # a 1M-point plane: fine for cache machines, over the ES budget
        big = PoloidalGrid(mpsi=1024, mtheta=1024)
        assert not supports_plane(get_machine("ES"), big)
        assert supports_plane(get_machine("Opteron"), big)


class TestVectorLengthCompetition:
    def test_superscalar_unaffected(self):
        assert hybrid_rate_factor(get_machine("Opteron"), 8) == 1.0

    def test_vector_rate_degrades_with_threads(self):
        es = get_machine("ES")
        factors = [hybrid_rate_factor(es, t) for t in (1, 2, 4, 8)]
        assert factors[0] == 1.0
        assert factors == sorted(factors, reverse=True)
        assert factors[-1] < 0.75

    def test_threads_validation(self):
        with pytest.raises(ValueError):
            hybrid_rate_factor(get_machine("ES"), 0)


class TestVerdict:
    def test_matches_paper_empirics(self):
        # hybrid attractive exactly on the machines where the paper's
        # previous study actually used it
        for m in ("Power3", "Itanium2", "Opteron"):
            assert analyze_hybrid(get_machine(m)).hybrid_attractive
        for m in ("X1", "ES", "SX-8"):
            assert not analyze_hybrid(get_machine(m)).hybrid_attractive
