"""Tests for the sensitivity/what-if layer."""

from __future__ import annotations

import pytest

from repro.apps.gtc import GTCScenario
from repro.apps.lbmhd import LBMHDScenario
from repro.apps.paratec import ParatecScenario
from repro.machines import get_machine
from repro.perfmodel import (
    app_rate_function,
    elasticity,
    perturb,
    sensitivity_profile,
)


class TestPerturb:
    def test_top_level_field(self):
        es = get_machine("ES")
        up = perturb(es, "stream_bw_gbs", 1.5)
        assert up.stream_bw_gbs == pytest.approx(26.3 * 1.5)
        assert es.stream_bw_gbs == 26.3  # original untouched

    def test_nested_field(self):
        es = get_machine("ES")
        up = perturb(es, "vector.scalar_ratio", 2.0)
        assert up.vector.scalar_ratio == pytest.approx(0.25)

    def test_integer_fields_stay_integer(self):
        x1 = get_machine("X1")
        up = perturb(x1, "vector.register_length", 0.25)
        assert up.vector.register_length == 64
        assert isinstance(up.vector.register_length, int)

    def test_missing_group_rejected(self):
        with pytest.raises(ValueError):
            perturb(get_machine("Power3"), "vector.scalar_ratio", 2.0)

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError):
            perturb(get_machine("ES"), "peak_gflops", 0.0)


class TestElasticity:
    def test_linear_function_has_unit_elasticity(self):
        es = get_machine("ES")
        assert elasticity(
            lambda s: s.peak_gflops, es, "peak_gflops"
        ) == pytest.approx(1.0, abs=1e-9)

    def test_constant_function_has_zero(self):
        es = get_machine("ES")
        assert elasticity(lambda s: 42.0, es, "stream_bw_gbs") == 0.0

    def test_delta_validation(self):
        es = get_machine("ES")
        with pytest.raises(ValueError):
            elasticity(lambda s: 1.0, es, "peak_gflops", delta=0.9)


class TestAppProfiles:
    def test_gtc_bound_by_gather(self):
        # the paper: GTC's gather/scatter is "quite sensitive" to memory
        prof = sensitivity_profile(
            "gtc",
            GTCScenario(256, 400),
            get_machine("ES"),
            ("peak_gflops", "vector.gather_bw_fraction"),
        )
        assert prof["vector.gather_bw_fraction"] > 0.5
        assert prof["vector.gather_bw_fraction"] > prof["peak_gflops"]

    def test_lbmhd_bound_by_peak_on_es(self):
        prof = sensitivity_profile(
            "lbmhd",
            LBMHDScenario(512, 256),
            get_machine("ES"),
            ("peak_gflops", "vector.gather_bw_fraction"),
        )
        assert prof["peak_gflops"] > 0.5
        assert prof["vector.gather_bw_fraction"] == pytest.approx(0.0, abs=0.05)

    def test_lbmhd_bound_by_stream_on_opteron(self):
        # superscalar LBMHD is a memory-bandwidth story in the paper
        prof = sensitivity_profile(
            "lbmhd",
            LBMHDScenario(512, 256),
            get_machine("Opteron"),
            ("peak_gflops", "stream_bw_gbs"),
        )
        assert prof["stream_bw_gbs"] > prof["peak_gflops"]

    def test_paratec_responds_to_blas3(self):
        prof = sensitivity_profile(
            "paratec",
            ParatecScenario(256),
            get_machine("ES"),
            ("blas3_efficiency",),
        )
        assert prof["blas3_efficiency"] > 0.3

    def test_inapplicable_params_skipped(self):
        prof = sensitivity_profile(
            "lbmhd",
            LBMHDScenario(512, 256),
            get_machine("Power3"),
            ("vector.gather_bw_fraction", "stream_bw_gbs"),
        )
        assert "vector.gather_bw_fraction" not in prof
        assert "stream_bw_gbs" in prof

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            app_rate_function("cactus", None)


class TestWhatIf:
    def test_sx8_fplram_helps_gtc(self):
        from repro.experiments.whatif import sx8_with_fplram

        result = sx8_with_fplram()
        assert result["speedup"] > 1.1

    def test_x1_registers_marginal(self):
        # matches the paper: "we see no performance penalty" from spills
        from repro.experiments.whatif import x1_with_es_registers

        result = x1_with_es_registers()
        assert 1.0 <= result["speedup"] < 1.15

    def test_render(self):
        from repro.experiments import whatif

        text = whatif.render()
        assert "FPLRAM" in text and "Elasticity" in text
