"""Tests for the nonblocking isend/waitall request API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import get_machine
from repro.simmpi import Communicator


class TestRequests:
    def test_post_then_waitall(self):
        comm = Communicator(3)
        r1 = comm.isend(0, 2, np.arange(3.0))
        r2 = comm.isend(1, 2, np.arange(4.0))
        assert comm.pending_requests == 2
        assert not r1.test() and not r2.test()
        out = comm.waitall()
        assert comm.pending_requests == 0
        assert r1.test() and r2.test()
        np.testing.assert_array_equal(out[2][0], [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(out[2][1], [0.0, 1.0, 2.0, 3.0])

    def test_payload_captured_at_post_time(self):
        comm = Communicator(2)
        buf = np.ones(4)
        req = comm.isend(0, 1, buf)
        buf[:] = 99.0  # sender reuses the buffer immediately
        out = comm.waitall()
        np.testing.assert_array_equal(out[1][0], 1.0)
        np.testing.assert_array_equal(req.data, 1.0)

    def test_waitall_empty_is_noop(self):
        comm = Communicator(2)
        assert comm.waitall() == {}

    def test_waitall_charges_time(self):
        comm = Communicator(32, machine=get_machine("Power3"))
        comm.isend(0, 31, np.ones(10_000))
        comm.waitall()
        assert comm.elapsed >= 16.3e-6

    def test_requests_drain_once(self):
        comm = Communicator(2)
        comm.isend(0, 1, np.ones(2))
        first = comm.waitall()
        second = comm.waitall()
        assert len(first[1]) == 1
        assert second == {}

    def test_multiple_rounds(self):
        comm = Communicator(2)
        for k in range(3):
            comm.isend(0, 1, np.full(2, float(k)))
            out = comm.waitall()
            assert out[1][0][0] == float(k)

    def test_traced(self):
        comm = Communicator(2, trace=True)
        comm.isend(0, 1, np.ones(10))
        comm.waitall()
        assert comm.trace.matrix()[0, 1] == 80.0
