"""Tests for the nonblocking isend/waitall request API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import get_machine
from repro.simmpi import Communicator


class TestRequests:
    def test_post_then_waitall(self):
        comm = Communicator(3)
        r1 = comm.isend(0, 2, np.arange(3.0))
        r2 = comm.isend(1, 2, np.arange(4.0))
        assert comm.pending_requests == 2
        assert not r1.test() and not r2.test()
        out = comm.waitall()
        assert comm.pending_requests == 0
        assert r1.test() and r2.test()
        np.testing.assert_array_equal(out[2][0], [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(out[2][1], [0.0, 1.0, 2.0, 3.0])

    def test_payload_captured_at_post_time(self):
        comm = Communicator(2)
        buf = np.ones(4)
        req = comm.isend(0, 1, buf)
        buf[:] = 99.0  # sender reuses the buffer immediately
        out = comm.waitall()
        np.testing.assert_array_equal(out[1][0], 1.0)
        np.testing.assert_array_equal(req.data, 1.0)

    def test_waitall_empty_is_noop(self):
        comm = Communicator(2)
        assert comm.waitall() == {}

    def test_waitall_charges_time(self):
        comm = Communicator(32, machine=get_machine("Power3"))
        comm.isend(0, 31, np.ones(10_000))
        comm.waitall()
        assert comm.elapsed >= 16.3e-6

    def test_requests_drain_once(self):
        comm = Communicator(2)
        comm.isend(0, 1, np.ones(2))
        first = comm.waitall()
        second = comm.waitall()
        assert len(first[1]) == 1
        assert second == {}

    def test_multiple_rounds(self):
        comm = Communicator(2)
        for k in range(3):
            comm.isend(0, 1, np.full(2, float(k)))
            out = comm.waitall()
            assert out[1][0][0] == float(k)

    def test_traced(self):
        comm = Communicator(2, trace=True)
        comm.isend(0, 1, np.ones(10))
        comm.waitall()
        assert comm.trace.matrix()[0, 1] == 80.0


class TestOrderingAndDelivery:
    """Post-order delivery and per-request data with fan-in traffic."""

    def test_same_destination_preserves_post_order(self):
        comm = Communicator(4)
        comm.isend(0, 3, np.full(2, 10.0))
        comm.isend(1, 3, np.full(2, 11.0))
        comm.isend(2, 3, np.full(2, 12.0))
        out = comm.waitall()
        assert [buf[0] for buf in out[3]] == [10.0, 11.0, 12.0]

    def test_request_data_multiple_messages_same_pair(self):
        comm = Communicator(2)
        reqs = [comm.isend(0, 1, np.full(3, float(k))) for k in range(4)]
        out = comm.waitall()
        assert len(out[1]) == 4
        for k, req in enumerate(reqs):
            np.testing.assert_array_equal(req.data, np.full(3, float(k)))
            np.testing.assert_array_equal(out[1][k], np.full(3, float(k)))

    def test_mixed_tags_same_destination(self):
        comm = Communicator(3)
        r_a = comm.isend(0, 2, np.array([1.0]), tag=7)
        r_b = comm.isend(1, 2, np.array([2.0]), tag=0)
        r_c = comm.isend(0, 2, np.array([3.0]), tag=7)
        out = comm.waitall()
        # delivery is post-ordered regardless of tag
        assert [buf[0] for buf in out[2]] == [1.0, 2.0, 3.0]
        assert (r_a.message.tag, r_b.message.tag, r_c.message.tag) == (7, 0, 7)
        np.testing.assert_array_equal(r_a.data, [1.0])
        np.testing.assert_array_equal(r_b.data, [2.0])
        np.testing.assert_array_equal(r_c.data, [3.0])

    def test_interleaved_destinations_keep_per_dst_order(self):
        comm = Communicator(4)
        comm.isend(0, 1, np.array([1.0]))
        comm.isend(0, 2, np.array([2.0]))
        comm.isend(3, 1, np.array([3.0]))
        comm.isend(2, 1, np.array([4.0]), tag=9)
        comm.isend(1, 2, np.array([5.0]))
        out = comm.waitall()
        assert [buf[0] for buf in out[1]] == [1.0, 3.0, 4.0]
        assert [buf[0] for buf in out[2]] == [2.0, 5.0]

    def test_request_data_isolated_between_requests(self):
        comm = Communicator(2)
        r1 = comm.isend(0, 1, np.zeros(2))
        r2 = comm.isend(0, 1, np.ones(2))
        comm.waitall()
        r1.data[:] = 42.0  # mutating one delivery must not leak
        np.testing.assert_array_equal(r2.data, np.ones(2))
