"""Integration tests for the FVCAM solver, decomposition, and Table 3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.fvcam import (
    FVCAM,
    FVCAMParams,
    FVCAMScenario,
    FVDecomposition,
    LatLonGrid,
    TABLE3_ROWS,
    predict,
    simulated_days_per_day,
)
from repro.machines import get_machine
from repro.simmpi import Communicator

GRID = LatLonGrid(im=24, jm=18, km=4)


def make_sim(py=1, pz=1, **kw) -> FVCAM:
    params = FVCAMParams(grid=GRID, py=py, pz=pz, dt=60.0, **kw)
    return FVCAM(params, Communicator(py * pz))


class TestDecomposition:
    def test_min_latitude_constraint(self):
        with pytest.raises(ValueError):
            FVDecomposition(grid=GRID, py=9)  # 2 lats per subdomain

    def test_km_divisibility(self):
        with pytest.raises(ValueError):
            FVDecomposition(grid=GRID, py=1, pz=3)

    def test_scatter_gather_roundtrip(self, rng):
        d = FVDecomposition(grid=GRID, py=3, pz=2)
        field = rng.random(GRID.shape)
        np.testing.assert_array_equal(d.gather(d.scatter(field)), field)

    def test_rank_layout_latitude_major(self):
        d = FVDecomposition(grid=GRID, py=3, pz=2)
        # rank = z * py + y
        assert d.coords(0) == (0, 0)
        assert d.coords(2) == (2, 0)
        assert d.coords(3) == (0, 1)

    def test_lat_neighbors_walls(self):
        d = FVDecomposition(grid=GRID, py=3, pz=1)
        assert d.lat_neighbors(0) == (None, 1)
        assert d.lat_neighbors(2) == (1, None)

    def test_level_group(self):
        d = FVDecomposition(grid=GRID, py=3, pz=2)
        assert d.level_group(1) == [1, 4]


@pytest.mark.parametrize("py,pz", [(1, 1), (3, 1), (1, 2), (3, 2), (6, 2)])
def test_decomposition_independence(py, pz):
    ref = make_sim(1, 1)
    par = make_sim(py, pz)
    ref.run(6)
    par.run(6)
    h_ref, u_ref, v_ref = ref.global_fields()
    h_par, u_par, v_par = par.global_fields()
    np.testing.assert_allclose(h_par, h_ref, atol=1e-10)
    np.testing.assert_allclose(u_par, u_ref, atol=1e-10)
    np.testing.assert_allclose(v_par, v_ref, atol=1e-10)


class TestConservation:
    def test_mass_conserved_serial(self):
        sim = make_sim(1, 1)
        m0 = sim.total_mass()
        sim.run(10)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_mass_conserved_parallel(self):
        sim = make_sim(3, 2)
        m0 = sim.total_mass()
        sim.run(10)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_mass_conserved_without_physics(self):
        sim = make_sim(3, 1, with_physics=False)
        m0 = sim.total_mass()
        sim.run(10)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-13)

    def test_layers_stay_positive(self):
        sim = make_sim(2, 2)
        sim.run(10)
        h, _, _ = sim.global_fields()
        assert (h > 0).all()

    def test_winds_bounded(self):
        sim = make_sim(1, 1)
        sim.run(10)
        _, u, v = sim.global_fields()
        assert np.abs(u).max() < 500.0 and np.abs(v).max() < 500.0


class TestTimedRuns:
    def test_virtual_time_accumulates(self):
        params = FVCAMParams(grid=GRID, py=2, pz=2)
        sim = FVCAM(params, Communicator(4, machine=get_machine("ES")))
        sim.run(2)
        assert sim.comm.elapsed > 0.0

    def test_es_faster_than_power3(self):
        t = {}
        for m in ("ES", "Power3"):
            sim = FVCAM(
                FVCAMParams(grid=GRID, py=2, pz=2),
                Communicator(4, machine=get_machine(m)),
            )
            sim.run(2)
            t[m] = sim.comm.elapsed
        assert t["ES"] < t["Power3"]


class TestTable3Shape:
    """Qualitative claims of the paper's Table 3 / Figures 3-4."""

    def cell(self, machine, nprocs, pz):
        return predict(machine, FVCAMScenario(nprocs, pz))

    def test_x1e_highest_absolute(self):
        # "the newly-released X1E attains the highest per-processor
        # performance for FVCAM"
        rates = {
            m: self.cell(m, 32, 1).gflops_per_proc
            for m in ("Power3", "Itanium2", "X1", "X1E", "ES")
        }
        assert max(rates, key=rates.get) == "X1E"

    def test_es_highest_pct_peak(self):
        pcts = {
            m: self.cell(m, 32, 1).pct_peak
            for m in ("Power3", "Itanium2", "X1", "X1E", "ES")
        }
        assert max(pcts, key=pcts.get) == "ES"

    def test_x1e_gain_over_x1_limited(self):
        # "the X1E processor increases FVCAM performance by about 14%
        # compared to the X1, even though its peak speed is 41% higher"
        for nprocs, pz in ((128, 4), (256, 4), (336, 7)):
            ratio = (
                self.cell("X1E", nprocs, pz).gflops_per_proc
                / self.cell("X1", nprocs, pz).gflops_per_proc
            )
            assert 1.0 < ratio < 1.41

    def test_x1e_pct_peak_below_x1(self):
        # "the X1E percentage of peak is somewhat lower than the X1"
        assert (
            self.cell("X1E", 256, 4).pct_peak
            < self.cell("X1", 256, 4).pct_peak
        )

    def test_pct_peak_declines_with_p(self):
        for m in ("Power3", "Itanium2", "X1E", "ES"):
            pcts = [
                self.cell(m, p, 4).pct_peak for p in (128, 256, 512)
            ]
            assert pcts == sorted(pcts, reverse=True)

    def test_table3_rows_cover_paper(self):
        labels = {(s.label, s.nprocs) for s in TABLE3_ROWS}
        assert ("1D", 32) in labels
        assert ("2D-7v", 1680) in labels

    def test_simulated_days_headline(self):
        # "The speedup over real time of over 4200 on 672 processors of
        # the Cray X1E is the highest performance ever achieved for
        # FVCAM at this resolution."
        rate = simulated_days_per_day("X1E", FVCAMScenario(672, 7))
        assert rate == pytest.approx(4200.0, rel=0.25)
        others = [
            simulated_days_per_day(m, FVCAMScenario(672, 7))
            for m in ("Power3", "Itanium2", "X1", "ES")
        ]
        assert rate > max(others)

    def test_more_processors_more_throughput(self):
        # Figure 4: throughput still rises where the paper ran.
        small = simulated_days_per_day("ES", FVCAMScenario(128, 4))
        large = simulated_days_per_day("ES", FVCAMScenario(512, 4))
        assert large > small
