"""Tests for the per-phase time breakdown layer."""

from __future__ import annotations

import pytest

from repro.apps.fvcam import FVCAMScenario
from repro.apps.gtc import GTCScenario
from repro.apps.lbmhd import LBMHDScenario
from repro.apps.paratec import ParatecScenario
from repro.perfmodel import phase_breakdown


class TestPhaseBreakdown:
    def test_unknown_app(self):
        with pytest.raises(KeyError):
            phase_breakdown("hpl", None, "ES")

    def test_totals_are_sums(self):
        bd = phase_breakdown("gtc", GTCScenario(256, 400), "ES")
        assert bd.total_seconds == pytest.approx(
            sum(bd.compute.values()) + sum(bd.comm.values())
        )

    def test_fractions_sum_to_one(self):
        bd = phase_breakdown("fvcam", FVCAMScenario(256, 4), "ES")
        total = sum(
            bd.fraction(p) for p in (*bd.compute, *bd.comm)
        )
        assert total == pytest.approx(1.0)

    def test_unknown_phase(self):
        bd = phase_breakdown("lbmhd", LBMHDScenario(512, 256), "ES")
        with pytest.raises(KeyError):
            bd.fraction("warp drive")

    def test_render_mentions_phases(self):
        bd = phase_breakdown("paratec", ParatecScenario(256), "ES")
        text = bd.render()
        assert "BLAS3" in text and "FFT transposes" in text


class TestPaperPhaseClaims:
    def test_gtc_is_particle_dominated(self):
        # "the computational work directly involving the particles
        # accounts for almost 85% of the overhead"
        bd = phase_breakdown("gtc", GTCScenario(64, 100), "ES")
        particle = bd.fraction("charge deposition") + bd.fraction(
            "gather + push"
        )
        assert particle > 0.80

    def test_paratec_is_library_dominated(self):
        # "Much of the computation time (typically 60%) involves FFTs
        # and BLAS3 routines"
        bd = phase_breakdown("paratec", ParatecScenario(128), "Power3")
        lib = bd.fraction("BLAS3 (subspace)") + bd.fraction("3D FFT")
        assert lib > 0.55

    def test_paratec_comm_is_transposes_and_grows(self):
        # "The global data transposes within these FFT operations
        # account for the bulk of PARATEC's communication overhead, and
        # can quickly become the bottleneck at high concurrencies."
        small = phase_breakdown("paratec", ParatecScenario(128), "ES")
        large = phase_breakdown("paratec", ParatecScenario(2048), "ES")
        assert large.comm_fraction > 2 * small.comm_fraction

    def test_fvcam_polar_filter_hurts_vector_machines_more(self):
        es = phase_breakdown("fvcam", FVCAMScenario(256, 4), "ES")
        opteron_like = phase_breakdown(
            "fvcam", FVCAMScenario(256, 4), "Power3"
        )
        assert es.fraction("polar filter") > opteron_like.fraction(
            "polar filter"
        )

    def test_lbmhd_single_kernel(self):
        bd = phase_breakdown("lbmhd", LBMHDScenario(512, 256), "ES")
        assert bd.fraction("collide+stream") > 0.8

    def test_gtc_allreduce_grows_with_particle_decomposition(self):
        # "As the number of processors involved in this decomposition
        # increases, the overhead due to these reduction operations
        # increases as well."
        small = phase_breakdown("gtc", GTCScenario(64, 100), "ES")
        large = phase_breakdown("gtc", GTCScenario(2048, 3200), "ES")
        assert (
            large.comm["charge Allreduce"]
            > small.comm["charge Allreduce"]
        )
