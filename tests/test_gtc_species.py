"""Tests for GTC's multi-species support.

"Simulations with multiple species are essential to study the transport
of the different products created by the fusion reaction in burning
plasma experiments" — the paper's motivation for the particle
decomposition's appetite for particles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.gtc import (
    GTC,
    GTCParams,
    PoloidalGrid,
    Species,
    TorusGrid,
    load_multispecies,
)
from repro.simmpi import Communicator

TORUS = TorusGrid(plane=PoloidalGrid(mpsi=12, mtheta=16), ntoroidal=4)

DT_PLASMA = (
    Species(name="deuterium", charge=1.0, mass=2.0, fraction=0.45),
    Species(name="tritium", charge=1.0, mass=3.0, fraction=0.45),
    Species(name="alpha", charge=2.0, mass=4.0, temperature=50.0, fraction=0.10),
)


class TestSpecies:
    def test_validation(self):
        with pytest.raises(ValueError):
            Species(name="bad", mass=0.0)
        with pytest.raises(ValueError):
            Species(name="bad", fraction=0.0)

    def test_thermal_velocity_scaling(self):
        light = Species(name="l", mass=1.0, temperature=1.0)
        heavy = Species(name="h", mass=4.0, temperature=1.0)
        assert light.thermal_velocity == pytest.approx(
            2 * heavy.thermal_velocity
        )


class TestMultispeciesLoading:
    def load(self, n=3000):
        return load_multispecies(
            TORUS, n, 0, np.random.default_rng(0), DT_PLASMA
        )

    def test_total_count(self):
        assert len(self.load(3000)) == 3000

    def test_fractions_respected(self):
        p = self.load(10_000)
        counts = [p.species_count(i) for i in range(3)]
        assert counts[0] == pytest.approx(4500, abs=2)
        assert counts[2] == pytest.approx(1000, abs=2)

    def test_charges_carried_in_weight(self):
        p = self.load(1000)
        # alphas carry charge 2
        assert p.species_charge(2) == pytest.approx(2.0 * p.species_count(2))

    def test_hot_alphas_faster(self):
        p = self.load(20_000)
        alpha_mask = p.species.astype(int) == 2
        v_alpha = np.abs(p.vpar[alpha_mask]).mean()
        v_fuel = np.abs(p.vpar[~alpha_mask]).mean()
        # T=50, m=4 -> vth ~ 3.5x the fuel ions'
        assert v_alpha > 2.0 * v_fuel

    def test_empty_species_rejected(self):
        with pytest.raises(ValueError):
            load_multispecies(TORUS, 10, 0, np.random.default_rng(0), ())


class TestMultispeciesRun:
    def make(self, nprocs=4):
        params = GTCParams(
            mpsi=12,
            mtheta=16,
            ntoroidal=4,
            particles_per_cell=6,
            dt=0.005,
            species=DT_PLASMA,
        )
        return GTC(params, Communicator(nprocs))

    def test_census_structure(self):
        sim = self.make()
        census = sim.species_census()
        assert set(census) == {"deuterium", "tritium", "alpha"}
        assert census["alpha"]["charge"] == pytest.approx(
            2.0 * census["alpha"]["count"]
        )

    def test_per_species_count_conserved_through_shift(self):
        sim = self.make(8)
        before = sim.species_census()
        sim.run(4)
        after = sim.species_census()
        for name in before:
            assert after[name]["count"] == before[name]["count"]
            assert after[name]["charge"] == pytest.approx(
                before[name]["charge"]
            )

    def test_total_charge_includes_all_species(self):
        sim = self.make()
        census = sim.species_census()
        assert sim.total_charge() == pytest.approx(
            sum(v["charge"] for v in census.values())
        )

    def test_single_species_default_unchanged(self):
        sim = GTC(
            GTCParams(mpsi=12, mtheta=16, ntoroidal=4, particles_per_cell=5),
            Communicator(4),
        )
        census = sim.species_census()
        assert list(census) == ["ion"]
        assert census["ion"]["count"] == sim.total_particles()
