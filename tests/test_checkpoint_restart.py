"""Acceptance matrix: faulted runs recover to bitwise-identical physics.

For each of the four applications, a run with injected message drops
and one mid-run rank failure — recovered by CRC/retry and
checkpoint/restart — must finish with final physics state bitwise
identical to the fault-free run with the same seed, and the recovery
time must be visible in the ledger's recovery column.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import harness
from repro.apps.fvcam.solver import FVCAMParams
from repro.apps.gtc.solver import GTCParams
from repro.apps.lbmhd.solver import LBMHDParams
from repro.apps.paratec.solver import ParatecParams
from repro.resilience import (
    DiskCheckpointStore,
    FaultPlan,
    MemoryCheckpointStore,
    MessageDrop,
    RankFailure,
    RankFailureError,
    own_tree,
)
from repro.resilience.checkpoint import flatten_tree, unflatten_tree

APPS = ["lbmhd", "gtc", "fvcam", "paratec"]


def _config(app: str, nprocs: int):
    """(params, steps) sized for the test matrix."""
    if app == "lbmhd":
        return LBMHDParams(shape=(8, 8, 8)), 6
    if app == "gtc":
        return GTCParams(ntoroidal=nprocs, particles_per_cell=4), 6
    if app == "fvcam":
        if nprocs == 4:
            return FVCAMParams(py=2, pz=2), 6
        return FVCAMParams(py=4, pz=2), 6
    if app == "paratec":
        return ParatecParams(), 4
    raise AssertionError(app)


def _nprocs(app: str, requested: int) -> int:
    # PARATEC's mini problem distributes its G-sphere over few ranks
    return 2 if app == "paratec" else requested


def _plan(nprocs: int, steps: int) -> FaultPlan:
    return FaultPlan(
        faults=(
            MessageDrop(step=1, rate=0.4),
            MessageDrop(step=steps - 1, src=0),
            RankFailure(rank=nprocs - 1, step=steps // 2),
        ),
        seed=42,
    )


def _pair(app: str, nprocs: int, **kwargs):
    params, steps = _config(app, nprocs)
    clean = harness.run(app, params, steps=steps, nprocs=nprocs)
    faulted = harness.run(
        app,
        params,
        steps=steps,
        nprocs=nprocs,
        fault_plan=_plan(nprocs, steps),
        checkpoint_every=2,
        **kwargs,
    )
    return clean, faulted


class TestFaultedRunsMatchBitwise:
    @pytest.mark.parametrize(
        "nprocs", [4, pytest.param(8, marks=pytest.mark.slow)]
    )
    @pytest.mark.parametrize("app", APPS)
    def test_recovered_state_identical(self, app, nprocs):
        nprocs = _nprocs(app, nprocs)
        clean, faulted = _pair(app, nprocs)

        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )
        stats = faulted.recovery
        assert stats.rank_failures == 1
        assert stats.restarts == 1
        assert stats.checkpoints >= 1
        # recovery landed in the ledger column, not compute/comm/wait
        assert faulted.ledger.totals().recovery_s.sum() > 0.0
        assert clean.ledger.totals().recovery_s.sum() == 0.0
        # diagnostics agree exactly too
        assert clean.diagnostics == faulted.diagnostics

    @pytest.mark.parametrize("app", APPS)
    def test_recovery_survives_threaded_executor(self, app):
        nprocs = _nprocs(app, 4)
        clean, faulted = _pair(app, nprocs, executor="threads:4")
        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )


class TestHarnessRestartMechanics:
    def test_restart_replays_from_last_checkpoint(self):
        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=1, step=5),))
        result = harness.run(
            "lbmhd",
            params,
            steps=steps,
            nprocs=4,
            fault_plan=plan,
            checkpoint_every=2,
        )
        # failure at step 5 restores the step-4 snapshot: 1 replayed
        assert result.recovery.replayed_steps == 1
        assert result.recovery.restarts == 1

    def test_failure_without_checkpointing_uses_step0_anchor(self):
        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=0, step=2),))
        result = harness.run(
            "lbmhd", params, steps=steps, nprocs=4, fault_plan=plan
        )
        assert result.recovery.restarts == 1
        assert result.recovery.replayed_steps == 2

    def test_max_restarts_reraises(self):
        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(
            faults=tuple(
                RankFailure(rank=0, step=s) for s in range(3)
            )
        )
        with pytest.raises(RankFailureError):
            harness.run(
                "lbmhd",
                params,
                steps=steps,
                nprocs=4,
                fault_plan=plan,
                max_restarts=1,
            )

    def test_disk_store_backs_restart(self, tmp_path):
        params, steps = _config("gtc", 4)
        plan = _plan(4, steps)
        clean = harness.run("gtc", params, steps=steps, nprocs=4)
        faulted = harness.run(
            "gtc",
            params,
            steps=steps,
            nprocs=4,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_store=DiskCheckpointStore(tmp_path),
        )
        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )
        assert (tmp_path / "gtc.npz").exists()

    def test_checkpoint_time_charged_to_recovery_column(self):
        params, steps = _config("lbmhd", 4)
        result = harness.run(
            "lbmhd", params, steps=steps, nprocs=4, checkpoint_every=2
        )
        stats = result.recovery
        assert stats.checkpoints == 2  # steps 2 and 4 (not the end)
        assert stats.checkpoint_bytes > 0
        assert result.ledger.totals().recovery_s.sum() > 0.0

    def test_failed_step_accounting_is_path_independent(self):
        """Rank death aborts before charging, on every comm path.

        The arena fast path (bulk exchange_phase) and the plain path
        (per-message exchange) must leave identical clocks and ledgers
        behind a failed-and-replayed step — the death fires at entry of
        the next communication, never after a partial charge.
        """
        from repro.runtime.arena import Arena

        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=3, step=3),))

        def run(**kwargs):
            return harness.run(
                "lbmhd", params, steps=steps, nprocs=4, machine="X1",
                fault_plan=plan, checkpoint_every=2, **kwargs,
            )

        fast, plain = run(arena=Arena()), run()
        assert np.array_equal(fast.comm.times, plain.comm.times)
        ta, tb = fast.ledger.totals(), plain.ledger.totals()
        for k in ("compute_s", "comm_s", "wait_s", "recovery_s",
                  "nbytes", "messages"):
            assert np.array_equal(
                np.asarray(getattr(ta, k)), np.asarray(getattr(tb, k))
            ), k

    def test_restart_fails_loudly_when_store_loses_checkpoint(self):
        """A restart whose expected checkpoint vanished must raise a
        RuntimeError naming the tag and step — not a downstream
        AttributeError on ``None``."""

        class AmnesiacStore(MemoryCheckpointStore):
            def load(self, tag):
                return None

        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=0, step=3),))
        with pytest.raises(RuntimeError, match=r"'lbmhd'.*step 3"):
            harness.run(
                "lbmhd",
                params,
                steps=steps,
                nprocs=4,
                fault_plan=plan,
                checkpoint_every=2,
                checkpoint_store=AmnesiacStore(),
            )

    def test_fault_free_resilient_run_matches_plain(self):
        """fault_plan=FaultPlan() changes nothing but adds the column."""
        params, steps = _config("fvcam", 4)
        plain = harness.run("fvcam", params, steps=steps, nprocs=4)
        resil = harness.run(
            "fvcam", params, steps=steps, nprocs=4, fault_plan=FaultPlan()
        )
        assert np.array_equal(
            plain.app.state_vector(plain.state),
            resil.app.state_vector(resil.state),
        )
        assert np.array_equal(plain.comm.times, resil.comm.times)


class TestStoreOwnershipTransfer:
    """Regression tests: ``save(copy=False)`` with view/zero-size leaves."""

    def test_memory_store_detaches_view_leaves(self):
        base = np.arange(10.0)
        store = MemoryCheckpointStore()
        store.save("t", 0, {"x": base[::2]}, copy=False)
        snapshot = np.array(store.load("t").payload["x"])
        base[:] = -1.0  # caller keeps stepping the live array
        assert np.array_equal(store.load("t").payload["x"], snapshot)
        assert np.array_equal(snapshot, [0.0, 2.0, 4.0, 6.0, 8.0])

    def test_memory_store_owned_arrays_transfer_without_copy(self):
        owned = np.arange(4.0)
        store = MemoryCheckpointStore()
        store.save("t", 0, {"x": owned}, copy=False)
        # zero-copy ownership transfer: the store holds the very array
        assert store._latest["t"].payload["x"] is owned

    def test_disk_store_returned_checkpoint_is_detached(self, tmp_path):
        base = np.arange(12.0).reshape(3, 4)
        payload = {"view": base[:, 1:3], "owned": np.ones(3)}
        store = DiskCheckpointStore(tmp_path)
        ckpt = store.save("t", 2, payload, copy=False)
        before = np.array(ckpt.payload["view"])
        base[:] = 99.0
        assert np.array_equal(ckpt.payload["view"], before)
        # and copy=True leaves the caller's arrays entirely alone
        owned = np.zeros(3)
        ckpt2 = store.save("u", 0, {"x": owned}, copy=True)
        assert ckpt2.payload["x"] is not owned

    def test_zero_size_arrays_keep_shape_and_dtype(self, tmp_path):
        payload = {
            "empty_rows": np.zeros((0, 4), dtype=np.float32),
            "empty_flat": np.zeros(0),
            "parts": [np.zeros((0, 7)), np.arange(3)],
        }
        store = DiskCheckpointStore(tmp_path)
        store.save("z", 1, payload, copy=False)
        back = store.load("z").payload
        assert back["empty_rows"].shape == (0, 4)
        assert back["empty_rows"].dtype == np.float32
        assert back["empty_flat"].shape == (0,)
        assert back["parts"][0].shape == (0, 7)
        assert np.array_equal(back["parts"][1], [0, 1, 2])

    def test_own_tree_copies_views_only(self):
        base = np.arange(6.0)
        owned = np.ones(2)
        tree = {"v": base[1:], "o": owned, "nest": [base.reshape(2, 3)]}
        result = own_tree(tree)
        assert result["o"] is owned
        assert result["v"].base is None
        assert result["nest"][0].base is None


class TestFlattenRoundTrip:
    """Regression tests: the npz flat form must never lose structure."""

    def test_slash_in_dict_key_raises_instead_of_colliding(self):
        # "a/b" leaf and nested a -> b used to flatten onto ONE key,
        # silently dropping data on the round trip
        with pytest.raises(ValueError, match="without '/'"):
            flatten_tree({"a/b": np.arange(2), "a": {"b": np.arange(3)}})

    def test_marker_dict_keys_raise(self):
        with pytest.raises(ValueError):
            flatten_tree({"{}": 1})
        with pytest.raises(ValueError):
            flatten_tree({"[]": 1})

    def test_non_string_dict_keys_raise(self):
        with pytest.raises(ValueError):
            flatten_tree({0: np.arange(2)})

    def test_tuples_round_trip_as_tuples(self, tmp_path):
        payload = {"t": (np.arange(2), 5.0), "l": [np.arange(2)]}
        back = unflatten_tree(flatten_tree(payload))
        assert isinstance(back["t"], tuple)
        assert isinstance(back["l"], list)
        store = DiskCheckpointStore(tmp_path)
        store.save("t", 0, payload)
        disk = store.load("t").payload
        assert isinstance(disk["t"], tuple)
        assert isinstance(disk["l"], list)
        assert np.array_equal(disk["t"][0], [0, 1])

    def test_empty_containers_round_trip(self, tmp_path):
        payload = {"d": {}, "l": [], "t": (), "x": 3}
        store = DiskCheckpointStore(tmp_path)
        store.save("e", 0, payload)
        back = store.load("e").payload
        assert back["d"] == {}
        assert back["l"] == []
        assert back["t"] == ()
        assert int(back["x"]) == 3
