"""Acceptance matrix: faulted runs recover to bitwise-identical physics.

For each of the four applications, a run with injected message drops
and one mid-run rank failure — recovered by CRC/retry and
checkpoint/restart — must finish with final physics state bitwise
identical to the fault-free run with the same seed, and the recovery
time must be visible in the ledger's recovery column.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import harness
from repro.apps.fvcam.solver import FVCAMParams
from repro.apps.gtc.solver import GTCParams
from repro.apps.lbmhd.solver import LBMHDParams
from repro.apps.paratec.solver import ParatecParams
from repro.resilience import (
    DiskCheckpointStore,
    FaultPlan,
    MessageDrop,
    RankFailure,
    RankFailureError,
)

APPS = ["lbmhd", "gtc", "fvcam", "paratec"]


def _config(app: str, nprocs: int):
    """(params, steps) sized for the test matrix."""
    if app == "lbmhd":
        return LBMHDParams(shape=(8, 8, 8)), 6
    if app == "gtc":
        return GTCParams(ntoroidal=nprocs, particles_per_cell=4), 6
    if app == "fvcam":
        if nprocs == 4:
            return FVCAMParams(py=2, pz=2), 6
        return FVCAMParams(py=4, pz=2), 6
    if app == "paratec":
        return ParatecParams(), 4
    raise AssertionError(app)


def _nprocs(app: str, requested: int) -> int:
    # PARATEC's mini problem distributes its G-sphere over few ranks
    return 2 if app == "paratec" else requested


def _plan(nprocs: int, steps: int) -> FaultPlan:
    return FaultPlan(
        faults=(
            MessageDrop(step=1, rate=0.4),
            MessageDrop(step=steps - 1, src=0),
            RankFailure(rank=nprocs - 1, step=steps // 2),
        ),
        seed=42,
    )


def _pair(app: str, nprocs: int, **kwargs):
    params, steps = _config(app, nprocs)
    clean = harness.run(app, params, steps=steps, nprocs=nprocs)
    faulted = harness.run(
        app,
        params,
        steps=steps,
        nprocs=nprocs,
        fault_plan=_plan(nprocs, steps),
        checkpoint_every=2,
        **kwargs,
    )
    return clean, faulted


class TestFaultedRunsMatchBitwise:
    @pytest.mark.parametrize(
        "nprocs", [4, pytest.param(8, marks=pytest.mark.slow)]
    )
    @pytest.mark.parametrize("app", APPS)
    def test_recovered_state_identical(self, app, nprocs):
        nprocs = _nprocs(app, nprocs)
        clean, faulted = _pair(app, nprocs)

        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )
        stats = faulted.recovery
        assert stats.rank_failures == 1
        assert stats.restarts == 1
        assert stats.checkpoints >= 1
        # recovery landed in the ledger column, not compute/comm/wait
        assert faulted.ledger.totals().recovery_s.sum() > 0.0
        assert clean.ledger.totals().recovery_s.sum() == 0.0
        # diagnostics agree exactly too
        assert clean.diagnostics == faulted.diagnostics

    @pytest.mark.parametrize("app", APPS)
    def test_recovery_survives_threaded_executor(self, app):
        nprocs = _nprocs(app, 4)
        clean, faulted = _pair(app, nprocs, executor="threads:4")
        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )


class TestHarnessRestartMechanics:
    def test_restart_replays_from_last_checkpoint(self):
        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=1, step=5),))
        result = harness.run(
            "lbmhd",
            params,
            steps=steps,
            nprocs=4,
            fault_plan=plan,
            checkpoint_every=2,
        )
        # failure at step 5 restores the step-4 snapshot: 1 replayed
        assert result.recovery.replayed_steps == 1
        assert result.recovery.restarts == 1

    def test_failure_without_checkpointing_uses_step0_anchor(self):
        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=0, step=2),))
        result = harness.run(
            "lbmhd", params, steps=steps, nprocs=4, fault_plan=plan
        )
        assert result.recovery.restarts == 1
        assert result.recovery.replayed_steps == 2

    def test_max_restarts_reraises(self):
        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(
            faults=tuple(
                RankFailure(rank=0, step=s) for s in range(3)
            )
        )
        with pytest.raises(RankFailureError):
            harness.run(
                "lbmhd",
                params,
                steps=steps,
                nprocs=4,
                fault_plan=plan,
                max_restarts=1,
            )

    def test_disk_store_backs_restart(self, tmp_path):
        params, steps = _config("gtc", 4)
        plan = _plan(4, steps)
        clean = harness.run("gtc", params, steps=steps, nprocs=4)
        faulted = harness.run(
            "gtc",
            params,
            steps=steps,
            nprocs=4,
            fault_plan=plan,
            checkpoint_every=2,
            checkpoint_store=DiskCheckpointStore(tmp_path),
        )
        assert np.array_equal(
            clean.app.state_vector(clean.state),
            faulted.app.state_vector(faulted.state),
        )
        assert (tmp_path / "gtc.npz").exists()

    def test_checkpoint_time_charged_to_recovery_column(self):
        params, steps = _config("lbmhd", 4)
        result = harness.run(
            "lbmhd", params, steps=steps, nprocs=4, checkpoint_every=2
        )
        stats = result.recovery
        assert stats.checkpoints == 2  # steps 2 and 4 (not the end)
        assert stats.checkpoint_bytes > 0
        assert result.ledger.totals().recovery_s.sum() > 0.0

    def test_failed_step_accounting_is_path_independent(self):
        """Rank death aborts before charging, on every comm path.

        The arena fast path (bulk exchange_phase) and the plain path
        (per-message exchange) must leave identical clocks and ledgers
        behind a failed-and-replayed step — the death fires at entry of
        the next communication, never after a partial charge.
        """
        from repro.runtime.arena import Arena

        params, steps = _config("lbmhd", 4)
        plan = FaultPlan(faults=(RankFailure(rank=3, step=3),))

        def run(**kwargs):
            return harness.run(
                "lbmhd", params, steps=steps, nprocs=4, machine="X1",
                fault_plan=plan, checkpoint_every=2, **kwargs,
            )

        fast, plain = run(arena=Arena()), run()
        assert np.array_equal(fast.comm.times, plain.comm.times)
        ta, tb = fast.ledger.totals(), plain.ledger.totals()
        for k in ("compute_s", "comm_s", "wait_s", "recovery_s",
                  "nbytes", "messages"):
            assert np.array_equal(
                np.asarray(getattr(ta, k)), np.asarray(getattr(tb, k))
            ), k

    def test_fault_free_resilient_run_matches_plain(self):
        """fault_plan=FaultPlan() changes nothing but adds the column."""
        params, steps = _config("fvcam", 4)
        plain = harness.run("fvcam", params, steps=steps, nprocs=4)
        resil = harness.run(
            "fvcam", params, steps=steps, nprocs=4, fault_plan=FaultPlan()
        )
        assert np.array_equal(
            plain.app.state_vector(plain.state),
            resil.app.state_vector(resil.state),
        )
        assert np.array_equal(plain.comm.times, resil.comm.times)
