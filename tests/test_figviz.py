"""Tests for the illustrative-figure generators (Figures 1, 5, 6, 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import figviz


class TestAsciiField:
    def test_shape_and_ramp(self):
        field = np.linspace(0, 1, 64).reshape(8, 8)
        art = figviz.ascii_field(field, width=8)
        lines = art.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert figviz.RAMP[0] in art and figviz.RAMP[-1] in art

    def test_constant_field_safe(self):
        art = figviz.ascii_field(np.ones((4, 4)))
        assert set("".join(art.splitlines())) <= set(figviz.RAMP)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            figviz.ascii_field(np.zeros((2, 2, 2)))


class TestFigureGenerators:
    def test_fig1_storm_evolves(self):
        before, after = figviz.fig1_run(steps=10)
        assert before.shape == after.shape
        assert not np.allclose(before, after)
        # anomalies stay zonally de-meaned
        np.testing.assert_allclose(after.mean(axis=1), 0.0, atol=1e-8)

    def test_fig5_potential_structured(self):
        phi = figviz.fig5_run(steps=2)
        assert phi.shape == (24, 48)
        assert np.isfinite(phi).all()
        assert phi.std() > 0  # turbulent-ish, not flat

    def test_fig6_vorticity_distorts(self):
        before, after = figviz.fig6_run(steps=30)
        assert np.isfinite(after).all()
        assert not np.allclose(before, after)

    def test_fig7_density_localized(self):
        rho = figviz.fig7_run()
        assert (rho >= -1e-12).all()
        # localized: the peak well above the mean
        assert rho.max() > 3.0 * rho.mean()
