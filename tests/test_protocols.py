"""Tests for the communication-protocol tuning options."""

from __future__ import annotations

import pytest

from repro.machines import get_machine
from repro.network import (
    CommProtocol,
    NetworkModel,
    best_protocol,
    latency_factor,
    supported_protocols,
)


class TestAvailability:
    def test_mpi_everywhere(self):
        for m in ("Power3", "Itanium2", "Opteron", "X1", "X1E", "ES", "SX-8"):
            protos = supported_protocols(get_machine(m))
            assert CommProtocol.MPI_TWO_SIDED in protos
            assert CommProtocol.MPI_ONE_SIDED in protos

    def test_caf_is_cray_only(self):
        for m in ("X1", "X1E", "X1-SSP"):
            assert CommProtocol.CO_ARRAY_FORTRAN in supported_protocols(
                get_machine(m)
            )
        for m in ("Power3", "Itanium2", "Opteron", "ES", "SX-8"):
            assert CommProtocol.CO_ARRAY_FORTRAN not in supported_protocols(
                get_machine(m)
            )

    def test_shmem_needs_custom_network(self):
        assert CommProtocol.SHMEM in supported_protocols(get_machine("ES"))
        assert CommProtocol.SHMEM not in supported_protocols(
            get_machine("Opteron")
        )

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(ValueError):
            latency_factor(get_machine("Opteron"), CommProtocol.SHMEM)


class TestLatencyEffects:
    def test_one_sided_cheaper(self):
        x1 = get_machine("X1")
        assert latency_factor(x1, CommProtocol.CO_ARRAY_FORTRAN) < latency_factor(
            x1, CommProtocol.SHMEM
        ) < latency_factor(x1, CommProtocol.MPI_TWO_SIDED)

    def test_network_model_applies_factor(self):
        mpi = NetworkModel(get_machine("X1"), 64)
        caf = NetworkModel(
            get_machine("X1"), 64, protocol=CommProtocol.CO_ARRAY_FORTRAN
        )
        assert caf.latency_s == pytest.approx(0.35 * mpi.latency_s)
        # bandwidth untouched
        assert caf.bandwidth_Bps == mpi.bandwidth_Bps

    def test_latency_bound_message_speeds_up(self):
        mpi = NetworkModel(get_machine("X1"), 64)
        caf = NetworkModel(
            get_machine("X1"), 64, protocol=CommProtocol.CO_ARRAY_FORTRAN
        )
        small = 64  # latency bound
        assert caf.ptp_time(small, 0, 32) < 0.5 * mpi.ptp_time(small, 0, 32)
        big = 10_000_000  # bandwidth bound: protocols converge
        ratio = caf.ptp_time(big, 0, 32) / mpi.ptp_time(big, 0, 32)
        assert 0.95 < ratio <= 1.0


class TestBestProtocol:
    def test_matches_paper_empirics(self):
        assert best_protocol(get_machine("X1")) is CommProtocol.CO_ARRAY_FORTRAN
        assert best_protocol(get_machine("ES")) is CommProtocol.SHMEM
        assert (
            best_protocol(get_machine("Opteron"))
            is CommProtocol.MPI_ONE_SIDED
        )
