"""Integration tests for the GTC solver and Table 4 predictions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.gtc import GTC, GTCParams, TABLE4_ROWS, predict
from repro.machines import get_machine
from repro.simmpi import Communicator


def make_gtc(nprocs=4, **kw) -> GTC:
    params = GTCParams(
        mpsi=12, mtheta=16, ntoroidal=4, particles_per_cell=5, **kw
    )
    return GTC(params, Communicator(nprocs))


class TestSolver:
    def test_nprocs_must_match_toroidal(self):
        with pytest.raises(ValueError):
            GTC(GTCParams(ntoroidal=4), Communicator(6))

    def test_particle_count_invariant(self):
        sim = make_gtc(8)  # 2-way particle split
        n0 = sim.total_particles()
        sim.run(4)
        assert sim.total_particles() == n0

    def test_charge_invariant(self):
        sim = make_gtc(4)
        q0 = sim.total_charge()
        sim.run(4)
        assert sim.total_charge() == pytest.approx(q0)

    def test_charge_grid_consistent_across_subgroup(self):
        """Every rank of a domain sees the same reduced charge."""
        sim = make_gtc(8)
        sim.charge_phase()
        d = sim.decomp
        for domain in range(d.ntoroidal):
            ranks = [d.rank_of(domain, s) for s in range(d.npe_per_domain)]
            for r in ranks[1:]:
                np.testing.assert_array_equal(
                    sim.charge[ranks[0]], sim.charge[r]
                )

    def test_particle_split_does_not_change_fields(self):
        """The new particle decomposition is physics-neutral.

        4 ranks (1 per domain) and 8 ranks (2-way split) must produce
        the same reduced charge grids, because the subgroup Allreduce
        reassembles exactly the domain's particle population.
        """
        a = make_gtc(4)
        b = make_gtc(8)
        a.charge_phase()
        b.charge_phase()
        for domain in range(4):
            np.testing.assert_allclose(
                a.domain_charge(domain), b.domain_charge(domain), atol=1e-10
            )

    def test_work_vector_mode_matches_scalar_mode(self):
        a = make_gtc(4, use_work_vector=False)
        b = make_gtc(4, use_work_vector=True)
        a.run(2)
        b.run(2)
        for domain in range(4):
            np.testing.assert_allclose(
                a.domain_charge(domain), b.domain_charge(domain), atol=1e-9
            )

    def test_timed_run_accumulates(self):
        params = GTCParams(mpsi=12, mtheta=16, ntoroidal=4, particles_per_cell=5)
        sim = GTC(params, Communicator(4, machine=get_machine("ES")))
        sim.run(2)
        assert sim.comm.elapsed > 0.0

    def test_flops_per_step_positive(self):
        sim = make_gtc(4)
        assert sim.flops_per_step > 0


class TestTable4Shape:
    """Headline qualitative claims of the paper's Table 4."""

    def row(self, nprocs):
        return next(r for r in TABLE4_ROWS if r.nprocs == nprocs)

    def test_es_highest_pct_peak(self):
        # "the Earth Simulator sustains a significantly higher
        # percentage of peak (24%) compared with other platforms"
        row = self.row(64)
        machines = ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8")
        pcts = {m: predict(m, row).pct_peak for m in machines}
        assert max(pcts, key=pcts.get) == "ES"
        assert pcts["ES"] > 15.0

    def test_sx8_fastest_but_not_2x_es(self):
        # "the SX-8 attains the fastest time to solution ... only about
        # 50% higher than the performance of the ES processor, even
        # though the SX-8 peak is twice that of the ES"
        row = self.row(64)
        sx8 = predict("SX-8", row).gflops_per_proc
        es = predict("ES", row).gflops_per_proc
        machines = ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8")
        rates = {m: predict(m, row).gflops_per_proc for m in machines}
        assert max(rates, key=rates.get) == "SX-8"
        assert 1.2 < sx8 / es < 1.8

    def test_opteron_beats_itanium2_by_half(self):
        # "GTC ... was 50% faster than on the Itanium2 Quadrics cluster"
        row = self.row(64)
        ratio = (
            predict("Opteron", row).gflops_per_proc
            / predict("Itanium2", row).gflops_per_proc
        )
        assert 1.25 < ratio < 1.8

    def test_msp_beats_ssp_slightly(self):
        # "the X1(SSP) achieves even slightly lower performance than
        # the MSP version"
        row = self.row(64)
        msp = predict("X1", row).gflops_per_proc
        agg_ssp = 4 * predict("X1-SSP", row).gflops_per_proc
        assert 1.0 < msp / agg_ssp < 1.4

    def test_es_2048_teraflop_barrier(self):
        # "GTC fulfilled the very strict scaling requirements of the ES
        # and achieved an unprecedented 3.7 Tflop/s on 2,048 processors"
        r = predict("ES", self.row(2048))
        assert r.aggregate_tflops > 1.0  # broke the Teraflop barrier
        assert r.aggregate_tflops == pytest.approx(3.7, rel=0.25)

    def test_flat_scaling_on_scalar_machines(self):
        # Power3/Itanium2 hold their rate through 2048 processors.
        for m in ("Power3", "Itanium2"):
            rates = [predict(m, r).gflops_per_proc for r in TABLE4_ROWS]
            assert max(rates) / min(rates) < 1.15
