"""Tests for the Figure 2 communication-volume experiment (traced runs).

Separated from the other experiment tests because it executes two real
64-rank FVCAM runs (a few seconds).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig2


@pytest.fixture(scope="module")
def result() -> fig2.Fig2Result:
    return fig2.run()


class TestFig2Structure:
    def test_1d_is_nearest_neighbor(self, result):
        """Figure 2(a): 'a straightforward nearest neighbor pattern'."""
        offsets = result.offdiagonal_offsets("1d")
        assert offsets == [1]

    def test_2d_diagonals_segmented(self, result):
        """Figure 2(b): diagonal segments of length py, gaps at domain
        boundaries (rank py-1 never talks to rank py)."""
        m = result.volume_2d
        py = fig2.NPROCS // 4
        assert m[py - 1, py] == 0.0
        assert m[0, 1] > 0.0

    def test_2d_has_vertical_lines(self, result):
        """The Pz-1 lines parallel to the diagonal at offsets of py."""
        offsets = result.offdiagonal_offsets("2d")
        py = fig2.NPROCS // 4
        for k in (py, 2 * py, 3 * py):
            assert k in offsets

    def test_2d_vertical_volume_smaller(self, result):
        """Vertical communications 'are of a considerably lesser volume'."""
        m = result.volume_2d
        py = fig2.NPROCS // 4
        halo = np.mean([m[i, i + 1] for i in range(py - 1)])
        vert = np.mean([m[i, i + py] for i in range(py)])
        assert vert < halo

    def test_2d_total_volume_reduced(self, result):
        """'total volume of communication in the 2D decomposition is
        significantly reduced compared with the 1D approach'."""
        assert result.reduction > 1.0

    def test_2d_more_partners(self, result):
        """The 2D pattern is 'decidedly nonlocal' — more communicating
        pairs than 1D."""
        assert result.nonzero_pairs("2d") > result.nonzero_pairs("1d")

    def test_matrices_are_symmetric_in_support(self, result):
        for m in (result.volume_1d, result.volume_2d):
            src, dst = np.nonzero(m)
            for s, d in zip(src, dst):
                assert m[d, s] > 0.0
