"""Tests for PARATEC's Hamiltonian, CG eigensolver, SCF, and Table 6."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.paratec import (
    Atom,
    GSphere,
    Hamiltonian,
    ParallelFFT3D,
    Paratec,
    ParatecParams,
    SphereDistribution,
    TABLE6_ROWS,
    build_local_potential,
    cg_band,
    dot,
    hartree_potential,
    exchange_potential,
    initial_bands,
    mix_potentials,
    predict,
    subspace_rotation,
)
from repro.apps.paratec.cg import CGOptions
from repro.apps.paratec.scf import SCFDriver
from repro.apps.paratec.workload import ParatecScenario
from repro.simmpi import Communicator

SPHERE = GSphere(ecut=4.0, grid_shape=(10, 10, 10))


def setup(nranks=2, atoms=None):
    dist = SphereDistribution(SPHERE, nranks)
    comm = Communicator(nranks)
    fft = ParallelFFT3D(dist, comm)
    if atoms is None:
        ham = Hamiltonian(fft=fft)  # free electrons
    else:
        ham = Hamiltonian.from_atoms(fft, atoms)
    return comm, fft, ham


class TestPotentials:
    def test_local_potential_is_real_and_attractive(self):
        v = build_local_potential((10, 10, 10), [Atom(position=(0.5, 0.5, 0.5))])
        assert v.min() < 0
        assert np.isrealobj(v)

    def test_potential_peaks_at_atom(self):
        v = build_local_potential((10, 10, 10), [Atom(position=(0.5, 0.5, 0.5))])
        assert np.unravel_index(np.argmin(v), v.shape) == (5, 5, 5)

    def test_hartree_solves_poisson(self, rng):
        rho = rng.standard_normal((8, 8, 8))
        rho -= rho.mean()
        v = hartree_potential(rho)
        # check nabla^2 v = -4 pi rho spectrally
        v_g = np.fft.fftn(v)
        freqs = np.fft.fftfreq(8, d=1 / 8)
        gx, gy, gz = np.meshgrid(freqs, freqs, freqs, indexing="ij")
        g2 = (2 * np.pi) ** 2 * (gx**2 + gy**2 + gz**2)
        lap_v = np.fft.ifftn(-g2 * v_g).real
        np.testing.assert_allclose(lap_v, -4 * np.pi * rho, atol=1e-10)

    def test_exchange_negative_and_monotone(self):
        rho = np.array([0.0, 1.0, 8.0])
        vx = exchange_potential(rho)
        assert vx[0] == 0.0
        assert vx[2] < vx[1] < 0.0

    def test_mixing_validation(self):
        with pytest.raises(ValueError):
            mix_potentials(np.zeros(2), np.ones(2), alpha=0.0)


class TestHamiltonian:
    def test_free_electron_apply_is_kinetic(self, rng):
        comm, fft, ham = setup(2)
        dist = fft.dist
        psi = rng.standard_normal(SPHERE.num_g) + 0j
        out = dist.gather(ham.apply(dist.scatter(psi)))
        np.testing.assert_allclose(out, SPHERE.kinetic * psi, atol=1e-12)

    def test_hermitian(self, rng):
        comm, fft, ham = setup(2, atoms=[Atom(position=(0.3, 0.4, 0.5))])
        dist = fft.dist
        a = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(SPHERE.num_g)
        b = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(SPHERE.num_g)
        ha = dist.gather(ham.apply(dist.scatter(a)))
        hb = dist.gather(ham.apply(dist.scatter(b)))
        assert np.vdot(a, hb) == pytest.approx(np.vdot(ha, b), rel=1e-10)

    def test_potential_slab_shape_validated(self):
        comm, fft, ham = setup(2)
        with pytest.raises(ValueError):
            ham.set_potential([np.zeros((3, 3, 3)), np.zeros((3, 3, 3))])


class TestCG:
    def test_free_electron_ground_state(self):
        comm, fft, ham = setup(2)
        bands = initial_bands(fft, 1, seed=3)
        opts = CGOptions(iterations=30)
        for _ in range(6):
            eps = cg_band(comm, ham, bands[0], [], opts)
        assert eps == pytest.approx(0.0, abs=1e-3)

    def test_orthogonality_maintained(self):
        comm, fft, ham = setup(2, atoms=[Atom(position=(0.5, 0.5, 0.5))])
        bands = initial_bands(fft, 3, seed=4)
        driver = SCFDriver(
            comm=comm, ham=ham, occupations=np.array([2.0, 2.0, 2.0])
        )
        driver.solve_bands(bands)
        for i in range(3):
            for j in range(3):
                overlap = dot(comm, bands[i], bands[j])
                expected = 1.0 if i == j else 0.0
                assert abs(overlap - expected) < 1e-8

    def test_subspace_rotation_sorts_eigenvalues(self):
        comm, fft, ham = setup(2, atoms=[Atom(position=(0.5, 0.5, 0.5))])
        bands = initial_bands(fft, 3, seed=5)
        driver = SCFDriver(
            comm=comm, ham=ham, occupations=np.array([2.0, 2.0, 2.0])
        )
        vals = driver.solve_bands(bands)
        assert (np.diff(vals) >= -1e-10).all()

    def test_cg_monotone_energy(self):
        comm, fft, ham = setup(1, atoms=[Atom(position=(0.5, 0.5, 0.5))])
        bands = initial_bands(fft, 1, seed=6)
        energies = []
        for _ in range(5):
            energies.append(
                cg_band(comm, ham, bands[0], [], CGOptions(iterations=2))
            )
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))


class TestParatecSolver:
    def test_decomposition_independence(self):
        r1 = Paratec(ParatecParams(), Communicator(1)).run()
        r4 = Paratec(ParatecParams(), Communicator(4)).run()
        np.testing.assert_allclose(
            r1.eigenvalues, r4.eigenvalues, atol=1e-10
        )

    def test_bound_states_below_free(self):
        p = Paratec(ParatecParams(scf_iterations=1), Communicator(2))
        res = p.run(update_density=False)
        assert res.eigenvalues[0] < 0.0  # bound in the Gaussian wells

    def test_density_positive_and_normalized(self):
        p = Paratec(ParatecParams(), Communicator(2))
        p.run()
        rho = p.density()
        assert (rho >= -1e-12).all()
        # sum over grid of |psi|^2 * occ: occupations x norm / N factor
        occ_total = p.driver.occupations.sum()
        n = np.prod(p.params.grid_shape)
        assert rho.sum() * n == pytest.approx(occ_total, rel=1e-6)

    def test_scf_converges_potential(self):
        p = Paratec(
            ParatecParams(scf_iterations=6, mixing=0.3), Communicator(2)
        )
        res = p.run()
        assert res.potential_change < 0.5

    def test_meter_records_work(self):
        comm = Communicator(2)
        p = Paratec(ParatecParams(scf_iterations=1), comm)
        p.run(update_density=False)
        assert comm.meter.total_flops() > 0


class TestTable6Shape:
    """Qualitative claims of the paper's Table 6."""

    def test_power3_runs_over_half_peak(self):
        # "achieving over 60% of peak on the Power3 using 128 processors"
        r = predict("Power3", ParatecScenario(128))
        assert r.pct_peak > 50.0

    def test_highest_pct_of_all_apps_on_scalar(self):
        # PARATEC %peak on Power3 far exceeds its GTC/LBMHD showings.
        from repro.apps.gtc import GTCScenario
        from repro.apps.gtc import predict as gtc_predict

        paratec_pct = predict("Power3", ParatecScenario(256)).pct_peak
        gtc_pct = gtc_predict("Power3", GTCScenario(256, 400)).pct_peak
        assert paratec_pct > 3 * gtc_pct

    def test_ssp_mode_beats_msp_for_paratec(self):
        # "using the 128 MSP in SSP mode ... resulted in a performance
        # increase of 16%"
        msp = predict("X1", ParatecScenario(128)).gflops_per_proc
        ssp4 = 4 * predict("X1-SSP", ParatecScenario(128)).gflops_per_proc
        assert 1.0 < ssp4 / msp < 1.35

    def test_itanium2_beats_opteron(self):
        # "the situation reversed for PARATEC" (vs GTC/LBMHD)
        r_ita = predict("Itanium2", ParatecScenario(256)).gflops_per_proc
        r_opt = predict("Opteron", ParatecScenario(256)).gflops_per_proc
        assert r_ita > r_opt

    def test_es_declines_at_scale(self):
        # "declining performance at higher concurrencies is caused by
        # the increased communication overhead of the 3D FFTs"
        rates = [
            predict("ES", ParatecScenario(p)).gflops_per_proc
            for p in (128, 512, 2048)
        ]
        assert rates == sorted(rates, reverse=True)
        assert rates[0] / rates[-1] > 1.5

    def test_es_2048_headline(self):
        # "sustaining 5.5 Tflop/s for 2048 processors"
        r = predict("ES", ParatecScenario(2048))
        assert r.aggregate_tflops == pytest.approx(5.5, rel=0.2)

    def test_x1_below_es_absolute(self):
        # "absolute X1 performance is lower than the ES, even though it
        # has a higher peak speed"
        assert (
            predict("X1", ParatecScenario(256)).gflops_per_proc
            < predict("ES", ParatecScenario(256)).gflops_per_proc
        )
