"""Tests for FVCAM's transport operators, polar filter, and remap."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.fvcam import (
    LatLonGrid,
    advect,
    advect_vanleer,
    apply_polar_filter,
    damping_coefficients,
    geopotential,
    remap_column,
    upwind_flux,
    vanleer_flux,
)

GRID = LatLonGrid(im=24, jm=19, km=4)


class TestTransportOperators:
    def test_constant_preserved_periodic(self):
        q = np.full(16, 3.5)
        c = np.full(16, 0.4)
        out = advect_vanleer(q, c, periodic=True)
        np.testing.assert_allclose(out, 3.5, atol=1e-14)

    def test_mass_conserved_periodic(self, rng):
        q = rng.random(32)
        c = 0.8 * (rng.random(32) - 0.5)
        out = advect_vanleer(q, c, periodic=True)
        assert out.sum() == pytest.approx(q.sum(), rel=1e-13)

    def test_mass_conserved_walls(self, rng):
        q = rng.random(32)
        c = 0.8 * (rng.random(32) - 0.5)
        out = advect_vanleer(q, c, periodic=False)
        assert out.sum() == pytest.approx(q.sum(), rel=1e-13)

    def test_upwind_translation(self):
        # courant = 1 exactly translates the field by one cell
        q = np.zeros(16)
        q[5] = 1.0
        out = advect(q, upwind_flux(q, np.ones(16)), periodic=True)
        assert out[6] == pytest.approx(1.0)
        assert out.sum() == pytest.approx(1.0)

    def test_vanleer_monotone(self, rng):
        # monotone data stays monotone (limiter property) for c >= 0
        q = np.sort(rng.random(32))
        c = np.full(32, 0.4)
        out = advect_vanleer(q, c, periodic=False)
        interior = out[2:-2]
        assert (np.diff(interior) > -1e-12).all()

    def test_vanleer_reduces_to_upwind_at_extrema(self):
        q = np.zeros(16)
        q[8] = 1.0  # isolated extremum: slope limited to zero
        c = np.full(16, 0.3)
        vl = vanleer_flux(q, c, periodic=True)
        uw = upwind_flux(q, c, periodic=True)
        np.testing.assert_allclose(vl, uw, atol=1e-14)

    @settings(max_examples=30, deadline=None)
    @given(
        q=arrays(np.float64, 24, elements=st.floats(0.1, 10.0)),
        c0=st.floats(-0.9, 0.9),
    )
    def test_conservation_property(self, q, c0):
        c = np.full(24, c0)
        out = advect_vanleer(q, c, periodic=True)
        assert out.sum() == pytest.approx(q.sum(), rel=1e-10)

    def test_negative_courant_upwind_direction(self):
        q = np.zeros(16)
        q[5] = 1.0
        out = advect(q, upwind_flux(q, -np.ones(16)), periodic=True)
        assert out[4] == pytest.approx(1.0)


class TestPolarFilter:
    def test_zonal_mean_preserved(self, rng):
        field = rng.random((GRID.km, GRID.jm, GRID.im))
        out = apply_polar_filter(GRID, field)
        np.testing.assert_allclose(
            out.mean(axis=-1), field.mean(axis=-1), atol=1e-13
        )

    def test_equatorial_rows_untouched(self, rng):
        field = rng.random((GRID.km, GRID.jm, GRID.im))
        out = apply_polar_filter(GRID, field)
        untouched = np.setdiff1d(np.arange(GRID.jm), GRID.filtered_rows)
        np.testing.assert_array_equal(
            out[:, untouched, :], field[:, untouched, :]
        )

    def test_damps_high_wavenumbers_at_pole_rows(self):
        field = np.zeros((1, GRID.jm, GRID.im))
        m = GRID.im // 2 - 1
        field[0, :, :] = np.cos(m * GRID.longitudes)[None, :]
        out = apply_polar_filter(GRID, field)
        polar = GRID.filtered_rows[0]
        assert np.abs(out[0, polar]).max() < np.abs(field[0, polar]).max()

    def test_coefficients_bounded(self):
        coefs = damping_coefficients(GRID)
        assert (coefs >= 0).all() and (coefs <= 1).all()
        np.testing.assert_allclose(coefs[:, 0], 1.0)

    def test_idempotent_on_fully_damped_modes(self, rng):
        field = rng.random((1, GRID.jm, GRID.im))
        once = apply_polar_filter(GRID, field)
        twice = apply_polar_filter(GRID, once)
        # applying twice damps at most as much again (no amplification)
        assert np.abs(twice).max() <= np.abs(once).max() + 1e-12

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            apply_polar_filter(GRID, np.zeros((4, 4)))


class TestGeopotential:
    def test_suffix_sum(self):
        h = np.ones((3, 2, 2))
        phi = geopotential(h, gravity=10.0)
        np.testing.assert_allclose(phi[0], 30.0)
        np.testing.assert_allclose(phi[2], 10.0)


class TestRemap:
    def test_column_mass_conserved(self, rng):
        h = 1.0 + rng.random((4, 5, 6))
        u = rng.standard_normal((4, 5, 6))
        h2, (u2,) = remap_column(h, [u])
        np.testing.assert_allclose(
            h2.sum(axis=0), h.sum(axis=0), rtol=1e-13
        )

    def test_mass_weighted_field_conserved(self, rng):
        h = 1.0 + rng.random((4, 5, 6))
        u = rng.standard_normal((4, 5, 6))
        h2, (u2,) = remap_column(h, [u])
        np.testing.assert_allclose(
            (h2 * u2).sum(axis=0), (h * u).sum(axis=0), rtol=1e-12
        )

    def test_target_layers_uniform(self, rng):
        h = 1.0 + rng.random((4, 3, 3))
        h2, _ = remap_column(h, [])
        np.testing.assert_allclose(
            h2, np.broadcast_to(h2[0:1], h2.shape), rtol=1e-13
        )

    def test_uniform_column_is_fixed_point(self):
        h = np.full((4, 2, 2), 2.0)
        u = np.arange(16.0).reshape(4, 2, 2)
        h2, (u2,) = remap_column(h, [u])
        np.testing.assert_allclose(h2, h, rtol=1e-14)
        np.testing.assert_allclose(u2, u, rtol=1e-13)

    def test_rejects_nonpositive_thickness(self):
        h = np.ones((3, 2, 2))
        h[1, 0, 0] = 0.0
        with pytest.raises(ValueError):
            remap_column(h, [])
