"""Shared-memory arena pool: lifecycle, visibility, and cleanup.

The pool's contract has three hard edges this file pins down:

* **Allocation** — zero-filled, 64-byte aligned views; per-rank child
  arenas hand out disjoint buffers; a forked child (or a closed pool)
  degrades to private memory instead of allocating shm the owner could
  never unlink.
* **Visibility** — a forked worker's in-place writes land in the
  parent's views (the whole point); a spawned process reaches the same
  bytes by name through picklable :class:`ShmHandles`.
* **Cleanup** — ``close()`` unlinks exactly once, is safe to repeat,
  never invalidates live views (results outlive the pool they were
  allocated from), and the interpreter exits without a single
  resource-tracker "leaked shared_memory" complaint.
"""

from __future__ import annotations

import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.shm import (
    SharedArenaPool,
    ShmArena,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()
_SRC = str(Path(__file__).resolve().parent.parent / "src")


@pytest.fixture
def pool():
    p = SharedArenaPool(slab_bytes=1 << 20, name="test-pool")
    yield p
    p.close()


# -- allocation -----------------------------------------------------------


class TestAllocation:
    def test_buffers_are_zero_filled(self, pool):
        buf = pool.allocate((64, 64))
        assert buf.shape == (64, 64)
        assert buf.dtype == np.float64
        assert not buf.any()

    def test_buffers_are_aligned(self, pool):
        for shape in [(3,), (7, 5), (100,)]:
            buf = pool.allocate(shape)
            addr = buf.__array_interface__["data"][0]
            assert addr % 64 == 0

    def test_buffers_are_disjoint(self, pool):
        a = pool.allocate(100)
        b = pool.allocate(100)
        a[:] = 1.0
        b[:] = 2.0
        assert (a == 1.0).all() and (b == 2.0).all()

    def test_int_shape_and_dtype(self, pool):
        buf = pool.allocate(10, dtype=np.int32)
        assert buf.shape == (10,)
        assert buf.dtype == np.int32

    def test_oversized_request_gets_own_slab(self, pool):
        small = pool.allocate(8)
        big = pool.allocate((1 << 18,))  # 2 MB > the 1 MB slab
        assert big.nbytes > (1 << 20)
        assert pool.num_segments == 2
        small[:] = 3.0
        big[:] = 4.0
        assert (small == 3.0).all()

    def test_writes_persist(self, pool):
        buf = pool.allocate((32, 32))
        buf[:] = 42.0
        assert float(buf.sum()) == 42.0 * 32 * 32


# -- arena semantics ------------------------------------------------------


class TestShmArena:
    def test_scratch_contract(self, pool):
        arena = pool.arena("a")
        buf = arena.scratch("k", (16, 16))
        assert not buf.any()
        buf[:] = 5.0
        again = arena.scratch("k", (16, 16))
        assert again is buf  # same pooled buffer, contents intact
        assert (again == 5.0).all()

    def test_shared_flag(self, pool):
        arena = pool.arena("a")
        assert arena.shared
        pool.close()
        assert not arena.shared

    def test_for_rank_children_are_disjoint(self, pool):
        arena = pool.arena("a")
        bufs = [arena.for_rank(r).scratch("k", 64) for r in range(4)]
        for r, buf in enumerate(bufs):
            buf[:] = float(r + 1)
        for r, buf in enumerate(bufs):
            assert (buf == float(r + 1)).all()

    def test_for_rank_children_are_cached(self, pool):
        arena = pool.arena("a")
        assert arena.for_rank(2) is arena.for_rank(2)
        assert isinstance(arena.for_rank(2), ShmArena)

    def test_fallback_after_close_is_private_but_correct(self, pool):
        arena = pool.arena("a")
        pool.close()
        buf = arena.scratch("new-key", (8, 8))
        assert not buf.any()  # the contract holds either way
        buf[:] = 1.0
        assert arena.scratch("new-key", (8, 8)) is buf


# -- lifecycle ------------------------------------------------------------


class TestLifecycle:
    def test_double_close_is_safe(self):
        pool = SharedArenaPool(slab_bytes=1 << 20)
        pool.allocate(100)
        pool.close()
        pool.close()
        assert pool.closed

    def test_views_outlive_the_pool(self):
        pool = SharedArenaPool(slab_bytes=1 << 20)
        buf = pool.arena("a").scratch("x", (100, 100))
        buf[:] = 7.0
        pool.close()
        # the mapping must survive unlink while views reference it
        assert float(buf.sum()) == 7.0 * 100 * 100

    def test_allocate_after_close_returns_none(self):
        pool = SharedArenaPool(slab_bytes=1 << 20)
        pool.close()
        assert pool.try_allocate(10) is None
        with pytest.raises(RuntimeError, match="not writable"):
            pool.allocate(10)

    def test_unlink_exactly_once(self):
        pool = SharedArenaPool(slab_bytes=1 << 20)
        pool.allocate(100)
        names = [seg.name for seg in pool._segments]
        pool.close()
        for name in names:
            assert not Path("/dev/shm", name.lstrip("/")).exists()
        pool.close()  # second close must not raise on missing segments

    def test_context_manager_closes(self):
        with SharedArenaPool(slab_bytes=1 << 20) as pool:
            pool.allocate(10)
        assert pool.closed

    def test_introspection_counts(self, pool):
        pool.allocate(10)
        pool.allocate((20, 20), label="lab")
        assert pool.num_buffers == 2
        assert pool.nbytes == 10 * 8 + 20 * 20 * 8
        assert pool.num_segments == 1


# -- cross-process visibility ---------------------------------------------


@pytest.mark.skipif(not _HAS_FORK, reason="needs the fork start method")
class TestForkVisibility:
    def test_forked_writes_visible_to_parent(self, pool):
        arena = pool.arena("a")
        views = [arena.for_rank(r).scratch("block", 64) for r in range(4)]

        def worker(rank):
            views[rank][:] = float(rank + 10)

        ctx = multiprocessing.get_context("fork")
        procs = [ctx.Process(target=worker, args=(r,)) for r in range(4)]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        for r, view in enumerate(views):
            assert (view == float(r + 10)).all()

    def test_forked_child_allocation_falls_back_private(self, pool):
        arena = pool.arena("a")

        def worker(conn):
            # a brand-new key in the child: must not create shm the
            # parent never learns about — plain private zeros instead
            buf = arena.scratch("child-only-key", 16)
            conn.send(bool(buf.any()))
            conn.close()

        ctx = multiprocessing.get_context("fork")
        recv, send = ctx.Pipe(duplex=False)
        p = ctx.Process(target=worker, args=(send,))
        p.start()
        send.close()
        dirty = recv.recv()
        p.join()
        assert p.exitcode == 0
        assert not dirty
        # and the parent's segment count is unchanged
        assert pool.num_buffers == 0

    def test_child_close_cannot_unlink_parent_segments(self, pool):
        pool.allocate(100)
        names = [seg.name for seg in pool._segments]

        ctx = multiprocessing.get_context("fork")
        p = ctx.Process(target=pool.close)
        p.start()
        p.join()
        assert p.exitcode == 0
        for name in names:  # pid guard: the child was not the owner
            assert Path("/dev/shm", name.lstrip("/")).exists()


def _spawn_attach_main(handles, label):
    attached = handles.open()
    try:
        view = attached.view(label)
        view[:] = 99.0
    finally:
        attached.close()


class TestHandles:
    def test_handles_resolve_labels(self, pool):
        pool.allocate((8, 8), label="a/b")
        handles = pool.handles()
        attached = handles.open()
        try:
            assert attached.labels() == ["a/b"]
            view = attached.view("a/b")
            view[:] = 1.5
        finally:
            attached.close()

    @pytest.mark.slow
    def test_spawned_process_attaches_by_name(self, pool):
        buf = pool.allocate((16,), label="spawn-target")
        handles = pool.handles()
        ctx = multiprocessing.get_context("spawn")
        p = ctx.Process(
            target=_spawn_attach_main, args=(handles, "spawn-target")
        )
        p.start()
        p.join()
        assert p.exitcode == 0
        assert (buf == 99.0).all()


# -- availability / degradation -------------------------------------------


class TestAvailability:
    def test_disable_env_forces_unavailable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        assert not shm_available()
        with pytest.raises(RuntimeError, match="REPRO_SHM_DISABLE"):
            SharedArenaPool()

    def test_available_here(self):
        assert shm_available()


# -- interpreter-exit hygiene ---------------------------------------------


_EXIT_SCRIPT = """
import numpy as np
from repro.runtime.shm import SharedArenaPool

pool = SharedArenaPool(slab_bytes=1 << 20)
arena = pool.arena("a")
buf = arena.for_rank(0).scratch("x", (64, 64))
buf[:] = 3.0
{closing}
print(float(buf.sum()))
"""


class TestExitHygiene:
    @pytest.mark.parametrize(
        "closing", ["pool.close()", "del pool, arena"], ids=["close", "gc"]
    )
    def test_no_resource_tracker_warnings(self, closing):
        """Exit clean whether the pool is closed or merely abandoned:
        no 'leaked shared_memory' tracker complaints, no 'Exception
        ignored' GC noise, and live views still readable."""
        proc = subprocess.run(
            [sys.executable, "-c", _EXIT_SCRIPT.format(closing=closing)],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": _SRC},
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == str(3.0 * 64 * 64)
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "Exception ignored" not in proc.stderr, proc.stderr
        assert proc.stderr == ""

    def test_no_segments_left_behind(self):
        before = set(os.listdir("/dev/shm"))
        pool = SharedArenaPool(slab_bytes=1 << 20, name="leak-check")
        pool.allocate(100)
        pool.close()
        after = set(os.listdir("/dev/shm"))
        assert after <= before
