"""Tests for the Kleinman–Bylander nonlocal pseudopotential."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.paratec import (
    Atom,
    GSphere,
    Hamiltonian,
    ParallelFFT3D,
    SphereDistribution,
    dot,
    initial_bands,
)
from repro.apps.paratec.cg import CGOptions, cg_band
from repro.apps.paratec.projectors import (
    NonlocalChannel,
    NonlocalPotential,
    attach_nonlocal,
)
from repro.simmpi import Communicator

SPHERE = GSphere(ecut=6.0, grid_shape=(12, 12, 12))


def setup(nranks=2, strength=1.0):
    dist = SphereDistribution(SPHERE, nranks)
    comm = Communicator(nranks)
    fft = ParallelFFT3D(dist, comm)
    ham = Hamiltonian(fft=fft)
    channels = [
        NonlocalChannel(
            atom=Atom(position=(0.5, 0.5, 0.5)), strength=strength
        )
    ]
    vnl = NonlocalPotential(dist, comm, channels)
    return comm, dist, ham, vnl


class TestNonlocalOperator:
    def test_channel_validation(self):
        with pytest.raises(ValueError):
            NonlocalChannel(atom=Atom(position=(0, 0, 0)), width=0.0)

    def test_projector_normalized(self):
        comm, dist, ham, vnl = setup(3)
        beta_full = dist.gather(vnl._beta_local[0])
        assert np.linalg.norm(beta_full) == pytest.approx(1.0)

    def test_rank_one_action(self):
        """V_nl |psi> = D <beta|psi> |beta> for a single channel."""
        comm, dist, ham, vnl = setup(2, strength=2.5)
        rng = np.random.default_rng(0)
        psi = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(
            SPHERE.num_g
        )
        out = dist.gather(vnl.apply(dist.scatter(psi)))
        beta = dist.gather(vnl._beta_local[0])
        want = 2.5 * np.vdot(beta, psi) * beta
        np.testing.assert_allclose(out, want, atol=1e-12)

    def test_hermitian(self):
        comm, dist, ham, vnl = setup(2)
        rng = np.random.default_rng(1)
        a = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(SPHERE.num_g)
        b = rng.standard_normal(SPHERE.num_g) + 1j * rng.standard_normal(SPHERE.num_g)
        va = dist.gather(vnl.apply(dist.scatter(a)))
        vb = dist.gather(vnl.apply(dist.scatter(b)))
        assert np.vdot(a, vb) == pytest.approx(np.vdot(va, b), rel=1e-10)

    def test_decomposition_independence(self):
        rng = np.random.default_rng(2)
        psi = rng.standard_normal(SPHERE.num_g) + 0j
        results = []
        for n in (1, 2, 4):
            comm, dist, ham, vnl = setup(n)
            results.append(dist.gather(vnl.apply(dist.scatter(psi))))
        np.testing.assert_allclose(results[0], results[1], atol=1e-12)
        np.testing.assert_allclose(results[0], results[2], atol=1e-12)

    def test_work_descriptor(self):
        comm, dist, ham, vnl = setup(2)
        w = vnl.apply_work()
        assert w.flops > 0 and w.blas3_fraction == 1.0


class TestAttachedHamiltonian:
    def test_attach_composes(self):
        comm, dist, ham, vnl = setup(2, strength=3.0)
        attach_nonlocal(ham, vnl)
        rng = np.random.default_rng(3)
        psi = dist.scatter(
            rng.standard_normal(SPHERE.num_g)
            + 1j * rng.standard_normal(SPHERE.num_g)
        )
        full = dist.gather(ham.apply(psi))
        local = dist.gather(ham.apply_local(psi))
        nl = dist.gather(vnl.apply(psi))
        np.testing.assert_allclose(full, local + nl, atol=1e-12)

    def test_double_attach_rejected(self):
        comm, dist, ham, vnl = setup(2)
        attach_nonlocal(ham, vnl)
        with pytest.raises(ValueError):
            attach_nonlocal(ham, vnl)

    def test_repulsive_channel_raises_ground_state(self):
        """First-order perturbation: D > 0 pushes the lowest band up."""
        def ground_energy(strength):
            comm, dist, ham, vnl = setup(2, strength=strength)
            if strength != 0.0:
                attach_nonlocal(ham, vnl)
            fft = ham.fft
            bands = initial_bands(fft, 1, seed=5)
            e = None
            for _ in range(6):
                e = cg_band(comm, ham, bands[0], [], CGOptions(iterations=20))
            return e

        e_free = ground_energy(0.0)
        e_repulsive = ground_energy(0.5)
        e_attractive = ground_energy(-0.5)
        assert e_attractive < e_free < e_repulsive

    def test_attractive_channel_binds(self):
        comm, dist, ham, vnl = setup(2, strength=-2.0)
        attach_nonlocal(ham, vnl)
        bands = initial_bands(ham.fft, 1, seed=6)
        e = None
        for _ in range(8):
            e = cg_band(comm, ham, bands[0], [], CGOptions(iterations=20))
        assert e < -0.5  # bound well below the free-electron zero
