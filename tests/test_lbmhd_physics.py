"""Physics tests for the LBMHD equilibria, collision, and streaming."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.lbmhd import (
    CollisionParams,
    collide,
    collision_work,
    equilibrium_state,
    f_equilibrium,
    g_equilibrium,
    split_state,
    stream_periodic,
)
from repro.apps.lbmhd.fields import (
    density,
    divergence,
    magnetic_field,
    momentum,
)
from repro.apps.lbmhd.lattice import NSLOTS, Q15_VELOCITIES, Q27_VELOCITIES

SHAPE = (4, 4, 4)


def small_fields(seed=0, amp=0.03):
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.02 * rng.standard_normal(SHAPE)
    u = amp * rng.standard_normal((3, *SHAPE))
    B = amp * rng.standard_normal((3, *SHAPE))
    return rho, u, B


small_floats = st.floats(min_value=-0.05, max_value=0.05, allow_nan=False)


class TestEquilibriumMoments:
    def test_f_density(self):
        rho, u, B = small_fields()
        feq = f_equilibrium(rho, u, B)
        np.testing.assert_allclose(feq.sum(axis=0), rho, atol=1e-13)

    def test_f_momentum(self):
        rho, u, B = small_fields()
        feq = f_equilibrium(rho, u, B)
        mom = np.einsum("i...,ia->a...", feq, Q27_VELOCITIES.astype(float))
        np.testing.assert_allclose(mom, rho * u, atol=1e-13)

    def test_f_stress_includes_maxwell(self):
        rho, u, B = small_fields()
        feq = f_equilibrium(rho, u, B)
        xi = Q27_VELOCITIES.astype(float)
        Pi = np.einsum("i...,ia,ib->ab...", feq, xi, xi)
        eye = np.eye(3)[:, :, None, None, None]
        B2 = (B**2).sum(axis=0)
        target = (
            (rho / 3.0) * eye
            + rho * np.einsum("a...,b...->ab...", u, u)
            + 0.5 * B2 * eye
            - np.einsum("a...,b...->ab...", B, B)
        )
        np.testing.assert_allclose(Pi, target, atol=1e-13)

    def test_g_zeroth_moment_is_B(self):
        _, u, B = small_fields()
        geq = g_equilibrium(u, B)
        np.testing.assert_allclose(geq.sum(axis=0), B, atol=1e-13)

    def test_g_first_moment_is_induction_tensor(self):
        _, u, B = small_fields()
        geq = g_equilibrium(u, B)
        eta = Q15_VELOCITIES.astype(float)
        m1 = np.einsum("aj,ak...->jk...", eta, geq)
        lam = np.einsum("j...,k...->jk...", u, B) - np.einsum(
            "j...,k...->jk...", B, u
        )
        np.testing.assert_allclose(m1, lam, atol=1e-13)

    @settings(max_examples=25, deadline=None)
    @given(
        u=arrays(np.float64, (3,), elements=small_floats),
        B=arrays(np.float64, (3,), elements=small_floats),
    )
    def test_uniform_equilibrium_moments_property(self, u, B):
        rho = np.array(1.0)
        feq = f_equilibrium(rho, u, B)
        assert feq.sum() == pytest.approx(1.0, abs=1e-12)
        mom = feq @ Q27_VELOCITIES.astype(float)
        np.testing.assert_allclose(mom, u, atol=1e-12)
        geq = g_equilibrium(u, B)
        np.testing.assert_allclose(geq.sum(axis=0), B, atol=1e-12)


class TestCollision:
    def params(self) -> CollisionParams:
        return CollisionParams(tau=0.8, tau_m=0.9)

    def state(self):
        rho, u, B = small_fields(seed=3)
        return equilibrium_state(rho, u, B)

    def test_unstable_tau_rejected(self):
        with pytest.raises(ValueError):
            CollisionParams(tau=0.5)

    def test_transport_coefficients(self):
        p = CollisionParams(tau=0.8, tau_m=1.1)
        assert p.viscosity == pytest.approx(0.1)
        assert p.resistivity == pytest.approx(0.2)

    def test_equilibrium_is_fixed_point(self):
        state = self.state()
        out = collide(state, self.params())
        np.testing.assert_allclose(out, state, atol=1e-12)

    def test_input_not_modified(self):
        state = self.state()
        before = state.copy()
        collide(state, self.params())
        np.testing.assert_array_equal(state, before)

    def test_conserves_moments_pointwise(self):
        # Start *away* from equilibrium: relax f towards a shifted state.
        rng = np.random.default_rng(7)
        state = self.state()
        state += 0.001 * rng.standard_normal(state.shape)
        out = collide(state, self.params())
        f0, g0 = split_state(state)
        f1, g1 = split_state(out)
        np.testing.assert_allclose(density(f1), density(f0), atol=1e-13)
        np.testing.assert_allclose(momentum(f1), momentum(f0), atol=1e-13)
        np.testing.assert_allclose(
            magnetic_field(g1), magnetic_field(g0), atol=1e-13
        )

    def test_relaxation_reduces_distance_to_equilibrium(self):
        rng = np.random.default_rng(11)
        state = self.state() + 0.001 * rng.standard_normal((NSLOTS, *SHAPE))
        p = self.params()
        out = collide(state, p)
        f0, _ = split_state(state)
        f1, _ = split_state(out)
        rho, u, B = small_fields(seed=3)
        # distance to the *post-collision* equilibrium must not grow
        feq_new = f_equilibrium(density(f1), momentum(f1) / density(f1),
                                magnetic_field(split_state(out)[1]))
        feq_old = f_equilibrium(density(f0), momentum(f0) / density(f0),
                                magnetic_field(split_state(state)[1]))
        assert np.abs(f1 - feq_new).sum() < np.abs(f0 - feq_old).sum()


class TestStreaming:
    def test_conserves_every_slot_total(self):
        rng = np.random.default_rng(5)
        state = rng.random((NSLOTS, *SHAPE))
        out = stream_periodic(state)
        np.testing.assert_allclose(
            out.sum(axis=(1, 2, 3)), state.sum(axis=(1, 2, 3)), atol=1e-12
        )

    def test_pure_translation(self):
        # A delta at the origin moves by exactly the slot's velocity.
        state = np.zeros((NSLOTS, *SHAPE))
        state[:, 0, 0, 0] = 1.0
        out = stream_periodic(state)
        from repro.apps.lbmhd.lattice import slot_shifts

        for s, (cx, cy, cz) in enumerate(slot_shifts()):
            assert out[s, cx % 4, cy % 4, cz % 4] == 1.0
            assert out[s].sum() == 1.0

    def test_roundtrip_under_opposite_shifts(self):
        rng = np.random.default_rng(6)
        state = rng.random((NSLOTS, *SHAPE))
        # streaming 4 times on a 4-cell lattice returns to start for
        # |c| = 1 slots and for c = 0; diagonal slots too (period 4).
        out = state
        for _ in range(4):
            out = stream_periodic(out)
        np.testing.assert_allclose(out, state, atol=1e-14)

    def test_rejects_bad_slot_count(self):
        with pytest.raises(ValueError):
            stream_periodic(np.zeros((10, 4, 4, 4)))


class TestCollisionWork:
    def test_scales_with_points(self):
        w1 = collision_work(100)
        w2 = collision_work(200)
        assert w2.flops == pytest.approx(2 * w1.flops)
        assert w2.bytes_unit == pytest.approx(2 * w1.bytes_unit)

    def test_has_scalar_traffic_override(self):
        w = collision_work(10)
        assert w.scalar_bytes_unit is not None
        assert w.scalar_bytes_unit > w.bytes_unit

    def test_highly_vectorizable(self):
        assert collision_work(10).vector_fraction > 0.99


class TestDivergenceFree:
    def test_initial_orszag_tang_divergence_free(self):
        from repro.apps.lbmhd import orszag_tang_fields

        _, u, B = orszag_tang_fields((16, 16, 16), 0.05, 0.05)
        assert np.abs(divergence(B)).max() < 1e-2  # discrete curl fields
