"""Degenerate layouts: P=1 harness runs and flat halo-exchange axes.

The harness (phase scopes, ledger attachment) must be numerically
invisible: a single-rank run through ``harness.run`` is bitwise
identical to constructing and stepping the solver directly.  And the
batched halo exchange must handle processor grids that are flat along
one or more axes (``_halo_plan`` returns ``None`` there — the periodic
wrap is purely local).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import harness
from repro.simmpi import Communicator


class TestSingleRankBitwise:
    def test_lbmhd(self):
        from repro.apps.lbmhd import LBMHD3D, LBMHDParams

        params = LBMHDParams(shape=(8, 8, 8))
        direct = LBMHD3D(params, Communicator(1))
        direct.run(3)
        via_harness = harness.run("lbmhd", params, steps=3, nprocs=1)
        assert np.array_equal(
            direct.global_state(), via_harness.state.global_state()
        )

    def test_gtc(self):
        from repro.apps.gtc import GTC, GTCParams

        params = GTCParams(
            mpsi=8, mtheta=16, ntoroidal=1, particles_per_cell=3
        )
        direct = GTC(params, Communicator(1))
        direct.run(2)
        via_harness = harness.run("gtc", params, steps=2, nprocs=1)
        assert np.array_equal(direct.charge[0], via_harness.state.charge[0])
        for attr in ("r", "theta", "zeta", "vpar", "weight"):
            assert np.array_equal(
                getattr(direct.particles[0], attr),
                getattr(via_harness.state.particles[0], attr),
            )

    def test_fvcam(self):
        from repro.apps.fvcam import FVCAM, FVCAMParams, LatLonGrid

        # 4 steps crosses both the physics and remap intervals
        params = FVCAMParams(grid=LatLonGrid(im=24, jm=18, km=4))
        direct = FVCAM(params, Communicator(1))
        direct.run(4)
        via_harness = harness.run("fvcam", params, steps=4, nprocs=1)
        for a, b in zip(
            direct.global_fields(), via_harness.state.global_fields()
        ):
            assert np.array_equal(a, b)

    def test_paratec(self):
        from repro.apps.paratec import Paratec, ParatecParams

        params = ParatecParams()
        direct = Paratec(params, Communicator(1))
        for _ in range(2):
            eigenvalues = direct.driver.solve_bands(direct.bands)
            direct.driver.update_potential(direct.bands)
        via_harness = harness.run("paratec", params, steps=2, nprocs=1)
        assert np.array_equal(
            eigenvalues, via_harness.state.result.eigenvalues
        )
        for a, b in zip(direct.bands, via_harness.state.bands):
            assert np.array_equal(a, b)


class TestFlatAxisHaloExchange:
    @pytest.mark.parametrize(
        "proc_grid", [(4, 1, 1), (1, 4, 1), (1, 1, 4), (2, 2, 1), (1, 1, 1)]
    )
    def test_block_matches_per_rank_path(self, proc_grid):
        from repro.apps.lbmhd.decomp import (
            CartesianDecomposition3D,
            exchange_halos,
            exchange_halos_block,
        )

        decomp = CartesianDecomposition3D(
            global_shape=(8, 4, 4), proc_grid=proc_grid
        )
        lx, ly, lz = decomp.local_shape
        rng = np.random.default_rng(3)
        nslots = 5
        block = np.zeros((nslots, decomp.nprocs, lx + 2, ly + 2, lz + 2))
        block[:, :, 1 : lx + 1, 1 : ly + 1, 1 : lz + 1] = rng.standard_normal(
            (nslots, decomp.nprocs, lx, ly, lz)
        )
        reference = [block[:, r].copy() for r in range(decomp.nprocs)]

        exchange_halos_block(Communicator(decomp.nprocs), decomp, block)
        exchange_halos(Communicator(decomp.nprocs), decomp, reference)
        for r in range(decomp.nprocs):
            assert np.array_equal(block[:, r], reference[r]), proc_grid

    def test_flat_axes_wrap_periodically(self):
        from repro.apps.lbmhd.decomp import (
            CartesianDecomposition3D,
            exchange_halos_block,
        )

        decomp = CartesianDecomposition3D(
            global_shape=(8, 4, 4), proc_grid=(4, 1, 1)
        )
        lx, ly, lz = decomp.local_shape
        block = np.zeros((1, 4, lx + 2, ly + 2, lz + 2))
        core = np.arange(4 * lx * ly * lz, dtype=float).reshape(
            1, 4, lx, ly, lz
        )
        block[:, :, 1 : lx + 1, 1 : ly + 1, 1 : lz + 1] = core
        exchange_halos_block(Communicator(4), decomp, block)
        # y and z are flat: ghosts wrap each rank's own core locally
        assert np.array_equal(
            block[:, :, 1 : lx + 1, 0, 1 : lz + 1], core[..., -1, :]
        )
        assert np.array_equal(
            block[:, :, 1 : lx + 1, 1 : ly + 1, lz + 1], core[..., 0]
        )
        # x is decomposed: rank 0's low ghost is rank 3's high core plane
        assert np.array_equal(
            block[:, 0, 0, 1 : ly + 1, 1 : lz + 1], core[:, 3, -1]
        )
