"""Cross-cutting property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.simmpi import Communicator, Message


class TestExchangeIntegrity:
    """Random message patterns: the runtime must never lose or corrupt data."""

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        pattern=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=1, max_value=20),
            ),
            min_size=1,
            max_size=12,
        ),
    )
    def test_every_payload_arrives_intact(self, n, pattern):
        comm = Communicator(n)
        rng = np.random.default_rng(42)
        messages = []
        expected: dict[int, list[np.ndarray]] = {}
        for src, dst, size in pattern:
            src %= n
            dst %= n
            payload = rng.random(size)
            messages.append(Message(src, dst, payload))
            expected.setdefault(dst, []).append(payload.copy())
        received = comm.exchange(messages)
        for dst, payloads in expected.items():
            assert len(received[dst]) == len(payloads)
            for got, want in zip(received[dst], payloads):
                np.testing.assert_array_equal(got, want)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=8))
    def test_allreduce_equals_numpy_sum(self, n):
        comm = Communicator(n)
        rng = np.random.default_rng(n)
        contribs = [rng.random(5) for _ in range(n)]
        out = comm.allreduce(contribs)
        want = np.sum(contribs, axis=0)
        for arr in out:
            np.testing.assert_allclose(arr, want)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=2, max_value=6))
    def test_alltoallv_is_a_permutation(self, n):
        comm = Communicator(n)
        send = [
            [np.array([100.0 * i + j]) for j in range(n)] for i in range(n)
        ]
        recv = comm.alltoallv(send)
        flat_sent = sorted(
            float(send[i][j][0]) for i in range(n) for j in range(n)
        )
        flat_recv = sorted(
            float(recv[j][i][0]) for i in range(n) for j in range(n)
        )
        assert flat_sent == flat_recv


class TestCICPartitionOfUnity:
    """CIC stencils must distribute each particle's exact weight."""

    @settings(max_examples=30, deadline=None)
    @given(
        r=st.floats(min_value=0.12, max_value=0.98),
        theta=st.floats(min_value=0.0, max_value=6.28),
        w=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_single_particle_weight_partition(self, r, theta, w):
        from repro.apps.gtc import ParticleArray, PoloidalGrid, deposit_scalar

        grid = PoloidalGrid(mpsi=16, mtheta=24)
        p = ParticleArray(
            r=np.array([r]),
            theta=np.array([theta]),
            zeta=np.array([0.0]),
            vpar=np.array([0.0]),
            weight=np.array([w]),
        )
        rho = deposit_scalar(grid, p)
        assert rho.sum() == pytest.approx(w, rel=1e-12)
        assert (rho >= 0).all()

    @settings(max_examples=20, deadline=None)
    @given(gyro=st.floats(min_value=0.0, max_value=0.08))
    def test_gyro_average_preserves_weight(self, gyro):
        from repro.apps.gtc import (
            PoloidalGrid,
            TorusGrid,
            deposit_scalar,
            load_particles,
        )

        grid = PoloidalGrid(mpsi=16, mtheta=24)
        torus = TorusGrid(plane=grid, ntoroidal=2)
        p = load_particles(torus, 50, 0, np.random.default_rng(3))
        rho = deposit_scalar(grid, p, gyro_radius=gyro)
        assert rho.sum() == pytest.approx(p.total_charge, rel=1e-12)


class TestTransportTVD:
    """van Leer transport must not amplify total variation (TVD)."""

    @settings(max_examples=30, deadline=None)
    @given(
        q=arrays(
            np.float64,
            32,
            elements=st.floats(min_value=0.0, max_value=10.0),
        ),
        c=st.floats(min_value=-0.9, max_value=0.9),
    )
    def test_total_variation_diminishing(self, q, c):
        from repro.apps.fvcam import advect_vanleer

        courant = np.full(32, c)
        out = advect_vanleer(q, courant, periodic=True)

        def tv(x):
            return np.abs(np.diff(np.concatenate([x, x[:1]]))).sum()

        assert tv(out) <= tv(q) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        q=arrays(
            np.float64,
            32,
            elements=st.floats(min_value=0.5, max_value=10.0),
        ),
        c=st.floats(min_value=-0.9, max_value=0.9),
    )
    def test_positivity_preserved(self, q, c):
        from repro.apps.fvcam import advect_vanleer

        out = advect_vanleer(q, np.full(32, c), periodic=True)
        assert (out >= -1e-12).all()


class TestRemapProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        h=arrays(
            np.float64,
            (5, 4),
            elements=st.floats(min_value=0.1, max_value=10.0),
        ),
        u=arrays(
            np.float64,
            (5, 4),
            elements=st.floats(min_value=-10.0, max_value=10.0),
        ),
    )
    def test_remap_conserves_mass_and_momentum(self, h, u):
        from repro.apps.fvcam import remap_column

        h2, (u2,) = remap_column(h, [u])
        np.testing.assert_allclose(h2.sum(axis=0), h.sum(axis=0), rtol=1e-12)
        np.testing.assert_allclose(
            (h2 * u2).sum(axis=0), (h * u).sum(axis=0), rtol=1e-9, atol=1e-12
        )


class TestSphereProperty:
    @settings(max_examples=10, deadline=None)
    @given(ecut=st.floats(min_value=2.0, max_value=10.0))
    def test_sphere_inversion_symmetry(self, ecut):
        from repro.apps.paratec import GSphere

        sphere = GSphere(ecut=ecut, grid_shape=(14, 14, 14))
        vecs = {tuple(v) for v in sphere.vectors}
        assert all((-a, -b, -c) in vecs for (a, b, c) in vecs)
        assert (0, 0, 0) in vecs
