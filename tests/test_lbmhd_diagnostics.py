"""Tests for LBMHD spectra and checkpoint/restart."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lbmhd import (
    LBMHD3D,
    LBMHDParams,
    load_checkpoint,
    moments,
    save_checkpoint,
    shell_spectrum,
    turbulence_report,
)
from repro.simmpi import Communicator

SHAPE = (8, 8, 8)


class TestShellSpectrum:
    def test_parseval(self, rng):
        field = rng.standard_normal((3, *SHAPE))
        k, spectrum = shell_spectrum(field)
        n = np.prod(SHAPE)
        f_hat = np.fft.fftn(field, axes=(1, 2, 3)) / n
        e0 = 0.5 * (np.abs(f_hat[:, 0, 0, 0]) ** 2).sum()
        total = 0.5 * (field**2).sum(axis=0).mean()
        assert spectrum.sum() + e0 == pytest.approx(total, rel=1e-10)

    def test_single_mode_lands_in_its_shell(self):
        x = 2 * np.pi * np.arange(8) / 8
        field = np.zeros((3, *SHAPE))
        field[0] = np.cos(3 * x)[:, None, None]
        k, spectrum = shell_spectrum(field)
        assert np.argmax(spectrum) == np.where(k == 3)[0][0]
        others = spectrum.sum() - spectrum[k == 3].sum()
        assert others < 1e-12 * spectrum.sum()

    def test_uniform_field_has_empty_spectrum(self):
        field = np.ones((3, *SHAPE))
        _, spectrum = shell_spectrum(field)
        np.testing.assert_allclose(spectrum, 0.0, atol=1e-15)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            shell_spectrum(np.zeros((2, 4, 4, 4)))


class TestTurbulenceReport:
    def test_centroid_rises_as_turbulence_develops(self):
        sim = LBMHD3D(
            LBMHDParams(shape=(16, 16, 8), tau=0.6, tau_m=0.6, u0=0.08, b0=0.08),
            Communicator(4),
        )
        before = turbulence_report(sim)
        sim.run(40)
        after = turbulence_report(sim)
        # nonlinear interactions move kinetic energy to higher shells
        assert after.kinetic_centroid > before.kinetic_centroid

    def test_report_fields(self):
        sim = LBMHD3D(LBMHDParams(shape=SHAPE), Communicator(1))
        rep = turbulence_report(sim)
        assert rep.step == 0
        assert len(rep.shells) == len(rep.kinetic_spectrum)
        assert (rep.kinetic_spectrum >= 0).all()


class TestCheckpoint:
    def test_roundtrip_exact(self):
        sim = LBMHD3D(LBMHDParams(shape=SHAPE), Communicator(4))
        sim.run(3)
        blob = save_checkpoint(sim)
        restored = load_checkpoint(blob, Communicator(4))
        np.testing.assert_array_equal(
            restored.global_state(), sim.global_state()
        )
        assert restored.step_count == 3

    def test_restart_across_different_rank_count(self):
        sim = LBMHD3D(LBMHDParams(shape=SHAPE), Communicator(8))
        sim.run(2)
        blob = save_checkpoint(sim)
        restored = load_checkpoint(blob, Communicator(2))
        sim.step()
        restored.step()
        np.testing.assert_array_equal(
            restored.global_state(), sim.global_state()
        )

    def test_parameters_survive(self):
        params = LBMHDParams(shape=SHAPE, tau=0.9, tau_m=0.7, u0=0.02, b0=0.03)
        sim = LBMHD3D(params, Communicator(1))
        restored = load_checkpoint(save_checkpoint(sim), Communicator(1))
        assert restored.params == params

    def test_blob_is_compact(self):
        sim = LBMHD3D(LBMHDParams(shape=SHAPE), Communicator(1))
        blob = save_checkpoint(sim)
        raw = sim.global_state().nbytes
        assert len(blob) < raw  # compression actually engaged
