"""The unified SPMD harness: protocol, registry, driver, and ledger."""

from __future__ import annotations

import numpy as np
import pytest

from repro import harness
from repro.harness import APPLICATIONS, SPMDApplication, get_application
from repro.perfmodel.breakdown import PhaseBreakdown
from repro.simmpi import UNPHASED, Communicator, PhaseLedger


class TestRegistry:
    def test_all_four_apps_registered(self):
        assert set(APPLICATIONS) == {"lbmhd", "gtc", "fvcam", "paratec"}

    def test_adapters_satisfy_protocol(self):
        for app in APPLICATIONS.values():
            assert isinstance(app, SPMDApplication)

    def test_unknown_key_lists_options(self):
        with pytest.raises(KeyError, match="gtc"):
            get_application("nope")

    def test_register_rejects_non_protocol(self):
        with pytest.raises(TypeError):
            harness.register(object())

    def test_register_and_replace(self):
        original = APPLICATIONS["lbmhd"]
        try:
            harness.register(original)  # idempotent
            assert APPLICATIONS["lbmhd"] is original
        finally:
            APPLICATIONS["lbmhd"] = original

    def test_gtc_phase_names_match_paper(self):
        assert APPLICATIONS["gtc"].phases == (
            "charge", "reduce", "field", "push", "shift",
        )


class TestDriver:
    @pytest.mark.parametrize("key", ["lbmhd", "gtc", "fvcam", "paratec"])
    def test_runs_every_app_ideal(self, key):
        result = harness.run(key, steps=1)
        assert result.steps == 1
        assert result.machine_name == "ideal"
        assert result.ledger is not None
        assert result.flops_per_step > 0
        assert result.diagnostics  # every app reports something after a step

    @pytest.mark.parametrize("key", ["lbmhd", "gtc", "fvcam", "paratec"])
    def test_phases_attributed(self, key):
        params = None
        if key == "fvcam":
            from repro.apps.fvcam import FVCAMParams, LatLonGrid

            # the default single-rank layout has no communication
            params = FVCAMParams(
                grid=LatLonGrid(im=24, jm=18, km=4), py=3, pz=2
            )
        result = harness.run(key, params, steps=2, machine="ES")
        recorded = set(result.ledger.phases) - {UNPHASED}
        assert recorded  # at least one named phase saw activity
        assert recorded <= set(result.app.phases)
        totals = result.ledger.totals()
        assert totals.flops.sum() > 0
        assert totals.nbytes.sum() > 0  # every app communicates

    def test_gtc_ledger_has_all_five_phases(self):
        result = harness.run("gtc", steps=1, machine="ES")
        for phase in ("charge", "reduce", "field", "push", "shift"):
            assert phase in result.ledger
        # deposition/push are compute, reduce/shift are communication
        assert result.ledger["charge"].compute_s.sum() > 0
        assert result.ledger["reduce"].nbytes.sum() > 0
        assert result.ledger["shift"].messages.sum() > 0

    def test_breakdown_from_ledger(self):
        result = harness.run("lbmhd", steps=2, machine="ES")
        bd = result.breakdown()
        assert isinstance(bd, PhaseBreakdown)
        assert bd.compute["collision"] > 0
        assert bd.comm["stream"] > 0
        assert 0 < bd.comm_fraction < 1
        worst = result.breakdown(reduce="max")
        assert worst.total_seconds >= bd.total_seconds

    def test_breakdown_rejects_bad_reduce(self):
        result = harness.run("lbmhd", steps=1, machine="ES")
        with pytest.raises(ValueError):
            result.breakdown(reduce="median")

    def test_render_mentions_app_and_phases(self):
        result = harness.run("gtc", steps=1, machine="ES")
        text = result.render()
        assert "GTC" in text and "charge" in text and "push" in text

    def test_uninstrumented_run(self):
        result = harness.run("lbmhd", steps=1, instrument=False)
        assert result.ledger is None
        with pytest.raises(RuntimeError):
            result.breakdown()
        with pytest.raises(RuntimeError):
            result.render()

    def test_explicit_comm(self):
        comm = Communicator(8)
        result = harness.run("lbmhd", steps=1, comm=comm)
        assert result.comm is comm
        assert comm.phase_ledger is result.ledger

    def test_nprocs_conflict_with_comm(self):
        with pytest.raises(ValueError, match="nprocs"):
            harness.run("lbmhd", steps=1, comm=Communicator(4), nprocs=8)

    def test_negative_steps_rejected(self):
        with pytest.raises(ValueError):
            harness.run("lbmhd", steps=-1)

    def test_zero_steps_sets_up_only(self):
        result = harness.run("fvcam", steps=0)
        assert result.state.step_count == 0

    def test_default_nprocs(self):
        from repro.apps.gtc import GTCParams

        result = harness.run("gtc", GTCParams(ntoroidal=2), steps=0)
        assert result.comm.nprocs == 2


class TestCommunicatorPhaseAPI:
    def test_scope_sets_and_restores(self):
        comm = Communicator(2)
        assert comm.current_phase is None
        with comm.phase("outer"):
            assert comm.current_phase == "outer"
            with comm.phase("inner"):
                assert comm.current_phase == "inner"
            assert comm.current_phase == "outer"
        assert comm.current_phase is None

    def test_attach_validates_size(self):
        comm = Communicator(4)
        with pytest.raises(ValueError):
            comm.attach_phase_ledger(PhaseLedger(3))

    def test_detach(self):
        comm = Communicator(2)
        ledger = comm.attach_phase_ledger()
        assert comm.phase_ledger is ledger
        comm.detach_phase_ledger()
        assert comm.phase_ledger is None

    def test_unphased_activity_lands_in_unphased_bucket(self):
        from repro.workload import Work

        comm = Communicator(2, machine=None)
        ledger = comm.attach_phase_ledger()
        comm.compute(0, Work(name="w", flops=100.0))
        assert UNPHASED in ledger
        assert ledger[UNPHASED].flops[0] == 100.0

    def test_subgroup_collective_attributes_to_open_phase(self):
        comm = Communicator(4)
        ledger = comm.attach_phase_ledger()
        sub = comm.split([0, 0, 1, 1])[1]
        with comm.phase("reduce"):
            sub.allreduce([np.ones(8), np.ones(8)])
        bucket = ledger["reduce"]
        # global rank rows 2 and 3 carry the traffic; 0 and 1 none
        assert bucket.nbytes[2] > 0 and bucket.nbytes[3] > 0
        assert bucket.nbytes[0] == 0 and bucket.nbytes[1] == 0

    def test_trace_bytes_by_phase(self):
        comm = Communicator(4, trace=True)
        sim_bytes = 8 * 16
        from repro.simmpi.comm import Message

        with comm.phase("halo"):
            comm.exchange(
                [Message(src=0, dst=1, payload=np.zeros(16))]
            )
        assert comm.trace.bytes_by_phase["halo"] == sim_bytes
        assert comm.trace.calls_by_phase["halo"] == 1
