"""Zero-byte messages and the validated ``exchange_phase`` contract.

Empty halos on degenerate decompositions used to ride on NumPy
broadcasting accidents.  The contract is now explicit: a zero-byte
message delivers an empty payload, counts as one message in the trace,
and costs pure latency on the wire; an empty message list is a no-op;
and ``exchange_phase`` rejects size sequences that are neither scalar
nor exactly one-per-message instead of quietly broadcasting them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines.catalog import get_machine
from repro.simmpi import Communicator, Message


def _comm(nprocs: int = 4, machine: bool = False) -> Communicator:
    spec = get_machine("Power3") if machine else None
    return Communicator(nprocs, machine=spec, trace=True)


class TestZeroByteMessages:
    def test_delivers_empty_payload(self):
        comm = _comm()
        out = comm.exchange(
            [Message(src=0, dst=1, payload=np.empty(0, dtype=np.float64))]
        )
        assert list(out) == [1]
        (payload,) = out[1]
        assert payload.size == 0
        assert payload.dtype == np.float64

    def test_traced_as_one_message_zero_bytes(self):
        comm = _comm()
        comm.exchange([Message(src=0, dst=1, payload=np.empty(0))])
        assert comm.trace.calls["ptp"] == 1
        assert comm.trace.total_bytes == 0.0
        assert comm.trace.matrix()[0, 1] == 0.0

    def test_costs_pure_latency(self):
        comm = _comm(machine=True)
        comm.exchange([Message(src=0, dst=1, payload=np.empty(0))])
        # sender pays the wire latency; receiver waits for the arrival
        assert comm.times[0] > 0.0
        assert comm.times[1] >= comm.times[0]
        assert comm.times[2] == 0.0 and comm.times[3] == 0.0

    def test_empty_message_list_is_noop(self):
        comm = _comm(machine=True)
        assert comm.exchange([]) == {}
        assert (comm.times == 0.0).all()
        assert comm.trace.calls["ptp"] == 0

    def test_mixed_zero_and_nonzero(self):
        comm = _comm()
        out = comm.exchange(
            [
                Message(src=0, dst=1, payload=np.empty(0)),
                Message(src=2, dst=1, payload=np.arange(3.0)),
            ]
        )
        empty, data = out[1]
        assert empty.size == 0
        assert np.array_equal(data, np.arange(3.0))
        assert comm.trace.calls["ptp"] == 2
        assert comm.trace.total_bytes == 24.0


class TestExchangePhaseValidation:
    def test_scalar_nbytes_broadcasts(self):
        comm = _comm()
        comm.exchange_phase([0, 1, 2], [1, 2, 3], 8)
        assert comm.trace.total_bytes == 24.0
        assert comm.trace.calls["ptp"] == 3

    def test_per_message_nbytes(self):
        comm = _comm()
        comm.exchange_phase([0, 1], [1, 0], [8, 16])
        m = comm.trace.matrix()
        assert m[0, 1] == 8.0 and m[1, 0] == 16.0

    def test_length_mismatch_rejected(self):
        comm = _comm()
        with pytest.raises(ValueError, match="one size per message"):
            comm.exchange_phase([0, 1, 2], [1, 2, 3], [8, 16])

    def test_broadcastable_but_wrong_shape_rejected(self):
        """Shapes NumPy broadcasting would quietly accept must fail."""
        comm = _comm()
        with pytest.raises(ValueError, match="one size per message"):
            comm.exchange_phase([0, 1], [1, 0], [[8, 16]])

    def test_negative_nbytes_rejected(self):
        comm = _comm()
        with pytest.raises(ValueError, match=">= 0"):
            comm.exchange_phase([0, 1], [1, 0], [8, -1])

    def test_srcs_dsts_length_mismatch_rejected(self):
        comm = _comm()
        with pytest.raises(ValueError, match="equal length"):
            comm.exchange_phase([0, 1], [1], 8)

    def test_empty_is_noop(self):
        comm = _comm(machine=True)
        comm.exchange_phase([], [], 0)
        comm.exchange_phase([], [], [])
        assert (comm.times == 0.0).all()
        assert comm.trace.calls["ptp"] == 0

    def test_rank_out_of_range_rejected(self):
        comm = _comm()
        with pytest.raises(IndexError):
            comm.exchange_phase([0], [4], 8)


class TestZeroByteAgreement:
    """exchange and exchange_phase must account zero bytes identically."""

    @pytest.mark.parametrize("sizes", [[0], [0, 0], [0, 24, 0]])
    def test_same_trace_and_clock(self, sizes):
        pairs = [(k % 4, (k + 1) % 4) for k in range(len(sizes))]
        real = _comm(machine=True)
        real.exchange(
            [
                Message(src=s, dst=d, payload=np.empty(n // 8))
                for (s, d), n in zip(pairs, sizes)
            ]
        )
        acct = _comm(machine=True)
        acct.exchange_phase(
            [s for s, _ in pairs], [d for _, d in pairs], sizes
        )
        assert np.array_equal(real.trace.matrix(), acct.trace.matrix())
        assert real.trace.calls == acct.trace.calls
        assert np.array_equal(real.times, acct.times)
