"""repro.service — validation, coalescing, the HTTP API, perfdb flow.

The integration tests run a real :class:`ReproService` on a background
event-loop thread (ephemeral port) and speak actual HTTP/1.1 at it via
``http.client`` — the same path the CI service job and
``benchmarks/bench_service.py`` exercise.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign.manifest import read_events
from repro.campaign.report import ConfigResult
from repro.campaign.spec import RunConfig
from repro.perfdb import PerfDB
from repro.perfdb.ingest import ingest_path
from repro.service import (
    ApiError,
    Coalescer,
    JobQueue,
    ReproService,
    ServiceThread,
    parse_predict,
)

#: A fast prediction request (~ms of real solver work).
SMALL = {
    "app": "lbmhd",
    "nprocs": 4,
    "steps": 1,
    "seed": 0,
    "params": {"shape": [8, 8, 8]},
}

#: A slower one, so concurrent identical requests overlap in flight.
SLOW = {
    "app": "lbmhd",
    "nprocs": 4,
    "steps": 4,
    "seed": 0,
    "params": {"shape": [16, 16, 16]},
}


# -- request validation ----------------------------------------------------


class TestParsePredict:
    def test_minimal_body_becomes_a_runconfig(self):
        config, wait = parse_predict(SMALL)
        assert isinstance(config, RunConfig)
        assert wait is True
        assert config.app == "lbmhd" and config.nprocs == 4
        assert config.params_dict() == {"shape": [8, 8, 8]}

    def test_wait_flag_is_stripped_from_the_config(self):
        config, wait = parse_predict({**SMALL, "wait": False})
        assert wait is False
        # the content key must not depend on the transport knob
        assert config == parse_predict(SMALL)[0]

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ("not a dict", "JSON object"),
            ({}, "'app' is required"),
            ({"app": "no-such-app"}, "unknown application"),
            ({**SMALL, "machine": "Cray-3"}, "unknown machine"),
            ({**SMALL, "executor": "fibers"}, "fibers"),
            ({**SMALL, "kernel_backend": "fortran"}, "unknown kernel"),
            ({**SMALL, "nprocs": 0}, "nprocs"),
            ({**SMALL, "bogus_field": 1}, "bogus_field"),
            ({**SMALL, "wait": "yes"}, "'wait' must be a boolean"),
        ],
    )
    def test_bad_requests_are_400_with_the_reason(self, body, fragment):
        with pytest.raises(ApiError) as exc:
            parse_predict(body)
        assert exc.value.status == 400
        assert fragment in exc.value.message

    def test_error_lists_the_choices(self):
        with pytest.raises(ApiError) as exc:
            parse_predict({"app": "nope"})
        for app in ("lbmhd", "gtc", "fvcam", "paratec"):
            assert app in exc.value.message


# -- coalescing (deterministic, gated runner) ------------------------------


class TestCoalescer:
    def test_identical_in_flight_requests_share_one_job(self):
        gate = threading.Event()
        computed = []

        def runner(cfg):
            gate.wait(timeout=10)
            computed.append(cfg.key())
            return ConfigResult(
                config=cfg, key=cfg.key(), cached=False,
                wall_s=0.1, gflops=1.0, result={"wall_s": 0.1},
            )

        async def scenario():
            coal = Coalescer()
            queue = JobQueue(
                cache=None, scheduler="serial", workers=1,
                runner=runner, on_finish=coal.release,
            )
            await queue.start()
            cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)
            job1, c1 = await coal.submit(cfg, queue)
            await asyncio.sleep(0.05)  # let the worker pick it up
            job2, c2 = await coal.submit(cfg, queue)
            assert job2 is job1
            assert (c1, c2) == (False, True)
            assert job1.coalesced == 1
            assert coal.coalesced_total == 1 and coal.in_flight == 1
            gate.set()
            await job1.wait()
            assert job1.state == "done" and coal.in_flight == 0
            # after completion an identical request is a NEW job
            job3, c3 = await coal.submit(cfg, queue)
            assert job3 is not job1 and c3 is False
            await job3.wait()
            await queue.stop()
            return len(computed)

        assert asyncio.run(scenario()) == 2

    def test_distinct_configs_never_coalesce(self):
        async def scenario():
            coal = Coalescer()
            queue = JobQueue(
                cache=None, scheduler="serial", workers=2,
                runner=lambda cfg: ConfigResult(
                    config=cfg, key=cfg.key(), wall_s=0.0, result={},
                ),
                on_finish=coal.release,
            )
            await queue.start()
            a, ca = await coal.submit(
                RunConfig(app="lbmhd", seed=0), queue
            )
            b, cb = await coal.submit(
                RunConfig(app="lbmhd", seed=1), queue
            )
            assert a is not b and not ca and not cb
            await a.wait()
            await b.wait()
            await queue.stop()
            return coal.coalesced_total

        assert asyncio.run(scenario()) == 0

    def test_failed_jobs_release_their_key(self):
        def runner(cfg):
            raise RuntimeError("boom")

        async def scenario():
            coal = Coalescer()
            queue = JobQueue(
                cache=None, scheduler="serial", workers=1,
                runner=runner, on_finish=coal.release,
            )
            await queue.start()
            cfg = RunConfig(app="lbmhd")
            job, _ = await coal.submit(cfg, queue)
            await job.wait()
            assert job.state == "failed" and "boom" in job.error
            assert coal.in_flight == 0
            await queue.stop()

        asyncio.run(scenario())

    def test_interleaved_identical_submits_enqueue_once(self):
        """Regression: two identical requests that both reach submit
        before either's ``queue.submit`` await resolves must still
        share one computation.  The gated fake queue parks every
        submit on an event, forcing exactly the interleaving window
        the old in-flight check missed."""
        from repro.service.jobs import Job

        class GatedQueue:
            def __init__(self):
                self.gate = asyncio.Event()
                self.submissions: list[Job] = []

            async def submit(self, config):
                await self.gate.wait()  # the hole: submit yields here
                job = Job(
                    id=f"g{len(self.submissions) + 1:03d}",
                    config=config,
                    key=config.key(),
                )
                self.submissions.append(job)
                return job

        async def scenario():
            coal = Coalescer()
            queue = GatedQueue()
            cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)
            t1 = asyncio.create_task(coal.submit(cfg, queue))
            t2 = asyncio.create_task(coal.submit(cfg, queue))
            await asyncio.sleep(0.05)  # both tasks are parked in-flight
            queue.gate.set()
            (job1, c1), (job2, c2) = await asyncio.gather(t1, t2)
            assert job2 is job1
            assert (c1, c2) == (False, True)
            assert len(queue.submissions) == 1
            assert coal.coalesced_total == 1
            assert coal.in_flight == 1  # the job, no leftover placeholder

        asyncio.run(scenario())

    def test_failed_enqueue_wakes_waiters_to_retry(self):
        """A waiter parked on another request's placeholder must not
        hang (or crash) when that request's enqueue raises — it retries
        and performs its own submission."""
        from repro.service.jobs import Job

        class FailFirstQueue:
            def __init__(self):
                self.gate = asyncio.Event()
                self.calls = 0

            async def submit(self, config):
                self.calls += 1
                call = self.calls
                await self.gate.wait()
                if call == 1:
                    raise RuntimeError("backend down")
                return Job(id=f"g{call}", config=config, key=config.key())

        async def scenario():
            coal = Coalescer()
            queue = FailFirstQueue()
            cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)
            t1 = asyncio.create_task(coal.submit(cfg, queue))
            t2 = asyncio.create_task(coal.submit(cfg, queue))
            await asyncio.sleep(0.05)
            queue.gate.set()
            results = await asyncio.gather(t1, t2, return_exceptions=True)
            errors = [r for r in results if isinstance(r, Exception)]
            jobs = [r for r in results if not isinstance(r, Exception)]
            assert len(errors) == 1 and "backend down" in str(errors[0])
            assert len(jobs) == 1 and jobs[0][1] is False
            assert queue.calls == 2

        asyncio.run(scenario())

    def test_job_finishing_during_submit_is_not_indexed(self):
        """If the enqueued job reaches a terminal state before submit
        can index it, the in-flight table must stay clean — a later
        identical request starts fresh instead of attaching to a
        corpse."""
        from repro.service.jobs import Job

        class InstantQueue:
            async def submit(self, config):
                job = Job(id="g1", config=config, key=config.key())
                job.state = "done"  # finished before submit returns
                return job

        async def scenario():
            coal = Coalescer()
            cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)
            job, coalesced = await coal.submit(cfg, InstantQueue())
            assert job.finished and coalesced is False
            assert coal.in_flight == 0

        asyncio.run(scenario())


# -- the HTTP service ------------------------------------------------------


@pytest.fixture(scope="class")
def service(tmp_path_factory):
    """One live service per test class, serial scheduler, 2 job workers."""
    cache_dir = tmp_path_factory.mktemp("service-cache")
    svc = ReproService(cache_dir, workers=2, scheduler="serial")
    with ServiceThread(svc) as thread:
        yield svc, thread.port


def _request(port, method, path, body=None, timeout=60.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=json.dumps(body) if body is not None else None,
            headers=(
                {"Content-Type": "application/json"}
                if body is not None else {}
            ),
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _json(port, method, path, body=None):
    status, data = _request(port, method, path, body)
    return status, json.loads(data)


class TestHttpApi:
    def test_healthz(self, service):
        _, port = service
        status, body = _json(port, "GET", "/v1/healthz")
        assert status == 200 and body["ok"] is True

    def test_machines_catalog_in_paper_order(self, service):
        _, port = service
        status, body = _json(port, "GET", "/v1/machines")
        assert status == 200
        names = [m["name"] for m in body["machines"]]
        assert names == [
            "Power3", "Itanium2", "Opteron", "X1", "X1-SSP", "X1E",
            "ES", "SX-8",
        ]
        es = next(m for m in body["machines"] if m["name"] == "ES")
        assert es["kind"] == "vector" and es["peak_gflops"] == 8.0

    def test_whatif_endpoints_match_the_experiment(self, service):
        _, port = service
        status, body = _json(port, "GET", "/v1/whatif/sx8_fplram")
        assert status == 200
        assert body["data"]["speedup"] == pytest.approx(1.2466, abs=1e-3)
        status, body = _json(port, "GET", "/v1/whatif/sensitivity")
        assert status == 200
        assert set(body["data"]) == {"lbmhd", "gtc", "fvcam", "paratec"}

    def test_unknown_whatif_404_lists_choices(self, service):
        _, port = service
        status, body = _json(port, "GET", "/v1/whatif/warp-drive")
        assert status == 404
        for name in ("sx8_fplram", "x1_registers", "sensitivity"):
            assert name in body["error"]

    def test_unknown_route_404(self, service):
        _, port = service
        status, body = _json(port, "GET", "/v1/nope")
        assert status == 404 and "/v1/predict" in body["error"]

    def test_malformed_json_body_is_400(self, service):
        _, port = service
        status, data = _request(port, "POST", "/v1/predict")
        body = json.loads(data)
        assert status == 400 and "'app' is required" in body["error"]

    def test_invalid_config_is_400_not_a_job(self, service):
        svc, port = service
        before = svc.queue.completed + svc.queue.failed
        status, body = _json(
            port, "POST", "/v1/predict", {**SMALL, "machine": "Cray-3"}
        )
        assert status == 400 and "unknown machine" in body["error"]
        assert svc.queue.completed + svc.queue.failed == before

    def test_unknown_job_is_404(self, service):
        _, port = service
        status, _ = _json(port, "GET", "/v1/jobs/j999999")
        assert status == 404


class TestPredictFlow:
    """Cold miss -> warm hit -> stats -> stream -> manifest -> perfdb."""

    def test_full_prediction_lifecycle(self, service):
        svc, port = service

        # cold: computed, published, journaled
        status, cold = _json(port, "POST", "/v1/predict", SMALL)
        assert status == 200
        assert cold["state"] == "done" and cold["cached"] is False
        assert cold["result"]["wall_s"] > 0
        assert cold["result"]["nprocs"] == 4

        # identical second request: served from the shared warm cache
        status, warm = _json(port, "POST", "/v1/predict", SMALL)
        assert status == 200
        assert warm["state"] == "done" and warm["cached"] is True
        assert warm["key"] == cold["key"]
        assert warm["result"]["diagnostics"] == (
            cold["result"]["diagnostics"]
        )

        # stats observed it: one miss then one hit, one published entry
        status, stats = _json(port, "GET", "/v1/stats")
        assert status == 200
        assert stats["cache"]["hits"] >= 1
        assert stats["cache"]["misses"] >= 1
        assert stats["cache"]["entries"] >= 1
        assert stats["cache"]["lifetime"]["puts"] >= 1
        assert stats["requests"]["predict"] >= 2

    def test_async_predict_streams_ndjson_progress(self, service):
        svc, port = service
        body = {**SMALL, "seed": 42, "wait": False}
        status, accepted = _json(port, "POST", "/v1/predict", body)
        assert status == 202 and accepted["job"].startswith("j")

        status, data = _request(port, "GET", f"/v1/jobs/{accepted['job']}")
        assert status == 200
        events = [json.loads(line) for line in data.decode().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds == ["queued", "running", "done"]
        assert events[-1]["result"]["wall_s"] > 0

        # the jobs index lists it as done
        status, listing = _json(port, "GET", "/v1/jobs")
        states = {j["job"]: j["state"] for j in listing["jobs"]}
        assert states[accepted["job"]] == "done"

    def test_failing_config_is_a_failed_job_not_a_crash(self, service):
        svc, port = service
        bad = {**SMALL, "params": {"no_such_param": 1}}
        status, body = _json(port, "POST", "/v1/predict", bad)
        assert status == 500
        assert body["state"] == "failed"
        assert "no_such_param" in body["error"]
        # the service is still healthy afterwards
        status, _ = _json(port, "GET", "/v1/healthz")
        assert status == 200

    def test_service_manifest_round_trips_into_perfdb(self, service):
        svc, port = service
        _json(port, "POST", "/v1/predict", {**SMALL, "seed": 3})
        records = ingest_path(svc.manifest.path)
        assert records, "service manifest produced no perfdb records"
        assert all(r.bench == "campaign:service" for r in records)
        db = PerfDB()
        assert db.add(records) > 0
        apps = {r.app for r in db.query(app="lbmhd")}
        assert apps == {"lbmhd"}
        walls = [r.wall_s for r in db.query(app="lbmhd")]
        assert all(w > 0 for w in walls)

    def test_manifest_events_carry_configs(self, service):
        svc, _ = service
        done = [
            e for e in read_events(svc.manifest.path)
            if e.get("event") == "run-done"
        ]
        assert done
        assert all(isinstance(e.get("config"), dict) for e in done)


class TestConcurrentCoalescing:
    """The acceptance criterion, over real HTTP: N identical concurrent
    requests perform exactly one engine computation."""

    def test_n_identical_concurrent_requests_one_computation(
        self, tmp_path
    ):
        svc = ReproService(tmp_path, workers=2, scheduler="serial")
        n = 6
        with ServiceThread(svc) as thread:
            port = thread.port
            barrier = threading.Barrier(n)

            def client(_):
                barrier.wait(timeout=30)
                return _json(port, "POST", "/v1/predict", SLOW)

            with ThreadPoolExecutor(max_workers=n) as pool:
                outcomes = list(pool.map(client, range(n)))

            assert all(status == 200 for status, _ in outcomes)
            bodies = [body for _, body in outcomes]
            assert all(b["state"] == "done" for b in bodies)
            # every client saw the same computation
            assert len({b["key"] for b in bodies}) == 1
            results = {
                json.dumps(b["result"]["diagnostics"], sort_keys=True)
                for b in bodies
            }
            assert len(results) == 1

            _, stats = _json(port, "GET", "/v1/stats")

        cache = stats["cache"]
        coalesce = stats["coalesce"]
        # exactly one engine computation: one miss, one published entry
        assert cache["misses"] == 1, stats
        assert cache["lifetime"]["puts"] == 1, stats
        # everyone else piggybacked: attached in flight or a warm hit
        assert coalesce["coalesced_total"] + cache["hits"] == n - 1, stats
        assert coalesce["in_flight"] == 0


class TestServiceLifecycle:
    def test_shutdown_endpoint_stops_the_server(self, tmp_path):
        svc = ReproService(tmp_path, workers=1, scheduler="serial")
        thread = ServiceThread(svc).start()
        port = thread.port
        status, body = _json(port, "POST", "/v1/shutdown")
        assert status == 200 and body["stopping"] is True
        thread._thread.join(timeout=30)
        assert not thread._thread.is_alive()
        with pytest.raises(OSError):
            _request(port, "GET", "/v1/healthz", timeout=2.0)

    def test_warm_cache_is_shared_across_service_restarts(self, tmp_path):
        svc1 = ReproService(tmp_path, workers=1, scheduler="serial")
        with ServiceThread(svc1) as thread:
            status, body = _json(
                thread.port, "POST", "/v1/predict", SMALL
            )
            assert status == 200 and body["cached"] is False

        svc2 = ReproService(tmp_path, workers=1, scheduler="serial")
        with ServiceThread(svc2) as thread:
            status, body = _json(
                thread.port, "POST", "/v1/predict", SMALL
            )
            assert status == 200 and body["cached"] is True
