"""Campaign engine: expansion, hashing, caching, journaling, resume."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    ResultCache,
    RunConfig,
    run_campaign,
    summarize,
)
from repro.campaign import worker
from repro.campaign.manifest import read_events
from repro.runtime.executors import ProcessExecutor, get_executor

TINY = CampaignSpec(
    name="tiny",
    apps=("lbmhd", "fvcam"),
    nprocs=(4,),
    seeds=(0, 1),
    steps=2,
    params={
        "lbmhd": {"shape": [8, 8, 8]},
        "fvcam": {"py": 2, "pz": 2},
    },
)


class TestSpec:
    def test_expand_crosses_the_axes(self):
        spec = CampaignSpec(
            name="x",
            apps=("lbmhd", "gtc"),
            machines=(None, "ES"),
            nprocs=(4, 8),
            seeds=(0,),
        )
        configs = spec.expand()
        assert len(configs) == 2 * 2 * 2
        assert len({c.key() for c in configs}) == len(configs)
        assert len(set(configs)) == len(configs)  # hashable + distinct

    def test_key_is_stable_and_version_scoped(self):
        a = RunConfig(app="lbmhd", nprocs=4, steps=2,
                      params={"shape": [8, 8, 8]})
        b = RunConfig(app="lbmhd", nprocs=4, steps=2,
                      params={"shape": (8, 8, 8)})
        assert a == b
        assert a.key() == b.key()
        assert a.key(version="other") != a.key()
        c = RunConfig(app="lbmhd", nprocs=4, steps=3,
                      params={"shape": [8, 8, 8]})
        assert c.key() != a.key()

    def test_json_round_trip(self):
        spec = CampaignSpec.from_json(json.dumps(TINY.to_dict()))
        assert spec == TINY
        assert [c.key() for c in spec.expand()] == [
            c.key() for c in TINY.expand()
        ]

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CampaignSpec"):
            CampaignSpec.from_dict({"name": "x", "apps": ["lbmhd"],
                                    "stepz": 3})
        with pytest.raises(ValueError, match="unknown RunConfig"):
            RunConfig.from_dict({"app": "lbmhd", "color": "red"})

    def test_non_json_param_values_rejected(self):
        with pytest.raises(TypeError, match="JSON-plain"):
            RunConfig(app="lbmhd", params={"shape": np.zeros(3)})


class TestWorker:
    def test_execute_config_returns_plain_dict(self):
        cfg = RunConfig(
            app="lbmhd", nprocs=4, steps=2, seed=0,
            params={"shape": [8, 8, 8]},
        )
        result = worker.execute_config(cfg)
        assert json.dumps(result)  # marshallable as-is
        assert result["wall_s"] > 0
        assert result["gflops"] > 0
        assert result["nprocs"] == 4
        assert "mass" in result["diagnostics"]
        assert {p["phase"] for p in result["phases"]} >= {
            "collision", "stream",
        }

    def test_params_coercion_handles_nested_dataclasses(self):
        params = worker.build_params(
            "fvcam",
            {"py": 2, "pz": 2, "grid": {"im": 24, "jm": 18, "km": 4}},
        )
        assert params.py == 2 and params.pz == 2
        assert (params.grid.im, params.grid.jm, params.grid.km) == (
            24, 18, 4,
        )
        lb = worker.build_params("lbmhd", {"shape": [8, 8, 8]})
        assert lb.shape == (8, 8, 8)

    def test_unknown_param_named_in_error(self):
        with pytest.raises(ValueError, match="bogus"):
            worker.build_params("lbmhd", {"bogus": 1})

    def test_seeded_config_is_deterministic(self):
        cfg = RunConfig(app="gtc", nprocs=4, steps=1, seed=3,
                        params={"particles_per_cell": 4})
        a = worker.execute_config(cfg)
        b = worker.execute_config(cfg)
        assert a["diagnostics"] == b["diagnostics"]


class TestCacheAndResume:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        manifest = tmp_path / "tiny.manifest.jsonl"
        cold = run_campaign(
            TINY, cache=cache, manifest=manifest, scheduler="serial"
        )
        assert (cold.hits, cold.misses, cold.failures) == (0, 4, 0)
        warm = run_campaign(
            TINY, cache=cache, manifest=manifest, scheduler="serial"
        )
        assert (warm.hits, warm.misses, warm.failures) == (4, 0, 0)
        # warm rows carry the cached measurements
        assert all(r.wall_s > 0 for r in warm.rows)
        status = summarize(manifest)
        assert status["complete"] and status["hits"] == 4

    def test_rerun_ignores_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_campaign(TINY, cache=cache, scheduler="serial")
        again = run_campaign(
            TINY, cache=cache, scheduler="serial", rerun=True
        )
        assert again.misses == 4 and again.hits == 0

    def test_rerun_counters_keep_gets_equal_hits_plus_misses(
        self, tmp_path
    ):
        """Regression: a forced rerun bypasses cache.get, so its puts
        used to persist with zero matching lookups — lifetime counters
        violated ``gets == hits + misses`` and status rendered a bogus
        hit rate.  Forced executions now count as misses and as a
        distinct ``reruns`` counter."""
        cache = ResultCache(tmp_path)
        run_campaign(TINY, cache=cache, scheduler="serial")
        run_campaign(TINY, cache=cache, scheduler="serial", rerun=True)
        life = ResultCache(tmp_path).lifetime_stats()
        assert life.as_dict() == {
            "hits": 0, "misses": 8, "puts": 8, "reruns": 4,
        }
        assert life.gets == life.hits + life.misses
        # and an uncached campaign books nothing extra
        run_campaign(TINY, cache=None, scheduler="serial", rerun=True)
        assert ResultCache(tmp_path).lifetime_stats().reruns == 4

    def test_failed_config_is_isolated(self, tmp_path):
        spec = CampaignSpec(
            name="mixed",
            apps=("lbmhd", "no-such-app"),
            nprocs=(4,),
            steps=1,
            params={"lbmhd": {"shape": [8, 8, 8]}},
        )
        report = run_campaign(spec, cache=tmp_path, scheduler="serial")
        assert report.failures == 1 and report.misses == 1
        assert not report.ok
        failed = [r for r in report.rows if not r.ok]
        assert "no-such-app" in (failed[0].error or "")
        # the good config is cached; the bad one is retried next time
        again = run_campaign(spec, cache=tmp_path, scheduler="serial")
        assert again.hits == 1 and again.failures == 1

    def test_killed_campaign_resumes_without_reexecution(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: kill mid-flight, re-invoke, completed configs are
        served from the cache and never re-executed."""
        from repro.campaign import engine

        real = worker.run_and_cache
        executed: list[str] = []

        def dies_after_two(job):
            if len(executed) >= 2:
                raise KeyboardInterrupt  # the operator's Ctrl-C
            executed.append(job[0]["app"] + str(job[0]["seed"]))
            return real(job)

        monkeypatch.setattr(engine.worker, "run_and_cache", dies_after_two)
        manifest = tmp_path / "killed.manifest.jsonl"
        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                TINY, cache=tmp_path / "cache", manifest=manifest,
                scheduler="serial",
            )
        assert len(executed) == 2
        # the journal recorded the completions that happened
        partial = summarize(manifest)
        assert partial["done"] == 2 and not partial["complete"]

        monkeypatch.setattr(engine.worker, "run_and_cache", real)
        resumed = run_campaign(
            TINY, cache=tmp_path / "cache", manifest=manifest,
            scheduler="serial",
        )
        assert (resumed.hits, resumed.misses) == (2, 2)
        assert resumed.failures == 0
        final = summarize(manifest)
        assert final["complete"] and final["done"] == 4

    def test_cached_result_matches_fresh_execution(self, tmp_path):
        cfg = RunConfig(app="lbmhd", nprocs=4, steps=2, seed=0,
                        params={"shape": [8, 8, 8]})
        spec = CampaignSpec(
            name="one", apps=("lbmhd",), nprocs=(4,), seeds=(0,),
            steps=2, params={"lbmhd": {"shape": [8, 8, 8]}},
        )
        run_campaign(spec, cache=tmp_path, scheduler="serial")
        cached = ResultCache(tmp_path).get(cfg)
        fresh = worker.execute_config(cfg)
        assert cached is not None
        assert cached["diagnostics"] == fresh["diagnostics"]

    def test_version_bump_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = RunConfig(app="lbmhd", nprocs=4, steps=1,
                        params={"shape": [8, 8, 8]})
        cache.put(cfg, {"wall_s": 1.0})
        assert cache.get(cfg) is not None
        # a different version hashes to a different key -> miss
        other_key = cfg.key(version="999.0.0")
        assert other_key != cfg.key()
        assert not (cache.root / other_key[:2] / f"{other_key}.json").exists()

    def test_torn_cache_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)
        path = cache.put(cfg, {"wall_s": 1.0})
        path.write_text('{"key": "truncat')  # torn write
        assert cache.get(cfg) is None

    def test_stale_tmp_files_are_invisible_and_swept(self, tmp_path):
        """Regression: a worker killed between ``mkstemp`` and
        ``os.replace`` leaves ``.{key[:8]}-*.tmp`` behind; those must
        never count as entries, and ``clear()`` must sweep them so
        shard dirs actually empty out."""
        cache = ResultCache(tmp_path)
        cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)
        cache.put(cfg, {"wall_s": 1.0})
        shard = cache._path(cfg.key()).parent
        leaked = shard / f".{cfg.key()[:8]}-leak1.tmp"
        leaked.write_text('{"half": "writ')  # SIGKILL mid-write
        assert len(cache) == 1
        assert len(list(cache.entries())) == 1
        assert cache.sweep_tmp() == 1
        assert not leaked.exists()
        # clear() sweeps any new leak itself, and the shard dir goes
        leaked.write_text("x")
        assert cache.clear() == 1
        assert not leaked.exists()
        assert not shard.exists()
        assert len(cache) == 0

    def test_killed_put_leak_is_cleared(self, tmp_path, monkeypatch):
        """Simulate the kill window with injected exceptions: the
        rename never happens, the in-``put`` cleanup is also denied
        (as with SIGKILL there is no cleanup at all), and ``clear()``
        still leaves an empty cache root behind."""
        import os as _os

        cache = ResultCache(tmp_path)
        cfg = RunConfig(app="lbmhd", nprocs=4, steps=1)

        def killed_replace(src, dst):
            raise OSError("killed between mkstemp and replace")

        monkeypatch.setattr(_os, "replace", killed_replace)
        monkeypatch.setattr(
            _os, "unlink", lambda p: (_ for _ in ()).throw(OSError("dead"))
        )
        with pytest.raises(OSError):
            cache.put(cfg, {"wall_s": 1.0})
        monkeypatch.undo()
        shard = cache._path(cfg.key()).parent
        assert list(shard.glob("*.tmp"))  # the leak exists
        assert len(cache) == 0  # but is not an entry
        cache.clear()
        assert not shard.exists()


class TestManifest:
    def test_journal_records_every_event(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_campaign(
            TINY, cache=tmp_path / "c", manifest=manifest,
            scheduler="serial",
        )
        kinds = [e["event"] for e in read_events(manifest)]
        assert kinds[0] == "campaign-start"
        assert kinds[-1] == "campaign-end"
        assert kinds.count("run-done") == 4
        assert kinds.count("run-start") == 4

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        manifest.write_text(
            '{"event": "campaign-start", "name": "x", "total": 2}\n'
            '{"event": "run-done", "key": "k1", "cached": false}\n'
            '{"event": "run-sta'  # killed mid-append
        )
        s = summarize(manifest)
        assert s["done"] == 1 and s["total"] == 2
        assert not s["complete"]


class TestProcessScheduler:
    def test_processes_match_serial_results(self, tmp_path):
        serial = run_campaign(TINY, cache=None, scheduler="serial")
        procs = run_campaign(
            TINY, cache=None, scheduler=ProcessExecutor(2)
        )
        assert procs.failures == 0
        by_key_s = {r.key: r for r in serial.rows}
        by_key_p = {r.key: r for r in procs.rows}
        assert set(by_key_s) == set(by_key_p)
        for key, row in by_key_s.items():
            assert (
                row.result["diagnostics"]
                == by_key_p[key].result["diagnostics"]
            )

    def test_process_workers_publish_to_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        report = run_campaign(
            TINY, cache=cache, scheduler="processes:2"
        )
        assert report.misses == 4
        assert len(cache) == 4

    def test_communicator_accepts_capable_process_executor(self):
        """Since the shared-memory transport landed, a process executor
        is a first-class rank scheduler wherever the host supports it;
        only an incapable host still rejects the explicit spec."""
        from repro.runtime.executors import ProcessExecutor
        from repro.simmpi.comm import Communicator

        if ProcessExecutor(2).segment_support().ok:
            comm = Communicator(4, executor="processes:2")
            assert comm.executor.name == "processes"
        else:
            with pytest.raises(ValueError, match="cannot schedule"):
                Communicator(4, executor="processes:2")

    def test_communicator_rejects_process_executor_without_shm(
        self, monkeypatch
    ):
        from repro.simmpi.comm import Communicator

        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        with pytest.raises(ValueError, match="REPRO_SHM_DISABLE"):
            Communicator(4, executor="processes:2")

    def test_get_executor_parses_process_specs(self):
        assert get_executor("processes").name == "processes"
        assert get_executor("processes:3").workers == 3
        with pytest.raises(ValueError):
            get_executor("processes:zero")
