"""Tests for the per-rank timeline profiler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import get_machine
from repro.simmpi import Communicator, Event, Message, Timeline
from repro.workload import Work


class TestEvent:
    def test_duration(self):
        e = Event(rank=0, start=1.0, end=3.0, label="x", kind="compute")
        assert e.duration == 2.0

    def test_backwards_rejected(self):
        with pytest.raises(ValueError):
            Event(rank=0, start=3.0, end=1.0, label="x", kind="compute")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event(rank=0, start=0.0, end=1.0, label="x", kind="nap")


class TestTimeline:
    def test_record_and_query(self):
        tl = Timeline(2)
        tl.record(0, 0.0, 1.0, "k", "compute")
        tl.record(1, 0.5, 2.0, "s", "comm")
        assert len(tl.events_for(0)) == 1
        assert tl.total("comm") == 1.5
        assert tl.span == 2.0

    def test_zero_length_events_dropped(self):
        tl = Timeline(1)
        tl.record(0, 1.0, 1.0, "noop", "compute")
        assert tl.events == []

    def test_rank_bounds(self):
        tl = Timeline(2)
        with pytest.raises(IndexError):
            tl.record(5, 0.0, 1.0, "k", "compute")

    def test_busy_fraction(self):
        tl = Timeline(1)
        tl.record(0, 0.0, 3.0, "k", "compute")
        tl.record(0, 3.0, 4.0, "w", "wait")
        assert tl.busy_fraction(0) == pytest.approx(0.75)

    def test_kind_shares_normalized(self):
        tl = Timeline(1)
        tl.record(0, 0.0, 1.0, "k", "compute")
        tl.record(0, 1.0, 2.0, "c", "comm")
        shares = tl.kind_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_render_empty(self):
        assert Timeline(2).render_gantt() == "(no events)"

    def test_render_rows(self):
        tl = Timeline(3)
        tl.record(1, 0.0, 1.0, "k", "compute")
        art = tl.render_gantt(width=20)
        assert art.count("rank") == 3
        assert "#" in art


class TestCommunicatorIntegration:
    def test_disabled_by_default(self):
        assert Communicator(2).timeline is None

    def test_compute_recorded(self):
        comm = Communicator(2, machine=get_machine("ES"), timeline=True)
        comm.compute(0, Work(name="kern", flops=1e9))
        events = comm.timeline.events_for(0, "compute")
        assert len(events) == 1
        assert events[0].label == "kern"

    def test_wait_recorded_for_lagging_receiver(self):
        comm = Communicator(32, machine=get_machine("ES"), timeline=True)
        comm.compute(0, Work(name="kern", flops=1e9))
        comm.exchange([Message(0, 16, np.ones(1000))])
        assert comm.timeline.total("wait", rank=16) > 0.0

    def test_collective_wait_and_comm(self):
        comm = Communicator(4, machine=get_machine("ES"), timeline=True)
        comm.compute(0, Work(name="kern", flops=1e9))  # rank 0 ahead
        comm.allreduce([np.ones(100) for _ in range(4)])
        tl = comm.timeline
        # lagging ranks waited for rank 0
        assert tl.total("wait", rank=1) > 0.0
        # everyone paid the collective
        for r in range(4):
            assert tl.total("comm", rank=r) > 0.0

    def test_subgroup_shares_timeline(self):
        comm = Communicator(4, machine=get_machine("ES"), timeline=True)
        subs = comm.split([0, 0, 1, 1])
        subs[1].compute(0, Work(name="kern", flops=1e9))  # global rank 2
        assert comm.timeline.total("compute", rank=2) > 0.0

    def test_ideal_comm_records_nothing(self):
        comm = Communicator(2, timeline=True)
        comm.compute(0, Work(name="kern", flops=1e9))
        comm.allreduce([np.ones(4), np.ones(4)])
        assert comm.timeline.events == []

    def test_gtc_timeline_end_to_end(self):
        from repro.apps.gtc import GTC, GTCParams

        comm = Communicator(
            4, machine=get_machine("Power3"), timeline=True
        )
        sim = GTC(
            GTCParams(mpsi=12, mtheta=16, ntoroidal=4, particles_per_cell=5),
            comm,
        )
        sim.run(1)
        shares = comm.timeline.kind_shares()
        assert shares["compute"] > 0.5
        assert comm.timeline.span <= comm.elapsed + 1e-12
