"""Tests for FVCAM's passive tracer transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.fvcam import FVCAM, FVCAMParams, LatLonGrid
from repro.simmpi import Communicator

GRID = LatLonGrid(im=24, jm=18, km=4)


def make(py=1, pz=1, **kw) -> FVCAM:
    params = FVCAMParams(grid=GRID, py=py, pz=pz, with_tracer=True, **kw)
    return FVCAM(params, Communicator(py * pz))


class TestTracerBasics:
    def test_disabled_by_default(self):
        sim = FVCAM(FVCAMParams(grid=GRID), Communicator(1))
        assert sim.q is None
        with pytest.raises(RuntimeError):
            sim.tracer_mass()

    def test_initial_range(self):
        sim = make()
        q = sim.global_tracer()
        assert q.min() >= 0.0 and q.max() <= 1.0

    def test_mass_conserved_transport_only(self):
        sim = make(py=2, with_physics=False)
        tm0 = sim.tracer_mass()
        sim.run(10)
        assert sim.tracer_mass() == pytest.approx(tm0, rel=1e-13)

    def test_mass_conserved_with_physics(self):
        sim = make(py=3, pz=2)
        tm0 = sim.tracer_mass()
        sim.run(10)
        assert sim.tracer_mass() == pytest.approx(tm0, rel=1e-9)

    def test_constant_tracer_stays_constant(self):
        sim = make(py=2)
        for r in range(sim.comm.nprocs):
            sim.q[r][:] = 1.0
        sim.run(8)
        np.testing.assert_allclose(sim.global_tracer(), 1.0, atol=1e-12)

    def test_bounds_overshoot_is_small(self):
        # The ratio of two separately limited conservative updates (and
        # the spectral polar filter) is not strictly monotone; overshoot
        # stays at the percent level of the [0, 1] range.
        sim = make(py=2, with_physics=False)
        sim.run(10)
        q = sim.global_tracer()
        assert q.min() > -0.02
        assert q.max() < 1.02


class TestTracerDecompositionIndependence:
    @pytest.mark.parametrize("py,pz", [(2, 1), (3, 2), (1, 2)])
    def test_matches_serial(self, py, pz):
        ref = make(1, 1)
        par = make(py, pz)
        ref.run(6)
        par.run(6)
        np.testing.assert_allclose(
            par.global_tracer(), ref.global_tracer(), atol=1e-10
        )

    def test_remap_carries_tracer(self):
        sim = make(py=2, pz=2, remap_interval=2)
        tm0 = sim.tracer_mass()
        sim.run(4)  # remap fires twice, with transposes
        assert sim.tracer_mass() == pytest.approx(tm0, rel=1e-9)

    def test_tracer_moves_with_the_jet(self):
        sim = make(py=1, with_physics=False, dt=120.0)
        q0 = sim.global_tracer()
        lon_centroid0 = (q0.sum(axis=(0, 1)) * np.arange(GRID.im)).sum() / q0.sum()
        sim.run(30)
        q1 = sim.global_tracer()
        lon_centroid1 = (q1.sum(axis=(0, 1)) * np.arange(GRID.im)).sum() / q1.sum()
        # the westerly jet advects the blob eastward
        assert lon_centroid1 > lon_centroid0 + 0.1
