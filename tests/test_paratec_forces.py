"""Tests for PARATEC's Hellmann–Feynman forces and atom relaxation."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.apps.paratec import (
    Atom,
    external_energy,
    hellmann_feynman_forces,
    relax_atoms,
)

SHAPE = (12, 12, 12)


@pytest.fixture
def density(rng) -> np.ndarray:
    return np.abs(rng.standard_normal(SHAPE))


class TestForces:
    def test_matches_finite_differences(self, density):
        atoms = [Atom(position=(0.3, 0.45, 0.6), amplitude=5.0, sigma=0.4)]
        analytic = hellmann_feynman_forces(density, atoms)
        eps = 1e-5
        for alpha in range(3):
            pos_p = list(atoms[0].position)
            pos_p[alpha] += eps
            pos_m = list(atoms[0].position)
            pos_m[alpha] -= eps
            e_p = external_energy(density, [replace(atoms[0], position=tuple(pos_p))])
            e_m = external_energy(density, [replace(atoms[0], position=tuple(pos_m))])
            fd = -(e_p - e_m) / (2 * eps)
            assert analytic[0, alpha] == pytest.approx(fd, rel=1e-6)

    def test_uniform_density_exerts_no_force(self):
        rho = np.ones(SHAPE)
        atoms = [Atom(position=(0.37, 0.21, 0.83))]
        forces = hellmann_feynman_forces(rho, atoms)
        np.testing.assert_allclose(forces, 0.0, atol=1e-10)

    def test_attracted_toward_density_peak(self):
        # density concentrated at the cell center pulls an off-center
        # (attractive) atom toward it.  sigma is in reciprocal units, so
        # sigma=1.2 gives a real-space basin ~0.2 of the cell wide; the
        # atom sits inside it.
        rho = np.zeros(SHAPE)
        rho[6, 6, 6] = 1.0
        atom = Atom(position=(0.42, 0.5, 0.5), amplitude=5.0, sigma=1.2)
        forces = hellmann_feynman_forces(rho, [atom])
        assert forces[0, 0] > 0  # toward x = 0.5
        # y/z symmetric up to the (single-sided) Nyquist contribution
        assert abs(forces[0, 1]) < 1e-2 * abs(forces[0, 0])

    def test_newton_third_law_in_symmetric_dimer(self, density):
        rho = np.ones(SHAPE)  # symmetric environment
        a = Atom(position=(0.4, 0.5, 0.5))
        b = Atom(position=(0.6, 0.5, 0.5))
        f = hellmann_feynman_forces(rho, [a, b])
        np.testing.assert_allclose(f, 0.0, atol=1e-10)

    def test_force_shape(self, density):
        atoms = [Atom(position=(0.1, 0.2, 0.3)), Atom(position=(0.7, 0.8, 0.9))]
        assert hellmann_feynman_forces(density, atoms).shape == (2, 3)


class TestRelaxation:
    def test_energy_decreases(self):
        rho = np.zeros(SHAPE)
        rho[6, 6, 6] = 2.0
        atoms = [Atom(position=(0.42, 0.5, 0.5), amplitude=4.0, sigma=1.2)]
        _, _, energies = relax_atoms(rho, atoms, step=0.02, iterations=15)
        assert energies[-1] < energies[0]
        assert all(b <= a + 1e-12 for a, b in zip(energies, energies[1:]))

    def test_converges_to_density_peak(self):
        rho = np.zeros(SHAPE)
        rho[6, 6, 6] = 2.0
        atoms = [Atom(position=(0.42, 0.5, 0.5), amplitude=4.0, sigma=1.2)]
        relaxed, forces, _ = relax_atoms(
            rho, atoms, step=0.05, iterations=120, force_tolerance=1e-6
        )
        assert relaxed[0].position[0] == pytest.approx(0.5, abs=0.02)
        assert np.abs(forces).max() < 1e-2

    def test_early_stop_at_tolerance(self):
        rho = np.ones(SHAPE)  # zero forces everywhere
        atoms = [Atom(position=(0.3, 0.3, 0.3))]
        relaxed, forces, energies = relax_atoms(rho, atoms, iterations=10)
        assert len(energies) == 1  # stopped immediately
        assert relaxed[0].position == atoms[0].position

    def test_validation(self):
        rho = np.ones(SHAPE)
        with pytest.raises(ValueError):
            relax_atoms(rho, [Atom(position=(0, 0, 0))], step=0.0)
