"""Tests for the Eulerian spectral-transform dynamical core option."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fvcam.eulerian import (
    EulerianCore,
    eulerian_step_work,
    rossby_haurwitz_rate,
)
from repro.apps.fvcam.spectral import (
    SpharmTransform,
    gauss_latitudes,
    legendre_functions,
)

LMAX = 10


@pytest.fixture(scope="module")
def transform() -> SpharmTransform:
    return SpharmTransform(lmax=LMAX, nlat=16)


def random_bandlimited(t: SpharmTransform, seed=0, lcap=None) -> np.ndarray:
    rng = np.random.default_rng(seed)
    c = np.zeros(t.spectral_shape(), dtype=complex)
    lcap = lcap or t.lmax
    for m in range(lcap + 1):
        for l in range(m, lcap + 1):
            c[l, m] = rng.standard_normal() + 1j * rng.standard_normal() * (
                m > 0
            )
    return c


class TestQuadratureAndLegendre:
    def test_gauss_weights_integrate_polynomials(self):
        mu, w = gauss_latitudes(8)
        # exact for degree <= 15
        for k in (0, 2, 6, 14):
            assert (w * mu**k).sum() == pytest.approx(2.0 / (k + 1))
        assert (w * mu**3).sum() == pytest.approx(0.0, abs=1e-14)

    def test_legendre_orthonormal(self):
        mu, w = gauss_latitudes(20)
        p = legendre_functions(8, mu)
        for m in range(5):
            for l1 in range(m, 9):
                for l2 in range(m, 9):
                    val = (w * p[l1, m] * p[l2, m]).sum()
                    want = 1.0 if l1 == l2 else 0.0
                    assert val == pytest.approx(want, abs=1e-12)

    def test_high_m_zero_below_diagonal(self):
        mu, _ = gauss_latitudes(8)
        p = legendre_functions(4, mu)
        assert np.all(p[1, 3] == 0.0)


class TestTransform:
    def test_roundtrip_exact_for_bandlimited(self, transform):
        c = random_bandlimited(transform, seed=1)
        c2 = transform.analysis(transform.synthesis(c))
        np.testing.assert_allclose(c2, c, atol=1e-12)

    def test_constant_field(self, transform):
        grid = np.full(transform.grid_shape, 3.0)
        c = transform.analysis(grid)
        # all in the l=0, m=0 mode
        total = np.abs(c).sum()
        assert abs(c[0, 0]) == pytest.approx(total, rel=1e-12)
        np.testing.assert_allclose(transform.synthesis(c), 3.0, atol=1e-12)

    def test_laplacian_eigenfunction(self, transform):
        c = np.zeros(transform.spectral_shape(), dtype=complex)
        c[5, 3] = 1.0
        g = transform.synthesis(c)
        lap = transform.synthesis(transform.laplacian(transform.analysis(g)))
        np.testing.assert_allclose(lap, -30.0 * g, atol=1e-10)

    def test_inverse_laplacian_inverts(self, transform):
        c = random_bandlimited(transform, seed=2)
        c[0, 0] = 0.0
        back = transform.laplacian(transform.inverse_laplacian(c))
        np.testing.assert_allclose(back, c, atol=1e-12)

    def test_mu_derivative_of_y10(self, transform):
        c = np.zeros(transform.spectral_shape(), dtype=complex)
        c[1, 0] = 1.0
        g = transform.synthesis_mu_derivative(c)
        want = np.sqrt(1.5) * (1.0 - transform.mu**2)
        np.testing.assert_allclose(
            g, np.broadcast_to(want[:, None], g.shape), atol=1e-12
        )

    def test_dlambda_of_zonal_field_vanishes(self, transform):
        c = np.zeros(transform.spectral_shape(), dtype=complex)
        c[3, 0] = 2.0
        np.testing.assert_allclose(
            transform.synthesis_dlambda(c), 0.0, atol=1e-13
        )

    def test_grid_validation(self, transform):
        with pytest.raises(ValueError):
            transform.analysis(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            SpharmTransform(lmax=10, nlat=5)

    @settings(max_examples=10, deadline=None)
    @given(l=st.integers(min_value=1, max_value=LMAX))
    def test_parseval_per_mode(self, transform, l):
        c = np.zeros(transform.spectral_shape(), dtype=complex)
        c[l, 0] = 1.0
        grid = transform.synthesis(c)
        # quadrature of the squared field over the sphere (per 2pi):
        quad = (transform.weights @ (grid**2)) / transform.nlon
        assert quad.sum() == pytest.approx(1.0, rel=1e-10)


class TestEulerianDynamics:
    def make_core(self, **kw) -> EulerianCore:
        t = SpharmTransform(lmax=12, nlat=20, radius=6.371e6)
        return EulerianCore(transform=t, **kw)

    def test_solid_body_rotation_is_steady(self):
        core = self.make_core()
        core.zeta[1, 0] = 1e-5
        np.testing.assert_allclose(
            core.tendency(core.zeta), 0.0, atol=1e-20
        )

    def test_rest_state_stays_at_rest(self):
        core = self.make_core()
        core.run(5, 600.0)
        assert np.abs(core.zeta).max() == 0.0

    def test_rossby_haurwitz_dispersion(self):
        core = self.make_core()
        l, m = 4, 2
        core.zeta[l, m] = 1e-5
        dt, steps = 900.0, 48
        phase0 = np.angle(core.zeta[l, m])
        core.run(steps, dt)
        dphase = np.angle(core.zeta[l, m]) - phase0
        measured_rate = -dphase / (m * steps * dt)
        expected = rossby_haurwitz_rate(l, m, core.omega)
        assert measured_rate == pytest.approx(expected, rel=1e-3)

    def test_mode_amplitude_preserved_by_beta_rotation(self):
        core = self.make_core()
        core.zeta[4, 2] = 1e-5
        core.run(24, 900.0)
        assert abs(core.zeta[4, 2]) == pytest.approx(1e-5, rel=1e-6)

    def test_energy_and_enstrophy_nearly_conserved(self):
        core = self.make_core()
        rng = np.random.default_rng(3)
        for m in range(5):
            for l in range(max(m, 1), 7):
                core.zeta[l, m] = 1e-5 * (
                    rng.standard_normal()
                    + 1j * rng.standard_normal() * (m > 0)
                )
        e0, s0 = core.energy(), core.enstrophy()
        core.run(24, 600.0)
        assert core.energy() == pytest.approx(e0, rel=1e-3)
        assert core.enstrophy() == pytest.approx(s0, rel=1e-3)

    def test_hyperdiffusion_damps_small_scales_most(self):
        core = self.make_core(hyperdiffusion=1e20)
        core.zeta[2, 1] = 1e-5
        core.zeta[10, 1] = 1e-5
        core.run(10, 600.0)
        large = abs(core.zeta[2, 1]) / 1e-5
        small = abs(core.zeta[10, 1]) / 1e-5
        assert small < large

    def test_no_net_vorticity_ever(self):
        core = self.make_core()
        core.set_vorticity_grid(
            1e-5
            * np.cos(core.transform.latitudes)[:, None]
            * np.ones(core.transform.grid_shape)
        )
        core.run(5, 600.0)
        assert core.zeta[0, 0] == 0.0

    def test_winds_of_superrotation(self):
        # zeta ~ Y_1^0 gives solid-body u ~ cos(lat), v = 0
        core = self.make_core()
        core.zeta[1, 0] = 1e-5
        u, v = core.winds()
        np.testing.assert_allclose(v, 0.0, atol=1e-12)
        coslat = np.cos(core.transform.latitudes)
        ratio = u[:, 0] / coslat
        np.testing.assert_allclose(ratio, ratio[0], rtol=1e-8)

    def test_dt_validation(self):
        with pytest.raises(ValueError):
            self.make_core().step(0.0)

    def test_step_work_descriptor(self):
        t = SpharmTransform(lmax=12, nlat=20)
        w = eulerian_step_work(t)
        assert w.flops > 0
        assert w.vector_fraction > 0.95  # the vector-friendly core
