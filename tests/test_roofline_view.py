"""Tests for the roofline-view experiment."""

from __future__ import annotations

import pytest

from repro.experiments import roofline_view
from repro.machines import get_machine


class TestAppPoints:
    def test_all_apps_present(self):
        points = roofline_view.app_points("ES")
        assert set(points) == {"lbmhd", "gtc", "paratec", "fvcam"}

    def test_rates_below_peak(self):
        for machine in roofline_view.MACHINES:
            peak = get_machine(machine).peak_gflops
            for app, (intensity, rate) in roofline_view.app_points(
                machine
            ).items():
                assert 0 < rate <= peak * 1.001, (machine, app)
                assert intensity > 0

    def test_gtc_lowest_rate_on_sx8(self):
        # gathers drop GTC deepest below the roof on the DDR2 machine
        points = roofline_view.app_points("SX-8")
        assert points["gtc"][1] == min(p[1] for p in points.values())

    def test_lbmhd_intensity_below_paratec(self):
        points = roofline_view.app_points("ES")
        assert points["lbmhd"][0] < points["paratec"][0]


class TestRendering:
    def test_ascii_contains_all_markers(self):
        art = roofline_view.ascii_roofline("ES")
        for mark in roofline_view.MARKS.values():
            assert mark in art

    def test_render_covers_machines(self):
        text = roofline_view.render()
        for m in roofline_view.MACHINES:
            assert m in text

    def test_run_structure(self):
        data = roofline_view.run()
        assert set(data) == set(roofline_view.MACHINES)
