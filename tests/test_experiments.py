"""Tests for the experiment modules that regenerate tables and figures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    fig3,
    fig4,
    fig8,
    paper_data,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.experiments.common import mean_abs_deviation


class TestTable1:
    def test_seven_platforms(self):
        rows = table1.run()
        assert len(rows) == 7
        assert [r["Platform"] for r in rows] == [
            "Power3", "Itanium2", "Opteron", "X1", "X1E", "ES", "SX-8",
        ]

    def test_render_contains_key_numbers(self):
        text = table1.render()
        assert "26.3" in text  # ES stream bandwidth
        assert "4d-hypercube" in text


class TestTable2:
    def test_four_applications(self):
        rows = table2.run()
        assert [r["Name"] for r in rows] == [
            "FVCAM", "LBMHD3D", "PARATEC", "GTC",
        ]

    def test_render(self):
        assert "gyrophase-averaged Vlasov-Poisson" in table2.render()


@pytest.mark.parametrize(
    "module,threshold",
    [(table3, 0.30), (table4, 0.15), (table5, 0.15), (table6, 0.25)],
)
def test_tables_reproduce_paper_within_band(module, threshold):
    """The mean relative deviation from the published cells is small."""
    cells = module.run()
    assert mean_abs_deviation(cells) < threshold


@pytest.mark.parametrize("module", [table3, table4, table5, table6])
def test_tables_cover_all_published_cells(module):
    cells = module.run()
    published = [c for c in cells.values() if c.paper_gflops is not None]
    assert len(published) >= 20


class TestFig3:
    def test_series_decline(self):
        data = fig3.run()
        for machine, series in data.items():
            assert series[0][1] > series[-1][1]

    def test_es_leads(self):
        data = fig3.run()
        for k in range(len(fig3.SERIES)):
            best = max(data, key=lambda m: data[m][k][1])
            assert best == "ES"

    def test_render(self):
        assert "ES" in fig3.render()


class TestFig4:
    def test_rates_positive_and_x1e_peaks(self):
        data = fig4.run()
        best = max(
            (rate, m) for m, series in data.items() for _, _, rate in series
        )
        assert best[1] == "X1E"
        assert best[0] == pytest.approx(
            paper_data.HEADLINES["fvcam_x1e_672_simdays"], rel=0.25
        )

    def test_only_published_cells_evaluated(self):
        data = fig4.run()
        n_points = sum(len(s) for s in data.values())
        n_published = sum(len(v) for v in paper_data.TABLE3.values())
        assert n_points == n_published


class TestFig8:
    def test_structure(self):
        data = fig8.run()
        assert set(data) == {"fvcam", "gtc", "lbmhd", "paratec"}
        assert "Opteron" not in data["fvcam"]  # unavailable in the paper
        assert "Opteron" in data["gtc"]

    def test_es_normalization(self):
        data = fig8.run()
        for app in data:
            assert data[app]["ES"]["relative_to_es"] == pytest.approx(1.0)

    def test_es_highest_pct_everywhere(self):
        data = fig8.run()
        for app, rows in data.items():
            best = max(rows, key=lambda m: rows[m]["pct_peak"])
            assert best == "ES", app

    def test_sx8_fastest_absolute_on_three_apps(self):
        # "The SX-8 does achieve the highest per-processor performance
        # for LBMHD3D, GTC, and PARATEC"
        data = fig8.run()
        for app in ("gtc", "lbmhd", "paratec"):
            rows = data[app]
            best = max(rows, key=lambda m: rows[m]["gflops"])
            assert best == "SX-8", app


class TestRunnerRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4", "table5", "table6",
            "fig2", "fig3", "fig4", "fig8", "whatif", "breakdown", "validate",
            "figviz", "modelcard", "roofline", "ipm", "chaos",
        }

    @pytest.mark.parametrize(
        "name", ["table1", "table2", "table3", "table4", "table5", "table6",
                 "fig3", "fig4", "fig8"]
    )
    def test_render_produces_text(self, name):
        text = EXPERIMENTS[name].render()
        assert isinstance(text, str) and len(text) > 100

    def test_cli_main(self, capsys):
        from repro.experiments.runner import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "LBMHD3D" in out

    def test_cli_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_cli_json(self, capsys):
        import json

        from repro.experiments.runner import main

        assert main(["--json", "table2"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert set(out) == {"table2"}
        assert "LBMHD3D" in out["table2"]

    def test_cli_unknown_name_exits_nonzero(self, capsys):
        from repro.experiments.runner import main

        assert main(["no-such-experiment"]) != 0
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "no-such-experiment" in err

    def test_cli_failing_experiment_does_not_abort_batch(
        self, capsys, monkeypatch
    ):
        """One raising experiment: the rest still run, the failure goes
        to stderr, and the exit status is nonzero."""
        import types

        from repro.experiments import runner

        def boom():
            raise RuntimeError("synthetic mid-batch failure")

        broken = types.SimpleNamespace(render=boom, __doc__="broken stub")
        monkeypatch.setitem(runner.EXPERIMENTS, "broken", broken)

        assert runner.main(["table2", "broken", "table1"]) == 1
        captured = capsys.readouterr()
        assert "LBMHD3D" in captured.out          # table2 ran
        assert "Power3" in captured.out           # table1 ran after it
        assert "broken failed" in captured.err
        assert "synthetic mid-batch failure" in captured.err
        assert "1 of 3 experiment(s) failed" in captured.err

    def test_cli_json_failure_emits_complete_object(
        self, capsys, monkeypatch
    ):
        """--json with a mid-batch failure still prints one well-formed
        object containing every successful experiment."""
        import json
        import types

        from repro.experiments import runner

        def boom():
            raise ValueError("nope")

        broken = types.SimpleNamespace(render=boom, __doc__="broken stub")
        monkeypatch.setitem(runner.EXPERIMENTS, "broken", broken)

        assert runner.main(["--json", "table2", "broken", "table1"]) == 1
        captured = capsys.readouterr()
        out = json.loads(captured.out)  # parses: complete, not partial
        assert set(out) == {"table2", "table1"}
        assert "nope" in captured.err

    def test_cli_accepts_capable_process_executor(self, capsys):
        """Process executors schedule rank segments wherever the host
        supports fork + POSIX shared memory; a host (or env toggle)
        without them gets a clear error pointing at the alternatives."""
        from repro.experiments.runner import main
        from repro.runtime.executors import ProcessExecutor

        if ProcessExecutor(2).segment_support().ok:
            assert main(["--executor", "processes", "table2"]) == 0
            assert "LBMHD3D" in capsys.readouterr().out
        else:
            assert main(["--executor", "processes", "table2"]) == 2
            assert "--jobs" in capsys.readouterr().err

    def test_cli_rejects_process_executor_without_shm(
        self, capsys, monkeypatch
    ):
        from repro.experiments.runner import main

        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        assert main(["--executor", "processes", "table2"]) == 2
        err = capsys.readouterr().err
        assert "REPRO_SHM_DISABLE" in err and "--jobs" in err

    def test_cli_jobs_batches_across_processes(self, capsys):
        from repro.experiments.runner import main

        assert main(["--jobs", "2", "--json", "table2", "table1"]) == 0
        import json

        out = json.loads(capsys.readouterr().out)
        assert set(out) == {"table1", "table2"}
        assert "LBMHD3D" in out["table2"]


class TestMeanAbsDeviation:
    def test_empty_cells_is_nan(self):
        import math

        assert math.isnan(mean_abs_deviation({}))

    def test_cells_without_ratios_is_nan(self):
        import math

        class Cell:
            ratio = None

        assert math.isnan(mean_abs_deviation({"a": Cell(), "b": None}))

    def test_nonempty_mean(self):
        class Cell:
            def __init__(self, ratio):
                self.ratio = ratio

        cells = {"a": Cell(1.1), "b": Cell(0.9)}
        assert mean_abs_deviation(cells) == pytest.approx(0.1)
