"""Arena fast paths must be bitwise-identical to the allocating paths.

The decomposition-independence suite is the numerical oracle of this
repository; these tests pin the stronger per-kernel guarantee that the
PR's zero-copy/arena variants (LBMHD collide + block halo exchange, GTC
deposit/push, PARATEC FFT transposes) reproduce the allocating code
paths bit for bit, across at least two decompositions each.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.apps.gtc.deposit import deposit_scalar, deposit_work_vector
from repro.apps.gtc.particles import load_particles
from repro.apps.gtc.solver import GTC, GTCParams
from repro.apps.lbmhd.collision import CollisionParams, collide
from repro.apps.lbmhd.decomp import (
    CartesianDecomposition3D,
    exchange_halos,
    exchange_halos_block,
)
from repro.apps.lbmhd.fields import split_state
from repro.apps.lbmhd.solver import LBMHD3D, LBMHDParams
from repro.apps.paratec.fft3d import ParallelFFT3D
from repro.apps.paratec.gvectors import GSphere, SphereDistribution
from repro.machines import get_machine
from repro.runtime.arena import Arena
from repro.simmpi import Communicator


def _random_state(shape, seed=0):
    rng = np.random.default_rng(seed)
    state = np.empty((72, *shape))
    f, g = split_state(state)
    f[:] = 1.0 / 27.0 + 0.01 * rng.standard_normal(f.shape)
    g[:] = 0.01 * rng.standard_normal(g.shape)
    return state


class TestLBMHDArenaBitwise:
    @pytest.mark.parametrize("shape", [(6, 5, 4), (8, 8, 16)])
    def test_collide_arena_matches_allocating(self, shape):
        state = _random_state(shape)
        params = CollisionParams(tau=0.8, tau_m=0.9)
        base = collide(state, params)
        again = collide(state, params, arena=Arena())
        assert_array_equal(base, again)

    def test_collide_out_and_inplace(self):
        state = _random_state((4, 6, 5), seed=3)
        params = CollisionParams(tau=0.7, tau_m=1.1)
        base = collide(state, params)
        dest = np.empty_like(state)
        assert collide(state, params, out=dest, arena=Arena()) is dest
        assert_array_equal(base, dest)
        aliased = state.copy()
        collide(aliased, params, out=aliased, arena=Arena())
        assert_array_equal(base, aliased)

    @pytest.mark.parametrize("nprocs", [2, 8])
    def test_solver_fast_path_bitwise(self, nprocs):
        params = LBMHDParams(shape=(8, 8, 8))
        ref = LBMHD3D(params, Communicator(nprocs))
        fast = LBMHD3D(params, Communicator(nprocs), arena=Arena())
        ref.run(3)
        fast.run(3)
        assert_array_equal(ref.global_state(), fast.global_state())

    @pytest.mark.parametrize("nprocs", [2, 4, 12])
    def test_solver_fast_path_odd_shape(self, nprocs):
        params = LBMHDParams(shape=(12, 6, 10))
        ref = LBMHD3D(params, Communicator(nprocs))
        fast = LBMHD3D(params, Communicator(nprocs), arena=Arena())
        ref.run(2)
        fast.run(2)
        assert_array_equal(ref.global_state(), fast.global_state())

    @pytest.mark.parametrize("nprocs", [4, 8])
    def test_block_halo_exchange_matches_legacy(self, nprocs):
        """Same ghost cells AND same virtual clocks as the per-pair path."""
        shape = (8, 8, 8)
        decomp = CartesianDecomposition3D.create(shape, nprocs)
        lx, ly, lz = decomp.local_shape
        rng = np.random.default_rng(11)
        block = rng.standard_normal((72, nprocs, lx + 2, ly + 2, lz + 2))
        legacy_comm = Communicator(nprocs, machine=get_machine("X1"))
        block_comm = Communicator(nprocs, machine=get_machine("X1"))

        padded = [block[:, r].copy() for r in range(nprocs)]
        exchange_halos(legacy_comm, decomp, padded)
        blk = block.copy()
        exchange_halos_block(block_comm, decomp, blk)

        for r in range(nprocs):
            assert_array_equal(blk[:, r], padded[r])
        assert block_comm.times.tolist() == legacy_comm.times.tolist()


class TestGTCArenaBitwise:
    def _particles(self, n=1500, seed=5):
        torus = GTCParams(ntoroidal=4).make_torus()
        return torus, load_particles(torus, n, 0, np.random.default_rng(seed))

    def test_deposit_scalar_arena_and_out(self):
        torus, p = self._particles()
        grid = torus.plane
        base = deposit_scalar(grid, p, gyro_radius=0.04)
        assert_array_equal(
            base, deposit_scalar(grid, p, gyro_radius=0.04, arena=Arena())
        )
        dest = np.empty(grid.shape)
        deposit_scalar(grid, p, gyro_radius=0.04, out=dest)
        assert_array_equal(base, dest)

    def test_deposit_work_vector_arena(self):
        torus, p = self._particles(seed=6)
        grid = torus.plane
        base = deposit_work_vector(grid, p, num_copies=4, gyro_radius=0.03)
        fast = deposit_work_vector(
            grid, p, num_copies=4, gyro_radius=0.03, arena=Arena()
        )
        assert_array_equal(base, fast)

    @pytest.mark.parametrize("nprocs,ntoroidal", [(4, 4), (8, 4)])
    def test_solver_fast_path_bitwise(self, nprocs, ntoroidal):
        params = GTCParams(ntoroidal=ntoroidal, particles_per_cell=4)
        ref = GTC(params, Communicator(nprocs))
        fast = GTC(params, Communicator(nprocs), arena=Arena())
        ref.run(3)
        fast.run(3)
        for a, b in zip(ref.charge, fast.charge):
            assert_array_equal(a, b)
        for a, b in zip(ref.phi, fast.phi):
            assert_array_equal(a, b)
        for pa, pb in zip(ref.particles, fast.particles):
            for field in ("r", "theta", "zeta", "vpar", "weight", "species"):
                assert_array_equal(getattr(pa, field), getattr(pb, field))


class TestParatecArenaBitwise:
    @pytest.mark.parametrize("nranks", [4, 16])
    def test_transposes_bitwise_and_roundtrip(self, nranks):
        sphere = GSphere(25.0, (18, 18, 18))
        dist = SphereDistribution(sphere, nranks)
        ref = ParallelFFT3D(dist, Communicator(nranks))
        fast = ParallelFFT3D(dist, Communicator(nranks), arena=Arena())
        rng = np.random.default_rng(2)
        lines = [
            rng.standard_normal((len(ref._col_keys[r]), 18))
            + 1j * rng.standard_normal((len(ref._col_keys[r]), 18))
            for r in range(nranks)
        ]
        s_ref = ref.transpose_columns_to_slabs(lines)
        s_fast = fast.transpose_columns_to_slabs(lines)
        for a, b in zip(s_ref, s_fast):
            assert_array_equal(a, b)

        slabs = [np.asarray(s).copy() for s in s_ref]
        r_ref = ref.transpose_slabs_to_columns(slabs)
        r_fast = fast.transpose_slabs_to_columns(slabs)
        for row_a, row_b in zip(r_ref, r_fast):
            for a, b in zip(row_a, row_b):
                assert_array_equal(a, b)

    @pytest.mark.parametrize("nranks", [4, 16])
    def test_full_transform_bitwise(self, nranks):
        sphere = GSphere(25.0, (18, 18, 18))
        dist = SphereDistribution(sphere, nranks)
        ref = ParallelFFT3D(dist, Communicator(nranks))
        fast = ParallelFFT3D(dist, Communicator(nranks), arena=Arena())
        rng = np.random.default_rng(4)
        coeffs = [
            rng.standard_normal(len(dist.points_of(r)))
            + 1j * rng.standard_normal(len(dist.points_of(r)))
            for r in range(nranks)
        ]
        slabs_ref = ref.sphere_to_real(coeffs)
        slabs_fast = fast.sphere_to_real(coeffs)
        for a, b in zip(slabs_ref, slabs_fast):
            assert_array_equal(a, b)
        back_ref = ref.real_to_sphere(slabs_ref)
        back_fast = fast.real_to_sphere([s.copy() for s in slabs_fast])
        for a, b in zip(back_ref, back_fast):
            assert_array_equal(a, b)
