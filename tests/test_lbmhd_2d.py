"""Tests for LBMHD2D, the paper's 2-D predecessor code."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lbmhd.two_d import (
    CS2,
    LBMHD2D,
    LBMHD2DParams,
    Q5_VELOCITIES,
    Q5_WEIGHTS,
    Q9_VELOCITIES,
    Q9_WEIGHTS,
    f_equilibrium_2d,
    g_equilibrium_2d,
    step_work_2d,
)


class TestLattices2D:
    def test_weights_normalize(self):
        assert Q9_WEIGHTS.sum() == pytest.approx(1.0)
        assert Q5_WEIGHTS.sum() == pytest.approx(1.0)

    def test_second_moments(self):
        for vels, w in ((Q9_VELOCITIES, Q9_WEIGHTS), (Q5_VELOCITIES, Q5_WEIGHTS)):
            m2 = np.einsum("i,ia,ib->ab", w, vels.astype(float), vels.astype(float))
            np.testing.assert_allclose(m2, CS2 * np.eye(2), atol=1e-14)

    def test_q9_fourth_moment_isotropic(self):
        xi = Q9_VELOCITIES.astype(float)
        m4 = np.einsum("i,ia,ib,ic,id->abcd", Q9_WEIGHTS, xi, xi, xi, xi)
        eye = np.eye(2)
        target = CS2**2 * (
            np.einsum("ab,cd->abcd", eye, eye)
            + np.einsum("ac,bd->abcd", eye, eye)
            + np.einsum("ad,bc->abcd", eye, eye)
        )
        np.testing.assert_allclose(m4, target, atol=1e-14)

    def test_inversion_symmetry(self):
        vels = {tuple(v) for v in Q9_VELOCITIES}
        assert all((-a, -b) in vels for a, b in vels)


class TestEquilibria2D:
    def fields(self, seed=0):
        rng = np.random.default_rng(seed)
        rho = 1.0 + 0.02 * rng.standard_normal((4, 4))
        u = 0.03 * rng.standard_normal((2, 4, 4))
        B = 0.03 * rng.standard_normal((2, 4, 4))
        return rho, u, B

    def test_f_moments(self):
        rho, u, B = self.fields()
        feq = f_equilibrium_2d(rho, u, B)
        np.testing.assert_allclose(feq.sum(axis=0), rho, atol=1e-13)
        mom = np.einsum("i...,ia->a...", feq, Q9_VELOCITIES.astype(float))
        np.testing.assert_allclose(mom, rho * u, atol=1e-13)

    def test_f_stress_includes_2d_maxwell(self):
        rho, u, B = self.fields(1)
        feq = f_equilibrium_2d(rho, u, B)
        xi = Q9_VELOCITIES.astype(float)
        Pi = np.einsum("i...,ia,ib->ab...", feq, xi, xi)
        eye = np.eye(2)[:, :, None, None]
        B2 = (B**2).sum(axis=0)
        target = (
            (rho / 3.0) * eye
            + rho * np.einsum("a...,b...->ab...", u, u)
            + 0.5 * B2 * eye
            - np.einsum("a...,b...->ab...", B, B)
        )
        np.testing.assert_allclose(Pi, target, atol=1e-13)

    def test_g_moments(self):
        _, u, B = self.fields(2)
        geq = g_equilibrium_2d(u, B)
        np.testing.assert_allclose(geq.sum(axis=0), B, atol=1e-13)
        ind = np.einsum("aj,ak...->jk...", Q5_VELOCITIES.astype(float), geq)
        lam = np.einsum("j...,k...->jk...", u, B) - np.einsum(
            "j...,k...->jk...", B, u
        )
        np.testing.assert_allclose(ind, lam, atol=1e-13)


class TestSolver2D:
    def test_validation(self):
        with pytest.raises(ValueError):
            LBMHD2DParams(shape=(2, 16))
        with pytest.raises(ValueError):
            LBMHD2DParams(tau=0.4)

    def test_conservation(self):
        sim = LBMHD2D(LBMHD2DParams(shape=(16, 16)))
        m0 = sim.total_mass()
        p0 = sim.total_momentum().copy()
        b0 = sim.total_B().copy()
        sim.run(20)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-12)
        np.testing.assert_allclose(sim.total_momentum(), p0, atol=1e-10)
        np.testing.assert_allclose(sim.total_B(), b0, atol=1e-12)

    def test_energy_decays(self):
        sim = LBMHD2D(LBMHD2DParams(shape=(16, 16)))
        ke0, me0 = sim.energies()
        sim.run(20)
        ke1, me1 = sim.energies()
        assert ke1 + me1 <= ke0 + me0

    def test_rest_state_is_steady(self):
        sim = LBMHD2D(LBMHD2DParams(shape=(8, 8), u0=0.0, b0=0.0))
        f0 = sim.f.copy()
        sim.run(3)
        np.testing.assert_allclose(sim.f, f0, atol=1e-14)

    def test_orszag_tang_develops_vorticity_structure(self):
        sim = LBMHD2D(LBMHD2DParams(shape=(32, 32), tau=0.6, tau_m=0.6, u0=0.08, b0=0.08))
        w0 = np.abs(sim.vorticity()).max()
        sim.run(60)
        assert np.isfinite(sim.vorticity()).all()
        assert np.abs(sim.vorticity()).max() > 0.1 * w0  # still alive

    def test_step_work_scales(self):
        assert step_work_2d(200).flops == pytest.approx(
            2 * step_work_2d(100).flops
        )

    def test_2d_state_smaller_than_3d(self):
        # 9 + 10 slots vs the 3-D code's 72 — the "further development"
        from repro.apps.lbmhd.lattice import NSLOTS

        assert 9 + 5 * 2 < NSLOTS / 2
