"""The ``repro-perfdb`` command: ingest / query / check / report / export."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, run_campaign
from repro.perfdb.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILES = sorted(REPO_ROOT.glob("BENCH_PR*.json"))


@pytest.fixture
def db_path(tmp_path):
    return tmp_path / "perf.db"


@pytest.fixture
def loaded_db(db_path):
    rc = main(["ingest", str(db_path), "--quiet"]
              + [str(p) for p in BENCH_FILES])
    assert rc == 0
    return db_path


@pytest.fixture
def manifest(tmp_path):
    path = tmp_path / "smoke.manifest.jsonl"
    spec = CampaignSpec(
        name="perfdb-cli-smoke",
        apps=("lbmhd",),
        nprocs=(4,),
        seeds=(0,),
        steps=2,
        params={"lbmhd": {"shape": [8, 8, 8]}},
    )
    report = run_campaign(
        spec, cache=None, manifest=path, scheduler="serial"
    )
    assert report.ok
    return path


def test_ingest_reports_per_source_counts(db_path, capsys):
    rc = main(["ingest", str(db_path)] + [str(p) for p in BENCH_FILES])
    assert rc == 0
    out = capsys.readouterr().out
    for p in BENCH_FILES:
        assert p.name in out
    # a re-ingest is idempotent: same sources, zero new records
    rc = main(["ingest", str(db_path), str(BENCH_FILES[0])])
    assert rc == 0
    assert "0 new record(s)" in capsys.readouterr().out


def test_ingest_manifest_and_missing_source(db_path, manifest, capsys):
    assert main(["ingest", str(db_path), str(manifest)]) == 0
    assert "1 new record(s)" in capsys.readouterr().out
    assert main(["ingest", str(db_path), "no-such-file.json"]) == 2


def test_query_renders_the_acceptance_pivot(loaded_db, capsys):
    rc = main([
        "query", str(loaded_db),
        "--rows", "app", "--cols", "executor,kernel_backend",
        "--value", "gflops", "--agg", "best",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "lbmhd" in out and "serial" in out


def test_query_where_filter_and_json(loaded_db, capsys):
    rc = main([
        "query", str(loaded_db), "--where", "app=lbmhd",
        "--rows", "bench,variant", "--value", "wall_per_step",
        "--agg", "min", "--json",
    ])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["value"] == "wall_per_step"
    assert payload["cells"]
    assert main(
        ["query", str(loaded_db), "--where", "malformed"]
    ) == 2
    assert main(
        ["query", str(loaded_db), "--rows", "not_a_field"]
    ) == 2


def test_check_passes_real_trajectory(loaded_db, capsys):
    assert main(["check", str(loaded_db)]) == 0
    assert "no regressions" in capsys.readouterr().out


def test_check_flags_injected_slowdown(loaded_db, manifest, capsys):
    # the fresh manifest point carries host identity, so its injected
    # 2x copy forms a same-host pair and must trip the check
    assert main(["ingest", str(loaded_db), str(manifest), "--quiet"]) == 0
    rc = main(["check", str(loaded_db), "--inject-slowdown", "2.0"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "2.00x slower" in out

    rc = main([
        "check", str(loaded_db), "--inject-slowdown", "2.0", "--json",
    ])
    assert rc == 1
    findings = json.loads(capsys.readouterr().out)
    assert findings["regressions"]
    assert all(f["same_host"] for f in findings["regressions"])


def test_check_threshold_overrides(loaded_db):
    # the real trajectory's worst cross-host step is ~1.85x; tightening
    # the cross-host bar below that must turn the check red
    assert main(
        ["check", str(loaded_db), "--cross-host-ratio", "1.5", "--quiet"]
    ) == 1
    assert main(
        ["check", str(loaded_db), "--cross-host-ratio", "5.0"]
    ) == 0


def test_report_renders_all_views(loaded_db, capsys):
    assert main(["report", str(loaded_db)]) == 0
    out = capsys.readouterr().out
    for heading in ("trend", "shootout", "phases", "roofline"):
        assert f"== {heading} ==" in out, f"missing {heading} view"
    assert main(["report", str(loaded_db), "--kind", "trend"]) == 0
    assert "trajectory" in capsys.readouterr().out


def test_export_round_trips(loaded_db, tmp_path, capsys):
    out = tmp_path / "dump.jsonl"
    assert main(["export", str(loaded_db), str(out)]) == 0
    lines = [l for l in out.read_text().splitlines() if l.strip()]
    assert lines
    db2 = tmp_path / "again.db"
    assert main(["ingest", str(db2), str(out), "--quiet"]) == 0
    assert main(["check", str(db2)]) == 0
    # identical record count after the round trip
    first = json.loads(lines[0])
    assert "app" in first and "wall_s" in first


def test_console_script_is_registered():
    import tomllib

    meta = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
    assert (
        meta["project"]["scripts"]["repro-perfdb"]
        == "repro.perfdb.cli:main"
    )
