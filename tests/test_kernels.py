"""The kernel-backend seam: resolution, capability policy, parity.

Three layers of contract, mirroring ``docs/kernels.md``:

* **Resolution** — explicit argument > process default >
  ``REPRO_KERNEL_BACKEND`` > ``"numpy"``; unknown names are a
  ValueError listing the valid choices (and naming the environment
  variable when that is where the bad spec came from).
* **Capability** — an explicitly requested unavailable backend raises
  naming the reason; an ambient one warns once per process and
  degrades to the numpy reference.
* **Parity** — every registered, available backend is pinned bitwise
  against the numpy reference per kernel, and a harness run under any
  ambient backend produces states, diagnostics, ledgers, and virtual
  clocks identical to an explicit ``kernel_backend="numpy"`` run.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import harness
from repro.apps.fvcam.solver import FVCAM, FVCAMParams
from repro.apps.gtc.particles import PARTICLE_FIELDS
from repro.apps.gtc.solver import GTC, GTCParams
from repro.apps.lbmhd.collision import CollisionParams
from repro.apps.lbmhd.equilibrium import f_equilibrium, g_equilibrium
from repro.kernels import (
    KernelBackend,
    NumPyBackend,
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    unregister_backend,
)
from repro.kernels import registry
from repro.simmpi.comm import Communicator


#: The spec the *session* was launched with (the CI kernel-backend job
#: sets REPRO_KERNEL_BACKEND=numba); captured before the autouse
#: fixture scrubs the environment, so the harness-equivalence tests can
#: reinstate it and genuinely compare the ambient backend to numpy.
_AMBIENT_ENV_SPEC = os.environ.get("REPRO_KERNEL_BACKEND")


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Every test starts with no default, no env spec, fresh warnings."""
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    set_default_backend(None)
    yield
    set_default_backend(None)


@pytest.fixture
def _ambient_env_spec(monkeypatch):
    """Reinstate the session's original REPRO_KERNEL_BACKEND, if any."""
    if _AMBIENT_ENV_SPEC:
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", _AMBIENT_ENV_SPEC)


# -- resolution order ------------------------------------------------------


def test_default_resolution_is_numpy():
    assert get_backend().name == "numpy"
    assert isinstance(get_backend(), NumPyBackend)


def test_explicit_name_and_instance_resolve():
    assert get_backend("numpy").name == "numpy"
    inst = NumPyBackend()
    assert get_backend(inst) is inst


def test_default_outranks_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "not-a-backend")
    set_default_backend("numpy")
    assert get_backend().name == "numpy"  # env never consulted


def test_explicit_outranks_default():
    class Marker(NumPyBackend):
        name = "marker"

    register_backend("marker", Marker)
    try:
        set_default_backend("marker")
        assert get_backend().name == "marker"
        assert get_backend("numpy").name == "numpy"
    finally:
        set_default_backend(None)
        unregister_backend("marker")


def test_env_var_resolves(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
    assert get_backend().name == "numpy"


def test_unknown_name_lists_choices():
    with pytest.raises(ValueError) as exc:
        get_backend("fortran")
    msg = str(exc.value)
    assert "unknown kernel backend 'fortran'" in msg
    assert "'numpy'" in msg and "'numba'" in msg
    assert "REPRO_KERNEL_BACKEND" not in msg  # not env-sourced


def test_unknown_env_name_names_the_variable(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "fortran")
    with pytest.raises(ValueError) as exc:
        get_backend()
    msg = str(exc.value)
    assert "(from REPRO_KERNEL_BACKEND)" in msg
    assert "'numpy'" in msg and "'numba'" in msg


def test_set_default_validates_eagerly():
    with pytest.raises(ValueError, match="valid choices"):
        set_default_backend("fortran")
    assert get_backend().name == "numpy"  # nothing was installed


def test_non_string_spec_is_type_error():
    with pytest.raises(TypeError):
        get_backend(42)


# -- capability policy -----------------------------------------------------


def test_explicit_unavailable_raises_naming_reason(monkeypatch):
    monkeypatch.setenv("REPRO_NUMBA_DISABLE", "1")
    with pytest.raises(ValueError) as exc:
        get_backend("numba")
    assert "unavailable here" in str(exc.value)
    assert "REPRO_NUMBA_DISABLE" in str(exc.value)


def test_ambient_unavailable_warns_once_and_degrades(monkeypatch):
    monkeypatch.setenv("REPRO_NUMBA_DISABLE", "1")
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numba")
    registry._clear_warned()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert get_backend().name == "numpy"
        assert get_backend().name == "numpy"
    relevant = [
        w for w in caught if "kernel backend 'numba'" in str(w.message)
    ]
    assert len(relevant) == 1  # once per process, not per call
    assert issubclass(relevant[0].category, RuntimeWarning)


def test_resolve_backend_degrades_explicit_unavailable(monkeypatch):
    monkeypatch.setenv("REPRO_NUMBA_DISABLE", "1")
    registry._clear_warned()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert resolve_backend("numba").name == "numpy"
    assert any(
        "kernel backend 'numba'" in str(w.message) for w in caught
    )


def test_resolve_backend_still_rejects_unknown_names():
    with pytest.raises(ValueError, match="valid choices"):
        resolve_backend("fortran")


def test_available_backends_reports_every_registration():
    support = available_backends()
    assert set(backend_names()) == set(support)
    assert support["numpy"].ok
    assert support["numpy"].reason


# -- registration + dispatch -----------------------------------------------


class _DoublingBackend(KernelBackend):
    """Toy backend proving dispatch: doubles one kernel's output."""

    name = "toy-double"

    def fvcam_suffix_sum(self, h: np.ndarray) -> np.ndarray:
        return 2.0 * super().fvcam_suffix_sum(h)


def test_registered_backend_is_dispatched():
    from repro.kernels import fvcam as fvcam_kernels

    register_backend("toy", _DoublingBackend)
    try:
        h = np.arange(24.0).reshape(2, 3, 4)
        ref = fvcam_kernels.suffix_sum(h)
        toy = fvcam_kernels.suffix_sum(h, backend="toy")
        assert_array_equal(toy, 2.0 * ref)
        # non-overridden kernels inherit the reference
        g = get_backend("toy").fvcam_geopotential(h, 9.8)
        assert_array_equal(g, get_backend("numpy").fvcam_geopotential(h, 9.8))
    finally:
        unregister_backend("toy")
    with pytest.raises(ValueError, match="valid choices"):
        get_backend("toy")


def test_duplicate_registration_needs_replace():
    register_backend("toy", _DoublingBackend)
    try:
        with pytest.raises(ValueError, match="already registered"):
            register_backend("toy", _DoublingBackend)
        register_backend("toy", _DoublingBackend, replace=True)
    finally:
        unregister_backend("toy")


# -- per-kernel parity matrix ----------------------------------------------


def _kernel_cases():
    """name -> call(backend) for every kernel on the backend surface.

    Inputs are fixed (seeded RNG / deterministic solvers) so any two
    backends see identical arguments; in-place kernels copy their
    operands first and return the mutated copy.
    """
    rng = np.random.default_rng(42)

    # LBMHD: a physical state assembled from the equilibria
    shape = (4, 4, 4)
    rho = 1.0 + 0.01 * rng.standard_normal(shape)
    u = 0.01 * rng.standard_normal((3,) + shape)
    B = 0.05 * rng.standard_normal((3,) + shape)
    f = f_equilibrium(rho, u, B)
    g = g_equilibrium(u, B)
    state = np.concatenate([f, g.reshape(-1, *shape)])
    padded = np.pad(state, ((0, 0),) + ((1, 1),) * 3, mode="wrap")
    block = np.stack([state, np.roll(state, 1, axis=1)], axis=1)
    padded_block = np.pad(
        block, ((0, 0), (0, 0)) + ((1, 1),) * 3, mode="wrap"
    )
    cparams = CollisionParams()

    # GTC: a real grid + particle population from a tiny solver
    gtc = GTC(
        GTCParams(ntoroidal=2, particles_per_cell=8), Communicator(2)
    )
    plane, torus = gtc.torus.plane, gtc.torus
    parts = gtc.particles[0]
    e_r_grid = 0.01 * rng.standard_normal(plane.shape)
    e_theta_grid = 0.01 * rng.standard_normal(plane.shape)
    e_r_at_p = 0.01 * rng.standard_normal(parts.r.shape)
    e_theta_at_p = 0.01 * rng.standard_normal(parts.r.shape)
    push = gtc.push_params

    # PARATEC: complex lines/slabs/slices
    lines = rng.standard_normal((5, 8)) + 1j * rng.standard_normal((5, 8))
    slab = rng.standard_normal((6, 6, 3)) + 1j * rng.standard_normal(
        (6, 6, 3)
    )
    x = rng.standard_normal(40) + 1j * rng.standard_normal(40)
    y = rng.standard_normal(40) + 1j * rng.standard_normal(40)
    kinetic = rng.random(40) * 4.0

    # FVCAM: level stacks on the solver's own lat-lon grid
    fv_grid = FVCAM(FVCAMParams(), Communicator(1)).grid
    h = 100.0 + rng.standard_normal((5, fv_grid.jm, fv_grid.im))
    q = 1.0 + 0.1 * rng.standard_normal((3, fv_grid.jm, fv_grid.im))
    cu = 0.2 * rng.standard_normal(q.shape)
    cv = 0.2 * rng.standard_normal(q.shape)
    phi = 9.8 * h
    coslat = fv_grid.coslat

    def axpy(b):
        yc = y.copy()
        b.paratec_cg_axpy(yc, 0.25 - 0.5j, x)
        return yc

    def scale(b):
        xc = x.copy()
        b.paratec_cg_scale(xc, 0.75 + 0.1j)
        return xc

    return {
        "lbmhd_collide": lambda b: b.lbmhd_collide(state.copy(), cparams),
        "lbmhd_f_equilibrium": lambda b: b.lbmhd_f_equilibrium(rho, u, B),
        "lbmhd_g_equilibrium": lambda b: b.lbmhd_g_equilibrium(u, B),
        "lbmhd_stream_periodic": lambda b: b.lbmhd_stream_periodic(state),
        "lbmhd_stream_from_padded": (
            lambda b: b.lbmhd_stream_from_padded(padded)
        ),
        "lbmhd_stream_from_padded_batch": (
            lambda b: b.lbmhd_stream_from_padded_batch(padded_block)
        ),
        "gtc_deposit_scalar": lambda b: b.gtc_deposit_scalar(plane, parts),
        "gtc_deposit_scalar_gyro": (
            lambda b: b.gtc_deposit_scalar(plane, parts, gyro_radius=0.05)
        ),
        "gtc_deposit_work_vector": (
            lambda b: b.gtc_deposit_work_vector(plane, parts, 8)
        ),
        "gtc_gather_field": (
            lambda b: b.gtc_gather_field(plane, e_r_grid, e_theta_grid, parts)
        ),
        "gtc_push_particles": (
            lambda b: b.gtc_push_particles(
                torus, parts, e_r_at_p, e_theta_at_p, push
            )
        ),
        "paratec_ifft_z": lambda b: b.paratec_ifft_z(lines),
        "paratec_fft_z": lambda b: b.paratec_fft_z(lines),
        "paratec_ifft2_planes": lambda b: b.paratec_ifft2_planes(slab),
        "paratec_fft2_planes": lambda b: b.paratec_fft2_planes(slab),
        "paratec_cg_axpy": axpy,
        "paratec_cg_scale": scale,
        "paratec_cg_precondition": (
            lambda b: b.paratec_cg_precondition(x, kinetic, 2.0)
        ),
        "fvcam_suffix_sum": lambda b: b.fvcam_suffix_sum(h),
        "fvcam_geopotential": lambda b: b.fvcam_geopotential(h, 9.8),
        "fvcam_transport_2d": (
            lambda b: b.fvcam_transport_2d(fv_grid, q, cu, cv)
        ),
        "fvcam_pressure_gradient": (
            lambda b: b.fvcam_pressure_gradient(fv_grid, phi, coslat, 0.1)
        ),
    }


def _assert_same(name: str, got, want) -> None:
    if isinstance(got, tuple):
        assert isinstance(want, tuple) and len(got) == len(want), name
        for i, (a, b) in enumerate(zip(got, want)):
            _assert_same(f"{name}[{i}]", a, b)
    elif hasattr(got, "r") and hasattr(got, "theta"):  # ParticleArray
        for fld in PARTICLE_FIELDS:
            assert_array_equal(
                getattr(got, fld), getattr(want, fld), err_msg=f"{name}.{fld}"
            )
    else:
        assert_array_equal(np.asarray(got), np.asarray(want), err_msg=name)


@pytest.mark.parametrize("backend_name", backend_names())
def test_backend_bitwise_parity_per_kernel(backend_name):
    """Every registered, available backend == numpy, kernel by kernel."""
    support = available_backends()[backend_name]
    if not support.ok:
        pytest.skip(f"{backend_name}: {support.reason}")
    backend = get_backend(backend_name)
    reference = get_backend("numpy")
    for name, call in _kernel_cases().items():
        _assert_same(name, call(backend), call(reference))


def test_numba_loop_bodies_match_reference_in_pure_python(monkeypatch):
    """The numba backend's loop bodies, run as plain Python (jit
    stubbed to identity), are bitwise-identical to the reference.

    ``njit(fastmath=False)`` compiles exactly these semantics, so this
    pins the algorithmic parity of every override even on hosts where
    numba itself is not importable; the jitted path is pinned by the CI
    kernel-backend job.
    """
    from repro.kernels import numba_backend

    monkeypatch.setattr(numba_backend, "_jit", lambda fn: fn)
    backend = numba_backend.NumbaBackend()
    reference = get_backend("numpy")
    for name, call in _kernel_cases().items():
        _assert_same(name, call(backend), call(reference))


def test_toy_backend_must_not_survive_parity():
    """The parity harness actually detects a divergent backend."""
    register_backend("toy", _DoublingBackend)
    try:
        cases = _kernel_cases()
        with pytest.raises(AssertionError):
            _assert_same(
                "fvcam_suffix_sum",
                cases["fvcam_suffix_sum"](get_backend("toy")),
                cases["fvcam_suffix_sum"](get_backend("numpy")),
            )
    finally:
        unregister_backend("toy")


# -- harness-level equivalence ---------------------------------------------

#: (app, nprocs, params) cells of the equivalence matrix; FVCAM's
#: decomposition must match P explicitly.
_MATRIX_P4 = [
    ("lbmhd", 4, None),
    ("gtc", 4, None),
    ("fvcam", 4, FVCAMParams(py=2, pz=2)),
    ("paratec", 4, None),
]
_MATRIX_P8 = [
    ("lbmhd", 8, None),
    ("gtc", 8, None),
    ("fvcam", 8, FVCAMParams(py=2, pz=4)),
    ("paratec", 8, None),
]


def _assert_runs_identical(app: str, a, b) -> None:
    adapter = harness.APPLICATIONS[app]
    assert_array_equal(
        adapter.state_vector(a.state), adapter.state_vector(b.state)
    )
    assert a.diagnostics == b.diagnostics
    assert a.comm.elapsed == b.comm.elapsed  # virtual clock
    assert a.ledger.as_records(steps=1) == b.ledger.as_records(steps=1)


@pytest.mark.usefixtures("_ambient_env_spec")
@pytest.mark.parametrize("app,nprocs,params", _MATRIX_P4)
def test_harness_backend_equivalence_p4(app, nprocs, params):
    """run() under the ambient backend == run(kernel_backend="numpy").

    Trivial when the ambient backend is numpy; under the CI job's
    ``REPRO_KERNEL_BACKEND=numba`` this pins the accelerated backend's
    states, traces, ledgers, and clocks to the reference, end to end.
    """
    base = harness.run(app, params, steps=2, nprocs=nprocs)
    pinned = harness.run(
        app, params, steps=2, nprocs=nprocs, kernel_backend="numpy"
    )
    _assert_runs_identical(app, base, pinned)


@pytest.mark.slow
@pytest.mark.usefixtures("_ambient_env_spec")
@pytest.mark.parametrize("app,nprocs,params", _MATRIX_P8)
def test_harness_backend_equivalence_p8(app, nprocs, params):
    base = harness.run(app, params, steps=2, nprocs=nprocs)
    pinned = harness.run(
        app, params, steps=2, nprocs=nprocs, kernel_backend="numpy"
    )
    _assert_runs_identical(app, base, pinned)


@pytest.mark.parametrize("executor", ["serial", "threads:2"])
def test_backend_composes_with_executors(executor):
    """Backend dispatch threads through the executor seam unchanged."""
    serial = harness.run(
        "gtc", steps=2, nprocs=4, kernel_backend="numpy", executor="serial"
    )
    other = harness.run(
        "gtc", steps=2, nprocs=4, kernel_backend="numpy", executor=executor
    )
    _assert_runs_identical("gtc", serial, other)


@pytest.mark.slow
def test_backend_composes_with_process_executor():
    from repro.runtime.executors import ProcessExecutor

    support = ProcessExecutor(2).segment_support()
    if not support.ok:
        pytest.skip(f"process executor unsupported: {support.reason}")
    serial = harness.run(
        "lbmhd", steps=2, nprocs=4, kernel_backend="numpy", executor="serial"
    )
    procs = harness.run(
        "lbmhd",
        steps=2,
        nprocs=4,
        kernel_backend="numpy",
        executor="processes:2",
    )
    _assert_runs_identical("lbmhd", serial, procs)


def test_solver_ctor_accepts_backend_spec():
    """Solvers take names, instances, or None (ambient) directly."""
    from repro.apps.lbmhd.solver import LBMHD3D, LBMHDParams

    params = LBMHDParams(shape=(8, 8, 8))
    by_name = LBMHD3D(params, Communicator(4), kernels="numpy")
    by_inst = LBMHD3D(params, Communicator(4), kernels=NumPyBackend())
    ambient = LBMHD3D(params, Communicator(4))
    for solver in (by_name, by_inst, ambient):
        solver.run(2)
    assert_array_equal(by_name.global_state(), by_inst.global_state())
    assert_array_equal(by_name.global_state(), ambient.global_state())
