"""The executor seam: resolution, ``map_ranks`` semantics, and the
determinism contract.

The contract is the heart of PR 3 (extended to worker processes in
PR 6): serial, threaded, and forked-process execution of the same run
must produce *bitwise-identical* solver states, identical
``CommTrace`` byte/message matrices, identical per-phase ledger
buckets, and identical virtual clocks — only host wall-clock may
differ.  The equivalence matrix below checks every application at
P in {1, 4, 8}.
"""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro import harness
from repro.runtime import Arena
from repro.runtime.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    get_executor,
    set_default_executor,
)
from repro.simmpi import Communicator
from repro.workload import Work

_process_capable = ProcessExecutor(2).segment_support()
needs_process_segments = pytest.mark.skipif(
    not _process_capable.ok, reason=_process_capable.reason
)


@pytest.fixture(autouse=True)
def _clean_default(monkeypatch):
    """Each test sees a pristine resolution chain."""
    monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
    set_default_executor(None)
    yield
    set_default_executor(None)


# ---------------------------------------------------------------------------
# resolution
# ---------------------------------------------------------------------------


class TestResolution:
    def test_default_is_serial(self):
        ex = get_executor()
        assert isinstance(ex, SerialExecutor)
        assert ex.name == "serial"
        assert not ex.parallel

    def test_spec_strings(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("threads"), ThreadExecutor)
        assert get_executor("threads:3").workers == 3
        assert isinstance(get_executor("processes"), ProcessExecutor)
        assert get_executor("processes:3").workers == 3

    def test_instance_passthrough(self):
        ex = ThreadExecutor(2)
        assert get_executor(ex) is ex

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads:2")
        ex = get_executor()
        assert isinstance(ex, ThreadExecutor)
        assert ex.workers == 2

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads:2")
        assert isinstance(get_executor("serial"), SerialExecutor)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError) as exc:
            get_executor("fibers")
        msg = str(exc.value)
        assert "unknown executor 'fibers'" in msg
        assert "'serial'" in msg and "'processes:N'" in msg
        assert "REPRO_EXECUTOR" not in msg  # not env-sourced

    def test_unknown_env_name_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "fibers")
        with pytest.raises(ValueError) as exc:
            get_executor()
        msg = str(exc.value)
        assert "(from REPRO_EXECUTOR)" in msg
        assert "'serial'" in msg and "'processes:N'" in msg

    def test_bad_env_worker_count_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads:lots")
        with pytest.raises(ValueError, match="REPRO_EXECUTOR"):
            get_executor()

    def test_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "threads:2")
        set_default_executor("serial")
        assert isinstance(get_executor(), SerialExecutor)

    def test_set_default_resolves_and_clears(self):
        resolved = set_default_executor("threads:5")
        assert isinstance(resolved, ThreadExecutor)
        assert resolved.workers == 5
        assert get_executor().workers == 5
        set_default_executor(None)
        assert isinstance(get_executor(), SerialExecutor)

    @pytest.mark.parametrize(
        "bad",
        ["bogus", "serial:2", "threads:0", "threads:x", "processes:0", ""],
    )
    def test_bad_specs(self, bad):
        with pytest.raises(ValueError):
            get_executor(bad)

    def test_set_default_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            set_default_executor("bogus")
        # a failed set must not clobber the previous default
        assert isinstance(get_executor(), SerialExecutor)

    def test_thread_executor_validates_workers(self):
        with pytest.raises(ValueError):
            ThreadExecutor(0)

    def test_available_executors(self):
        names = available_executors()
        assert "serial" in names and "threads" in names
        assert "processes" in names

    def test_segment_support_reports(self):
        assert SerialExecutor().segment_support().ok
        assert ThreadExecutor(2).segment_support().ok
        support = ProcessExecutor(2).segment_support()
        assert isinstance(support.reason, str) and support.reason

    def test_segment_support_denied_without_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        support = ProcessExecutor(2).segment_support()
        assert not support.ok
        assert "REPRO_SHM_DISABLE" in support.reason


# ---------------------------------------------------------------------------
# map_ranks semantics
# ---------------------------------------------------------------------------


def _work(flops: float = 1e6) -> Work:
    return Work(name="seg", flops=flops, bytes_unit=8.0)


#: Every rank-segment scheduler under contract; the process spec only
#: where the host can actually fork + share memory.
_SPECS = [
    "serial",
    "threads:4",
    pytest.param("processes:2", marks=needs_process_segments),
]


class TestMapRanks:
    @pytest.mark.parametrize("spec", _SPECS)
    def test_results_in_rank_order(self, spec):
        comm = Communicator(8, executor=spec)
        assert comm.map_ranks(lambda r: r * r) == [r * r for r in range(8)]

    @pytest.mark.parametrize("spec", _SPECS)
    def test_indices_subset(self, spec):
        comm = Communicator(8, executor=spec)
        assert comm.map_ranks(lambda r: -r, indices=[5, 1, 6]) == [-5, -1, -6]

    def test_empty_indices(self):
        comm = Communicator(4, executor="threads:2")
        assert comm.map_ranks(lambda r: r, indices=[]) == []

    @pytest.mark.parametrize("spec", _SPECS)
    def test_deferred_compute_matches_direct(self, spec):
        """compute() inside segments charges exactly like serial code."""
        from repro.machines.catalog import get_machine

        power3 = get_machine("Power3")
        direct = Communicator(4, machine=power3, trace=True)
        for r in range(4):
            direct.compute(r, _work((r + 1) * 1e6))

        seg = Communicator(4, machine=power3, trace=True, executor=spec)
        seg.map_ranks(lambda r: seg.compute(r, _work((r + 1) * 1e6)))

        assert np.array_equal(direct.times, seg.times)
        assert direct.meter.total_flops() == seg.meter.total_flops()
        assert direct.meter.records == seg.meter.records

    @pytest.mark.parametrize(
        "op",
        [
            lambda c, r: c.exchange([]),
            lambda c, r: c.allreduce([np.ones(3)] * 4),
            lambda c, r: c.barrier(),
            lambda c, r: c.phase("bad").__enter__(),
        ],
    )
    def test_communication_inside_segment_raises(self, op):
        comm = Communicator(4, executor="threads:2")
        with pytest.raises(RuntimeError, match="map_ranks"):
            comm.map_ranks(lambda r: op(comm, r))

    def test_nested_map_ranks_raises(self):
        comm = Communicator(4, executor="threads:2")
        with pytest.raises(RuntimeError, match="nest"):
            comm.map_ranks(lambda r: comm.map_ranks(lambda q: q))

    @pytest.mark.parametrize("spec", _SPECS)
    def test_exception_propagates_and_charges_nothing(self, spec):
        from repro.machines.catalog import get_machine

        comm = Communicator(4, machine=get_machine("Power3"), executor=spec)

        def boom(rank):
            comm.compute(rank, _work())
            raise KeyError("segment failed")

        before = comm.times.copy()
        with pytest.raises(KeyError, match="segment failed"):
            comm.map_ranks(boom)
        # failed regions replay nothing: the clocks are untouched
        assert np.array_equal(comm.times, before)
        # ...and the communicator is usable again afterwards
        comm.map_ranks(lambda r: comm.compute(r, _work()))
        assert (comm.times > before).all()

    def test_threads_actually_overlap(self):
        """ThreadExecutor runs segments on multiple threads."""
        comm = Communicator(4, executor=ThreadExecutor(4))
        barrier = threading.Barrier(4, timeout=10.0)
        idents = comm.map_ranks(
            lambda r: (barrier.wait(), threading.get_ident())[1]
        )
        assert len(set(idents)) > 1

    @needs_process_segments
    def test_processes_actually_fork(self):
        """ProcessExecutor steps ranks in worker processes, not here."""
        comm = Communicator(4, executor="processes:2")
        parent = os.getpid()
        pids = comm.map_ranks(lambda r: os.getpid())
        assert parent not in pids
        assert len(set(pids)) == 2  # two shards, one worker each

    @needs_process_segments
    def test_unpicklable_segment_result_is_named(self):
        comm = Communicator(4, executor="processes:2")
        with pytest.raises(RuntimeError, match="pickled"):
            comm.map_ranks(lambda r: threading.Lock())


# ---------------------------------------------------------------------------
# capability policy: explicit incapable specs fail, ambient ones degrade
# ---------------------------------------------------------------------------


class TestProcessCapabilityPolicy:
    @needs_process_segments
    def test_communicator_accepts_processes_when_capable(self):
        comm = Communicator(4, executor="processes:2")
        assert comm.executor.name == "processes"
        assert not comm.executor.in_process

    def test_explicit_incapable_spec_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        with pytest.raises(ValueError, match="REPRO_SHM_DISABLE"):
            Communicator(4, executor="processes:2")

    def test_ambient_incapable_spec_degrades_with_warning(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        monkeypatch.setenv("REPRO_EXECUTOR", "processes:2")
        import repro.simmpi.comm as comm_mod

        monkeypatch.setattr(comm_mod, "_FALLBACK_WARNED", set())
        with pytest.warns(RuntimeWarning, match="falls back to serial"):
            comm = Communicator(4)
        assert comm.executor.name == "serial"
        assert comm.map_ranks(lambda r: r) == [0, 1, 2, 3]

    def test_harness_degrades_incapable_executor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_DISABLE", "1")
        with pytest.warns(RuntimeWarning, match="running serial instead"):
            result = _run("lbmhd", 4, "processes:2", arena=True)
        assert result.comm.executor.name == "serial"


# ---------------------------------------------------------------------------
# the equivalence matrix: 4 apps x P in {1, 4, 8}, serial vs threaded
# ---------------------------------------------------------------------------


def _params_for(app: str, nprocs: int):
    if app == "lbmhd":
        from repro.apps.lbmhd import LBMHDParams

        return LBMHDParams(shape=(8, 8, 8)), 3
    if app == "gtc":
        from repro.apps.gtc import GTCParams

        return (
            GTCParams(
                mpsi=8,
                mtheta=16,
                ntoroidal=min(nprocs, 4),
                particles_per_cell=3,
            ),
            2,
        )
    if app == "fvcam":
        from repro.apps.fvcam import FVCAMParams, LatLonGrid

        # 4 steps crosses both the physics and remap intervals
        return FVCAMParams(grid=LatLonGrid(im=24, jm=24, km=4), py=nprocs), 4
    if app == "paratec":
        from repro.apps.paratec import ParatecParams

        return ParatecParams(), 2
    raise AssertionError(app)


def _flatten(obj) -> list[np.ndarray]:
    """Recursively flatten nested lists/tuples of arrays (paratec bands)."""
    if isinstance(obj, np.ndarray):
        return [obj]
    out: list[np.ndarray] = []
    for item in obj:
        out.extend(_flatten(item))
    return out


def _snapshot(app: str, state) -> np.ndarray:
    if app == "lbmhd":
        return state.global_state()
    if app == "gtc":
        parts = [c.ravel() for c in state.charge]
        for p in state.particles:
            for attr in ("r", "theta", "zeta", "vpar", "weight"):
                parts.append(getattr(p, attr).ravel())
        return np.concatenate(parts)
    if app == "fvcam":
        return np.concatenate([f.ravel() for f in state.global_fields()])
    if app == "paratec":
        parts = [a.ravel() for a in _flatten(state.bands)]
        parts.append(state.result.eigenvalues.ravel())
        return np.concatenate(parts)
    raise AssertionError(app)


def _assert_ledgers_equal(a, b) -> None:
    assert set(a._buckets) == set(b._buckets)
    for phase, bucket in a._buckets.items():
        other = b._buckets[phase]
        for attr in (
            "compute_s",
            "comm_s",
            "wait_s",
            "recovery_s",
            "flops",
            "nbytes",
            "messages",
        ):
            assert np.array_equal(
                getattr(bucket, attr), getattr(other, attr)
            ), (phase, attr)


def _run(app: str, nprocs: int, executor, arena: bool):
    params, steps = _params_for(app, nprocs)
    return harness.run(
        app,
        params,
        steps=steps,
        nprocs=nprocs,
        machine="Power3",
        trace=True,
        executor=executor,
        arena=Arena() if arena else None,
    )


class TestExecutorEquivalence:
    @pytest.mark.parametrize(
        "nprocs", [1, 4, pytest.param(8, marks=pytest.mark.slow)]
    )
    @pytest.mark.parametrize("app", ["lbmhd", "gtc", "fvcam", "paratec"])
    def test_threaded_matches_serial_bitwise(self, app, nprocs):
        serial = _run(app, nprocs, "serial", arena=False)
        threaded = _run(app, nprocs, ThreadExecutor(4), arena=False)

        assert np.array_equal(
            _snapshot(app, serial.state), _snapshot(app, threaded.state)
        )
        # identical byte/message traffic, call mix, and virtual clocks
        assert np.array_equal(
            serial.comm.trace.matrix(), threaded.comm.trace.matrix()
        )
        assert serial.comm.trace.calls == threaded.comm.trace.calls
        assert np.array_equal(serial.comm.times, threaded.comm.times)
        _assert_ledgers_equal(serial.ledger, threaded.ledger)

    @pytest.mark.parametrize("app", ["lbmhd", "gtc", "fvcam", "paratec"])
    def test_threaded_matches_serial_with_arena(self, app):
        """The zero-copy fast paths obey the same contract (P=4)."""
        serial = _run(app, 4, "serial", arena=True)
        threaded = _run(app, 4, ThreadExecutor(4), arena=True)

        assert np.array_equal(
            _snapshot(app, serial.state), _snapshot(app, threaded.state)
        )
        assert np.array_equal(
            serial.comm.trace.matrix(), threaded.comm.trace.matrix()
        )
        assert serial.comm.trace.calls == threaded.comm.trace.calls
        assert np.array_equal(serial.comm.times, threaded.comm.times)
        _assert_ledgers_equal(serial.ledger, threaded.ledger)

    @needs_process_segments
    @pytest.mark.parametrize(
        "nprocs", [4, pytest.param(8, marks=pytest.mark.slow)]
    )
    @pytest.mark.parametrize("app", ["lbmhd", "gtc", "fvcam", "paratec"])
    def test_processes_match_serial_bitwise(self, app, nprocs):
        """Forked rank stepping obeys the full determinism contract."""
        serial = _run(app, nprocs, "serial", arena=False)
        procs = _run(app, nprocs, "processes:2", arena=False)

        assert np.array_equal(
            _snapshot(app, serial.state), _snapshot(app, procs.state)
        )
        assert np.array_equal(
            serial.comm.trace.matrix(), procs.comm.trace.matrix()
        )
        assert serial.comm.trace.calls == procs.comm.trace.calls
        assert np.array_equal(serial.comm.times, procs.comm.times)
        _assert_ledgers_equal(serial.ledger, procs.ledger)

    @needs_process_segments
    @pytest.mark.parametrize("app", ["lbmhd", "gtc", "fvcam", "paratec"])
    def test_processes_match_serial_with_arena(self, app):
        """The shared-memory fast paths obey the same contract (P=4):
        the harness upgrades the private arena to an shm pool and the
        forked workers' writes land bitwise where serial's would."""
        serial = _run(app, 4, "serial", arena=True)
        procs = _run(app, 4, "processes:2", arena=True)

        assert np.array_equal(
            _snapshot(app, serial.state), _snapshot(app, procs.state)
        )
        assert np.array_equal(
            serial.comm.trace.matrix(), procs.comm.trace.matrix()
        )
        assert serial.comm.trace.calls == procs.comm.trace.calls
        assert np.array_equal(serial.comm.times, procs.comm.times)
        _assert_ledgers_equal(serial.ledger, procs.ledger)

    def test_arena_path_matches_plain_path_threaded(self):
        """Fast path vs slow path equality survives the thread pool."""
        plain = _run("lbmhd", 4, ThreadExecutor(4), arena=False)
        fast = _run("lbmhd", 4, ThreadExecutor(4), arena=True)
        assert np.array_equal(
            _snapshot("lbmhd", plain.state), _snapshot("lbmhd", fast.state)
        )

    @needs_process_segments
    def test_arena_path_matches_plain_path_processes(self):
        """Fast path vs slow path equality survives forked workers."""
        plain = _run("lbmhd", 4, "processes:2", arena=False)
        fast = _run("lbmhd", 4, "processes:2", arena=True)
        assert np.array_equal(
            _snapshot("lbmhd", plain.state), _snapshot("lbmhd", fast.state)
        )

    @needs_process_segments
    def test_processes_match_serial_under_fault_plan(self):
        """Executor determinism composes with the resilience subsystem:
        an active FaultPlan injects the same faults (and charges the
        same recovery) whether segments run serial or forked."""
        from repro.resilience import FaultPlan, RetryPolicy
        from repro.resilience.inject import LatencySpike, MessageDrop

        def go(executor):
            from repro.apps.lbmhd import LBMHDParams

            plan = FaultPlan(
                faults=(
                    MessageDrop(rate=0.05),
                    LatencySpike(rate=0.1, extra_s=5e-3),
                ),
                seed=7,
            )
            return harness.run(
                "lbmhd",
                LBMHDParams(shape=(8, 8, 8)),
                steps=3,
                nprocs=4,
                machine="Power3",
                trace=True,
                executor=executor,
                arena=Arena(),
                fault_plan=plan,
                policy=RetryPolicy(),
            )

        serial = go("serial")
        procs = go("processes:2")
        assert np.array_equal(
            _snapshot("lbmhd", serial.state), _snapshot("lbmhd", procs.state)
        )
        assert np.array_equal(serial.comm.times, procs.comm.times)
        _assert_ledgers_equal(serial.ledger, procs.ledger)
        assert serial.recovery is not None and procs.recovery is not None
        assert serial.recovery.resends == procs.recovery.resends
        assert (
            serial.recovery.drops_detected == procs.recovery.drops_detected
        )

    def test_harness_rejects_executor_with_explicit_comm(self):
        comm = Communicator(1)
        with pytest.raises(ValueError, match="executor"):
            harness.run("lbmhd", steps=0, comm=comm, executor="threads")
