"""Unit tests of the resilience subsystem: injectors, policies, stores."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines.catalog import get_machine
from repro.resilience import (
    BitFlip,
    DiskCheckpointStore,
    FaultInjector,
    FaultPlan,
    LatencySpike,
    MemoryCheckpointStore,
    MessageDrop,
    RankFailure,
    RankFailureError,
    RetryPolicy,
    UnrecoverableMessageError,
    payload_crc,
    snapshot_nbytes,
)
from repro.resilience.checkpoint import (
    copy_tree,
    flatten_tree,
    unflatten_tree,
)
from repro.simmpi import Communicator
from repro.simmpi.comm import Message


class TestFaultSpecs:
    def test_matches_all_wildcards(self):
        spec = MessageDrop()
        assert spec.matches(step=3, phase="halo", src=0, dst=1, attempt=0)

    def test_repeat_limits_attempts(self):
        spec = MessageDrop(repeat=2)
        assert spec.matches(step=0, phase=None, src=0, dst=1, attempt=1)
        assert not spec.matches(step=0, phase=None, src=0, dst=1, attempt=2)

    def test_selective_fields(self):
        spec = MessageDrop(phase="halo", step=2, src=1, dst=0)
        assert spec.matches(step=2, phase="halo", src=1, dst=0, attempt=0)
        assert not spec.matches(step=1, phase="halo", src=1, dst=0, attempt=0)
        assert not spec.matches(step=2, phase="cg", src=1, dst=0, attempt=0)
        assert not spec.matches(step=2, phase="halo", src=0, dst=0, attempt=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageDrop(rate=1.5)
        with pytest.raises(ValueError):
            MessageDrop(repeat=0)
        with pytest.raises(ValueError):
            BitFlip(bit=8)
        with pytest.raises(ValueError):
            LatencySpike(extra_s=-1.0)
        with pytest.raises(ValueError):
            RankFailure(rank=-1)
        with pytest.raises(TypeError):
            FaultPlan(faults=("drop",))

    def test_seeded_rate_draws_are_reproducible(self):
        def outcomes():
            inj = FaultInjector(
                FaultPlan(faults=(MessageDrop(rate=0.5),), seed=3)
            )
            inj.begin_step(0)
            return [
                inj.judge(phase=None, src=0, dst=1, attempt=0) is not None
                for _ in range(32)
            ]

        first, second = outcomes(), outcomes()
        assert first == second
        assert any(first) and not all(first)


class TestRetryPolicy:
    def test_backoff_grows_exponentially(self):
        p = RetryPolicy(backoff_base=1e-4, backoff_factor=2.0)
        assert p.backoff(1) == pytest.approx(1e-4)
        assert p.backoff(3) == pytest.approx(4e-4)
        with pytest.raises(ValueError):
            p.backoff(0)

    def test_checkpoint_time_scales(self):
        p = RetryPolicy(checkpoint_bandwidth=1e9, restore_bandwidth=2e9)
        assert p.checkpoint_time(1e9, 1) == pytest.approx(1.0)
        assert p.checkpoint_time(1e9, 4) == pytest.approx(0.25)
        assert p.restore_time(1e9, 1) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(checkpoint_bandwidth=0.0)

    def test_crc_detects_single_bit_flip(self):
        payload = np.arange(16.0)
        crc = payload_crc(payload)
        corrupted = payload.copy()
        corrupted.view(np.uint8)[5] ^= 1
        assert payload_crc(corrupted) != crc
        assert payload_crc(payload.copy()) == crc


class TestResilientExchange:
    def _comm(self, plan, policy=None):
        comm = Communicator(4)
        ledger = comm.attach_phase_ledger()
        comm.enable_resilience(plan, policy=policy)
        return comm, ledger

    def test_drop_is_retransmitted_intact(self):
        comm, ledger = self._comm(
            FaultPlan(faults=(MessageDrop(src=0, dst=1),))
        )
        comm.fault_injector.begin_step(0)
        with comm.phase("halo"):
            out = comm.exchange([Message(0, 1, np.arange(6.0))])
        assert np.array_equal(out[1][0], np.arange(6.0))
        stats = comm.recovery_stats
        assert stats.drops_detected == 1
        assert stats.resends == 1
        assert ledger.bucket("halo").recovery_s.sum() > 0.0

    def test_corruption_detected_by_crc(self):
        comm, _ = self._comm(
            FaultPlan(faults=(BitFlip(src=0, dst=1, byte_index=2, bit=7),))
        )
        comm.fault_injector.begin_step(0)
        out = comm.exchange([Message(0, 1, np.ones(8))])
        assert np.array_equal(out[1][0], np.ones(8))
        assert comm.recovery_stats.corruptions_detected == 1

    def test_latency_spike_charges_receiver_only(self):
        comm, ledger = self._comm(
            FaultPlan(faults=(LatencySpike(dst=1, extra_s=5e-3),))
        )
        comm.fault_injector.begin_step(0)
        with comm.phase("halo"):
            out = comm.exchange([Message(0, 1, np.ones(4))])
        assert np.array_equal(out[1][0], np.ones(4))
        stats = comm.recovery_stats
        assert stats.delays_absorbed == 1
        assert stats.resends == 0
        recov = ledger.bucket("halo").recovery_s
        assert recov[1] == pytest.approx(5e-3)
        assert recov[0] == 0.0

    def test_posting_order_survives_faults(self):
        comm, _ = self._comm(
            FaultPlan(faults=(MessageDrop(src=0, dst=2),))
        )
        comm.fault_injector.begin_step(0)
        out = comm.exchange(
            [
                Message(0, 2, np.array([1.0])),
                Message(1, 2, np.array([2.0])),
                Message(0, 2, np.array([3.0])),
            ]
        )
        assert [p[0] for p in out[2]] == [1.0, 2.0, 3.0]

    def test_persistent_fault_exhausts_retries(self):
        plan = FaultPlan(faults=(MessageDrop(src=0, dst=1, repeat=99),))
        comm, _ = self._comm(plan, RetryPolicy(max_retries=3))
        comm.fault_injector.begin_step(0)
        with pytest.raises(UnrecoverableMessageError):
            comm.exchange([Message(0, 1, np.ones(4))])

    def test_empty_plan_is_accounting_neutral(self):
        def totals(resilient):
            comm = Communicator(
                4, machine=get_machine("Power3"), trace=True
            )
            ledger = comm.attach_phase_ledger()
            if resilient:
                comm.enable_resilience(FaultPlan())
            with comm.phase("halo"):
                comm.exchange(
                    [
                        Message(0, 1, np.arange(32.0)),
                        Message(1, 2, np.ones(8)),
                        Message(3, 0, np.empty(0)),
                    ]
                )
            t = ledger.totals()
            return (
                comm.times.copy(),
                comm.trace.matrix(),
                {
                    k: np.asarray(getattr(t, k)).copy()
                    for k in (
                        "compute_s",
                        "comm_s",
                        "wait_s",
                        "recovery_s",
                        "nbytes",
                        "messages",
                    )
                },
            )

        times_a, mat_a, led_a = totals(False)
        times_b, mat_b, led_b = totals(True)
        assert np.array_equal(times_a, times_b)
        assert np.array_equal(mat_a, mat_b)
        for k in led_a:
            assert np.array_equal(led_a[k], led_b[k]), k

    def test_zero_byte_message_survives_bitflip_plan(self):
        comm, _ = self._comm(FaultPlan(faults=(BitFlip(),)))
        comm.fault_injector.begin_step(0)
        out = comm.exchange([Message(0, 1, np.empty(0))])
        assert out[1][0].size == 0
        assert comm.recovery_stats.corruptions_detected == 0

    def test_rank_failure_fires_once_at_collective(self):
        comm, _ = self._comm(
            FaultPlan(faults=(RankFailure(rank=2, step=1),))
        )
        inj = comm.fault_injector
        inj.begin_step(0)
        comm.allreduce([np.ones(2)] * 4)  # step 0: nothing scheduled
        inj.end_step()
        inj.begin_step(1)
        with pytest.raises(RankFailureError) as err:
            comm.allreduce([np.ones(2)] * 4)
        assert err.value.rank == 2 and err.value.step == 1
        inj.end_step()  # one-shot: must not re-raise
        comm.allreduce([np.ones(2)] * 4)

    def test_rank_failure_fires_at_step_boundary(self):
        """A communication-free step still notices the death."""
        comm, _ = self._comm(
            FaultPlan(faults=(RankFailure(rank=0, step=0),))
        )
        inj = comm.fault_injector
        inj.begin_step(0)
        with pytest.raises(RankFailureError):
            inj.end_step()

    def test_disable_resilience_restores_plain_path(self):
        comm, _ = self._comm(
            FaultPlan(faults=(MessageDrop(src=0, dst=1, repeat=99),))
        )
        comm.disable_resilience()
        out = comm.exchange([Message(0, 1, np.arange(4.0))])
        assert np.array_equal(out[1][0], np.arange(4.0))
        assert comm.recovery_stats.drops_detected == 0


class TestCheckpointStores:
    def _payload(self):
        return {
            "step_count": 3,
            "states": [np.arange(6.0).reshape(2, 3), np.zeros(4)],
            "nested": {"phi": [np.ones(2)], "label": "x"},
        }

    def test_flatten_round_trip(self):
        payload = self._payload()
        back = unflatten_tree(flatten_tree(payload))
        assert back["step_count"] == 3
        assert np.array_equal(back["states"][0], payload["states"][0])
        assert np.array_equal(
            back["nested"]["phi"][0], payload["nested"]["phi"][0]
        )
        assert back["nested"]["label"] == "x"

    def test_snapshot_nbytes(self):
        assert snapshot_nbytes(self._payload()) == 6 * 8 + 4 * 8 + 2 * 8

    def test_memory_store_isolates_copies(self):
        store = MemoryCheckpointStore()
        payload = self._payload()
        store.save("app", 3, payload)
        payload["states"][0][:] = -1.0  # caller mutates after save
        loaded = store.load("app")
        assert loaded.step == 3
        assert np.array_equal(
            loaded.payload["states"][0], np.arange(6.0).reshape(2, 3)
        )
        # mutating a loaded copy must not poison the store
        loaded.payload["states"][1][:] = 9.0
        again = store.load("app")
        assert np.array_equal(again.payload["states"][1], np.zeros(4))

    def test_memory_store_missing_tag(self):
        assert MemoryCheckpointStore().load("nope") is None

    def test_disk_store_round_trip(self, tmp_path):
        store = DiskCheckpointStore(tmp_path)
        ckpt = store.save("lbmhd", 4, self._payload())
        assert ckpt.nbytes == snapshot_nbytes(self._payload())
        loaded = DiskCheckpointStore(tmp_path).load("lbmhd")
        assert loaded.step == 4
        assert np.array_equal(
            loaded.payload["states"][0], np.arange(6.0).reshape(2, 3)
        )
        assert loaded.payload["nested"]["label"] == "x"
        assert DiskCheckpointStore(tmp_path).tags() == ["lbmhd"]

    def test_copy_tree_deep_copies_arrays(self):
        payload = self._payload()
        clone = copy_tree(payload)
        clone["states"][0][:] = -5.0
        assert np.array_equal(
            payload["states"][0], np.arange(6.0).reshape(2, 3)
        )
