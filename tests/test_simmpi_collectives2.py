"""Tests for the extended collectives (allgather, reduce_scatter, scan)
and the X1 torus switchover."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machines import get_machine
from repro.network import NetworkModel, Torus2D, Hypercube4D
from repro.simmpi import Communicator


class TestAllgather:
    def test_everyone_gets_everything(self):
        comm = Communicator(3)
        out = comm.allgather([np.array([float(i)]) for i in range(3)])
        for rank in range(3):
            assert [a[0] for a in out[rank]] == [0.0, 1.0, 2.0]

    def test_results_are_copies(self):
        comm = Communicator(2)
        src = [np.ones(2), np.ones(2)]
        out = comm.allgather(src)
        out[0][0][:] = 9.0
        assert src[0][0] == 1.0
        assert out[1][0][0] == 1.0

    def test_charges_time_on_machine(self):
        comm = Communicator(16, machine=get_machine("Power3"))
        comm.allgather([np.ones(100) for _ in range(16)])
        assert comm.elapsed > 0.0

    def test_wrong_count(self):
        with pytest.raises(ValueError):
            Communicator(3).allgather([np.ones(1)])


class TestReduceScatter:
    def test_sum_and_split(self):
        comm = Communicator(2)
        contrib = [np.arange(4.0), np.arange(4.0)]
        out = comm.reduce_scatter(contrib)
        np.testing.assert_array_equal(out[0], [0.0, 2.0])
        np.testing.assert_array_equal(out[1], [4.0, 6.0])

    def test_blocks_cover_everything(self):
        comm = Communicator(3)
        contrib = [np.ones(7) for _ in range(3)]
        out = comm.reduce_scatter(contrib)
        assert sum(len(b) for b in out) == 7
        assert all((b == 3.0).all() for b in out)

    def test_max_reduction(self):
        comm = Communicator(2)
        out = comm.reduce_scatter(
            [np.array([1.0, 9.0]), np.array([5.0, 2.0])], op="max"
        )
        assert out[0][0] == 5.0 and out[1][0] == 9.0

    def test_bad_op(self):
        with pytest.raises(KeyError):
            Communicator(2).reduce_scatter([np.ones(2)] * 2, op="avg")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Communicator(2).reduce_scatter([np.ones(2), np.ones(3)])


class TestScan:
    def test_inclusive_prefix(self):
        comm = Communicator(4)
        out = comm.scan([np.array([1.0]) for _ in range(4)])
        assert [o[0] for o in out] == [1.0, 2.0, 3.0, 4.0]

    def test_prod_scan(self):
        comm = Communicator(3)
        out = comm.scan(
            [np.array([2.0]), np.array([3.0]), np.array([4.0])], op="prod"
        )
        assert [o[0] for o in out] == [2.0, 6.0, 24.0]

    def test_results_independent(self):
        comm = Communicator(2)
        out = comm.scan([np.ones(2), np.ones(2)])
        out[1][:] = 0.0
        assert out[0][0] == 1.0

    def test_traced(self):
        comm = Communicator(3, trace=True)
        comm.scan([np.ones(4) for _ in range(3)])
        assert comm.trace.bytes_by_kind["scan"] > 0


class TestX1TorusSwitchover:
    def test_hypercube_below_threshold(self):
        net = NetworkModel(get_machine("X1"), 512)
        assert isinstance(net.topology, Hypercube4D)

    def test_torus_above_threshold(self):
        # "For more than 512 MSPs, the interconnect is a 2D torus."
        net = NetworkModel(get_machine("X1"), 1024)
        assert isinstance(net.topology, Torus2D)

    def test_crossbar_machines_unaffected(self):
        from repro.network import FullCrossbar

        net = NetworkModel(get_machine("ES"), 4096)
        assert isinstance(net.topology, FullCrossbar)

    def test_torus_contention_higher(self):
        small = NetworkModel(get_machine("X1"), 512)
        large = NetworkModel(get_machine("X1"), 2048)
        assert (
            large.contention_factor(1.0) > small.contention_factor(1.0)
        )
