"""The ``repro-campaign`` command: run / status / clean round trips."""

from __future__ import annotations

import json

import pytest

from repro.campaign.cli import main

SPEC = {
    "name": "cli-smoke",
    "apps": ["lbmhd", "gtc"],
    "nprocs": [4],
    "seeds": [0, 1],
    "steps": 1,
    "params": {
        "lbmhd": {"shape": [8, 8, 8]},
        "gtc": {"particles_per_cell": 4},
    },
}


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(SPEC))
    return path


def _run(spec_file, tmp_path, *extra):
    return main(
        ["run", str(spec_file), "--cache-dir", str(tmp_path / "cache"),
         "--scheduler", "serial", *extra]
    )


class TestRun:
    def test_cold_then_warm_round_trip(
        self, spec_file, tmp_path, capsys
    ):
        assert _run(spec_file, tmp_path, "--json") == 0
        captured = capsys.readouterr()
        cold = json.loads(captured.out)
        assert cold["misses"] == 4 and cold["hits"] == 0
        # live progress went to stderr, one line per config
        assert captured.err.count("miss") == 4

        assert _run(spec_file, tmp_path, "--json") == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["hits"] == 4 and warm["misses"] == 0

    def test_table_output_lists_every_config(
        self, spec_file, tmp_path, capsys
    ):
        assert _run(spec_file, tmp_path, "--quiet") == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-smoke': 4 config(s)" in out
        rows = [line for line in out.splitlines() if "seed=" in line]
        assert len(rows) == 4
        assert all("miss" in line for line in rows)
        assert "4 miss(es), 0 failure(s)" in out
        assert "Gflop/s" in out

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert _run(tmp_path / "nope.json", tmp_path) == 2
        assert "no such spec file" in capsys.readouterr().err

    def test_malformed_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x", "apps": ["lbmhd"], "stepz": 3}')
        assert _run(bad, tmp_path) == 2
        assert "bad spec" in capsys.readouterr().err

    def test_bad_scheduler_exits_2(self, spec_file, tmp_path, capsys):
        assert main(
            ["run", str(spec_file), "--cache-dir", str(tmp_path),
             "--scheduler", "fibers"]
        ) == 2
        assert "fibers" in capsys.readouterr().err

    def test_failing_config_exits_1_but_runs_the_rest(
        self, tmp_path, capsys
    ):
        spec = dict(SPEC, name="mixed", apps=["lbmhd", "no-such-app"])
        path = tmp_path / "mixed.json"
        path.write_text(json.dumps(spec))
        assert _run(path, tmp_path, "--json") == 1
        report = json.loads(capsys.readouterr().out)
        assert report["failures"] == 2  # two seeds of the bad app
        assert report["misses"] == 2  # the good app still ran

    def test_rerun_ignores_cache(self, spec_file, tmp_path, capsys):
        assert _run(spec_file, tmp_path) == 0
        capsys.readouterr()
        assert _run(spec_file, tmp_path, "--rerun", "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["misses"] == 4 and report["hits"] == 0


class TestStatusAndClean:
    def test_status_reads_the_journal(self, spec_file, tmp_path, capsys):
        assert _run(spec_file, tmp_path, "--quiet") == 0
        capsys.readouterr()
        assert main(
            ["status", "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-smoke' [complete]" in out
        assert "4/4 done" in out

    def test_status_json(self, spec_file, tmp_path, capsys):
        assert _run(spec_file, tmp_path, "--quiet") == 0
        capsys.readouterr()
        assert main(
            ["status", "--cache-dir", str(tmp_path / "cache"), "--json"]
        ) == 0
        s = json.loads(capsys.readouterr().out)
        assert s["complete"] and s["done"] == 4

    def test_status_without_journal_exits_2(self, tmp_path, capsys):
        assert main(["status", "--cache-dir", str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "no manifest found" in err
        assert f"{tmp_path}/*.manifest.jsonl" in err

    def test_status_with_missing_explicit_manifest_exits_2(
        self, tmp_path, capsys
    ):
        gone = tmp_path / "gone.manifest.jsonl"
        assert main(["status", str(gone)]) == 2
        err = capsys.readouterr().err
        assert "no manifest found" in err and str(gone) in err

    def test_status_with_empty_manifest_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.manifest.jsonl"
        empty.write_text("")
        assert main(["status", str(empty)]) == 2
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "empty manifest" in err and str(empty) in err

    def test_status_surfaces_cache_counters(
        self, spec_file, tmp_path, capsys
    ):
        # cold run then warm run: 4 misses + 4 puts, then 4 hits
        assert _run(spec_file, tmp_path, "--quiet") == 0
        assert _run(spec_file, tmp_path, "--quiet") == 0
        capsys.readouterr()
        cache_dir = str(tmp_path / "cache")
        assert main(["status", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert f"cache {cache_dir}: 4 entries" in out
        assert "lifetime 4 hit(s), 4 miss(es), 4 put(s)" in out

        assert main(["status", "--cache-dir", cache_dir, "--json"]) == 0
        s = json.loads(capsys.readouterr().out)
        assert s["cache"]["entries"] == 4
        assert s["cache"]["lifetime"] == {
            "hits": 4, "misses": 4, "puts": 4, "reruns": 0,
        }

    def test_clean_empties_cache_and_journals(
        self, spec_file, tmp_path, capsys
    ):
        assert _run(spec_file, tmp_path, "--quiet") == 0
        capsys.readouterr()
        assert main(
            ["clean", "--cache-dir", str(tmp_path / "cache")]
        ) == 0
        out = capsys.readouterr().out
        assert "removed 4 cached result(s) and 1 manifest(s)" in out
        # everything really is gone: the next run is cold again
        assert _run(spec_file, tmp_path, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["misses"] == 4
