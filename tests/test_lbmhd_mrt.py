"""Tests for the projected-MRT collision option."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lbmhd import (
    LBMHD3D,
    LBMHDParams,
    MRTParams,
    collide,
    collide_mrt,
    equilibrium_state,
    orszag_tang_fields,
)
from repro.apps.lbmhd.collision import CollisionParams
from repro.apps.lbmhd.fields import (
    density,
    magnetic_field,
    momentum,
    split_state,
)
from repro.apps.lbmhd.mrt import _project_f_neq, _project_g_neq
from repro.simmpi import Communicator

SHAPE = (8, 8, 8)


@pytest.fixture
def noisy_state(rng) -> np.ndarray:
    rho, u, B = orszag_tang_fields(SHAPE, 0.05, 0.05)
    return equilibrium_state(rho, u, B) + 0.001 * rng.standard_normal(
        (72, *SHAPE)
    )


class TestMRTOperator:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            MRTParams(tau_ghost=0.5)

    def test_reduces_to_bgk(self, noisy_state):
        bgk = collide(noisy_state, CollisionParams(tau=0.8, tau_m=0.9))
        mrt = collide_mrt(
            noisy_state,
            MRTParams(tau=0.8, tau_m=0.9, tau_ghost=0.8, tau_ghost_m=0.9),
        )
        np.testing.assert_allclose(mrt, bgk, atol=1e-14)

    def test_conserves_moments(self, noisy_state):
        out = collide_mrt(noisy_state, MRTParams(tau=0.8, tau_m=0.9))
        f0, g0 = split_state(noisy_state)
        f1, g1 = split_state(out)
        np.testing.assert_allclose(density(f1), density(f0), atol=1e-13)
        np.testing.assert_allclose(momentum(f1), momentum(f0), atol=1e-13)
        np.testing.assert_allclose(
            magnetic_field(g1), magnetic_field(g0), atol=1e-13
        )

    def test_equilibrium_fixed_point(self):
        rho, u, B = orszag_tang_fields(SHAPE, 0.03, 0.03)
        state = equilibrium_state(rho, u, B)
        out = collide_mrt(state, MRTParams())
        np.testing.assert_allclose(out, state, atol=1e-12)

    def test_projections_carry_no_conserved_moments(self, rng):
        f_neq = 0.01 * rng.standard_normal((27, *SHAPE))
        proj = _project_f_neq(f_neq)
        np.testing.assert_allclose(density(proj), 0.0, atol=1e-14)
        np.testing.assert_allclose(momentum(proj), 0.0, atol=1e-14)
        g_neq = 0.01 * rng.standard_normal((15, 3, *SHAPE))
        gproj = _project_g_neq(g_neq)
        np.testing.assert_allclose(gproj.sum(axis=0), 0.0, atol=1e-14)

    def test_ghost_unity_wipes_nonshear_residue(self, noisy_state):
        """tau_ghost = 1 leaves only equilibrium + shear projection."""
        out = collide_mrt(
            noisy_state, MRTParams(tau=0.8, tau_m=0.8, tau_ghost=1.0)
        )
        f1, _ = split_state(out)
        from repro.apps.lbmhd import f_equilibrium
        from repro.apps.lbmhd.fields import moments

        rho, u, B = moments(noisy_state)
        feq = f_equilibrium(rho, u, B)
        residual = f1 - feq
        # residual must be pure shear projection: projecting it again
        # reproduces it
        np.testing.assert_allclose(
            _project_f_neq(residual), residual, atol=1e-12
        )


class TestMRTSolver:
    def test_solver_mrt_conserves(self):
        sim = LBMHD3D(
            LBMHDParams(shape=SHAPE, use_mrt=True), Communicator(4)
        )
        d0 = sim.diagnostics()
        sim.run(5)
        d1 = sim.diagnostics()
        assert d1.mass == pytest.approx(d0.mass, rel=1e-12)
        np.testing.assert_allclose(d1.momentum, d0.momentum, atol=1e-10)

    def test_mrt_damps_ghost_noise_faster(self, rng):
        """Off-equilibrium noise decays faster with tau_ghost = 1 than
        under BGK with the same viscosity at tau = 1.6."""
        rho, u, B = orszag_tang_fields(SHAPE, 0.03, 0.03)
        noise = 0.001 * rng.standard_normal((72, *SHAPE))
        state = equilibrium_state(rho, u, B) + noise

        bgk_out = collide(state, CollisionParams(tau=1.6, tau_m=1.6))
        mrt_out = collide_mrt(
            state, MRTParams(tau=1.6, tau_m=1.6, tau_ghost=1.0, tau_ghost_m=1.0)
        )
        eq = equilibrium_state(rho, u, B)
        assert np.abs(mrt_out - eq).sum() < np.abs(bgk_out - eq).sum()

    def test_mrt_matches_bgk_dynamics_when_rates_equal(self):
        a = LBMHD3D(LBMHDParams(shape=SHAPE), Communicator(2))
        b = LBMHD3D(
            LBMHDParams(shape=SHAPE, use_mrt=True, tau_ghost=0.8),
            Communicator(2),
        )
        a.run(4)
        b.run(4)
        np.testing.assert_allclose(
            a.global_state(), b.global_state(), atol=1e-13
        )
