"""Figure 3 bench: FVCAM %peak-vs-P model sweep."""

from __future__ import annotations

from repro.experiments import fig3


def test_fig3_sweep(benchmark, report):
    data = benchmark(fig3.run)
    assert set(data) == set(fig3.MACHINES)
    report("fig3", fig3.render())
