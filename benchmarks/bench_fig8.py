"""Figure 8 bench: 256-processor four-application overview."""

from __future__ import annotations

from repro.experiments import fig8


def test_fig8_overview(benchmark, report):
    data = benchmark(fig8.run)
    assert set(data) == {"fvcam", "gtc", "lbmhd", "paratec"}
    report("fig8", fig8.render())
