"""Benches for the extension features: what-ifs, breakdowns, validation,
multi-species loading, checkpointing, forces."""

from __future__ import annotations

import numpy as np

from repro.experiments import breakdown, validate, whatif


def test_whatif_counterfactuals(benchmark, report):
    data = benchmark(whatif.run)
    assert data["sx8_fplram"]["speedup"] > 1.0
    report("whatif", whatif.render())


def test_breakdown_sweep(benchmark, report):
    data = benchmark(breakdown.run)
    assert len(data) == len(breakdown.CASES) * len(breakdown.MACHINES)
    report("breakdown", breakdown.render())


def test_validation_suite(benchmark, report):
    checks = benchmark.pedantic(validate.run, rounds=1, iterations=1)
    assert all(c.passed for c in checks)
    report("validate", "\n".join(c.render() for c in checks))


def test_multispecies_loading(benchmark):
    from repro.apps.gtc import PoloidalGrid, Species, TorusGrid, load_multispecies

    torus = TorusGrid(plane=PoloidalGrid(mpsi=32, mtheta=64), ntoroidal=1)
    species = (
        Species(name="d", charge=1.0, mass=2.0, fraction=0.5),
        Species(name="t", charge=1.0, mass=3.0, fraction=0.5),
    )
    rng = np.random.default_rng(0)
    pop = benchmark(load_multispecies, torus, 100_000, 0, rng, species)
    assert len(pop) == 100_000


def test_lbmhd_checkpoint_roundtrip(benchmark):
    from repro.apps.lbmhd import (
        LBMHD3D,
        LBMHDParams,
        load_checkpoint,
        save_checkpoint,
    )
    from repro.simmpi import Communicator

    sim = LBMHD3D(LBMHDParams(shape=(16, 16, 16)), Communicator(4))

    def roundtrip():
        return load_checkpoint(save_checkpoint(sim), Communicator(4))

    restored = benchmark(roundtrip)
    assert restored.step_count == sim.step_count


def test_hellmann_feynman_forces(benchmark):
    from repro.apps.paratec import Atom, hellmann_feynman_forces

    rng = np.random.default_rng(1)
    rho = np.abs(rng.standard_normal((24, 24, 24)))
    atoms = [
        Atom(position=(0.2 * i, 0.3, 0.4), sigma=0.8) for i in range(4)
    ]
    forces = benchmark(hellmann_feynman_forces, rho, atoms)
    assert forces.shape == (4, 3)
