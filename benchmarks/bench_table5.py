"""Table 5 bench: LBMHD3D lattice update + the regenerated table."""

from __future__ import annotations

import numpy as np

from repro.apps.lbmhd import (
    CollisionParams,
    LBMHD3D,
    LBMHDParams,
    collide,
    equilibrium_state,
    orszag_tang_fields,
    stream_periodic,
)
from repro.experiments import table5
from repro.simmpi import Communicator


def test_table5_lbmhd_step(benchmark, report):
    """Time one fused collide+stream across 8 simulated ranks."""
    sim = LBMHD3D(LBMHDParams(shape=(24, 24, 24)), Communicator(8))
    benchmark(sim.step)
    report("table5", table5.render())


def test_table5_collision_kernel(benchmark):
    """The collision kernel alone — LBMHD's 68%-of-peak workhorse."""
    rho, u, B = orszag_tang_fields((32, 32, 32), 0.05, 0.05)
    state = equilibrium_state(rho, u, B)
    params = CollisionParams(tau=0.8, tau_m=0.8)
    out = benchmark(collide, state, params)
    assert np.isfinite(out).all()


def test_table5_streaming_kernel(benchmark):
    rho, u, B = orszag_tang_fields((32, 32, 32), 0.05, 0.05)
    state = equilibrium_state(rho, u, B)
    out = benchmark(stream_periodic, state)
    assert out.shape == state.shape


def test_table5_model_sweep(benchmark):
    cells = benchmark(table5.run)
    assert len(cells) == len(table5.row_labels()) * len(table5.MACHINES)
