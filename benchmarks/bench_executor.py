"""Wall-clock executor benchmark: serial vs threaded vs processes.

The determinism contract says executors change *only* wall-clock, so
this campaign is the other half of the story: on a multi-core host the
``ThreadExecutor`` should overlap the per-rank NumPy kernels (which
release the GIL) and the ``ProcessExecutor`` should step ranks on
separate cores outright (forked workers writing through the
shared-memory arena), both beating the ``SerialExecutor`` on the
tracked LBMHD 32-rank hot path.

All measurements run through the campaign engine
(:func:`repro.campaign.run_campaign`): one spec, the executor axis
crossed over ``serial``, ``threads:8``, and ``processes:8``, repeats
handled by the campaign worker, scheduled serially so the cells never
compete for cores.

Run ``python benchmarks/bench_executor.py`` to record the campaign to
``BENCH_PR6.json`` at the repository root.  The payload records the
measured speedups *and* per-cell host facts (``os.cpu_count()``, the
process executor's segment-support verdict): the >= 1.5x acceptance
bound is only asserted on hosts with at least
:data:`MIN_CORES_FOR_TARGET` cores (a single-core container cannot
overlap anything; CI runs on multi-core runners and enforces the bound
there).  On a host where the process executor cannot run rank
segments (no fork, no usable /dev/shm, or ``REPRO_SHM_DISABLE``), the
harness degrades that cell to serial and the payload says so — the
warm fallback path is itself part of what this benchmark covers.

The pytest entry points are smoke tests (marked ``bench_smoke``) that
run tiny configurations and assert serial, threaded, and process
stepping stay bitwise-identical::

    pytest benchmarks/bench_executor.py -q --benchmark-disable
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import harness
from repro.apps.lbmhd.solver import LBMHD3D, LBMHDParams
from repro.campaign import CampaignSpec
from repro.campaign import run_campaign as run_campaign_engine
from repro.runtime.arena import Arena
from repro.runtime.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.runtime.perf import Timing, measure
from repro.simmpi.comm import Communicator

try:  # runnable both as a script and under pytest rootdir collection
    import common
except ImportError:  # pragma: no cover
    from benchmarks import common

# -- benchmark configuration (the tracked numbers) -------------------------

LBMHD_SHAPE = (32, 32, 32)
LBMHD_RANKS = 32
LBMHD_STEPS = 5
THREAD_WORKERS = 8
PROCESS_WORKERS = 8

#: Acceptance bound: parallel vs serial wall-clock on the hot path.
SPEEDUP_TARGET = 1.5
#: Backwards-compatible alias (the PR3 payload used this name).
THREAD_SPEEDUP_TARGET = SPEEDUP_TARGET
#: The bound is only meaningful with real cores to overlap on.
MIN_CORES_FOR_TARGET = common.MIN_CORES_FOR_TARGET

_THREAD_SPEC = f"threads:{THREAD_WORKERS}"
_PROCESS_SPEC = f"processes:{PROCESS_WORKERS}"


def _spec(repeats: int) -> CampaignSpec:
    """The tracked hot path as a 3-cell campaign: executor axis only."""
    return CampaignSpec(
        name="executor-hot-path",
        apps=("lbmhd",),
        nprocs=(LBMHD_RANKS,),
        executors=("serial", _THREAD_SPEC, _PROCESS_SPEC),
        steps=LBMHD_STEPS,
        repeats=repeats,
        arena=True,
        params={"lbmhd": {"shape": list(LBMHD_SHAPE)}},
    )


def _cell(result: dict, repeats: int, cores: int, support) -> dict:
    """One executor cell of the payload (timing + host facts)."""
    cell = {
        "best_s": result["wall_s"],
        "samples_s": result["wall_samples_s"],
        "repeats": repeats,
        "cpu_count": cores,
    }
    if support is not None:
        cell["segment_support"] = {
            "ok": bool(support.ok),
            "reason": support.reason,
        }
    return cell


def run_campaign(repeats: int = 5) -> dict:
    """Time serial vs threaded vs process stepping; returns the payload.

    Delegates to the campaign engine with a *serial* campaign
    scheduler: the executor axis under test must own the host's cores,
    so the cells run one after the other, each repeated ``repeats``
    times by the campaign worker.
    """
    report = run_campaign_engine(
        _spec(repeats), cache=None, scheduler="serial"
    )
    assert report.ok, [r.error for r in report.rows if not r.ok]
    by_exec = {r.config.executor: r.result for r in report.rows}
    serial = by_exec["serial"]
    threaded = by_exec[_THREAD_SPEC]
    processes = by_exec[_PROCESS_SPEC]
    thread_speedup = serial["wall_s"] / threaded["wall_s"]
    process_speedup = serial["wall_s"] / processes["wall_s"]
    cores = common.cpu_count()
    proc_support = ProcessExecutor(PROCESS_WORKERS).segment_support()
    enforced = common.targets_enforced()
    return {
        "config": {
            "shape": list(LBMHD_SHAPE),
            "ranks": LBMHD_RANKS,
            "steps_per_sample": LBMHD_STEPS,
            "thread_workers": THREAD_WORKERS,
            "process_workers": PROCESS_WORKERS,
            "scheduler": report.scheduler,
        },
        "host": common.host_facts(),
        "lbmhd_step_loop": {
            "serial": _cell(serial, repeats, cores, None),
            "threads": _cell(threaded, repeats, cores, None),
            "processes": _cell(processes, repeats, cores, proc_support),
            "units_per_sample": LBMHD_STEPS,
            "thread_speedup": thread_speedup,
            "process_speedup": process_speedup,
            # kept for BENCH_PR3 payload compatibility
            "speedup": thread_speedup,
        },
        "target": {
            "speedup": SPEEDUP_TARGET,
            "min_cores": MIN_CORES_FOR_TARGET,
            "enforced": enforced,
            "thread_met": thread_speedup >= SPEEDUP_TARGET,
            # the process bound additionally needs the executor to have
            # actually run segments (not the warm serial fallback)
            "process_enforced": enforced and proc_support.ok,
            "process_met": process_speedup >= SPEEDUP_TARGET,
            "met": thread_speedup >= SPEEDUP_TARGET,
        },
    }


# -- pytest smoke tests ---------------------------------------------------


_process_capable = ProcessExecutor(2).segment_support()


@pytest.mark.bench_smoke
def test_threaded_stepping_bitwise_matches_serial():
    """Tiny configuration of the tracked loop: states must be bitwise
    identical across executors (arena fast path included)."""
    params = LBMHDParams(shape=(8, 8, 8))
    serial = LBMHD3D(
        params, Communicator(8, executor=SerialExecutor()), arena=Arena()
    )
    threaded = LBMHD3D(
        params,
        Communicator(8, executor=ThreadExecutor(4)),
        arena=Arena(),
    )
    serial.run(3)
    threaded.run(3)
    assert_array_equal(serial.global_state(), threaded.global_state())


@pytest.mark.bench_smoke
def test_threaded_harness_run_bitwise_matches_serial():
    """The same contract through the instrumented harness driver."""
    params = LBMHDParams(shape=(8, 8, 8))
    a = harness.run(
        "lbmhd", params, steps=3, nprocs=8, executor="serial", arena=Arena()
    )
    b = harness.run(
        "lbmhd", params, steps=3, nprocs=8, executor="threads:4",
        arena=Arena(),
    )
    assert_array_equal(a.state.global_state(), b.state.global_state())


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    not _process_capable.ok, reason=_process_capable.reason
)
def test_process_harness_run_bitwise_matches_serial():
    """Forked rank stepping through the shared-memory arena is bitwise
    identical to serial through the instrumented harness driver."""
    params = LBMHDParams(shape=(8, 8, 8))
    a = harness.run(
        "lbmhd", params, steps=3, nprocs=8, executor="serial", arena=Arena()
    )
    b = harness.run(
        "lbmhd", params, steps=3, nprocs=8, executor="processes:2",
        arena=Arena(),
    )
    assert_array_equal(a.state.global_state(), b.state.global_state())


@pytest.mark.bench_smoke
def test_campaign_machinery_flows():
    """One-repeat end-to-end pass over the measuring machinery."""
    timing = measure(lambda: None, "noop", repeats=2, warmup=0)
    assert isinstance(timing, Timing)
    assert timing.repeats == 2


@pytest.mark.bench_smoke
def test_executor_axis_campaign_produces_all_cells():
    """A tiny executor-axis campaign through the engine: every cell
    completes, repeats produce the requested samples, diagnostics agree
    bitwise across executors (processes included — on an incapable host
    that cell warm-falls-back to serial and must still agree)."""
    spec = CampaignSpec(
        name="executor-smoke",
        apps=("lbmhd",),
        nprocs=(8,),
        executors=("serial", "threads:4", "processes:2"),
        steps=2,
        repeats=2,
        arena=True,
        params={"lbmhd": {"shape": [8, 8, 8]}},
    )
    report = run_campaign_engine(spec, cache=None, scheduler="serial")
    assert report.ok
    assert len(report.rows) == 3
    results = [r.result for r in report.rows]
    for r in results:
        assert len(r["wall_samples_s"]) == 2
        assert r["diagnostics"] == results[0]["diagnostics"]


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CORES_FOR_TARGET,
    reason=f"speedup target needs >= {MIN_CORES_FOR_TARGET} cores",
)
def test_parallel_speedup_meets_target():
    """On a real multi-core host the parallel executors must pay for
    themselves (the process bound only when segments are supported)."""
    payload = run_campaign(repeats=3)
    row = payload["lbmhd_step_loop"]
    assert row["thread_speedup"] >= SPEEDUP_TARGET, (
        f"threaded speedup {row['thread_speedup']:.2f}x below "
        f"{SPEEDUP_TARGET}x target "
        f"(serial best {row['serial']['best_s'] * 1e3:.1f} ms, "
        f"threads best {row['threads']['best_s'] * 1e3:.1f} ms, "
        f"{payload['host']['cpu_count']} cores)"
    )
    if payload["target"]["process_enforced"]:
        assert row["process_speedup"] >= SPEEDUP_TARGET, (
            f"process speedup {row['process_speedup']:.2f}x below "
            f"{SPEEDUP_TARGET}x target "
            f"(serial best {row['serial']['best_s'] * 1e3:.1f} ms, "
            f"processes best {row['processes']['best_s'] * 1e3:.1f} ms, "
            f"{payload['host']['cpu_count']} cores)"
        )


if __name__ == "__main__":
    payload = run_campaign()
    row = payload["lbmhd_step_loop"]
    per = row["units_per_sample"]
    serial_ms = row["serial"]["best_s"] / per * 1e3
    threads_ms = row["threads"]["best_s"] / per * 1e3
    procs_ms = row["processes"]["best_s"] / per * 1e3
    cores = payload["host"]["cpu_count"]
    print(
        f"lbmhd_step_loop   serial {serial_ms:8.2f} ms/step   "
        f"threads({THREAD_WORKERS}) {threads_ms:8.2f} ms/step "
        f"({row['thread_speedup']:.2f}x)   "
        f"processes({PROCESS_WORKERS}) {procs_ms:8.2f} ms/step "
        f"({row['process_speedup']:.2f}x)   ({cores} cores)"
    )
    support = row["processes"].get("segment_support", {})
    if not support.get("ok", False):
        print(
            "note: process cell ran the warm serial fallback "
            f"({support.get('reason', 'unknown')})"
        )
    target = payload["target"]
    if target["enforced"]:
        assert target["thread_met"], (
            f"threaded speedup {row['thread_speedup']:.2f}x below "
            f"{SPEEDUP_TARGET}x target on a {cores}-core host"
        )
        if target["process_enforced"]:
            assert target["process_met"], (
                f"process speedup {row['process_speedup']:.2f}x below "
                f"{SPEEDUP_TARGET}x target on a {cores}-core host"
            )
    else:
        print(
            f"note: {cores} core(s) < {MIN_CORES_FOR_TARGET} — "
            f"speedup targets recorded but not enforced on this host"
        )
    common.emit("BENCH_PR6.json", payload)
