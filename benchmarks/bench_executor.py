"""Wall-clock executor benchmark: serial vs threaded rank stepping.

The determinism contract says executors change *only* wall-clock, so
this campaign is the other half of the story: on a multi-core host the
``ThreadExecutor`` should overlap the per-rank NumPy kernels (which
release the GIL) and beat the ``SerialExecutor`` on the tracked LBMHD
32-rank hot path.

Both measurements now run through the campaign engine
(:func:`repro.campaign.run_campaign`): one spec, the executor axis
crossed over ``serial`` and ``threads:8``, repeats handled by the
campaign worker, scheduled serially so the two cells never compete for
cores.

Run ``python benchmarks/bench_executor.py`` to record the campaign to
``BENCH_PR3.json`` at the repository root.  The payload records the
measured speedup *and* ``os.cpu_count()``: the >= 1.5x acceptance bound
is only asserted on hosts with at least :data:`MIN_CORES_FOR_TARGET`
cores (a single-core container cannot overlap anything; CI runs on
multi-core runners and enforces the bound there).

The pytest entry points are smoke tests (marked ``bench_smoke``) that
run tiny configurations and assert serial and threaded stepping stay
bitwise-identical::

    pytest benchmarks/bench_executor.py -q --benchmark-disable
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import harness
from repro.apps.lbmhd.solver import LBMHD3D, LBMHDParams
from repro.campaign import CampaignSpec
from repro.campaign import run_campaign as run_campaign_engine
from repro.runtime.arena import Arena
from repro.runtime.executors import SerialExecutor, ThreadExecutor
from repro.runtime.perf import Timing, measure, write_results
from repro.simmpi.comm import Communicator

# -- benchmark configuration (the tracked numbers) -------------------------

LBMHD_SHAPE = (32, 32, 32)
LBMHD_RANKS = 32
LBMHD_STEPS = 5
THREAD_WORKERS = 8

#: Acceptance bound: threaded vs serial wall-clock on the hot path.
THREAD_SPEEDUP_TARGET = 1.5
#: The bound is only meaningful with real cores to overlap on.
MIN_CORES_FOR_TARGET = 4


def _spec(repeats: int) -> CampaignSpec:
    """The tracked hot path as a 2-cell campaign: executor axis only."""
    return CampaignSpec(
        name="executor-hot-path",
        apps=("lbmhd",),
        nprocs=(LBMHD_RANKS,),
        executors=("serial", f"threads:{THREAD_WORKERS}"),
        steps=LBMHD_STEPS,
        repeats=repeats,
        arena=True,
        params={"lbmhd": {"shape": list(LBMHD_SHAPE)}},
    )


def run_campaign(repeats: int = 5) -> dict:
    """Time serial vs threaded stepping; returns the JSON payload.

    Delegates to the campaign engine with a *serial* campaign
    scheduler: the executor axis under test must own the host's cores,
    so the two cells run one after the other, each repeated
    ``repeats`` times by the campaign worker.
    """
    report = run_campaign_engine(
        _spec(repeats), cache=None, scheduler="serial"
    )
    assert report.ok, [r.error for r in report.rows if not r.ok]
    by_exec = {r.config.executor: r.result for r in report.rows}
    serial = by_exec["serial"]
    threaded = by_exec[f"threads:{THREAD_WORKERS}"]
    speedup = serial["wall_s"] / threaded["wall_s"]
    cores = os.cpu_count() or 1
    return {
        "config": {
            "shape": list(LBMHD_SHAPE),
            "ranks": LBMHD_RANKS,
            "steps_per_sample": LBMHD_STEPS,
            "workers": THREAD_WORKERS,
            "scheduler": report.scheduler,
        },
        "host": {"cpu_count": cores},
        "lbmhd_step_loop": {
            "serial": {
                "best_s": serial["wall_s"],
                "samples_s": serial["wall_samples_s"],
                "repeats": repeats,
            },
            "threads": {
                "best_s": threaded["wall_s"],
                "samples_s": threaded["wall_samples_s"],
                "repeats": repeats,
            },
            "units_per_sample": LBMHD_STEPS,
            "speedup": speedup,
        },
        "target": {
            "speedup": THREAD_SPEEDUP_TARGET,
            "min_cores": MIN_CORES_FOR_TARGET,
            "enforced": cores >= MIN_CORES_FOR_TARGET,
            "met": speedup >= THREAD_SPEEDUP_TARGET,
        },
    }


# -- pytest smoke tests ---------------------------------------------------


@pytest.mark.bench_smoke
def test_threaded_stepping_bitwise_matches_serial():
    """Tiny configuration of the tracked loop: states must be bitwise
    identical across executors (arena fast path included)."""
    params = LBMHDParams(shape=(8, 8, 8))
    serial = LBMHD3D(
        params, Communicator(8, executor=SerialExecutor()), arena=Arena()
    )
    threaded = LBMHD3D(
        params,
        Communicator(8, executor=ThreadExecutor(4)),
        arena=Arena(),
    )
    serial.run(3)
    threaded.run(3)
    assert_array_equal(serial.global_state(), threaded.global_state())


@pytest.mark.bench_smoke
def test_threaded_harness_run_bitwise_matches_serial():
    """The same contract through the instrumented harness driver."""
    params = LBMHDParams(shape=(8, 8, 8))
    a = harness.run(
        "lbmhd", params, steps=3, nprocs=8, executor="serial", arena=Arena()
    )
    b = harness.run(
        "lbmhd", params, steps=3, nprocs=8, executor="threads:4",
        arena=Arena(),
    )
    assert_array_equal(a.state.global_state(), b.state.global_state())


@pytest.mark.bench_smoke
def test_campaign_machinery_flows():
    """One-repeat end-to-end pass over the measuring machinery."""
    timing = measure(lambda: None, "noop", repeats=2, warmup=0)
    assert isinstance(timing, Timing)
    assert timing.repeats == 2


@pytest.mark.bench_smoke
def test_executor_axis_campaign_produces_both_cells():
    """A tiny executor-axis campaign through the engine: both cells
    complete, repeats produce the requested samples, diagnostics agree
    bitwise across executors."""
    spec = CampaignSpec(
        name="executor-smoke",
        apps=("lbmhd",),
        nprocs=(8,),
        executors=("serial", "threads:4"),
        steps=2,
        repeats=2,
        arena=True,
        params={"lbmhd": {"shape": [8, 8, 8]}},
    )
    report = run_campaign_engine(spec, cache=None, scheduler="serial")
    assert report.ok
    assert len(report.rows) == 2
    a, b = (r.result for r in report.rows)
    assert len(a["wall_samples_s"]) == 2
    assert a["diagnostics"] == b["diagnostics"]


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CORES_FOR_TARGET,
    reason=f"speedup target needs >= {MIN_CORES_FOR_TARGET} cores",
)
def test_threaded_speedup_meets_target():
    """On a real multi-core host the thread pool must pay for itself."""
    payload = run_campaign(repeats=3)
    row = payload["lbmhd_step_loop"]
    assert row["speedup"] >= THREAD_SPEEDUP_TARGET, (
        f"threaded speedup {row['speedup']:.2f}x below "
        f"{THREAD_SPEEDUP_TARGET}x target "
        f"(serial best {row['serial']['best_s'] * 1e3:.1f} ms, "
        f"threads best {row['threads']['best_s'] * 1e3:.1f} ms, "
        f"{payload['host']['cpu_count']} cores)"
    )


if __name__ == "__main__":
    out = Path(__file__).resolve().parent.parent / "BENCH_PR3.json"
    payload = run_campaign()
    row = payload["lbmhd_step_loop"]
    per = row["units_per_sample"]
    serial_ms = row["serial"]["best_s"] / per * 1e3
    threads_ms = row["threads"]["best_s"] / per * 1e3
    cores = payload["host"]["cpu_count"]
    print(
        f"lbmhd_step_loop          serial {serial_ms:8.2f} ms/step   "
        f"threads({THREAD_WORKERS}) {threads_ms:8.2f} ms/step   "
        f"speedup {row['speedup']:.2f}x   ({cores} cores)"
    )
    target = payload["target"]
    if target["enforced"]:
        assert target["met"], (
            f"threaded speedup {row['speedup']:.2f}x below "
            f"{THREAD_SPEEDUP_TARGET}x target on a {cores}-core host"
        )
    elif not target["met"]:
        print(
            f"note: {cores} core(s) < {MIN_CORES_FOR_TARGET} — "
            f"speedup target recorded but not enforced on this host"
        )
    write_results(out, payload)
    print(f"wrote {out}")
