"""Ablation: GTC scalar vs work-vector charge deposition.

The work-vector method is the paper's enabling vector optimization: it
removes the scatter's memory-dependency conflict at the price of a
2-8x memory footprint.  This bench times both implementations on the
same particle population and reports the modeled machine-level verdict
(vectorized deposition wins on the ES, loses nothing on the Opteron).
"""

from __future__ import annotations

import numpy as np

from repro.apps.gtc import (
    PoloidalGrid,
    TorusGrid,
    deposit_scalar,
    deposit_work,
    deposit_work_vector,
    load_particles,
    work_vector_memory_overhead,
)
from repro.machines import get_machine, make_model

GRID = PoloidalGrid(mpsi=32, mtheta=64)
TORUS = TorusGrid(plane=GRID, ntoroidal=1)
N_PARTICLES = 50_000


def _particles():
    return load_particles(TORUS, N_PARTICLES, 0, np.random.default_rng(7))


def test_ablation_deposit_scalar(benchmark):
    p = _particles()
    rho = benchmark(deposit_scalar, GRID, p, 0.02)
    assert rho.sum() > 0


def test_ablation_deposit_work_vector(benchmark, report):
    p = _particles()
    rho = benchmark(deposit_work_vector, GRID, p, 16, 0.02)
    assert rho.sum() > 0

    lines = ["Ablation: GTC deposition variants (modeled machine rates)", ""]
    for machine in ("Opteron", "ES", "SX-8", "X1"):
        model = make_model(get_machine(machine))
        t_scal = model.time(deposit_work(N_PARTICLES, vectorized=False))
        t_vec = model.time(deposit_work(N_PARTICLES, vectorized=True))
        lines.append(
            f"{machine:8s} scalar-loop {t_scal * 1e3:7.2f} ms   "
            f"work-vector {t_vec * 1e3:7.2f} ms   "
            f"speedup {t_scal / t_vec:5.2f}x"
        )
    overhead = work_vector_memory_overhead(GRID, 256)
    lines.append(
        f"\nwork-vector memory overhead at 256 copies: "
        f"{overhead / 2**20:.1f} MiB per grid plane "
        "(the reason mixed MPI/OpenMP is impossible on the vector machines)"
    )
    report("ablation-gtc", "\n".join(lines))


def test_ablation_vector_machines_need_work_vector(benchmark):
    """On the ES the scalar deposition loop would run ~8x slower."""
    es = make_model(get_machine("ES"))

    def verdict() -> float:
        t_scalar = es.time(deposit_work(N_PARTICLES, vectorized=False))
        t_vector = es.time(deposit_work(N_PARTICLES, vectorized=True))
        return t_scalar / t_vector

    ratio = benchmark(verdict)
    assert ratio > 1.5  # gather-bound floor caps the gain below ~8x
