"""Ablation: FVCAM 1D vs 2D decomposition, and MSP vs SSP execution.

Two of the design choices the paper examines head-on:

* the 2-D (latitude, level) decomposition trades extra transpose
  communication for a better surface-to-volume ratio and more usable
  concurrency (Section 3.2);
* the X1's MSP vs SSP modes trade multistreaming granularity against
  scalar-unit participation (Section 7's tradeoff discussion).
"""

from __future__ import annotations

from repro.apps.fvcam import FVCAM, FVCAMParams, FVCAMScenario, LatLonGrid, predict
from repro.apps.lbmhd import LBMHDScenario
from repro.apps.lbmhd import predict as lbmhd_predict
from repro.apps.paratec import ParatecScenario
from repro.apps.paratec import predict as paratec_predict
from repro.simmpi import Communicator

GRID = LatLonGrid(im=48, jm=96, km=8)


def test_ablation_fvcam_1d_step(benchmark):
    sim = FVCAM(FVCAMParams(grid=GRID, py=8, pz=1, dt=30.0), Communicator(8))
    benchmark(sim.step)


def test_ablation_fvcam_2d_step(benchmark, report):
    sim = FVCAM(FVCAMParams(grid=GRID, py=4, pz=2, dt=30.0), Communicator(8))
    benchmark(sim.step)

    lines = [
        "Ablation: decomposition and execution-mode tradeoffs (model)",
        "",
        "FVCAM 1D vs 2D at equal processor counts (ES, Gflop/P):",
    ]
    for p in (128, 256):
        r1 = predict("ES", FVCAMScenario(p, 1)).gflops_per_proc
        r2 = predict("ES", FVCAMScenario(p, 4)).gflops_per_proc
        lines.append(f"  P={p}:  1D {r1:5.2f}   2D-4v {r2:5.2f}")
    lines.append("")
    lines.append("X1 MSP vs 4-SSP aggregates (Gflop per MSP-equivalent):")
    msp = lbmhd_predict("X1", LBMHDScenario(512, 256)).gflops_per_proc
    ssp = 4 * lbmhd_predict("X1-SSP", LBMHDScenario(512, 256)).gflops_per_proc
    lines.append(f"  LBMHD3D:  MSP {msp:5.2f}   4-SSP {ssp:5.2f}  (MSP wins)")
    msp = paratec_predict("X1", ParatecScenario(128)).gflops_per_proc
    ssp = 4 * paratec_predict("X1-SSP", ParatecScenario(128)).gflops_per_proc
    lines.append(f"  PARATEC:  MSP {msp:5.2f}   4-SSP {ssp:5.2f}  (SSP wins)")
    report("ablation-decomp", "\n".join(lines))
