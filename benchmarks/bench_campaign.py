"""Campaign engine benchmark: process scheduling + cache-hit reruns.

Two tracked numbers, recorded to ``BENCH_PR5.json`` by
``python benchmarks/bench_campaign.py``:

* **Process speedup** — an 8-config, 2-app campaign (LBMHD + GTC
  crossed over seeds and rank counts) run cold with the
  ``processes`` scheduler vs cold serially.  Target >= 1.5x, asserted
  only on hosts with at least :data:`MIN_CORES_FOR_TARGET` cores (the
  pattern of ``bench_executor.py``: a single-core container cannot
  overlap worker processes; CI enforces the bound on multi-core
  runners).
* **Warm fraction** — an immediate rerun of the same campaign against
  the populated cache must be 100% hits and complete in under
  :data:`WARM_FRACTION_TARGET` of the cold wall-clock.  This one needs
  no cores and is enforced everywhere.

The pytest entry points are ``bench_smoke`` tests over a tiny spec.
"""

from __future__ import annotations

import os
import tempfile

import pytest

from repro.campaign import CampaignSpec, ResultCache, run_campaign

try:  # runnable both as a script and under pytest rootdir collection
    import common
except ImportError:  # pragma: no cover
    from benchmarks import common

# -- benchmark configuration (the tracked numbers) -------------------------

#: 2 apps x 2 seeds x 2 rank counts = 8 configurations.
CAMPAIGN = CampaignSpec(
    name="bench-pr5",
    apps=("lbmhd", "gtc"),
    nprocs=(4, 8),
    seeds=(0, 1),
    steps=10,
    params={
        "lbmhd": {"shape": [24, 24, 24]},
        "gtc": {"particles_per_cell": 16},
    },
)

#: Acceptance bound: processes vs serial cold wall-clock.
PROCESS_SPEEDUP_TARGET = 1.5
#: The speedup bound is only meaningful with real cores to fan out on.
MIN_CORES_FOR_TARGET = common.MIN_CORES_FOR_TARGET
#: Acceptance bound: warm rerun wall-clock as a fraction of cold.
WARM_FRACTION_TARGET = 0.10

#: Tiny spec for the smoke tests (2 apps x 2 seeds = 4 configs).
SMOKE = CampaignSpec(
    name="bench-pr5-smoke",
    apps=("lbmhd", "gtc"),
    nprocs=(4,),
    seeds=(0, 1),
    steps=1,
    params={
        "lbmhd": {"shape": [8, 8, 8]},
        "gtc": {"particles_per_cell": 4},
    },
)


def run_benchmark(workers: int | None = None) -> dict:
    """Cold serial vs cold processes vs warm rerun; the JSON payload."""
    cores = common.cpu_count()
    n = len(CAMPAIGN.expand())

    serial_cold = run_campaign(CAMPAIGN, cache=None, scheduler="serial")
    assert serial_cold.ok, [
        r.error for r in serial_cold.rows if not r.ok
    ]

    with tempfile.TemporaryDirectory(prefix="bench-pr5-") as tmp:
        cache = ResultCache(tmp)
        scheduler = (
            f"processes:{workers}" if workers is not None else "processes"
        )
        proc_cold = run_campaign(CAMPAIGN, cache=cache, scheduler=scheduler)
        assert proc_cold.ok and proc_cold.misses == n
        warm = run_campaign(CAMPAIGN, cache=cache, scheduler=scheduler)
        assert warm.ok

    speedup = serial_cold.wall_s / proc_cold.wall_s
    warm_fraction = warm.wall_s / proc_cold.wall_s
    return {
        "campaign": CAMPAIGN.to_dict(),
        "host": common.host_facts(),
        "configs": n,
        "cold": {
            "serial_wall_s": serial_cold.wall_s,
            "processes_wall_s": proc_cold.wall_s,
            "scheduler": proc_cold.scheduler,
            "speedup": speedup,
        },
        "warm": {
            "wall_s": warm.wall_s,
            "hits": warm.hits,
            "misses": warm.misses,
            "fraction_of_cold": warm_fraction,
        },
        "target": {
            "speedup": PROCESS_SPEEDUP_TARGET,
            "min_cores": MIN_CORES_FOR_TARGET,
            "speedup_enforced": common.targets_enforced(),
            "speedup_met": speedup >= PROCESS_SPEEDUP_TARGET,
            "warm_fraction": WARM_FRACTION_TARGET,
            "warm_met": warm.hits == n
            and warm_fraction < WARM_FRACTION_TARGET,
        },
    }


# -- pytest smoke tests ---------------------------------------------------


@pytest.mark.bench_smoke
def test_warm_rerun_is_all_hits_and_much_cheaper(tmp_path):
    """The cache pays for itself: an immediate rerun is 100% hits and
    a small fraction of the cold wall-clock (loose bound here; the
    tracked <10% bound is enforced by the __main__ run)."""
    cache = ResultCache(tmp_path)
    cold = run_campaign(SMOKE, cache=cache, scheduler="serial")
    assert cold.ok and cold.misses == len(SMOKE.expand())
    warm = run_campaign(SMOKE, cache=cache, scheduler="serial")
    assert warm.hits == len(SMOKE.expand()) and warm.misses == 0
    assert warm.wall_s < 0.5 * cold.wall_s


@pytest.mark.bench_smoke
def test_process_scheduler_matches_serial_cold(tmp_path):
    """Scheduling across worker processes changes wall-clock only —
    every diagnostic is identical to the serial sweep's."""
    serial = run_campaign(SMOKE, cache=None, scheduler="serial")
    procs = run_campaign(
        SMOKE, cache=tmp_path, scheduler="processes:2"
    )
    assert serial.ok and procs.ok
    s = {r.key: r.result["diagnostics"] for r in serial.rows}
    p = {r.key: r.result["diagnostics"] for r in procs.rows}
    assert s == p


@pytest.mark.bench_smoke
@pytest.mark.skipif(
    (os.cpu_count() or 1) < MIN_CORES_FOR_TARGET,
    reason=f"speedup target needs >= {MIN_CORES_FOR_TARGET} cores",
)
def test_process_speedup_meets_target():
    """On a real multi-core host the process pool must pay for itself
    across the full 8-config campaign."""
    payload = run_benchmark()
    cold = payload["cold"]
    assert cold["speedup"] >= PROCESS_SPEEDUP_TARGET, (
        f"process-scheduler speedup {cold['speedup']:.2f}x below "
        f"{PROCESS_SPEEDUP_TARGET}x target "
        f"(serial {cold['serial_wall_s']:.2f} s, processes "
        f"{cold['processes_wall_s']:.2f} s, "
        f"{payload['host']['cpu_count']} cores)"
    )


if __name__ == "__main__":
    payload = run_benchmark()
    cold, warm, target = (
        payload["cold"], payload["warm"], payload["target"],
    )
    cores = payload["host"]["cpu_count"]
    print(
        f"campaign ({payload['configs']} configs)   "
        f"serial {cold['serial_wall_s']:6.2f} s   "
        f"processes {cold['processes_wall_s']:6.2f} s   "
        f"speedup {cold['speedup']:.2f}x   ({cores} cores)"
    )
    print(
        f"warm rerun               {warm['wall_s']:6.3f} s   "
        f"{warm['hits']}/{payload['configs']} hits   "
        f"{warm['fraction_of_cold'] * 100:.1f}% of cold"
    )
    assert target["warm_met"], (
        f"warm rerun took {warm['fraction_of_cold'] * 100:.1f}% of the "
        f"cold wall-clock with {warm['misses']} miss(es) — the cache "
        f"bound is < {WARM_FRACTION_TARGET * 100:.0f}% and 0 misses"
    )
    if target["speedup_enforced"]:
        assert target["speedup_met"], (
            f"process-scheduler speedup {cold['speedup']:.2f}x below "
            f"{PROCESS_SPEEDUP_TARGET}x target on a {cores}-core host"
        )
    elif not target["speedup_met"]:
        print(
            f"note: {cores} core(s) < {MIN_CORES_FOR_TARGET} — "
            f"speedup target recorded but not enforced on this host"
        )
    common.emit("BENCH_PR5.json", payload)
