"""Table 6 bench: PARATEC parallel FFT / H-apply + the regenerated table."""

from __future__ import annotations

import numpy as np

from repro.apps.paratec import (
    Atom,
    GSphere,
    Hamiltonian,
    ParallelFFT3D,
    Paratec,
    ParatecParams,
    SphereDistribution,
)
from repro.experiments import table6
from repro.simmpi import Communicator


def _setup(nranks=4, ecut=12.0, grid=(16, 16, 16)):
    sphere = GSphere(ecut=ecut, grid_shape=grid)
    dist = SphereDistribution(sphere, nranks)
    comm = Communicator(nranks)
    fft = ParallelFFT3D(dist, comm)
    return sphere, dist, fft


def test_table6_parallel_fft(benchmark, report):
    """Time a distributed sphere->real->sphere FFT round trip."""
    sphere, dist, fft = _setup()
    rng = np.random.default_rng(0)
    psi = dist.scatter(
        rng.standard_normal(sphere.num_g)
        + 1j * rng.standard_normal(sphere.num_g)
    )

    def roundtrip():
        return fft.real_to_sphere(fft.sphere_to_real(psi))

    out = benchmark(roundtrip)
    assert len(out) == 4
    report("table6", table6.render())


def test_table6_hamiltonian_apply(benchmark):
    """Time H|psi> — kinetic + FFT-mediated local potential."""
    sphere, dist, fft = _setup()
    ham = Hamiltonian.from_atoms(fft, [Atom(position=(0.5, 0.5, 0.5))])
    rng = np.random.default_rng(1)
    psi = dist.scatter(
        rng.standard_normal(sphere.num_g)
        + 1j * rng.standard_normal(sphere.num_g)
    )
    out = benchmark(ham.apply, psi)
    assert len(out) == 4


def test_table6_scf_sweep(benchmark):
    """Time a full miniature SCF band sweep."""
    p = Paratec(
        ParatecParams(scf_iterations=1, cg_iterations=3), Communicator(2)
    )
    result = benchmark(p.run, update_density=False)
    assert len(result.eigenvalues) == p.params.nbands


def test_table6_model_sweep(benchmark):
    cells = benchmark(table6.run)
    assert len(cells) == len(table6.row_labels()) * len(table6.MACHINES)
