"""Ablation: CAM's two dynamical cores on vector vs scalar machines.

The paper's FVCAM contribution is "the first reported vector
performance results for CAM simulations utilizing a finite-volume
dynamical core" — noteworthy precisely because the *Eulerian spectral*
core, dense in Legendre transforms and FFTs, was the traditional
vector-machine workload, while the finite-volume core's one-sided
branchy upwind operators were presumed vector-hostile.  This bench
times both mini-cores and compares their modeled %peak per machine.
"""

from __future__ import annotations

import numpy as np

from repro.apps.fvcam import (
    FVCAM,
    FVCAMParams,
    EulerianCore,
    LatLonGrid,
    PAPER_GRID,
    SpharmTransform,
    dynamics_work,
    eulerian_step_work,
)
from repro.machines import get_machine, make_model
from repro.simmpi import Communicator


def test_ablation_eulerian_step(benchmark):
    """Time one spectral-transform RK3 step (T31-ish truncation)."""
    t = SpharmTransform(lmax=31, nlat=48, radius=6.371e6)
    core = EulerianCore(transform=t, hyperdiffusion=1e16)
    rng = np.random.default_rng(0)
    grid = 1e-5 * rng.standard_normal(t.grid_shape)
    core.set_vorticity_grid(grid)
    benchmark(core.step, 600.0)
    assert np.isfinite(np.abs(core.zeta)).all()


def test_ablation_fv_step(benchmark):
    """Time one finite-volume step at a comparable resolution."""
    grid = LatLonGrid(im=64, jm=48, km=4)
    sim = FVCAM(FVCAMParams(grid=grid, py=4, pz=1, dt=60.0), Communicator(4))
    benchmark(sim.step)


def test_ablation_dycore_vector_friendliness(benchmark, report):
    """Modeled %peak of the two cores across machine families."""
    from repro.apps.fvcam import FVCAMScenario
    from repro.apps.fvcam.workload import rank_step_work

    t = SpharmTransform(lmax=85, nlat=128, radius=6.371e6)  # ~T85
    spectral = eulerian_step_work(t)
    scenario = FVCAMScenario(672, 7)  # the paper's large 2D-7v run

    def sweep():
        rows = {}
        for m in ("Power3", "Opteron", "X1", "ES"):
            spec = get_machine(m)
            model = make_model(spec)
            rows[m] = (
                model.pct_peak(spectral),
                model.pct_peak(rank_step_work(spec, scenario)),
            )
        return rows

    rows = benchmark(sweep)
    lines = [
        "Ablation: Eulerian spectral vs finite-volume dycore (modeled %peak)",
        "",
        f"{'machine':<10} {'spectral':>10} {'finite-vol':>11}",
    ]
    for m, (sp, fvp) in rows.items():
        lines.append(f"{m:<10} {sp:9.1f}% {fvp:10.1f}%")
    lines.append(
        "\nThe spectral core's dense transforms sustain far more of a "
        "vector machine's peak;\nthe paper's news was making the "
        "finite-volume core respectable there at all."
    )
    report("ablation-dycore", "\n".join(lines))
    # the headline gap: spectral sustains much more of the vector peak
    assert rows["ES"][0] > 1.5 * rows["ES"][1]
    assert rows["X1"][0] > 1.5 * rows["X1"][1]
