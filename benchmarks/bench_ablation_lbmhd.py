"""Ablation: LBMHD fused collide+stream vs two-pass update.

The paper adopts the Wellein et al. optimization: combining collision
and streaming so "only the points on cell boundaries require copying".
This bench measures the two formulations on identical lattices — the
fused form does one fewer full-state sweep — and reports the modeled
traffic saving.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lbmhd import (
    CollisionParams,
    collide,
    equilibrium_state,
    orszag_tang_fields,
    stream_periodic,
)
from repro.apps.lbmhd.collision import BYTES_PER_POINT
from repro.apps.lbmhd.lattice import NSLOTS

SHAPE = (24, 24, 24)
PARAMS = CollisionParams(tau=0.8, tau_m=0.8)


def _state():
    rho, u, B = orszag_tang_fields(SHAPE, 0.05, 0.05)
    return equilibrium_state(rho, u, B)


def test_ablation_fused_update(benchmark):
    """Collision immediately followed by streaming (one state pass)."""
    state = _state()

    def fused(s=state):
        return stream_periodic(collide(s, PARAMS))

    out = benchmark(fused)
    assert np.isfinite(out).all()


def test_ablation_two_pass_update(benchmark, report):
    """Separate passes with an intermediate buffer (the unoptimized form)."""
    state = _state()

    def two_pass(s=state):
        post = collide(s, PARAMS)
        buffer = post.copy()  # the extra full-state store the fusion removes
        return stream_periodic(buffer)

    out = benchmark(two_pass)
    assert np.isfinite(out).all()

    extra_bytes = NSLOTS * 8 * 2  # read + write of the buffer per point
    report(
        "ablation-lbmhd",
        "Ablation: LBMHD fused vs two-pass update\n"
        f"fused traffic model: {BYTES_PER_POINT} B/point; the two-pass "
        f"form adds {extra_bytes} B/point "
        f"({100 * extra_bytes / BYTES_PER_POINT:.0f}% more memory traffic) "
        "— on the memory-bound superscalar platforms this maps directly "
        "to a slowdown of the same magnitude.",
    )
