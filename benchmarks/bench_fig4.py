"""Figure 4 bench: simulated-days-per-day model sweep."""

from __future__ import annotations

from repro.experiments import fig4


def test_fig4_sweep(benchmark, report):
    data = benchmark(fig4.run)
    assert any(series for series in data.values())
    report("fig4", fig4.render())
