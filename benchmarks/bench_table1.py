"""Table 1 bench: platform catalog construction and timing-model setup."""

from __future__ import annotations

from repro.experiments import table1
from repro.machines import get_machine, list_machines, make_model
from repro.workload import Work


def test_table1_catalog_and_models(benchmark, report):
    """Time building every platform's processor model and rating a kernel."""
    probe = Work(
        name="probe",
        flops=1e9,
        bytes_unit=1e9,
        vector_fraction=0.95,
        avg_vector_length=128,
    )

    def rate_all() -> float:
        total = 0.0
        for spec in list_machines():
            total += make_model(spec).sustained_gflops(probe)
        return total

    total = benchmark(rate_all)
    assert total > 0
    report("table1", table1.render())


def test_table1_lookup(benchmark):
    """Catalog lookup is cheap enough to sit in inner loops."""
    result = benchmark(get_machine, "earth simulator")
    assert result.name == "ES"
