"""Table 4 bench: GTC particle step + the regenerated table."""

from __future__ import annotations

from repro.apps.gtc import GTC, GTCParams
from repro.experiments import table4
from repro.simmpi import Communicator


def test_table4_gtc_step(benchmark, report):
    """Time one full PIC step (charge/field/push/shift) across 8 ranks."""
    params = GTCParams(
        mpsi=24, mtheta=32, ntoroidal=4, particles_per_cell=20
    )
    sim = GTC(params, Communicator(8))
    benchmark(sim.step)
    assert sim.total_particles() == 4 * params.particles_per_domain
    report("table4", table4.render())


def test_table4_charge_deposition(benchmark):
    """Time the deposition kernel alone (the paper's critical phase)."""
    from repro.apps.gtc import deposit_scalar, load_particles, TorusGrid, PoloidalGrid
    import numpy as np

    torus = TorusGrid(plane=PoloidalGrid(mpsi=32, mtheta=64), ntoroidal=1)
    particles = load_particles(torus, 100_000, 0, np.random.default_rng(0))
    rho = benchmark(deposit_scalar, torus.plane, particles, 0.02)
    assert rho.sum() > 0


def test_table4_model_sweep(benchmark):
    cells = benchmark(table4.run)
    assert len(cells) == len(table4.row_labels()) * len(table4.MACHINES)
