"""Table 3 bench: FVCAM mini-app dynamics step + the regenerated table.

The machine comparison behind the table now also runs as a campaign:
one FVCAM configuration swept across the machine axis, each cell's
virtual elapsed time coming back through the campaign worker.
"""

from __future__ import annotations

import pytest

from repro.apps.fvcam import FVCAM, FVCAMParams, LatLonGrid
from repro.campaign import CampaignSpec, run_campaign
from repro.experiments import table3
from repro.simmpi import Communicator


def test_table3_fvcam_step(benchmark, report):
    """Time one full parallel dynamics step of the FVCAM mini-app."""
    grid = LatLonGrid(im=48, jm=36, km=8)
    sim = FVCAM(FVCAMParams(grid=grid, py=4, pz=2, dt=30.0), Communicator(8))
    benchmark(sim.step)
    assert sim.total_mass() > 0
    report("table3", table3.render())


def test_table3_model_sweep(benchmark):
    """Time the full Table 3 model evaluation (65 machine x row cells)."""
    cells = benchmark(table3.run)
    assert len(cells) == len(table3.row_labels()) * len(table3.MACHINES)


@pytest.mark.bench_smoke
def test_table3_machine_axis_as_campaign():
    """The same FVCAM step swept across machines by the campaign
    engine: every cell completes, and the machine models change the
    *virtual* elapsed time while leaving the physics identical."""
    spec = CampaignSpec(
        name="table3-machines",
        apps=("fvcam",),
        machines=("ES", "Power3", None),
        nprocs=(8,),
        steps=1,
        params={
            "fvcam": {
                "grid": {"im": 24, "jm": 18, "km": 4},
                "py": 4,
                "pz": 2,
                "dt": 30.0,
            }
        },
    )
    report = run_campaign(spec, cache=None, scheduler="serial")
    assert report.ok, [r.error for r in report.rows if not r.ok]
    assert len(report.rows) == 3
    by_machine = {r.config.machine: r.result for r in report.rows}
    masses = {
        m: r["diagnostics"]["total_mass"] for m, r in by_machine.items()
    }
    assert len(set(masses.values())) == 1  # machines never rewrite physics
    assert all(r["virtual_elapsed_s"] >= 0 for r in by_machine.values())
    # modeled machines accrue virtual time; the ideal platform runs free
    assert by_machine["ES"]["virtual_elapsed_s"] > 0
    assert by_machine["Power3"]["virtual_elapsed_s"] > 0
