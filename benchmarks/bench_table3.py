"""Table 3 bench: FVCAM mini-app dynamics step + the regenerated table."""

from __future__ import annotations

from repro.apps.fvcam import FVCAM, FVCAMParams, LatLonGrid
from repro.experiments import table3
from repro.simmpi import Communicator


def test_table3_fvcam_step(benchmark, report):
    """Time one full parallel dynamics step of the FVCAM mini-app."""
    grid = LatLonGrid(im=48, jm=36, km=8)
    sim = FVCAM(FVCAMParams(grid=grid, py=4, pz=2, dt=30.0), Communicator(8))
    benchmark(sim.step)
    assert sim.total_mass() > 0
    report("table3", table3.render())


def test_table3_model_sweep(benchmark):
    """Time the full Table 3 model evaluation (65 machine x row cells)."""
    cells = benchmark(table3.run)
    assert len(cells) == len(table3.row_labels()) * len(table3.MACHINES)
