"""Wall-clock cost of periodic checkpointing on the tracked LBMHD path.

Checkpoint/restart only earns its keep if the no-failure case stays
cheap: this campaign times the instrumented harness running the
32-rank, 32^3 arena-backed LBMHD workload twice — once plain, once
with ``checkpoint_every=10`` (one in-memory snapshot per ten steps) —
and tracks the overhead ratio in ``BENCH_PR4.json`` at the repository
root.  The acceptance bound is < 10% wall-clock overhead.

Run ``python benchmarks/bench_checkpoint.py`` to record the campaign.
The pytest entry points are smoke tests (marked ``bench_smoke``)::

    pytest benchmarks/bench_checkpoint.py -q --benchmark-disable
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import harness
from repro.apps.lbmhd.solver import LBMHDParams
from repro.resilience import MemoryCheckpointStore
from repro.runtime.arena import Arena
from repro.runtime.perf import Timing, measure

try:  # runnable both as a script and under pytest rootdir collection
    import common
except ImportError:  # pragma: no cover
    from benchmarks import common

# -- benchmark configuration (the tracked numbers) -------------------------

LBMHD_SHAPE = (32, 32, 32)
LBMHD_RANKS = 32
LBMHD_STEPS = 20
CHECKPOINT_EVERY = 10

#: Acceptance bound: checkpointed / plain wall-clock ratio minus one.
OVERHEAD_TARGET = 0.10


def _run(checkpointed: bool):
    params = LBMHDParams(shape=LBMHD_SHAPE)
    kwargs = {}
    if checkpointed:
        kwargs = {
            "checkpoint_every": CHECKPOINT_EVERY,
            "checkpoint_store": MemoryCheckpointStore(),
        }
    return harness.run(
        "lbmhd",
        params,
        steps=LBMHD_STEPS,
        nprocs=LBMHD_RANKS,
        arena=Arena(),
        **kwargs,
    )


def run_campaign(repeats: int = 5) -> dict:
    """Time plain vs checkpointed harness runs; returns the payload.

    Samples are interleaved (plain, checkpointed, plain, ...) and the
    overhead is the median of per-round paired *CPU-time* ratios:
    snapshotting costs CPU (array copies), and process CPU time is
    immune to the co-tenant/turbo noise that dominates wall-clock on
    shared CI hosts.  Wall-clock samples ride along in the payload for
    reference.
    """
    import time as _time

    _run(False), _run(True)  # warmup both paths
    plain_wall, ckpt_wall = [], []
    plain_cpu, ckpt_cpu = [], []
    for _ in range(repeats):
        w0, c0 = _time.perf_counter(), _time.process_time()
        _run(False)
        plain_wall.append(_time.perf_counter() - w0)
        plain_cpu.append(_time.process_time() - c0)
        w0, c0 = _time.perf_counter(), _time.process_time()
        _run(True)
        ckpt_wall.append(_time.perf_counter() - w0)
        ckpt_cpu.append(_time.process_time() - c0)
    plain = Timing("lbmhd_harness.plain", tuple(plain_wall))
    ckpt = Timing("lbmhd_harness.checkpointed", tuple(ckpt_wall))
    ratios = sorted(c / p for c, p in zip(ckpt_cpu, plain_cpu))
    overhead = ratios[len(ratios) // 2] - 1.0
    probe = _run(True)
    return {
        "config": {
            "shape": list(LBMHD_SHAPE),
            "ranks": LBMHD_RANKS,
            "steps": LBMHD_STEPS,
            "checkpoint_every": CHECKPOINT_EVERY,
        },
        "host": common.host_facts(),
        "lbmhd_harness": {
            "plain": plain.to_dict(),
            "checkpointed": ckpt.to_dict(),
            "plain_cpu_s": plain_cpu,
            "checkpointed_cpu_s": ckpt_cpu,
            "overhead": overhead,
            "checkpoints_per_run": probe.recovery.checkpoints,
            "checkpoint_bytes": probe.recovery.checkpoint_bytes,
        },
        "target": {
            "overhead": OVERHEAD_TARGET,
            "met": overhead < OVERHEAD_TARGET,
        },
    }


# -- pytest smoke tests ---------------------------------------------------


@pytest.mark.bench_smoke
def test_checkpointed_run_bitwise_matches_plain():
    """Snapshotting must not perturb the physics in any way."""
    params = LBMHDParams(shape=(8, 8, 8))
    plain = harness.run(
        "lbmhd", params, steps=6, nprocs=8, arena=Arena()
    )
    ckpt = harness.run(
        "lbmhd", params, steps=6, nprocs=8, arena=Arena(),
        checkpoint_every=2,
    )
    assert_array_equal(
        plain.state.global_state(), ckpt.state.global_state()
    )
    assert ckpt.recovery.checkpoints == 2


@pytest.mark.bench_smoke
def test_checkpoint_cost_is_booked_virtually():
    """Snapshot I/O lands in the recovery column of the virtual clock."""
    params = LBMHDParams(shape=(8, 8, 8))
    ckpt = harness.run(
        "lbmhd", params, steps=4, nprocs=8, arena=Arena(),
        checkpoint_every=2,
    )
    assert ckpt.ledger.totals().recovery_s.sum() > 0.0
    assert ckpt.recovery.checkpoint_bytes > 0


@pytest.mark.bench_smoke
def test_campaign_machinery_flows():
    timing = measure(lambda: None, "noop", repeats=2, warmup=0)
    assert isinstance(timing, Timing)
    assert timing.repeats == 2


if __name__ == "__main__":
    payload = run_campaign()
    row = payload["lbmhd_harness"]
    plain_ms = row["plain"]["best_s"] * 1e3
    ckpt_ms = row["checkpointed"]["best_s"] * 1e3
    print(
        f"lbmhd_harness            plain {plain_ms:8.1f} ms   "
        f"checkpointed {ckpt_ms:8.1f} ms   "
        f"overhead {row['overhead'] * 100:+.2f}% "
        f"(target < {payload['target']['overhead'] * 100:.0f}%, "
        f"{'MET' if payload['target']['met'] else 'MISSED'})"
    )
    common.emit("BENCH_PR4.json", payload)
