"""Shared helpers for the benchmark harness.

Every benchmark regenerates its paper table/figure (attached to the
pytest-benchmark ``extra_info`` and echoed to stdout) *and* times the
real mini-app kernel that underlies it, so `pytest benchmarks/
--benchmark-only` both reproduces the paper's evaluation and measures
this implementation.
"""

from __future__ import annotations

import pytest


def attach_report(benchmark, name: str, text: str) -> None:
    """Attach a regenerated table/figure to the benchmark record."""
    benchmark.extra_info["experiment"] = name
    benchmark.extra_info["report_chars"] = len(text)
    print(f"\n{text}\n")


@pytest.fixture
def report(benchmark):
    def _report(name: str, text: str) -> None:
        attach_report(benchmark, name, text)

    return _report
