"""Wall-clock hot-path benchmark: seed paths vs the arena fast paths.

Three timed loops, each exercised in its seed (allocating, copying)
configuration and its fast (arena-backed, zero-copy) configuration:

* a 32-rank LBMHD 32^3 step loop (batched collide + block halo
  exchange + batched streaming vs per-rank allocating steps);
* a GTC PIC cycle (charge deposit + Poisson + push + shift with
  arena-pooled deposit and ping-pong particle buffers);
* the PARATEC 3-D FFT global transpose round trip (zero-copy Alltoallv
  of column/slab views vs per-pair contiguous packing).

Plus the harness-overhead campaign: the same step loop driven through
the instrumented :mod:`repro.harness` (phase ledger attached) vs direct
solver calls — the instrumentation must stay under 5% wall-clock.

Run ``python benchmarks/bench_hotpath.py`` to record the campaign to
``BENCH_PR2.json`` at the repository root.  The pytest entry points are
smoke tests (marked ``bench_smoke``) that run tiny configurations and
assert the fast paths stay bitwise-identical to the seed paths::

    pytest benchmarks/bench_hotpath.py -q --benchmark-disable
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import harness
from repro.apps.gtc.solver import GTC, GTCParams
from repro.apps.lbmhd.solver import LBMHD3D, LBMHDParams
from repro.apps.paratec.fft3d import ParallelFFT3D
from repro.apps.paratec.gvectors import GSphere, SphereDistribution
from repro.runtime.arena import Arena
from repro.runtime.perf import Timing, measure, write_results
from repro.simmpi.comm import Communicator

try:  # runnable both as a script and under pytest rootdir collection
    from seed_lbmhd import SeedLBMHD3D
except ImportError:  # pragma: no cover
    from benchmarks.seed_lbmhd import SeedLBMHD3D

# -- benchmark configurations (the tracked numbers) -----------------------

LBMHD_SHAPE = (32, 32, 32)
LBMHD_RANKS = 32
LBMHD_STEPS = 5

GTC_PARAMS = GTCParams(mpsi=24, mtheta=48, ntoroidal=4, particles_per_cell=20)
GTC_RANKS = 8
GTC_STEPS = 2

PARATEC_RANKS = 16
PARATEC_GRID = (24, 24, 24)
PARATEC_ECUT = 30.0
PARATEC_ROUNDTRIPS = 10

HARNESS_SHAPE = (16, 16, 16)
HARNESS_RANKS = 8
HARNESS_STEPS = 5
#: Acceptance bound: instrumented harness stepping vs direct calls.
HARNESS_OVERHEAD_LIMIT = 0.05


def _lbmhd_stepper(arena: Arena | None):
    # The "before" is the vendored seed-commit hot loop (seed_lbmhd) —
    # the repo's current arena=None path already carries this PR's
    # shared-kernel speedups and would understate the change.
    if arena is None:
        solver = SeedLBMHD3D(
            LBMHDParams(shape=LBMHD_SHAPE), Communicator(LBMHD_RANKS)
        )
    else:
        solver = LBMHD3D(
            LBMHDParams(shape=LBMHD_SHAPE),
            Communicator(LBMHD_RANKS),
            arena=arena,
        )
    solver.run(1)  # populate arena pools / warm caches
    return lambda: solver.run(LBMHD_STEPS)


def _gtc_stepper(arena: Arena | None):
    solver = GTC(GTC_PARAMS, Communicator(GTC_RANKS), arena=arena)
    solver.run(1)
    return lambda: solver.run(GTC_STEPS)


def _paratec_engine(arena: Arena | None) -> ParallelFFT3D:
    sphere = GSphere(PARATEC_ECUT, PARATEC_GRID)
    dist = SphereDistribution(sphere, PARATEC_RANKS)
    return ParallelFFT3D(dist, Communicator(PARATEC_RANKS), arena=arena)


def _paratec_transposer(arena: Arena | None):
    fft = _paratec_engine(arena)
    rng = np.random.default_rng(0)
    lines = [
        rng.standard_normal((len(fft._col_keys[r]), PARATEC_GRID[2]))
        + 1j * rng.standard_normal((len(fft._col_keys[r]), PARATEC_GRID[2]))
        for r in range(PARATEC_RANKS)
    ]
    slabs = [np.asarray(s).copy() for s in fft.transpose_columns_to_slabs(lines)]

    def roundtrips() -> None:
        for _ in range(PARATEC_ROUNDTRIPS):
            fft.transpose_columns_to_slabs(lines)
            fft.transpose_slabs_to_columns(slabs)

    return roundtrips


def _overhead_pair(shape=HARNESS_SHAPE, nprocs=HARNESS_RANKS):
    """(direct stepper, instrumented-harness stepper) on equal footing.

    Both sides step an identical pre-built LBMHD solver; the harness
    side goes through the adapter with a phase ledger attached, so the
    measured gap is exactly the instrumentation + dispatch overhead.
    """
    params = LBMHDParams(shape=shape)
    direct = LBMHD3D(params, Communicator(nprocs))
    direct.run(1)
    result = harness.run("lbmhd", params, steps=1, nprocs=nprocs)
    adapter, state = result.app, result.state

    def run_direct() -> None:
        direct.run(HARNESS_STEPS)

    def run_harness() -> None:
        for _ in range(HARNESS_STEPS):
            adapter.step(state)

    return run_direct, run_harness


def measure_harness_overhead(repeats: int = 5) -> dict:
    """Best-of-repeats relative overhead of instrumented harness steps."""
    run_direct, run_harness = _overhead_pair()
    direct = measure(run_direct, "harness_overhead.direct", repeats=repeats)
    instrumented = measure(
        run_harness, "harness_overhead.harness", repeats=repeats
    )
    overhead = instrumented.best / direct.best - 1.0
    return {
        "direct": direct.to_dict(),
        "harness": instrumented.to_dict(),
        "units_per_sample": HARNESS_STEPS,
        "overhead": overhead,
        "limit": HARNESS_OVERHEAD_LIMIT,
    }


def run_campaign(repeats: int = 5) -> dict:
    """Measure every hot path, seed vs fast; returns the JSON payload."""
    results: dict = {"config": {
        "lbmhd": {"shape": list(LBMHD_SHAPE), "ranks": LBMHD_RANKS,
                  "steps_per_sample": LBMHD_STEPS},
        "gtc": {"mpsi": GTC_PARAMS.mpsi, "mtheta": GTC_PARAMS.mtheta,
                "ntoroidal": GTC_PARAMS.ntoroidal,
                "particles_per_cell": GTC_PARAMS.particles_per_cell,
                "ranks": GTC_RANKS, "steps_per_sample": GTC_STEPS},
        "paratec": {"grid": list(PARATEC_GRID), "ecut": PARATEC_ECUT,
                    "ranks": PARATEC_RANKS,
                    "roundtrips_per_sample": PARATEC_ROUNDTRIPS},
    }}

    campaigns = (
        ("lbmhd_step_loop", _lbmhd_stepper, LBMHD_STEPS),
        ("gtc_pic_cycle", _gtc_stepper, GTC_STEPS),
        ("paratec_transpose", _paratec_transposer, PARATEC_ROUNDTRIPS),
    )
    for name, make, per_sample in campaigns:
        seed = measure(make(None), f"{name}.seed", repeats=repeats)
        fast = measure(make(Arena()), f"{name}.fast", repeats=repeats)
        results[name] = {
            "seed": seed.to_dict(),
            "fast": fast.to_dict(),
            "units_per_sample": per_sample,
            "speedup": fast.speedup_over(seed),
        }
    results["harness_overhead"] = measure_harness_overhead(repeats=repeats)
    results["config"]["harness_overhead"] = {
        "shape": list(HARNESS_SHAPE),
        "ranks": HARNESS_RANKS,
        "steps_per_sample": HARNESS_STEPS,
    }
    return results


# -- pytest smoke tests ---------------------------------------------------


@pytest.mark.bench_smoke
def test_lbmhd_fast_path_bitwise_and_runs():
    params = LBMHDParams(shape=(8, 8, 8))
    seed = SeedLBMHD3D(params, Communicator(8))
    cur = LBMHD3D(params, Communicator(8))
    fast = LBMHD3D(params, Communicator(8), arena=Arena())
    seed.run(3)
    cur.run(3)
    fast.run(3)
    # arena path == current allocating path, bitwise; the vendored seed
    # baseline agrees to round-off (the moment-space collide evaluates
    # the same algebra in a different association order).
    assert_array_equal(cur.global_state(), fast.global_state())
    np.testing.assert_allclose(
        seed.global_state(), cur.global_state(), rtol=0.0, atol=1e-13
    )


@pytest.mark.bench_smoke
def test_gtc_fast_path_bitwise_and_runs():
    params = GTCParams(ntoroidal=4, particles_per_cell=5)
    seed = GTC(params, Communicator(4))
    fast = GTC(params, Communicator(4), arena=Arena())
    seed.run(2)
    fast.run(2)
    for a, b in zip(seed.charge, fast.charge):
        assert_array_equal(a, b)
    for pa, pb in zip(seed.particles, fast.particles):
        assert_array_equal(pa.r, pb.r)
        assert_array_equal(pa.theta, pb.theta)
        assert_array_equal(pa.zeta, pb.zeta)


@pytest.mark.bench_smoke
def test_paratec_fast_transpose_bitwise_and_runs():
    rng = np.random.default_rng(1)
    seedf = _paratec_engine(None)
    fastf = _paratec_engine(Arena())
    lines = [
        rng.standard_normal((len(seedf._col_keys[r]), PARATEC_GRID[2]))
        + 1j * rng.standard_normal((len(seedf._col_keys[r]), PARATEC_GRID[2]))
        for r in range(PARATEC_RANKS)
    ]
    s1 = seedf.transpose_columns_to_slabs(lines)
    s2 = fastf.transpose_columns_to_slabs(lines)
    for a, b in zip(s1, s2):
        assert_array_equal(a, b)


@pytest.mark.bench_smoke
def test_campaign_harness_flows():
    """One-repeat end-to-end pass over the measuring machinery."""
    timing = measure(lambda: None, "noop", repeats=2, warmup=0)
    assert isinstance(timing, Timing)
    assert timing.repeats == 2


@pytest.mark.bench_smoke
def test_harness_overhead_under_limit():
    """Instrumented harness stepping stays within 5% of direct calls."""
    row = measure_harness_overhead(repeats=5)
    assert row["overhead"] < HARNESS_OVERHEAD_LIMIT, (
        f"harness overhead {row['overhead'] * 100:.1f}% exceeds "
        f"{HARNESS_OVERHEAD_LIMIT * 100:.0f}% "
        f"(direct best {row['direct']['best_s'] * 1e3:.2f} ms, "
        f"harness best {row['harness']['best_s'] * 1e3:.2f} ms)"
    )


@pytest.mark.bench_smoke
def test_harness_stepping_matches_direct_bitwise():
    """The instrumented adapter loop computes the exact same states."""
    params = LBMHDParams(shape=(8, 8, 8))
    a = LBMHD3D(params, Communicator(8))
    b = harness.run("lbmhd", params, steps=0, nprocs=8).state
    a.run(4)
    for _ in range(4):
        harness.APPLICATIONS["lbmhd"].step(b)
    assert_array_equal(a.global_state(), b.global_state())


if __name__ == "__main__":
    out = Path(__file__).resolve().parent.parent / "BENCH_PR2.json"
    payload = run_campaign()
    for name in ("lbmhd_step_loop", "gtc_pic_cycle", "paratec_transpose"):
        row = payload[name]
        per = row["units_per_sample"]
        seed_ms = row["seed"]["best_s"] / per * 1e3
        fast_ms = row["fast"]["best_s"] / per * 1e3
        print(
            f"{name:24s} seed {seed_ms:8.2f} ms/unit   "
            f"fast {fast_ms:8.2f} ms/unit   speedup {row['speedup']:.2f}x"
        )
    ho = payload["harness_overhead"]
    print(
        f"{'harness_overhead':24s} direct "
        f"{ho['direct']['best_s'] * 1e3:8.2f} ms   harness "
        f"{ho['harness']['best_s'] * 1e3:8.2f} ms   "
        f"overhead {ho['overhead'] * 100:+.1f}% (limit "
        f"{ho['limit'] * 100:.0f}%)"
    )
    write_results(out, payload)
    print(f"wrote {out}")
