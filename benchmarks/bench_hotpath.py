"""Wall-clock hot-path benchmark: seed paths vs the arena fast paths.

Three timed loops, each exercised in its seed (allocating, copying)
configuration and its fast (arena-backed, zero-copy) configuration:

* a 32-rank LBMHD 32^3 step loop (batched collide + block halo
  exchange + batched streaming vs per-rank allocating steps);
* a GTC PIC cycle (charge deposit + Poisson + push + shift with
  arena-pooled deposit and ping-pong particle buffers);
* the PARATEC 3-D FFT global transpose round trip (zero-copy Alltoallv
  of column/slab views vs per-pair contiguous packing).

Plus the harness-overhead campaign: the same step loop driven through
the instrumented :mod:`repro.harness` (phase ledger attached) vs direct
solver calls — the instrumentation must stay under 5% wall-clock.

Plus the kernel-backend shootout: the same three apps swept over every
registered kernel backend (``repro.kernels``) *through the campaign
engine* — one :class:`~repro.campaign.CampaignSpec` with a
``kernel_backends`` axis, executed by
:func:`~repro.campaign.run_campaign` — and a micro-kernel section
timing the backend-overridden hot loops (GTC deposit/push, FVCAM
suffix sum) head to head.  Each cell records whether its backend was
actually available on this host (an unavailable backend degrades to
the numpy reference, so its timings are reference timings); speedup
floors are enforced only where the accelerated backend really ran.

Run ``python benchmarks/bench_hotpath.py`` to record the shootout to
``BENCH_PR7.json`` at the repository root (``run_campaign`` and
``BENCH_PR2.json`` remain available for the seed-vs-fast numbers).
The pytest entry points are smoke tests (marked ``bench_smoke``) that
run tiny configurations and assert the fast paths stay
bitwise-identical to the seed paths::

    pytest benchmarks/bench_hotpath.py -q --benchmark-disable
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import harness
from repro.apps.gtc.solver import GTC, GTCParams
from repro.apps.lbmhd.solver import LBMHD3D, LBMHDParams
from repro.apps.paratec.fft3d import ParallelFFT3D
from repro.apps.paratec.gvectors import GSphere, SphereDistribution
from repro.runtime.arena import Arena
from repro.runtime.perf import Timing, measure
from repro.simmpi.comm import Communicator

try:  # runnable both as a script and under pytest rootdir collection
    import common
    from seed_lbmhd import SeedLBMHD3D
except ImportError:  # pragma: no cover
    from benchmarks import common
    from benchmarks.seed_lbmhd import SeedLBMHD3D

# -- benchmark configurations (the tracked numbers) -----------------------

LBMHD_SHAPE = (32, 32, 32)
LBMHD_RANKS = 32
LBMHD_STEPS = 5

GTC_PARAMS = GTCParams(mpsi=24, mtheta=48, ntoroidal=4, particles_per_cell=20)
GTC_RANKS = 8
GTC_STEPS = 2

PARATEC_RANKS = 16
PARATEC_GRID = (24, 24, 24)
PARATEC_ECUT = 30.0
PARATEC_ROUNDTRIPS = 10

HARNESS_SHAPE = (16, 16, 16)
HARNESS_RANKS = 8
HARNESS_STEPS = 5
#: Acceptance bound: instrumented harness stepping vs direct calls.
HARNESS_OVERHEAD_LIMIT = 0.05


def _lbmhd_stepper(arena: Arena | None):
    # The "before" is the vendored seed-commit hot loop (seed_lbmhd) —
    # the repo's current arena=None path already carries this PR's
    # shared-kernel speedups and would understate the change.
    if arena is None:
        solver = SeedLBMHD3D(
            LBMHDParams(shape=LBMHD_SHAPE), Communicator(LBMHD_RANKS)
        )
    else:
        solver = LBMHD3D(
            LBMHDParams(shape=LBMHD_SHAPE),
            Communicator(LBMHD_RANKS),
            arena=arena,
        )
    solver.run(1)  # populate arena pools / warm caches
    return lambda: solver.run(LBMHD_STEPS)


def _gtc_stepper(arena: Arena | None):
    solver = GTC(GTC_PARAMS, Communicator(GTC_RANKS), arena=arena)
    solver.run(1)
    return lambda: solver.run(GTC_STEPS)


def _paratec_engine(arena: Arena | None) -> ParallelFFT3D:
    sphere = GSphere(PARATEC_ECUT, PARATEC_GRID)
    dist = SphereDistribution(sphere, PARATEC_RANKS)
    return ParallelFFT3D(dist, Communicator(PARATEC_RANKS), arena=arena)


def _paratec_transposer(arena: Arena | None):
    fft = _paratec_engine(arena)
    rng = np.random.default_rng(0)
    lines = [
        rng.standard_normal((len(fft._col_keys[r]), PARATEC_GRID[2]))
        + 1j * rng.standard_normal((len(fft._col_keys[r]), PARATEC_GRID[2]))
        for r in range(PARATEC_RANKS)
    ]
    slabs = [np.asarray(s).copy() for s in fft.transpose_columns_to_slabs(lines)]

    def roundtrips() -> None:
        for _ in range(PARATEC_ROUNDTRIPS):
            fft.transpose_columns_to_slabs(lines)
            fft.transpose_slabs_to_columns(slabs)

    return roundtrips


def _overhead_pair(shape=HARNESS_SHAPE, nprocs=HARNESS_RANKS):
    """(direct stepper, instrumented-harness stepper) on equal footing.

    Both sides step an identical pre-built LBMHD solver; the harness
    side goes through the adapter with a phase ledger attached, so the
    measured gap is exactly the instrumentation + dispatch overhead.
    """
    params = LBMHDParams(shape=shape)
    direct = LBMHD3D(params, Communicator(nprocs))
    direct.run(1)
    result = harness.run("lbmhd", params, steps=1, nprocs=nprocs)
    adapter, state = result.app, result.state

    def run_direct() -> None:
        direct.run(HARNESS_STEPS)

    def run_harness() -> None:
        for _ in range(HARNESS_STEPS):
            adapter.step(state)

    return run_direct, run_harness


def measure_harness_overhead(repeats: int = 5) -> dict:
    """Best-of-repeats relative overhead of instrumented harness steps."""
    run_direct, run_harness = _overhead_pair()
    direct = measure(run_direct, "harness_overhead.direct", repeats=repeats)
    instrumented = measure(
        run_harness, "harness_overhead.harness", repeats=repeats
    )
    overhead = instrumented.best / direct.best - 1.0
    return {
        "direct": direct.to_dict(),
        "harness": instrumented.to_dict(),
        "units_per_sample": HARNESS_STEPS,
        "overhead": overhead,
        "limit": HARNESS_OVERHEAD_LIMIT,
    }


def run_campaign(repeats: int = 5) -> dict:
    """Measure every hot path, seed vs fast; returns the JSON payload."""
    results: dict = {"config": {
        "lbmhd": {"shape": list(LBMHD_SHAPE), "ranks": LBMHD_RANKS,
                  "steps_per_sample": LBMHD_STEPS},
        "gtc": {"mpsi": GTC_PARAMS.mpsi, "mtheta": GTC_PARAMS.mtheta,
                "ntoroidal": GTC_PARAMS.ntoroidal,
                "particles_per_cell": GTC_PARAMS.particles_per_cell,
                "ranks": GTC_RANKS, "steps_per_sample": GTC_STEPS},
        "paratec": {"grid": list(PARATEC_GRID), "ecut": PARATEC_ECUT,
                    "ranks": PARATEC_RANKS,
                    "roundtrips_per_sample": PARATEC_ROUNDTRIPS},
    }}

    campaigns = (
        ("lbmhd_step_loop", _lbmhd_stepper, LBMHD_STEPS),
        ("gtc_pic_cycle", _gtc_stepper, GTC_STEPS),
        ("paratec_transpose", _paratec_transposer, PARATEC_ROUNDTRIPS),
    )
    for name, make, per_sample in campaigns:
        seed = measure(make(None), f"{name}.seed", repeats=repeats)
        fast = measure(make(Arena()), f"{name}.fast", repeats=repeats)
        results[name] = {
            "seed": seed.to_dict(),
            "fast": fast.to_dict(),
            "units_per_sample": per_sample,
            "speedup": fast.speedup_over(seed),
        }
    results["harness_overhead"] = measure_harness_overhead(repeats=repeats)
    results["config"]["harness_overhead"] = {
        "shape": list(HARNESS_SHAPE),
        "ranks": HARNESS_RANKS,
        "steps_per_sample": HARNESS_STEPS,
    }
    return results


# -- kernel-backend shootout (campaign-engine driven) ---------------------

SHOOTOUT_APPS = ("lbmhd", "gtc", "paratec")
SHOOTOUT_STEPS = 3
SHOOTOUT_REPEATS = 3
SHOOTOUT_PARAMS = {"lbmhd": {"shape": [16, 16, 16]}}
#: Acceptance bound: where the numba backend is actually available, it
#: must beat the numpy reference by this factor on at least one tracked
#: micro-kernel (full app steps are dominated by untouched code, so the
#: floor is enforced at the kernel level).
NUMBA_SPEEDUP_FLOOR = 1.3


def _microbench_fixtures():
    """(name, kernel-call thunk factory) pairs for the tracked kernels.

    Each factory takes a resolved backend and returns a zero-arg
    callable timing exactly one backend-overridden hot loop on a fixed
    mid-sized workload (RNG-seeded, identical across backends).
    """
    solver = GTC(
        GTCParams(mpsi=24, mtheta=48, ntoroidal=2, particles_per_cell=40),
        Communicator(2),
    )
    plane, torus = solver.torus.plane, solver.torus
    particles = solver.particles[0]
    push = solver.push_params
    e_r = np.zeros_like(particles.r)
    e_theta = np.zeros_like(particles.r)
    h = np.random.default_rng(7).standard_normal((26, 48, 72))

    def deposit(backend):
        return lambda: backend.gtc_deposit_scalar(plane, particles)

    def push_loop(backend):
        return lambda: backend.gtc_push_particles(
            torus, particles, e_r, e_theta, push
        )

    def suffix(backend):
        return lambda: backend.fvcam_suffix_sum(h)

    return (
        ("gtc_deposit_scalar", deposit),
        ("gtc_push_particles", push_loop),
        ("fvcam_suffix_sum", suffix),
    )


def kernel_shootout(repeats: int = SHOOTOUT_REPEATS) -> dict:
    """Per-kernel timings of every registered backend vs numpy.

    Unavailable backends are resolved through
    :func:`repro.kernels.resolve_backend`, i.e. they degrade to the
    reference — the cell is still recorded, flagged
    ``backend_available: false`` so its (reference) timing is never
    mistaken for an accelerated one.
    """
    from repro.kernels import available_backends, resolve_backend

    support = available_backends()
    out: dict = {}
    for kernel_name, factory in _microbench_fixtures():
        rows = {}
        baseline = None
        for backend_name in support:
            backend = resolve_backend(backend_name)
            fn = factory(backend)
            timing = measure(
                fn, f"{kernel_name}.{backend_name}", repeats=repeats
            )
            row = {
                "backend_available": bool(support[backend_name]),
                "backend_reason": support[backend_name].reason,
                **timing.to_dict(),
            }
            if backend_name == "numpy":
                baseline = timing
            if baseline is not None:
                row["speedup_vs_numpy"] = timing.speedup_over(baseline)
            rows[backend_name] = row
        out[kernel_name] = rows
    return out


def run_backend_shootout(
    repeats: int = SHOOTOUT_REPEATS, steps: int = SHOOTOUT_STEPS
) -> dict:
    """App-level backend sweep through the campaign engine + micro shootout.

    The app sweep is a real campaign: apps x kernel_backends expanded by
    :class:`~repro.campaign.CampaignSpec`, executed (uncached, serial
    scheduler — this process does the timing) by
    :func:`~repro.campaign.run_campaign`; each cell carries its
    backend's availability verdict on this host.
    """
    from repro.campaign import CampaignSpec, run_campaign as run_sweep
    from repro.kernels import available_backends, backend_names

    support = available_backends()
    spec = CampaignSpec(
        name="backend-shootout",
        apps=SHOOTOUT_APPS,
        kernel_backends=tuple(backend_names()),
        steps=steps,
        repeats=repeats,
        seeds=(0,),
        params=SHOOTOUT_PARAMS,
    )
    report = run_sweep(spec, cache=None, scheduler="serial")
    cells = []
    walls: dict[tuple[str, str], float] = {}
    for row in report.rows:
        cfg = row.config
        sup = support[cfg.kernel_backend]
        cell = {
            "app": cfg.app,
            "backend": cfg.kernel_backend,
            "backend_available": bool(sup),
            "backend_reason": sup.reason,
            "ok": row.ok,
            "wall_s": row.wall_s,
            "gflops": row.gflops,
            "label": cfg.label,
        }
        if not row.ok:
            cell["error"] = row.error
        else:
            walls[(cfg.app, cfg.kernel_backend)] = row.wall_s
        cells.append(cell)
    for cell in cells:
        base = walls.get((cell["app"], "numpy"))
        if base and cell.get("wall_s"):
            cell["speedup_vs_numpy"] = base / cell["wall_s"]
    return {
        "spec": spec.to_dict(),
        "backends": {
            name: {"available": bool(sup), "reason": sup.reason}
            for name, sup in support.items()
        },
        "cells": cells,
        "kernels": kernel_shootout(repeats=repeats),
        "numba_speedup_floor": NUMBA_SPEEDUP_FLOOR,
    }


def assert_shootout_bounds(payload: dict) -> None:
    """Enforce the accelerated-backend floor — only where it really ran.

    With numba available, at least one tracked micro-kernel must beat
    the numpy reference by :data:`NUMBA_SPEEDUP_FLOOR`.  On hosts where
    numba degraded to the reference there is nothing to bound (the
    verdicts in the payload say so).
    """
    numba = payload["backends"].get("numba", {})
    if not numba.get("available"):
        return
    best = {
        kernel: rows["numba"].get("speedup_vs_numpy", 0.0)
        for kernel, rows in payload["kernels"].items()
    }
    floor = payload["numba_speedup_floor"]
    if not any(s >= floor for s in best.values()):
        raise AssertionError(
            f"numba backend is available but beat the numpy reference on "
            f"no tracked kernel (floor {floor}x): "
            + ", ".join(f"{k} {s:.2f}x" for k, s in best.items())
        )


# -- pytest smoke tests ---------------------------------------------------


@pytest.mark.bench_smoke
def test_lbmhd_fast_path_bitwise_and_runs():
    params = LBMHDParams(shape=(8, 8, 8))
    seed = SeedLBMHD3D(params, Communicator(8))
    cur = LBMHD3D(params, Communicator(8))
    fast = LBMHD3D(params, Communicator(8), arena=Arena())
    seed.run(3)
    cur.run(3)
    fast.run(3)
    # arena path == current allocating path, bitwise; the vendored seed
    # baseline agrees to round-off (the moment-space collide evaluates
    # the same algebra in a different association order).
    assert_array_equal(cur.global_state(), fast.global_state())
    np.testing.assert_allclose(
        seed.global_state(), cur.global_state(), rtol=0.0, atol=1e-13
    )


@pytest.mark.bench_smoke
def test_gtc_fast_path_bitwise_and_runs():
    params = GTCParams(ntoroidal=4, particles_per_cell=5)
    seed = GTC(params, Communicator(4))
    fast = GTC(params, Communicator(4), arena=Arena())
    seed.run(2)
    fast.run(2)
    for a, b in zip(seed.charge, fast.charge):
        assert_array_equal(a, b)
    for pa, pb in zip(seed.particles, fast.particles):
        assert_array_equal(pa.r, pb.r)
        assert_array_equal(pa.theta, pb.theta)
        assert_array_equal(pa.zeta, pb.zeta)


@pytest.mark.bench_smoke
def test_paratec_fast_transpose_bitwise_and_runs():
    rng = np.random.default_rng(1)
    seedf = _paratec_engine(None)
    fastf = _paratec_engine(Arena())
    lines = [
        rng.standard_normal((len(seedf._col_keys[r]), PARATEC_GRID[2]))
        + 1j * rng.standard_normal((len(seedf._col_keys[r]), PARATEC_GRID[2]))
        for r in range(PARATEC_RANKS)
    ]
    s1 = seedf.transpose_columns_to_slabs(lines)
    s2 = fastf.transpose_columns_to_slabs(lines)
    for a, b in zip(s1, s2):
        assert_array_equal(a, b)


@pytest.mark.bench_smoke
def test_campaign_harness_flows():
    """One-repeat end-to-end pass over the measuring machinery."""
    timing = measure(lambda: None, "noop", repeats=2, warmup=0)
    assert isinstance(timing, Timing)
    assert timing.repeats == 2


@pytest.mark.bench_smoke
def test_harness_overhead_under_limit():
    """Instrumented harness stepping stays within 5% of direct calls."""
    row = measure_harness_overhead(repeats=5)
    assert row["overhead"] < HARNESS_OVERHEAD_LIMIT, (
        f"harness overhead {row['overhead'] * 100:.1f}% exceeds "
        f"{HARNESS_OVERHEAD_LIMIT * 100:.0f}% "
        f"(direct best {row['direct']['best_s'] * 1e3:.2f} ms, "
        f"harness best {row['harness']['best_s'] * 1e3:.2f} ms)"
    )


@pytest.mark.bench_smoke
def test_harness_stepping_matches_direct_bitwise():
    """The instrumented adapter loop computes the exact same states."""
    params = LBMHDParams(shape=(8, 8, 8))
    a = LBMHD3D(params, Communicator(8))
    b = harness.run("lbmhd", params, steps=0, nprocs=8).state
    a.run(4)
    for _ in range(4):
        harness.APPLICATIONS["lbmhd"].step(b)
    assert_array_equal(a.global_state(), b.global_state())


@pytest.mark.bench_smoke
def test_backend_shootout_flows_and_records_verdicts():
    """A tiny shootout runs through the campaign engine end to end."""
    payload = run_backend_shootout(repeats=1, steps=1)
    from repro.kernels import backend_names

    expected = {
        (app, backend)
        for app in SHOOTOUT_APPS
        for backend in backend_names()
    }
    seen = {(c["app"], c["backend"]) for c in payload["cells"]}
    assert seen == expected
    for cell in payload["cells"]:
        assert cell["ok"], cell
        assert isinstance(cell["backend_available"], bool)
        assert cell["backend_reason"]
    assert set(payload["kernels"]) == {
        "gtc_deposit_scalar", "gtc_push_particles", "fvcam_suffix_sum"
    }
    # the bound must hold (numba available) or be vacuous (degraded) —
    # either way this is the exact check __main__ enforces
    assert_shootout_bounds(payload)


@pytest.mark.bench_smoke
def test_shootout_bounds_only_enforced_where_available():
    """The floor is skipped for degraded backends, applied for real ones."""
    degraded = {
        "backends": {"numba": {"available": False, "reason": "no numba"}},
        "kernels": {"k": {"numba": {"speedup_vs_numpy": 0.5}}},
        "numba_speedup_floor": NUMBA_SPEEDUP_FLOOR,
    }
    assert_shootout_bounds(degraded)  # vacuous: nothing raised
    too_slow = {
        "backends": {"numba": {"available": True, "reason": "importable"}},
        "kernels": {"k": {"numba": {"speedup_vs_numpy": 1.0}}},
        "numba_speedup_floor": NUMBA_SPEEDUP_FLOOR,
    }
    with pytest.raises(AssertionError, match="no tracked kernel"):
        assert_shootout_bounds(too_slow)
    fast_enough = {
        "backends": {"numba": {"available": True, "reason": "importable"}},
        "kernels": {
            "k": {"numba": {"speedup_vs_numpy": 1.0}},
            "j": {"numba": {"speedup_vs_numpy": 2.0}},
        },
        "numba_speedup_floor": NUMBA_SPEEDUP_FLOOR,
    }
    assert_shootout_bounds(fast_enough)


if __name__ == "__main__":
    payload = run_backend_shootout()
    for cell in payload["cells"]:
        tag = "" if cell["backend_available"] else "  [degraded to numpy]"
        speed = cell.get("speedup_vs_numpy")
        speed_txt = f"   {speed:.2f}x vs numpy" if speed else ""
        print(
            f"{cell['app']:8s} {cell['backend']:8s} "
            f"{cell['wall_s'] * 1e3:9.2f} ms{speed_txt}{tag}"
        )
    for kernel, rows in payload["kernels"].items():
        for backend, row in rows.items():
            speed = row.get("speedup_vs_numpy")
            speed_txt = f"   {speed:.2f}x vs numpy" if speed else ""
            tag = "" if row["backend_available"] else "  [degraded to numpy]"
            print(
                f"{kernel:20s} {backend:8s} "
                f"{row['best_s'] * 1e3:9.3f} ms{speed_txt}{tag}"
            )
    assert_shootout_bounds(payload)
    common.emit("BENCH_PR7.json", payload)
