"""Figure 2 bench: traced FVCAM communication + the volume matrices."""

from __future__ import annotations

from repro.experiments import fig2


def test_fig2_traced_decompositions(benchmark, report):
    """Time the instrumented 64-rank 1D run behind Figure 2(a)."""
    benchmark.pedantic(
        lambda: fig2._traced_run(py=fig2.NPROCS, pz=1), rounds=1, iterations=1
    )
    report("fig2", fig2.render())


def test_fig2_volume_claims(benchmark):
    """Regenerate both matrices and verify the headline volume claim."""
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    assert result.reduction > 1.0
    assert result.offdiagonal_offsets("1d") == [1]
