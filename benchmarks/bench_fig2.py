"""Figure 2 bench: traced FVCAM communication + the volume matrices.

The decomposition comparison now delegates to the campaign engine: the
two traced runs (1-D latitude vs 2-D with vertical subdomains) are two
:class:`~repro.campaign.RunConfig` cells of one trace campaign, and the
volume matrices come back in each row's marshalled ``trace_volume``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import CampaignSpec, RunConfig, run_campaign
from repro.experiments import fig2
from repro.experiments.fig2 import Fig2Result

#: Reduced mesh for the smoke campaign (same aspect ratios as MINI_GRID).
SMOKE_GRID = {"im": 24, "jm": 48, "km": 8}
SMOKE_RANKS = 16
SMOKE_STEPS = 4


def _decomposition_config(py: int, pz: int) -> RunConfig:
    """One traced FVCAM cell of the Figure 2 campaign."""
    return RunConfig(
        app="fvcam",
        nprocs=SMOKE_RANKS,
        steps=SMOKE_STEPS,
        trace=True,
        params={
            "grid": SMOKE_GRID,
            "py": py,
            "pz": pz,
            "dt": 30.0,
            "remap_interval": 4,
        },
    )


def campaign_result() -> Fig2Result:
    """Both decompositions through the campaign engine, uncached."""
    configs = [
        _decomposition_config(py=SMOKE_RANKS, pz=1),
        _decomposition_config(py=SMOKE_RANKS // 4, pz=4),
    ]
    spec = CampaignSpec(name="fig2-decompositions", apps=("fvcam",))
    report = run_campaign(
        spec, configs=configs, cache=None, scheduler="serial"
    )
    assert report.ok, [r.error for r in report.rows if not r.ok]
    by_key = {r.key: r for r in report.rows}
    matrices = [
        np.asarray(by_key[c.key()].result["trace_volume"]) for c in configs
    ]
    return Fig2Result(volume_1d=matrices[0], volume_2d=matrices[1])


def test_fig2_traced_decompositions(benchmark, report):
    """Time the instrumented 64-rank 1D run behind Figure 2(a)."""
    benchmark.pedantic(
        lambda: fig2._traced_run(py=fig2.NPROCS, pz=1), rounds=1, iterations=1
    )
    report("fig2", fig2.render())


def test_fig2_volume_claims(benchmark):
    """Regenerate both matrices and verify the headline volume claim."""
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    assert result.reduction > 1.0
    assert result.offdiagonal_offsets("1d") == [1]


@pytest.mark.bench_smoke
def test_fig2_campaign_port_preserves_the_structure():
    """The campaign-scheduled runs reproduce Figure 2's structure: pure
    nearest-neighbor diagonals in 1-D, and a significantly lower total
    volume for the 2-D decomposition."""
    result = campaign_result()
    assert result.volume_1d.shape == (SMOKE_RANKS, SMOKE_RANKS)
    assert result.offdiagonal_offsets("1d") == [1]
    assert result.reduction > 1.0
    # the 2-D layout talks to more distinct partners (transpose grid)
    assert result.nonzero_pairs("2d") > result.nonzero_pairs("1d")
