"""Prediction-service benchmark: warm-cache latency + request coalescing.

Two tracked numbers, recorded to ``BENCH_PR9.json`` by
``python benchmarks/bench_service.py``, both measured over real HTTP
against a live :class:`~repro.service.ReproService`:

* **Warm fraction** — one cold ``POST /v1/predict`` (engine
  computation) vs the identical request served from the shared
  :class:`~repro.campaign.cache.ResultCache`.  The acceptance bound is
  warm < :data:`WARM_FRACTION_TARGET` of cold, enforced everywhere —
  a warm hit is a file read, independent of core count.
* **Coalesce speedup** — :data:`CLIENTS` identical concurrent clients
  (one computation, everyone attached) vs the same clients serialized
  against distinct cold configs (one computation each).  Coalescing
  must win by :data:`COALESCE_SPEEDUP_TARGET` and ``/v1/stats`` must
  show exactly one miss and one put for the fan-in.

The pytest entry points are ``bench_smoke`` tests over a tiny config.
"""

from __future__ import annotations

import http.client
import json
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import ReproService, ServiceThread

try:  # runnable both as a script and under pytest rootdir collection
    import common
except ImportError:  # pragma: no cover
    from benchmarks import common

# -- benchmark configuration (the tracked numbers) -------------------------

#: The cold computation must dwarf HTTP + cache-read overhead for the
#: warm-fraction bound to measure the cache, not the transport.
PREDICT = {
    "app": "lbmhd",
    "nprocs": 4,
    "steps": 12,
    "seed": 0,
    "params": {"shape": [24, 24, 24]},
}

#: Identical concurrent clients for the coalescing fan-in.
CLIENTS = 10

#: Acceptance bound: warm predict latency as a fraction of cold.
WARM_FRACTION_TARGET = 0.05
#: Acceptance bound: coalesced fan-in vs serial distinct-config sweep.
COALESCE_SPEEDUP_TARGET = 3.0

#: Tiny config for the smoke tests (~ms of solver work).
SMOKE_PREDICT = {
    "app": "lbmhd",
    "nprocs": 4,
    "steps": 2,
    "seed": 0,
    "params": {"shape": [8, 8, 8]},
}


def _post_predict(port: int, body: dict) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    try:
        conn.request(
            "POST", "/v1/predict", body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        assert response.status == 200, payload
        return payload
    finally:
        conn.close()


def _get_stats(port: int) -> dict:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", "/v1/stats")
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _timed(fn) -> tuple[float, dict]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run_benchmark(predict: dict | None = None, clients: int = CLIENTS) -> dict:
    """Cold vs warm predict, coalesced vs serial fan-in; the payload."""
    predict = dict(predict or PREDICT)

    with tempfile.TemporaryDirectory(prefix="bench-pr9-") as tmp:
        service = ReproService(tmp, workers=2, scheduler="serial")
        with ServiceThread(service) as thread:
            port = thread.port

            cold_s, cold = _timed(lambda: _post_predict(port, predict))
            assert cold["cached"] is False, cold
            warm_s, warm = _timed(lambda: _post_predict(port, predict))
            assert warm["cached"] is True, warm

            # coalesced fan-in: CLIENTS identical requests on a fresh
            # (uncached) config, all in flight together
            fanin = {**predict, "seed": 1}
            with ThreadPoolExecutor(max_workers=clients) as pool:
                coalesced_s, _ = _timed(
                    lambda: list(
                        pool.map(
                            lambda _: _post_predict(port, fanin),
                            range(clients),
                        )
                    )
                )
            stats = _get_stats(port)

            # serial sweep: the same client count, each a distinct cold
            # config — what the fan-in would cost without coalescing
            def serial_sweep():
                for seed in range(100, 100 + clients):
                    _post_predict(port, {**predict, "seed": seed})

            serial_s, _ = _timed(serial_sweep)

    cache = stats["cache"]
    coalesce = stats["coalesce"]
    warm_fraction = warm_s / cold_s
    coalesce_speedup = serial_s / coalesced_s
    return {
        "config": {**predict, "clients": clients},
        "host": common.host_facts(),
        "service": {
            "cold": {"best_s": cold_s, "samples_s": [cold_s]},
            "warm": {"best_s": warm_s, "samples_s": [warm_s]},
            "warm_fraction_of_cold": warm_fraction,
            "coalesced": {
                "clients": clients,
                "wall_s": coalesced_s,
                "computations": cache["misses"] - 2,  # fan-in's share
                "coalesced_total": coalesce["coalesced_total"],
            },
            "serial": {"clients": clients, "wall_s": serial_s},
            "coalesce_speedup": coalesce_speedup,
        },
        "stats": {
            "cache": {
                "hits": cache["hits"],
                "misses": cache["misses"],
                "lifetime": cache["lifetime"],
            },
            "coalesce": coalesce,
        },
        "target": {
            "warm_fraction": WARM_FRACTION_TARGET,
            "warm_met": warm_fraction < WARM_FRACTION_TARGET,
            "coalesce_speedup": COALESCE_SPEEDUP_TARGET,
            "coalesce_met": coalesce_speedup >= COALESCE_SPEEDUP_TARGET,
        },
    }


# -- pytest smoke tests ---------------------------------------------------


@pytest.mark.bench_smoke
def test_warm_predict_is_a_cache_hit(tmp_path):
    """The second identical request never reaches the engine."""
    service = ReproService(tmp_path, workers=1, scheduler="serial")
    with ServiceThread(service) as thread:
        cold = _post_predict(thread.port, SMOKE_PREDICT)
        warm = _post_predict(thread.port, SMOKE_PREDICT)
        stats = _get_stats(thread.port)
    assert cold["cached"] is False and warm["cached"] is True
    assert stats["cache"]["hits"] == 1
    assert stats["cache"]["misses"] == 1
    assert stats["cache"]["lifetime"]["puts"] == 1


@pytest.mark.bench_smoke
def test_identical_concurrent_clients_cost_one_computation(tmp_path):
    """The coalescing acceptance shape at smoke scale."""
    n = 4
    service = ReproService(tmp_path, workers=2, scheduler="serial")
    with ServiceThread(service) as thread:
        port = thread.port
        body = {**SMOKE_PREDICT, "steps": 4, "params": {"shape": [16, 16, 16]}}
        with ThreadPoolExecutor(max_workers=n) as pool:
            results = list(
                pool.map(lambda _: _post_predict(port, body), range(n))
            )
        stats = _get_stats(port)
    assert len({r["key"] for r in results}) == 1
    cache, coalesce = stats["cache"], stats["coalesce"]
    assert cache["misses"] == 1, stats
    assert cache["lifetime"]["puts"] == 1, stats
    assert coalesce["coalesced_total"] + cache["hits"] == n - 1, stats


@pytest.mark.bench_smoke
def test_payload_round_trips_through_perfdb():
    """The PR9 payload shape must stay ingestible (common.emit
    re-derives records via detect_schema on every write)."""
    from repro.perfdb.ingest import detect_schema, records_from_bench

    payload = run_benchmark(predict=SMOKE_PREDICT, clients=3)
    assert detect_schema(payload) == "pr9"
    records = records_from_bench(payload, source="BENCH_PR9.json")
    cells = {(r.bench, r.variant) for r in records}
    assert cells == {
        ("service_predict", "cold"),
        ("service_predict", "warm"),
        ("service_fanin", "coalesced"),
        ("service_fanin", "serial"),
    }
    assert all(r.pr == 9 and r.wall_s > 0 for r in records)


if __name__ == "__main__":
    payload = run_benchmark()
    svc, target = payload["service"], payload["target"]
    print(
        f"predict ({PREDICT['app']} {PREDICT['params']['shape']} "
        f"x{PREDICT['steps']})   cold {svc['cold']['best_s']:7.3f} s   "
        f"warm {svc['warm']['best_s']:7.3f} s   "
        f"({svc['warm_fraction_of_cold'] * 100:.2f}% of cold)"
    )
    print(
        f"fan-in ({CLIENTS} clients)   coalesced "
        f"{svc['coalesced']['wall_s']:7.3f} s   serial "
        f"{svc['serial']['wall_s']:7.3f} s   speedup "
        f"{svc['coalesce_speedup']:.2f}x"
    )
    assert target["warm_met"], (
        f"warm predict took {svc['warm_fraction_of_cold'] * 100:.2f}% of "
        f"cold — the service bound is < "
        f"{WARM_FRACTION_TARGET * 100:.0f}%"
    )
    assert target["coalesce_met"], (
        f"coalesced fan-in speedup {svc['coalesce_speedup']:.2f}x below "
        f"{COALESCE_SPEEDUP_TARGET}x target"
    )
    stats = payload["stats"]
    assert stats["coalesce"]["coalesced_total"] >= 1, stats
    common.emit("BENCH_PR9.json", payload)
