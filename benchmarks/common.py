"""Shared driver for the tracked wall-clock benchmarks.

Every ``benchmarks/bench_*.py`` used to carry its own copy of the same
boilerplate: find the repository root, gather host facts, decide
whether speedup targets are enforceable on this host, and hand-write a
``BENCH_*.json`` payload.  This module is that boilerplate, once —
and it is where every bench's payload is normalized onto the canonical
measurement schema: :func:`emit` runs the payload through
:func:`repro.perfdb.ingest.records_from_bench` and embeds the
resulting :class:`~repro.perfdb.record.RunRecord` rows under a
``records`` key, so the tracked JSON file is a thin, uniform view that
``repro-perfdb ingest`` loads without schema sniffing, with host and
package-version provenance attached (which is what lets regression
detection use the tight same-host threshold on freshly recorded
numbers).

Emission itself is normalized by :func:`repro.runtime.perf.write_results`:
sorted keys, stable float rounding, trailing newline — cross-PR diffs
of tracked benchmark files stay reviewable.
"""

from __future__ import annotations

import os
import socket
from pathlib import Path

from repro import __version__
from repro.perfdb.ingest import records_from_bench
from repro.runtime.perf import write_results

#: Repository root — where the tracked ``BENCH_*.json`` files live.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Speedup targets are only meaningful with real cores to overlap on;
#: every parallel bench shares this floor.
MIN_CORES_FOR_TARGET = 4


def bench_path(filename: str) -> Path:
    """Absolute path of a tracked benchmark file by bare name."""
    return REPO_ROOT / filename


def cpu_count() -> int:
    return os.cpu_count() or 1


def host_facts() -> dict:
    """The ``host`` block every payload carries."""
    return {"name": socket.gethostname(), "cpu_count": cpu_count()}


def targets_enforced(min_cores: int = MIN_CORES_FOR_TARGET) -> bool:
    """Whether parallel speedup bounds are asserted on this host."""
    return cpu_count() >= min_cores


def emit(filename: str, payload: dict, *, quiet: bool = False) -> Path:
    """Normalize and write one benchmark payload; returns the path.

    * fills the ``host`` block if the bench did not set one;
    * derives canonical records from the payload (any schema era) and
      embeds them under ``records`` with provenance (source file, PR
      tag, host, cpu count, package version);
    * writes via the normalizing :func:`write_results`.
    """
    payload = dict(payload)
    payload.setdefault("host", host_facts())
    facts = payload["host"]
    payload.pop("records", None)  # re-derive, never trust a stale copy
    records = records_from_bench(
        payload,
        source=filename,
        host=facts.get("name"),
        cpu_count=facts.get("cpu_count"),
        version=__version__,
    )
    payload["records"] = [r.to_dict() for r in records]
    out = write_results(bench_path(filename), payload)
    if not quiet:
        print(f"wrote {out} ({len(records)} canonical record(s))")
    return out
