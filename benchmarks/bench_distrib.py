"""Distributed dispatch benchmark: 2 socket workers vs a serial sweep.

One tracked comparison, recorded to ``BENCH_PR10.json`` by
``python benchmarks/bench_distrib.py``:

* **Distrib speedup** — an 8-config, 2-app campaign run cold through a
  coordinator with two ``repro-distrib`` worker *processes* (spawned
  via ``python -m repro.distrib.cli``, i.e. exactly what a remote host
  would run) vs the same campaign cold serially.  Target >= 1.5x,
  asserted only on hosts with at least
  :data:`~common.MIN_CORES_FOR_TARGET` cores — a single-core container
  cannot overlap two workers, so there the number is recorded but not
  enforced (the ``bench_executor.py``/``bench_campaign.py`` pattern).

The pytest entry point is a ``bench_smoke`` test over a tiny spec with
in-thread workers: distrib scheduling must change wall-clock only,
never results.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import threading

import pytest

from repro.campaign import CampaignSpec, ResultCache, run_campaign
from repro.distrib import DistribExecutor, DistribWorker

try:  # runnable both as a script and under pytest rootdir collection
    import common
except ImportError:  # pragma: no cover
    from benchmarks import common

# -- benchmark configuration (the tracked numbers) -------------------------

#: 2 apps x 2 seeds x 2 rank counts = 8 configurations.
CAMPAIGN = CampaignSpec(
    name="bench-pr10",
    apps=("lbmhd", "gtc"),
    nprocs=(4, 8),
    seeds=(0, 1),
    steps=10,
    params={
        "lbmhd": {"shape": [24, 24, 24]},
        "gtc": {"particles_per_cell": 16},
    },
)

#: Acceptance bound: 2 distrib workers vs serial cold wall-clock.
DISTRIB_SPEEDUP_TARGET = 1.5
MIN_CORES_FOR_TARGET = common.MIN_CORES_FOR_TARGET
#: Worker processes the tracked number uses.
WORKERS = 2

#: Tiny spec for the smoke test (2 configs).
SMOKE = CampaignSpec(
    name="bench-pr10-smoke",
    apps=("lbmhd",),
    nprocs=(4,),
    seeds=(0, 1),
    steps=1,
    params={"lbmhd": {"shape": [8, 8, 8]}},
)


def _spawn_worker_process(endpoint: str) -> subprocess.Popen:
    """One real ``repro-distrib worker`` child, PYTHONPATH included."""
    env = dict(os.environ)
    src = str(common.REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.distrib.cli",
            "worker", endpoint, "--quiet",
        ],
        env=env,
    )


def run_benchmark(workers: int = WORKERS) -> dict:
    """Cold serial vs cold 2-worker distrib; the JSON payload."""
    n = len(CAMPAIGN.expand())

    serial_cold = run_campaign(CAMPAIGN, cache=None, scheduler="serial")
    assert serial_cold.ok, [
        r.error for r in serial_cold.rows if not r.ok
    ]

    with tempfile.TemporaryDirectory(prefix="bench-pr10-") as tmp:
        ex = DistribExecutor(
            "127.0.0.1", 0,
            grace_s=3600.0,  # the measurement must stay remote
            local_fallback=False,
        )
        ex.coordinator.ensure_started()
        procs = [
            _spawn_worker_process(ex.coordinator.endpoint)
            for _ in range(workers)
        ]
        try:
            distrib_cold = run_campaign(
                CAMPAIGN, cache=ResultCache(tmp), scheduler=ex
            )
        finally:
            ex.close()  # workers see EOF and exit on their own
            for p in procs:
                p.wait(timeout=30)
        assert distrib_cold.ok and distrib_cold.misses == n
        stats = ex.stats

    speedup = serial_cold.wall_s / distrib_cold.wall_s
    enforced = common.targets_enforced()
    return {
        "campaign": CAMPAIGN.to_dict(),
        "host": common.host_facts(),
        "config": {"app": "campaign", "steps": CAMPAIGN.steps},
        "distrib": {
            "serial": {"wall_s": serial_cold.wall_s, "cells": n},
            "workers2": {
                "wall_s": distrib_cold.wall_s,
                "cells": n,
                "workers": workers,
                "completed": stats.completed,
                "dispatched": stats.dispatched,
                "retried": stats.retried,
            },
            "speedup": speedup,
            "local_runs": stats.local_runs,
            "target": {
                "speedup": DISTRIB_SPEEDUP_TARGET,
                "min_cores": MIN_CORES_FOR_TARGET,
                "enforced": enforced,
                "met": speedup >= DISTRIB_SPEEDUP_TARGET,
            },
        },
    }


# -- pytest smoke test ----------------------------------------------------


@pytest.mark.bench_smoke
def test_distrib_scheduler_matches_serial_cold(tmp_path):
    """Dispatching over the socket changes wall-clock only — every
    diagnostic is identical to the serial sweep's."""
    serial = run_campaign(SMOKE, cache=None, scheduler="serial")
    ex = DistribExecutor(
        "127.0.0.1", 0, grace_s=3600.0, local_fallback=False
    )
    ex.coordinator.ensure_started()
    for i in range(2):
        w = DistribWorker(ex.coordinator.endpoint, name=f"bench{i}")
        threading.Thread(target=w.run, daemon=True).start()
    try:
        remote = run_campaign(SMOKE, cache=tmp_path, scheduler=ex)
    finally:
        ex.close()
    assert serial.ok and remote.ok
    s = {r.key: r.result["diagnostics"] for r in serial.rows}
    d = {r.key: r.result["diagnostics"] for r in remote.rows}
    assert s == d
    assert ex.stats.local_runs == 0  # everything really went remote


if __name__ == "__main__":
    payload = run_benchmark()
    d = payload["distrib"]
    target = d["target"]
    cores = payload["host"]["cpu_count"]
    print(
        f"campaign ({d['serial']['cells']} configs)   "
        f"serial {d['serial']['wall_s']:6.2f} s   "
        f"distrib x{d['workers2']['workers']} "
        f"{d['workers2']['wall_s']:6.2f} s   "
        f"speedup {d['speedup']:.2f}x   ({cores} cores)"
    )
    assert d["workers2"]["completed"] == d["workers2"]["cells"], (
        "not every cell came back from the worker pool"
    )
    assert d["local_runs"] == 0, (
        "local fallback ran — the tracked number must be fully remote"
    )
    if target["enforced"]:
        assert target["met"], (
            f"distrib speedup {d['speedup']:.2f}x below "
            f"{DISTRIB_SPEEDUP_TARGET}x target on a {cores}-core host"
        )
    elif not target["met"]:
        print(
            f"note: {cores} core(s) < {MIN_CORES_FOR_TARGET} — "
            f"speedup target recorded but not enforced on this host"
        )
    common.emit("BENCH_PR10.json", payload)
