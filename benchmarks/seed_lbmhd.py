"""Vendored seed-commit LBMHD hot loop: the benchmark's "before".

The repository's default (``arena=None``) LBMHD path already carries
this PR's shared-kernel improvements (hoisted lattice constants, BLAS
contractions, ``out=``-chained updates), so timing it as the baseline
would understate the change.  This module preserves the seed commit's
kernels verbatim — per-call constant rederivation, expression-style
allocation in the equilibria, a fresh output state per collide, and the
per-rank pad/exchange/stream step loop — as a stable "before" for
``bench_hotpath.py``.

Copied from commit ``a28b4e0`` (``src/repro/apps/lbmhd/equilibrium.py``,
``collision.py``, ``solver.py``); the pad/exchange/stream helpers are
imported because their default (allocating) behavior is unchanged from
that commit.  The produced states are bitwise-identical to the current
solver's — the benchmark smoke tests assert it.
"""

from __future__ import annotations

import numpy as np

from repro.apps.lbmhd.collision import collision_work
from repro.apps.lbmhd.decomp import CartesianDecomposition3D, exchange_halos
from repro.apps.lbmhd.fields import magnetic_field, momentum, split_state
from repro.apps.lbmhd.lattice import (
    CS2,
    Q15_VELOCITIES,
    Q15_WEIGHTS,
    Q27_VELOCITIES,
    Q27_WEIGHTS,
)
from repro.apps.lbmhd.solver import (
    LBMHDParams,
    equilibrium_state,
    orszag_tang_fields,
)
from repro.apps.lbmhd.stream import (
    pad_state,
    stream_from_padded,
    stream_periodic,
)
from repro.simmpi.comm import Communicator


def seed_f_equilibrium(
    rho: np.ndarray, u: np.ndarray, B: np.ndarray
) -> np.ndarray:
    """Seed-commit hydrodynamic equilibrium (allocating, shape (27, ...))."""
    xi = Q27_VELOCITIES.astype(np.float64)
    w = Q27_WEIGHTS

    xu = np.einsum("ia,a...->i...", xi, u)
    xB = np.einsum("ia,a...->i...", xi, B)
    u2 = (u**2).sum(axis=0)
    B2 = (B**2).sum(axis=0)

    xi2 = (xi**2).sum(axis=1)
    A_xixi = rho * xu**2 + 0.5 * np.multiply.outer(xi2, B2) - xB**2
    trA = rho * u2 + 0.5 * B2

    feq = w[(slice(None),) + (None,) * rho.ndim] * (
        rho + rho * xu / CS2 + (A_xixi - CS2 * trA) / (2.0 * CS2 * CS2)
    )
    return feq


def seed_g_equilibrium(u: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Seed-commit magnetic equilibrium (allocating, shape (15, 3, ...))."""
    eta = Q15_VELOCITIES.astype(np.float64)
    W = Q15_WEIGHTS

    lam = np.einsum("j...,k...->jk...", u, B) - np.einsum(
        "j...,k...->jk...", B, u
    )
    eta_lam = np.einsum("aj,jk...->ak...", eta, lam)

    shape_tail = (None,) * (u.ndim - 1)
    Wb = W[(slice(None), None) + shape_tail]
    geq = Wb * (B[None, ...] + eta_lam / CS2)
    return geq


def seed_collide(state: np.ndarray, params) -> np.ndarray:
    """Seed-commit BGK collision: fresh output state every call."""
    f, g = split_state(state)
    rho = f.sum(axis=0)
    u = momentum(f) / rho
    B = magnetic_field(g)

    feq = seed_f_equilibrium(rho, u, B)
    geq = seed_g_equilibrium(u, B)

    out = np.empty_like(state)
    f_out, g_out = split_state(out)
    f_out[:] = f + (feq - f) / params.tau
    g_out[:] = g + (geq - g) / params.tau_m
    return out


class SeedLBMHD3D:
    """Seed-commit LBMHD driver: per-rank allocating collide + halo steps.

    Same construction and observable state as
    :class:`repro.apps.lbmhd.solver.LBMHD3D`, but the time step is the
    seed commit's: one allocating collide per rank, a padded copy per
    rank, the per-message halo exchange, and an allocating stream.
    """

    def __init__(self, params: LBMHDParams, comm: Communicator) -> None:
        self.params = params
        self.comm = comm
        self.decomp = CartesianDecomposition3D.create(
            params.shape, comm.nprocs
        )
        rho, u, B = orszag_tang_fields(params.shape, params.u0, params.b0)
        self.states: list[np.ndarray] = self.decomp.scatter(
            equilibrium_state(rho, u, B)
        )
        self.step_count = 0

    def step(self) -> None:
        post = []
        local_points = int(np.prod(self.decomp.local_shape))
        for rank, state in enumerate(self.states):
            new = seed_collide(state, self.params.collision)
            self.comm.compute(rank, collision_work(local_points))
            post.append(new)

        if self.comm.nprocs == 1:
            self.states = [stream_periodic(post[0])]
        else:
            padded = [pad_state(p) for p in post]
            exchange_halos(self.comm, self.decomp, padded)
            self.states = [stream_from_padded(p) for p in padded]
        self.step_count += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def global_state(self) -> np.ndarray:
        return self.decomp.gather(self.states)
