#!/usr/bin/env python
"""PARATEC: plane-wave DFT on a two-atom cell (a CdSe dot in miniature).

The paper's §6 benchmark is a 488-atom CdSe quantum dot, "the largest
cell size atomistic simulation to date" with the code.  The mini-app
solves the same equations end to end — Kohn–Sham via all-band CG over a
load-balanced G-sphere with a handwritten parallel 3-D FFT — on a cell
small enough for a laptop, then evaluates the Table 6 model at the
paper's scale.
"""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.apps.paratec import (
    Atom,
    Paratec,
    ParatecParams,
    ParatecScenario,
    predict,
)


def main() -> None:
    params = ParatecParams(
        ecut=10.0,
        grid_shape=(14, 14, 14),
        nbands=6,
        atoms=(
            Atom(position=(0.25, 0.25, 0.25), amplitude=6.0, sigma=0.5),
            Atom(position=(0.75, 0.75, 0.75), amplitude=6.0, sigma=0.5),
        ),
        cg_iterations=8,
        scf_iterations=5,
    )
    solver = Paratec(params, Communicator(4))
    print("=== SCF on a 2-atom cell, 4 simulated ranks ===")
    print(f"plane waves: {solver.sphere.num_g:,} (sphere at 10 Ha cutoff)")
    print(
        "G-columns per rank:",
        [len(solver.dist.columns_of(r)) for r in range(4)],
        "| points per rank:",
        solver.dist.counts().tolist(),
    )

    result = solver.run()
    print(f"\nSCF iterations: {result.iterations}")
    print(f"potential residual: {result.potential_change:.2e}")
    print("eigenvalues (Ha):", np.round(result.eigenvalues, 4))
    print(f"band energy: {result.band_energy:.4f} Ha")

    rho = solver.density()
    peak = np.unravel_index(np.argmax(rho), rho.shape)
    print(
        f"density peaks at grid point {peak} — on the atoms, as the\n"
        "conduction-band-minimum plot of the paper's Figure 7 shows."
    )

    print("\n=== Table 6 at paper scale: 488-atom CdSe dot (model) ===")
    print(f"{'machine':<10} {'P':>5} {'Gflop/P':>9} {'%peak':>7}")
    for machine, p in [
        ("Power3", 128),
        ("Itanium2", 256),
        ("Opteron", 256),
        ("X1", 256),
        ("ES", 2048),
        ("SX-8", 256),
    ]:
        r = predict(machine, ParatecScenario(p))
        print(
            f"{machine:<10} {p:>5} {r.gflops_per_proc:9.2f} "
            f"{r.pct_peak:6.1f}%"
        )
    es = predict("ES", ParatecScenario(2048))
    print(
        f"\nES aggregate at 2048 processors: {es.aggregate_tflops:.1f} "
        "Tflop/s (paper: 5.5 Tflop/s — the highest to date)"
    )


if __name__ == "__main__":
    main()
