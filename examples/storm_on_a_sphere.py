#!/usr/bin/env python
"""FVCAM: a height anomaly evolving on the rotating-sphere grid.

The paper's Figure 1 shows a Category IV hurricane "produced solely
through the chaos of the atmospheric model" at 0.5-degree resolution.
At mini-app scale we watch the same machinery: a Gaussian height
anomaly sheared by a zonal jet under the finite-volume dynamics, with
the FFT polar filter keeping the high latitudes stable, the Lagrangian
remap keeping layers tidy, and total mass conserved to round-off.

The script also prints the climate modeler's figure of merit from the
paper's Figure 4 — simulated days per wall-clock day — for the D mesh.
"""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.apps.fvcam import (
    FVCAM,
    FVCAMParams,
    FVCAMScenario,
    LatLonGrid,
    simulated_days_per_day,
)

GRID = LatLonGrid(im=48, jm=36, km=4)
RAMP = " .:-=+*#%@"


def anomaly_plot(sim: FVCAM) -> str:
    h, _, _ = sim.global_fields()
    column = h.sum(axis=0)
    anomaly = column - column.mean()
    vmax = max(np.abs(anomaly).max(), 1e-12)
    scaled = np.clip((anomaly / vmax + 1) / 2, 0, 1 - 1e-9)
    idx = (scaled * len(RAMP)).astype(int)
    return "\n".join(
        "".join(RAMP[i] for i in row) for row in idx[::2]
    )


def main() -> None:
    sim = FVCAM(
        FVCAMParams(grid=GRID, py=4, pz=2, dt=120.0, bump_amplitude=120.0),
        Communicator(8),
    )
    m0 = sim.total_mass()
    print("=== column-height anomaly, t = 0 ===")
    print(anomaly_plot(sim))

    sim.run(60)
    print("\n=== after 60 steps (sheared by the jet) ===")
    print(anomaly_plot(sim))
    drift = abs(sim.total_mass() / m0 - 1.0)
    print(f"\nglobal mass drift: {drift:.2e} (flux-form conservation)")

    print("\n=== Figure 4's figure of merit at paper scale (model) ===")
    print("simulated days per wall-clock day on the D mesh:")
    for machine, scenario in [
        ("Power3", FVCAMScenario(672, 7)),
        ("ES", FVCAMScenario(672, 7)),
        ("X1E", FVCAMScenario(672, 7)),
    ]:
        rate = simulated_days_per_day(machine, scenario)
        print(f"  {machine:<8} P={scenario.nprocs}: {rate:8.0f}")
    print(
        "\nA millennium-scale climate integration needs >1000x real time;\n"
        "the X1E at 672 processors was the first to deliver >4200 for\n"
        "FVCAM at this resolution."
    )


if __name__ == "__main__":
    main()
