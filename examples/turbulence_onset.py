#!/usr/bin/env python
"""LBMHD3D: onset of MHD turbulence from an Orszag–Tang-like vortex.

Reproduces the physics narrative of the paper's §5 and Figure 6: "a
three-dimensional conducting fluid evolving from simple initial
conditions through the onset of turbulence", where "the vorticity
profile has considerably distorted after several hundred time steps".

The script runs the lattice Boltzmann MHD solver, tracks the energy
exchange between flow and field, and prints an ASCII rendering of the
vorticity magnitude in an xy-plane before and after — tube-like
structures giving way to filamentary ones.
"""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.apps.lbmhd import LBMHD3D, LBMHDParams, moments, vorticity

SHAPE = (32, 32, 8)
STEPS = 120
RAMP = " .:-=+*#%@"


def vorticity_slice(sim: LBMHD3D) -> np.ndarray:
    state = sim.global_state()
    _, u, _ = moments(state)
    w = vorticity(u)
    mag = np.sqrt((w**2).sum(axis=0))
    return mag[:, :, SHAPE[2] // 2]


def ascii_plot(field: np.ndarray, vmax: float) -> str:
    scaled = np.clip(field / vmax, 0, 1 - 1e-9)
    idx = (scaled * len(RAMP)).astype(int)
    return "\n".join("".join(RAMP[i] for i in row) for row in idx)


def main() -> None:
    sim = LBMHD3D(
        LBMHDParams(shape=SHAPE, tau=0.6, tau_m=0.6, u0=0.08, b0=0.08),
        Communicator(8),
    )
    w0 = vorticity_slice(sim)
    vmax = w0.max() * 1.8
    print("=== vorticity |curl u|, xy-plane, t = 0 (tube-like) ===")
    print(ascii_plot(w0, vmax))

    print("\nstep   kinetic E   magnetic E   max|vorticity|")
    for block in range(6):
        sim.run(STEPS // 6)
        d = sim.diagnostics()
        w = vorticity_slice(sim)
        print(
            f"{sim.step_count:4d}   {d.kinetic_energy:9.4f}   "
            f"{d.magnetic_energy:10.4f}   {w.max():10.4f}"
        )

    w1 = vorticity_slice(sim)
    print(f"\n=== vorticity, t = {STEPS} (distorted) ===")
    print(ascii_plot(w1, vmax))

    d = sim.diagnostics()
    print(
        f"\nmass conserved to {abs(d.mass / (np.prod(SHAPE)) - 1.0):.2e} "
        "relative; energy decays only through the BGK viscosity/resistivity."
    )


if __name__ == "__main__":
    main()
