#!/usr/bin/env python
"""The paper's bottom line: scalar vs vector across all four codes.

Regenerates the Figure 8 overview (256 processors, %peak and speed
relative to the Earth Simulator), walks through the architectural
explanations with the roofline/Amdahl tools, and checks every headline
claim from the abstract.
"""

from __future__ import annotations

from repro.experiments import fig8, paper_data
from repro.machines import get_machine
from repro.perfmodel import Roofline, required_vector_fraction


def main() -> None:
    print(fig8.render())

    print("\n=== why: architectural balance (roofline view) ===")
    print(f"{'machine':<10} {'peak GF':>8} {'B/F':>6} {'ridge F/B':>10}")
    for name in ("Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8"):
        m = get_machine(name)
        r = Roofline(m)
        print(
            f"{name:<10} {m.peak_gflops:8.1f} {m.bytes_per_flop:6.2f} "
            f"{r.ridge_intensity:10.2f}"
        )
    print(
        "\nThe ES turns compute-bound at just 0.30 flops/byte — LBMHD's\n"
        "~0.8 flops/byte keeps its vector pipes saturated at 68% of peak,\n"
        "while every superscalar platform starves at <15%."
    )

    print("\n=== why: Amdahl's law on a 1/8-speed scalar unit ===")
    for target in (0.2, 0.4, 0.6):
        f = required_vector_fraction(target, 0.125)
        print(
            f"sustaining {target * 100:3.0f}% of ES peak requires "
            f"{f * 100:5.1f}% vector operations"
        )
    print(
        "— which is why the paper's vectorization work (the GTC\n"
        "work-vector deposition, FVCAM's restructured latitude loops)\n"
        "was the price of admission on the vector machines."
    )

    print("\n=== abstract headline claims, model vs paper ===")
    from repro.apps.fvcam import FVCAMScenario, simulated_days_per_day
    from repro.apps.gtc import GTCScenario
    from repro.apps.gtc import predict as gtc_predict
    from repro.apps.lbmhd import ES_HEADLINE
    from repro.apps.lbmhd import predict as lbmhd_predict
    from repro.apps.paratec import ParatecScenario
    from repro.apps.paratec import predict as paratec_predict

    gtc = gtc_predict("ES", GTCScenario(2048, 3200))
    print(
        f"GTC breaks the Teraflop barrier: {gtc.aggregate_tflops:.1f} "
        f"Tflop/s on 2048 ES processors (paper: "
        f"{paper_data.HEADLINES['gtc_es_2048_tflops']})"
    )
    lbmhd = lbmhd_predict("ES", ES_HEADLINE)
    print(
        f"LBMHD3D on 4800 ES processors: {lbmhd.aggregate_tflops:.1f} "
        f"Tflop/s (paper: >{paper_data.HEADLINES['lbmhd_es_4800_tflops']:.0f})"
    )
    paratec = paratec_predict("ES", ParatecScenario(2048))
    print(
        f"PARATEC on 2048 ES processors: {paratec.aggregate_tflops:.1f} "
        f"Tflop/s (paper: {paper_data.HEADLINES['paratec_es_2048_tflops']})"
    )
    fvcam = simulated_days_per_day("X1E", FVCAMScenario(672, 7))
    print(
        f"FVCAM on 672 X1E processors: {fvcam:.0f} simulated days/day "
        f"(paper: >{paper_data.HEADLINES['fvcam_x1e_672_simdays']:.0f})"
    )


if __name__ == "__main__":
    main()
