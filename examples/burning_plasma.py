#!/usr/bin/env python
"""GTC multi-species: a burning D-T plasma with fusion alphas.

The paper motivates its particle decomposition with exactly this
workload: "Simulations with multiple species are essential to study
the transport of the different products created by the fusion reaction
in burning plasma experiments.  These multi-species calculations
require a very large number of particles and will benefit from the
added decomposition."

The script loads a deuterium-tritium fuel mix plus a hot, doubly
charged alpha minority, runs the PIC cycle, and shows why the vector
machines could not take the hybrid MPI/OpenMP shortcut instead
(the work-vector memory and vector-length arguments, quantified).
"""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.apps.gtc import (
    GTC,
    GTCParams,
    Species,
    analyze_hybrid,
)
from repro.machines import get_machine

DT_BURN = (
    Species(name="deuterium", charge=1.0, mass=2.0, fraction=0.45),
    Species(name="tritium", charge=1.0, mass=3.0, fraction=0.45),
    Species(name="alpha", charge=2.0, mass=4.0, temperature=60.0, fraction=0.10),
)


def main() -> None:
    params = GTCParams(
        mpsi=20,
        mtheta=32,
        ntoroidal=4,
        particles_per_cell=15,
        dt=0.004,
        species=DT_BURN,
    )
    sim = GTC(params, Communicator(8))  # 2-way particle decomposition
    print("=== burning-plasma census ===")
    for name, row in sim.species_census().items():
        print(
            f"{name:<10} {int(row['count']):7,d} particles, "
            f"net charge {row['charge']:10.0f}"
        )

    sim.run(6)
    print("\nafter 6 PIC steps:")
    for name, row in sim.species_census().items():
        print(f"{name:<10} {int(row['count']):7,d} particles (conserved)")

    # hot alphas sample phase space fastest
    alphas = np.concatenate(
        [p.vpar[p.species.astype(int) == 2] for p in sim.particles]
    )
    fuel = np.concatenate(
        [p.vpar[p.species.astype(int) < 2] for p in sim.particles]
    )
    print(
        f"\nthermal speeds: fuel {np.abs(fuel).mean():.2f}, "
        f"alphas {np.abs(alphas).mean():.2f} "
        "(fast products stress the toroidal shift)"
    )

    print("\n=== why not hybrid MPI/OpenMP instead? ===")
    print(
        f"{'machine':<10} {'grid copies/CPU':>16} {'max plane pts':>14} "
        f"{'4-thread rate':>14}"
    )
    for m in ("Opteron", "Power3", "X1", "ES", "SX-8"):
        v = analyze_hybrid(get_machine(m))
        verdict = "ok" if v.hybrid_attractive else "loses"
        print(
            f"{m:<10} {v.copies_per_cpu:>16d} {v.max_plane_points:>14,d} "
            f"x{v.rate_factor_4_threads:>5.2f} ({verdict})"
        )
    print(
        "\nThe 256 work-vector grid copies and the thread-split vector\n"
        "loops rule hybrid mode out on the vector machines — hence the\n"
        "paper's pure-MPI particle decomposition."
    )


if __name__ == "__main__":
    main()
