#!/usr/bin/env python
"""IPM-style communication tracing of the simulated runtime (Figure 2).

Runs the FVCAM mini-app under both of the paper's decompositions with
tracing enabled, prints the point-to-point volume heatmaps, and
dissects the 2-D pattern into its three ingredients: latitude halos
(the segmented diagonals), vertical partial sums (the side lines), and
the dynamics-to-remap transposes (the tilted grid).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig2


def main() -> None:
    print(fig2.render())

    result = fig2.run()
    py = fig2.NPROCS // 4
    m = result.volume_2d

    print("\n=== dissecting the 2-D pattern ===")
    halo = float(np.mean([m[i, i + 1] for i in range(py - 1)]))
    vert = float(np.mean([m[i, i + py] for i in range(py)]))
    print(f"halo volume per neighbor pair:      {halo / 1e3:8.1f} kB")
    print(f"vertical-sum volume per pair:       {vert / 1e3:8.1f} kB")
    print(
        f"ratio: {halo / vert:.1f}x — the vertical lines are 'of a "
        "considerably lesser volume', exactly as Figure 2(b) shows."
    )
    offsets = result.offdiagonal_offsets("2d")
    print(f"\ncommunication offsets present: {offsets}")
    print(
        f"offset 1 = latitude halos; offsets {py}, {2 * py}, {3 * py} = "
        "vertical sums and remap transposes between the level blocks."
    )


if __name__ == "__main__":
    main()
