#!/usr/bin/env python
"""GTC: gyrokinetic particle-in-cell transport in a tokamak torus.

Walks through the paper's §4: the five-phase PIC step, the work-vector
deposition that unlocked vectorization, and the new particle
decomposition that carried GTC from 64-way to 2048-way concurrency —
"opening the door to a new set of high-phase-space-resolution
simulations".
"""

from __future__ import annotations

import numpy as np

from repro import Communicator, get_machine
from repro.apps.gtc import (
    GTC,
    GTCParams,
    GTCScenario,
    choose_decomposition,
    predict,
    work_vector_memory_overhead,
)


def main() -> None:
    # -- the physics skeleton -------------------------------------------
    params = GTCParams(
        mpsi=24, mtheta=48, ntoroidal=4, particles_per_cell=20, dt=0.02
    )
    sim = GTC(params, Communicator(8))  # 2-way particle decomposition
    print("=== GTC mini-run: 4 toroidal domains x 2 particle splits ===")
    print(f"particles: {sim.total_particles():,}")
    q0 = sim.total_charge()
    sim.run(10)
    print(f"charge drift after 10 steps: {sim.total_charge() - q0:.2e}")
    rho = sim.domain_charge(0)
    print(
        f"domain-0 charge grid: min {rho.min():.2f}, max {rho.max():.2f} "
        "(turbulent-ish density field)"
    )

    # -- the memory cost of vectorization ---------------------------------
    print("\n=== work-vector method: vectorization vs memory ===")
    overhead = work_vector_memory_overhead(sim.torus.plane, 256)
    base = sim.torus.plane.num_points * 8
    print(
        f"grid plane: {base / 1024:.0f} KiB; 256 private copies: "
        f"{overhead / 2**20:.1f} MiB ({overhead // base}x) — why "
        "MPI/OpenMP hybrid is impossible on the vector machines."
    )

    # -- the particle decomposition at paper scale ------------------------
    print("\n=== the new decomposition: 64-way ceiling broken ===")
    for p in (64, 512, 2048):
        d = choose_decomposition(p)
        print(
            f"P={p:5d}: {d.ntoroidal} toroidal domains x "
            f"{d.npe_per_domain} particle splits"
        )

    print("\n=== Table 4 at P=2048 (model vs paper headline) ===")
    r = predict("ES", GTCScenario(2048, 3200))
    print(
        f"ES, 2048 processors: {r.gflops_per_proc:.2f} Gflop/P "
        f"({r.pct_peak:.0f}% of peak) -> {r.aggregate_tflops:.1f} Tflop/s "
        "aggregate (paper: 3.7 Tflop/s, the first Teraflop-scale GTC run)"
    )
    for m in ("Opteron", "SX-8"):
        r = predict(m, GTCScenario(256, 400))
        print(f"{m}, 256 processors: {r.gflops_per_proc:.2f} Gflop/P")


if __name__ == "__main__":
    main()
