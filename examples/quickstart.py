#!/usr/bin/env python
"""Quickstart: run a real simulation and rate it on the paper's machines.

This five-minute tour exercises the three layers of the library:

1. run the LBMHD3D mini-app (real lattice Boltzmann MHD numerics) on a
   simulated 8-rank communicator and watch its conserved quantities;
2. attach a platform's cost models and read the virtual wall-clock;
3. evaluate the paper-scale performance model across all seven HEC
   platforms — one row of the paper's Table 5.
"""

from __future__ import annotations

from repro import Communicator, get_machine
from repro.apps.lbmhd import LBMHD3D, LBMHDParams, LBMHDScenario, predict
from repro.machines import PAPER_ORDER

def main() -> None:
    # -- 1. real numerics on an ideal (cost-free) communicator ---------
    print("=== LBMHD3D on 8 simulated ranks (16^3 lattice) ===")
    sim = LBMHD3D(LBMHDParams(shape=(16, 16, 16)), Communicator(8))
    d0 = sim.diagnostics()
    sim.run(steps=20)
    d1 = sim.diagnostics()
    print(f"mass:            {d0.mass:.6f} -> {d1.mass:.6f} (conserved)")
    print(
        f"kinetic energy:  {d0.kinetic_energy:.4f} -> "
        f"{d1.kinetic_energy:.4f} (decays viscously)"
    )
    print(
        f"magnetic energy: {d0.magnetic_energy:.4f} -> "
        f"{d1.magnetic_energy:.4f}"
    )

    # -- 2. the same run with a platform's virtual clocks -------------
    print("\n=== Same run, timed on Earth Simulator cost models ===")
    timed = LBMHD3D(
        LBMHDParams(shape=(16, 16, 16)),
        Communicator(8, machine=get_machine("ES")),
    )
    timed.run(steps=20)
    print(f"virtual wall-clock: {timed.comm.elapsed * 1e3:.3f} ms")
    print(f"load imbalance:     {timed.comm.imbalance() * 100:.1f}%")

    # -- 3. the paper-scale model: Table 5's 512^3 / 256-way row -------
    print("\n=== Table 5 row: 512^3 lattice on 256 processors ===")
    scenario = LBMHDScenario(grid=512, nprocs=256)
    print(f"{'machine':<10} {'Gflop/P':>8} {'%peak':>7}")
    for name in PAPER_ORDER:
        if name == "X1E":
            continue  # the paper has no X1E data for LBMHD
        r = predict(name, scenario)
        print(f"{name:<10} {r.gflops_per_proc:8.2f} {r.pct_peak:6.1f}%")
    print(
        "\nThe vector machines win by ~10x; the ES sustains the highest\n"
        "fraction of peak — the paper's headline result."
    )


if __name__ == "__main__":
    main()
