#!/usr/bin/env python
"""PARATEC structural relaxation via Hellmann–Feynman forces.

"Forces can be easily calculated and used to relax the atoms into
their equilibrium positions."  The script solves the Kohn–Sham problem
for a displaced dimer, computes the forces on the ions from the
self-consistent density, and walks them downhill.
"""

from __future__ import annotations

import numpy as np

from repro import Communicator
from repro.apps.paratec import (
    Atom,
    Paratec,
    ParatecParams,
    external_energy,
    hellmann_feynman_forces,
    relax_atoms,
)


def main() -> None:
    atoms = (
        Atom(position=(0.38, 0.5, 0.5), amplitude=6.0, sigma=1.0),
        Atom(position=(0.68, 0.5, 0.5), amplitude=6.0, sigma=1.0),
    )
    params = ParatecParams(
        ecut=9.0,
        grid_shape=(14, 14, 14),
        nbands=4,
        atoms=atoms,
        cg_iterations=6,
        scf_iterations=4,
    )
    solver = Paratec(params, Communicator(2))
    print("=== SCF for the displaced dimer ===")
    result = solver.run()
    print("eigenvalues (Ha):", np.round(result.eigenvalues, 4))

    rho = solver.density()
    forces = hellmann_feynman_forces(rho, list(atoms))
    print("\nforces at the self-consistent geometry (screened, ~0):")
    for i, f in enumerate(forces):
        print(f"  atom {i}: [{f[0]:+.5f} {f[1]:+.5f} {f[2]:+.5f}]")

    # Now displace the ions against the frozen electron cloud: the
    # Hellmann-Feynman forces pull them straight back.
    from dataclasses import replace

    displaced = [
        replace(a, position=(a.position[0] + 0.05, *a.position[1:]))
        for a in atoms
    ]
    forces = hellmann_feynman_forces(rho, displaced)
    print("\nforces after displacing both ions by +0.05 in x:")
    for i, f in enumerate(forces):
        print(f"  atom {i}: [{f[0]:+.5f} {f[1]:+.5f} {f[2]:+.5f}]")

    print("\n=== frozen-density relaxation back to equilibrium ===")
    relaxed, final_forces, energies = relax_atoms(
        rho, displaced, step=10.0, iterations=60, force_tolerance=1e-5
    )
    print(
        f"external energy: {energies[0]:.5f} -> {energies[-1]:.5f} Ha "
        f"({len(energies) - 1} steps)"
    )
    for i, atom in enumerate(relaxed):
        print(
            f"  atom {i}: x = {displaced[i].position[0]:.3f} -> "
            f"{atom.position[0]:.3f} (started at "
            f"{atoms[i].position[0]:.3f})"
        )
    print(
        f"max residual force: {np.abs(final_forces).max():.2e} "
        "(production codes loop this against fresh SCF densities)"
    )


if __name__ == "__main__":
    main()
