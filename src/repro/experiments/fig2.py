"""Figure 2 — FVCAM point-to-point communication volume matrices.

The paper instruments a 64-MPI-process D-mesh run with IPM and plots
the (src, dst) byte-volume matrix for (a) the 1-D latitude
decomposition and (b) the 2-D decomposition with 4 vertical subdomains.
Here the same instrument (:class:`repro.simmpi.tracing.CommTrace`) runs
against the actual mini-app at a reduced mesh, preserving the
structure: nearest-neighbor diagonals in 1-D; segmented diagonals,
vertical-communication side lines, and the tilted transpose grid in
2-D; and a significantly lower total volume for the 2-D layout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import harness
from ..apps.fvcam.grid import LatLonGrid
from ..apps.fvcam.solver import FVCAMParams

#: Mini-mesh: same aspect ratios as the D grid, sized for 64 ranks.
MINI_GRID = LatLonGrid(im=48, jm=192, km=16)

NPROCS = 64
STEPS = 8


@dataclass
class Fig2Result:
    """Traced volume matrices and summary statistics."""

    volume_1d: np.ndarray
    volume_2d: np.ndarray

    @property
    def total_1d(self) -> float:
        return float(self.volume_1d.sum())

    @property
    def total_2d(self) -> float:
        return float(self.volume_2d.sum())

    @property
    def reduction(self) -> float:
        """Volume ratio 1D / 2D ("significantly reduced" in the paper)."""
        return self.total_1d / self.total_2d

    def nonzero_pairs(self, which: str) -> int:
        m = self.volume_1d if which == "1d" else self.volume_2d
        return int(np.count_nonzero(m))

    def offdiagonal_offsets(self, which: str) -> list[int]:
        """Distinct |src - dst| offsets carrying any traffic."""
        m = self.volume_1d if which == "1d" else self.volume_2d
        src, dst = np.nonzero(m)
        return sorted({int(abs(s - d)) for s, d in zip(src, dst)})


def _traced_run(py: int, pz: int) -> np.ndarray:
    result = harness.run(
        "fvcam",
        FVCAMParams(grid=MINI_GRID, py=py, pz=pz, dt=30.0, remap_interval=4),
        steps=STEPS,
        nprocs=NPROCS,
        trace=True,
    )
    return result.comm.trace.matrix()


def run() -> Fig2Result:
    """Execute both decompositions and capture the volume matrices."""
    return Fig2Result(
        volume_1d=_traced_run(py=NPROCS, pz=1),
        volume_2d=_traced_run(py=NPROCS // 4, pz=4),
    )


def render() -> str:
    from ..simmpi.tracing import CommTrace

    result = run()
    t1 = CommTrace(NPROCS)
    t1.volume = result.volume_1d
    t2 = CommTrace(NPROCS)
    t2.volume = result.volume_2d
    lines = [
        "Figure 2: FVCAM communication volume between 64 MPI processes",
        "",
        "(a) 1D latitude decomposition — nearest-neighbor diagonals:",
        t1.render(),
        "",
        "(b) 2D decomposition, 4 vertical subdomains — segmented",
        "    diagonals + vertical lines + transpose grid:",
        t2.render(),
        "",
        f"total traced volume  1D: {result.total_1d / 1e6:8.1f} MB",
        f"                     2D: {result.total_2d / 1e6:8.1f} MB",
        f"volume reduction 1D/2D:  {result.reduction:.2f}x "
        "(paper: 'significantly reduced')",
        f"communicating pairs  1D: {result.nonzero_pairs('1d')}"
        f"   2D: {result.nonzero_pairs('2d')}",
    ]
    return "\n".join(lines)
