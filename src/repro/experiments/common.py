"""Shared rendering helpers for the experiment modules."""

from __future__ import annotations

from dataclasses import dataclass

from ..machines.catalog import get_machine


@dataclass(frozen=True)
class Cell:
    """One model-vs-paper comparison cell."""

    machine: str
    model_gflops: float
    paper_gflops: float | None

    @property
    def model_pct(self) -> float:
        return get_machine(self.machine).pct_of_peak(self.model_gflops)

    @property
    def paper_pct(self) -> float | None:
        if self.paper_gflops is None:
            return None
        return get_machine(self.machine).pct_of_peak(self.paper_gflops)

    @property
    def ratio(self) -> float | None:
        if self.paper_gflops in (None, 0.0):
            return None
        return self.model_gflops / self.paper_gflops


def render_comparison(
    title: str,
    row_labels: list[str],
    machines: list[str],
    cells: dict[tuple[str, str], Cell],
) -> str:
    """Render a model|paper side-by-side table.

    ``cells[(row_label, machine)]`` supplies each entry; missing cells
    print as the paper's em-dash.
    """
    width = 17
    lines = [title, ""]
    header = f"{'row':<18}|"
    for m in machines:
        header += f" {m:^{width}} |"
    lines.append(header)
    sub = f"{'':<18}|"
    for _ in machines:
        sub += f" {'model  paper  r':^{width}} |"
    lines.append(sub)
    lines.append("-" * len(header))
    for label in row_labels:
        row = f"{label:<18}|"
        for m in machines:
            cell = cells.get((label, m))
            if cell is None:
                row += f" {'--':^{width}} |"
            elif cell.paper_gflops is None:
                row += f" {cell.model_gflops:5.2f} {'--':>6} {'':>4} |"
            else:
                row += (
                    f" {cell.model_gflops:5.2f} {cell.paper_gflops:6.2f}"
                    f" {cell.ratio:4.2f} |"
                )
        lines.append(row)
    return "\n".join(lines)


def mean_abs_deviation(cells: dict) -> float:
    """Mean |model/paper - 1| over the cells with paper values.

    An empty cell set has no defined deviation: returns ``nan`` (not
    0.0, which would read as a perfect score).
    """
    devs = [
        abs(c.ratio - 1.0)
        for c in cells.values()
        if c is not None and c.ratio is not None
    ]
    return sum(devs) / len(devs) if devs else float("nan")
