"""Table 2 — overview of the scientific applications."""

from __future__ import annotations

from ..apps.base import APPLICATIONS


def run() -> list[dict]:
    order = ["fvcam", "lbmhd", "paratec", "gtc"]  # the paper's row order
    return [
        {
            "Name": APPLICATIONS[k].name,
            "Lines": APPLICATIONS[k].lines,
            "Discipline": APPLICATIONS[k].discipline,
            "Methods": APPLICATIONS[k].methods,
            "Structure": APPLICATIONS[k].structure,
        }
        for k in order
    ]


def render() -> str:
    rows = run()
    cols = list(rows[0].keys())
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols}
    lines = ["Table 2: Overview of scientific applications", ""]
    lines.append("  ".join(f"{c:<{widths[c]}}" for c in cols))
    lines.append("-" * (sum(widths.values()) + 2 * (len(cols) - 1)))
    for r in rows:
        lines.append("  ".join(f"{str(r[c]):<{widths[c]}}" for c in cols))
    return "\n".join(lines)
