"""End-to-end self-validation: run all four mini-apps and check physics.

Executes each application's numerics at laptop scale on the simulated
runtime and verifies the invariants the test suite enforces — a quick
"is this installation healthy, and are the numerics real?" check:

* LBMHD3D: mass/momentum/B conservation, serial == parallel;
* GTC: particle and charge conservation through deposition, field
  solve, push, and toroidal shift; work-vector == scalar deposition;
* FVCAM: air and tracer mass conservation, decomposition independence;
* PARATEC: parallel FFT == numpy, SCF orthonormality, free-electron
  ground state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Check:
    name: str
    value: float
    threshold: float

    @property
    def passed(self) -> bool:
        return abs(self.value) <= self.threshold

    def render(self) -> str:
        flag = "PASS" if self.passed else "FAIL"
        return f"  [{flag}] {self.name:<52} {self.value:10.2e}"


def _lbmhd_checks() -> list[Check]:
    from .. import harness
    from ..apps.lbmhd import LBMHDParams

    params = LBMHDParams(shape=(8, 8, 8))
    serial = harness.run("lbmhd", params, steps=0, nprocs=1).state
    d0 = serial.diagnostics()
    serial.run(5)
    parallel = harness.run("lbmhd", params, steps=5, nprocs=8).state
    d1 = serial.diagnostics()
    return [
        Check("lbmhd: mass conservation", (d1.mass - d0.mass) / d0.mass, 1e-12),
        Check(
            "lbmhd: momentum conservation",
            float(np.abs(np.array(d1.momentum) - np.array(d0.momentum)).max()),
            1e-9,
        ),
        Check(
            "lbmhd: serial == 8-rank (max diff)",
            float(
                np.abs(
                    serial.global_state() - parallel.global_state()
                ).max()
            ),
            1e-12,
        ),
    ]


def _gtc_checks() -> list[Check]:
    from .. import harness
    from ..apps.gtc import GTCParams, deposit_scalar, deposit_work_vector

    sim = harness.run(
        "gtc",
        GTCParams(mpsi=12, mtheta=16, ntoroidal=4, particles_per_cell=5),
        steps=0,
        nprocs=8,
    ).state
    n0, q0 = sim.total_particles(), sim.total_charge()
    sim.run(3)
    a = deposit_scalar(sim.torus.plane, sim.particles[0], 0.03)
    b = deposit_work_vector(sim.torus.plane, sim.particles[0], 8, 0.03)
    return [
        Check("gtc: particle count conservation", sim.total_particles() - n0, 0),
        Check("gtc: charge conservation", sim.total_charge() - q0, 1e-9),
        Check(
            "gtc: work-vector == scalar deposition",
            float(np.abs(a - b).max()),
            1e-10,
        ),
    ]


def _fvcam_checks() -> list[Check]:
    from .. import harness
    from ..apps.fvcam import FVCAMParams, LatLonGrid

    grid = LatLonGrid(im=24, jm=18, km=4)
    serial = harness.run(
        "fvcam", FVCAMParams(grid=grid, with_tracer=True), steps=0
    ).state
    m0, t0 = serial.total_mass(), serial.tracer_mass()
    serial.run(6)
    parallel = harness.run(
        "fvcam",
        FVCAMParams(grid=grid, py=3, pz=2, with_tracer=True),
        steps=6,
    ).state
    h_s, _, _ = serial.global_fields()
    h_p, _, _ = parallel.global_fields()
    return [
        Check(
            "fvcam: air mass conservation",
            (serial.total_mass() - m0) / m0,
            1e-12,
        ),
        Check(
            "fvcam: tracer mass conservation",
            (serial.tracer_mass() - t0) / max(abs(t0), 1e-30),
            1e-9,
        ),
        Check(
            "fvcam: serial == 6-rank (max h diff)",
            float(np.abs(h_s - h_p).max()),
            1e-9,
        ),
    ]


def _paratec_checks() -> list[Check]:
    from ..apps.paratec import (
        GSphere,
        Hamiltonian,
        ParallelFFT3D,
        ParatecParams,
        SphereDistribution,
        dot,
    )
    from ..simmpi import Communicator

    sphere = GSphere(ecut=8.0, grid_shape=(12, 12, 12))
    dist = SphereDistribution(sphere, 3)
    comm = Communicator(3)
    fft = ParallelFFT3D(dist, comm)
    rng = np.random.default_rng(0)
    psi = rng.standard_normal(sphere.num_g) + 1j * rng.standard_normal(
        sphere.num_g
    )
    dense = np.zeros(sphere.grid_shape, dtype=complex)
    ix, iy, iz = sphere.grid_indices()
    dense[ix, iy, iz] = psi
    full = fft.gather_slabs(fft.sphere_to_real(dist.scatter(psi)))
    fft_err = float(np.abs(full - np.fft.ifftn(dense)).max())

    from .. import harness

    solver = harness.run(
        "paratec", ParatecParams(scf_iterations=2), steps=0, nprocs=2
    ).state
    solver.run()
    worst = 0.0
    for i in range(len(solver.bands)):
        for j in range(len(solver.bands)):
            overlap = dot(solver.comm, solver.bands[i], solver.bands[j])
            expected = 1.0 if i == j else 0.0
            worst = max(worst, abs(overlap - expected))
    return [
        Check("paratec: parallel FFT == numpy ifftn", fft_err, 1e-12),
        Check("paratec: SCF band orthonormality", worst, 1e-8),
    ]


def run() -> list[Check]:
    checks: list[Check] = []
    checks += _lbmhd_checks()
    checks += _gtc_checks()
    checks += _fvcam_checks()
    checks += _paratec_checks()
    return checks


def render() -> str:
    checks = run()
    lines = ["Self-validation: physics invariants of the four mini-apps", ""]
    lines += [c.render() for c in checks]
    passed = sum(c.passed for c in checks)
    lines.append("")
    lines.append(f"{passed}/{len(checks)} checks passed")
    return "\n".join(lines)
