"""Figure 8 — 256-processor overview of all four applications.

Left panel: percentage of theoretical peak per machine per application.
Right panel: absolute speed relative to the ES (ratio of Gflop/P, which
equals the inverse runtime ratio since the flop count is fixed).
"""

from __future__ import annotations

from ..apps import fvcam, gtc, lbmhd, paratec
from ..machines.catalog import get_machine

MACHINES = ["Power3", "Itanium2", "Opteron", "X1", "ES", "SX-8"]
P = 256

#: 256-processor scenario per application.
_SCENARIOS = {
    "fvcam": fvcam.FVCAMScenario(256, 4),
    "gtc": gtc.GTCScenario(256, 400),
    "lbmhd": lbmhd.LBMHDScenario(512, 256),
    "paratec": paratec.ParatecScenario(256),
}

_PREDICT = {
    "fvcam": fvcam.predict,
    "gtc": gtc.predict,
    "lbmhd": lbmhd.predict,
    "paratec": paratec.predict,
}

#: FVCAM has no Opteron or SX-8 results in the paper.
_UNAVAILABLE = {("fvcam", "Opteron"), ("fvcam", "SX-8")}


def run() -> dict[str, dict[str, dict[str, float]]]:
    """{app: {machine: {"gflops", "pct_peak", "relative_to_es"}}}."""
    out: dict[str, dict[str, dict[str, float]]] = {}
    for app, scenario in _SCENARIOS.items():
        rows: dict[str, dict[str, float]] = {}
        es_rate = _PREDICT[app]("ES", scenario).gflops_per_proc
        for machine in MACHINES:
            if (app, machine) in _UNAVAILABLE:
                continue
            r = _PREDICT[app](machine, scenario)
            rows[machine] = {
                "gflops": r.gflops_per_proc,
                "pct_peak": r.pct_peak,
                "relative_to_es": r.gflops_per_proc / es_rate,
            }
        out[app] = rows
    return out


def render() -> str:
    data = run()
    apps = list(data)
    lines = [
        "Figure 8: overview at 256 processors (model)",
        "",
        "(left) percentage of theoretical peak:",
        f"{'machine':<10}" + "".join(f" {a:>9}" for a in apps),
    ]
    for machine in MACHINES:
        row = f"{machine:<10}"
        for app in apps:
            cell = data[app].get(machine)
            row += f" {cell['pct_peak']:8.1f}%" if cell else f" {'--':>9}"
        lines.append(row)
    lines += [
        "",
        "(right) speed relative to the Earth Simulator (runtime ratio):",
        f"{'machine':<10}" + "".join(f" {a:>9}" for a in apps),
    ]
    for machine in MACHINES:
        row = f"{machine:<10}"
        for app in apps:
            cell = data[app].get(machine)
            row += (
                f" {cell['relative_to_es']:9.2f}" if cell else f" {'--':>9}"
            )
        lines.append(row)
    # headline check: ES leads %peak everywhere
    es_leads = all(
        data[app]["ES"]["pct_peak"]
        >= max(row["pct_peak"] for row in data[app].values()) - 1e-9
        for app in apps
    )
    lines += [
        "",
        f"ES achieves the highest %peak for every application: {es_leads}",
    ]
    return "\n".join(lines)
