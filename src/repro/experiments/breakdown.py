"""Phase-breakdown experiment: where the modeled time goes, per app.

Regenerates the paper's phase-level claims as a table: GTC is ~85%
particle work, PARATEC ~60% library kernels, FVCAM's communication
grows with concurrency, LBMHD is one big vector kernel.
"""

from __future__ import annotations

from ..apps.fvcam import FVCAMScenario
from ..apps.gtc import GTCScenario
from ..apps.lbmhd import LBMHDScenario
from ..apps.paratec import ParatecScenario
from ..perfmodel.breakdown import PhaseBreakdown, phase_breakdown

CASES = {
    "lbmhd": LBMHDScenario(512, 256),
    "gtc": GTCScenario(256, 400),
    "paratec": ParatecScenario(256),
    "fvcam": FVCAMScenario(256, 4),
}

MACHINES = ("ES", "Opteron")


def run() -> dict[tuple[str, str], PhaseBreakdown]:
    return {
        (app, machine): phase_breakdown(app, scenario, machine)
        for app, scenario in CASES.items()
        for machine in MACHINES
    }


def render() -> str:
    data = run()
    parts = ["Phase breakdowns at 256 processors (model)", ""]
    for (app, machine), bd in data.items():
        parts.append(bd.render())
        parts.append("")
    gtc_es = data[("gtc", "ES")]
    particle_share = (
        gtc_es.fraction("charge deposition") + gtc_es.fraction("gather + push")
    )
    parts.append(
        f"GTC particle-work share on ES: {particle_share * 100:.0f}% "
        "(paper: 'almost 85% of the overhead')"
    )
    par_es = data[("paratec", "ES")]
    lib_share = par_es.fraction("BLAS3 (subspace)") + par_es.fraction("3D FFT")
    parts.append(
        f"PARATEC library-kernel share on ES: {lib_share * 100:.0f}% "
        "(paper: 'much of the computation time (typically 60%)')"
    )
    return "\n".join(parts)
