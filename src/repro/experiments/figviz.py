"""The paper's illustrative figures (1, 5, 6, 7), as ASCII renderings.

These figures are physics products rather than measurements:

* Figure 1 — an FVCAM storm ("produced solely through the chaos of the
  atmospheric model"): we render the evolving column-height anomaly.
* Figure 5 — the electrostatic potential of a GTC simulation, whole
  volume and a poloidal cross-section with its "elongated eddies".
* Figure 6 — LBMHD vorticity evolving "from well-defined tube-like
  structures into turbulent structures".
* Figure 7 — the conduction-band-minimum electron state of a CdSe dot:
  we render the ground-state density of the PARATEC mini-cell.

Each `run()` executes the real mini-app and returns the field; each
`render()` prints it with a density ramp.
"""

from __future__ import annotations

import numpy as np

from .. import harness

RAMP = " .:-=+*#%@"


def ascii_field(field: np.ndarray, width: int = 64) -> str:
    """Render a 2-D field with a linear density ramp (rows downsampled)."""
    if field.ndim != 2:
        raise ValueError("expected a 2-D field")
    rows, cols = field.shape
    col_step = max(1, cols // width)
    row_step = max(1, rows // (width // 2))
    sampled = field[::row_step, ::col_step]
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    scaled = np.clip((sampled - lo) / span, 0.0, 1.0 - 1e-9)
    idx = (scaled * len(RAMP)).astype(int)
    return "\n".join("".join(RAMP[i] for i in row) for row in idx)


# -- Figure 1: FVCAM storm ---------------------------------------------------


def fig1_run(steps: int = 60) -> tuple[np.ndarray, np.ndarray]:
    """(initial, evolved) column-height anomaly of an FVCAM run."""
    from ..apps.fvcam import FVCAMParams, LatLonGrid

    grid = LatLonGrid(im=48, jm=36, km=4)
    sim = harness.run(
        "fvcam",
        FVCAMParams(grid=grid, py=4, pz=1, dt=120.0, bump_amplitude=150.0),
        steps=0,
    ).state

    def anomaly() -> np.ndarray:
        h, _, _ = sim.global_fields()
        column = h.sum(axis=0)
        return column - column.mean(axis=1, keepdims=True)

    before = anomaly()
    sim.run(steps)
    return before, anomaly()


# -- Figure 5: GTC electrostatic potential -------------------------------


def fig5_run(steps: int = 8) -> np.ndarray:
    """Poloidal cross-section of the GTC potential after some steps."""
    from ..apps.gtc import GTCParams

    sim = harness.run(
        "gtc",
        GTCParams(mpsi=24, mtheta=48, ntoroidal=4, particles_per_cell=20),
        steps=steps,
    ).state
    return sim.phi[0].copy()


# -- Figure 6: LBMHD vorticity ------------------------------------------------


def fig6_run(steps: int = 100) -> tuple[np.ndarray, np.ndarray]:
    """(initial, evolved) vorticity magnitude in an xy-plane."""
    from ..apps.lbmhd import LBMHDParams, moments, vorticity

    sim = harness.run(
        "lbmhd",
        LBMHDParams(shape=(32, 32, 8), tau=0.6, tau_m=0.6, u0=0.08, b0=0.08),
        steps=0,
        nprocs=8,
    ).state

    def slice_now() -> np.ndarray:
        _, u, _ = moments(sim.global_state())
        w = vorticity(u)
        return np.sqrt((w**2).sum(axis=0))[:, :, 4]

    before = slice_now()
    sim.run(steps)
    return before, slice_now()


# -- Figure 7: PARATEC electron state ---------------------------------------


def fig7_run() -> np.ndarray:
    """Mid-plane slice of the converged ground-state density."""
    from ..apps.paratec import ParatecParams

    solver = harness.run("paratec", ParatecParams(), steps=0, nprocs=2).state
    solver.run()
    rho = solver.density()
    return rho[:, :, rho.shape[2] // 2]


def run() -> dict[str, np.ndarray]:
    f1_before, f1_after = fig1_run()
    f6_before, f6_after = fig6_run()
    return {
        "fig1_before": f1_before,
        "fig1_after": f1_after,
        "fig5": fig5_run(),
        "fig6_before": f6_before,
        "fig6_after": f6_after,
        "fig7": fig7_run(),
    }


def render() -> str:
    data = run()
    parts = [
        "Illustrative figures (physics products of the mini-apps)",
        "",
        "Figure 1 analogue — FVCAM column-height anomaly, t = 0:",
        ascii_field(data["fig1_before"]),
        "",
        "... after 60 steps (sheared and advected by the jet):",
        ascii_field(data["fig1_after"]),
        "",
        "Figure 5 analogue — GTC electrostatic potential, poloidal plane",
        "(rows = flux surfaces, columns = poloidal angle; eddies elongate",
        "along theta):",
        ascii_field(data["fig5"]),
        "",
        "Figure 6 analogue — LBMHD vorticity |curl u|, t = 0 (tubes):",
        ascii_field(data["fig6_before"]),
        "",
        "... after 100 steps (distorted toward turbulence):",
        ascii_field(data["fig6_after"]),
        "",
        "Figure 7 analogue — PARATEC ground-state density, mid-plane",
        "(localized on the atoms):",
        ascii_field(data["fig7"]),
    ]
    return "\n".join(parts)
