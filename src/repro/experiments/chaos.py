"""Chaos run — injected faults, self-healing retries, checkpoint/restart.

Not a table from the paper: the paper's multi-hour production runs
survive flaky fabrics and node deaths through checksummed retransmits
and periodic checkpoints, and this experiment demonstrates the
simulated runtime doing the same.  Each of the four applications runs
twice on the Power3 model — once fault-free, once under a
:class:`~repro.resilience.FaultPlan` mixing message drops, a bit-flip,
a latency spike, and one mid-run rank failure — with checkpoints every
two steps.  The acceptance property is printed per app: the recovered
run's final physics state is **bitwise identical** to the fault-free
run, and every second the recovery machinery spent is visible in the
ledger's recovery column.

The rendered output ends with a machine-readable JSON document (one
object per app: fault counters, recovery seconds, overhead ratio,
identity flag) so CI and notebooks can assert on it directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from .. import harness
from ..apps.fvcam.solver import FVCAMParams
from ..resilience import (
    BitFlip,
    FaultPlan,
    LatencySpike,
    MessageDrop,
    RankFailure,
)

MACHINE = "Power3"
STEPS = 6
CHECKPOINT_EVERY = 2


def _cases(quick: bool):
    """(app, params, nprocs, steps) for the sweep."""
    cases = [
        ("lbmhd", None, 4, STEPS),
        ("gtc", None, 4, STEPS),
    ]
    if not quick:
        cases += [
            ("fvcam", FVCAMParams(py=2, pz=2), 4, STEPS),
            ("paratec", None, 2, 4),
        ]
    return cases


def _plan(nprocs: int, steps: int) -> FaultPlan:
    """Drops + one corruption + one straggler + one mid-run death."""
    return FaultPlan(
        faults=(
            MessageDrop(step=1, rate=0.3),
            BitFlip(step=2, src=0, byte_index=3, bit=5),
            LatencySpike(step=2, dst=0, extra_s=2e-3),
            RankFailure(rank=nprocs - 1, step=steps // 2),
        ),
        seed=2005,
    )


@dataclass
class ChaosCase:
    """Outcome of one app's faulted-vs-clean comparison."""

    app: str
    nprocs: int
    steps: int
    identical: bool
    clean_elapsed: float
    faulted_elapsed: float
    recovery_s: float
    stats: dict[str, float]

    @property
    def overhead(self) -> float:
        """Faulted / clean virtual wall-clock ratio."""
        if self.clean_elapsed == 0:
            return float("nan")
        return self.faulted_elapsed / self.clean_elapsed

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "nprocs": self.nprocs,
            "steps": self.steps,
            "identical": self.identical,
            "clean_elapsed_s": self.clean_elapsed,
            "faulted_elapsed_s": self.faulted_elapsed,
            "recovery_s": self.recovery_s,
            "overhead": self.overhead,
            "stats": self.stats,
        }


def _elapsed(result) -> float:
    """Max per-rank virtual time of a finished run."""
    return float(result.comm.elapsed)


def compute(quick: bool = False) -> list[ChaosCase]:
    out: list[ChaosCase] = []
    for app, params, nprocs, steps in _cases(quick):
        clean = harness.run(
            app, params, steps=steps, nprocs=nprocs, machine=MACHINE
        )
        faulted = harness.run(
            app,
            params,
            steps=steps,
            nprocs=nprocs,
            machine=MACHINE,
            fault_plan=_plan(nprocs, steps),
            checkpoint_every=CHECKPOINT_EVERY,
        )
        identical = bool(
            np.array_equal(
                clean.app.state_vector(clean.state),
                faulted.app.state_vector(faulted.state),
            )
        )
        recovery_s = float(faulted.ledger.totals().recovery_s.sum())
        out.append(
            ChaosCase(
                app=app,
                nprocs=nprocs,
                steps=steps,
                identical=identical,
                clean_elapsed=_elapsed(clean),
                faulted_elapsed=_elapsed(faulted),
                recovery_s=recovery_s,
                stats=faulted.recovery.as_dict(),
            )
        )
    return out


def render(quick: bool = False) -> str:
    cases = compute(quick=quick)
    lines = [
        "Chaos run — faults injected at the transport seam, recovered "
        "by retry + checkpoint/restart",
        f"machine={MACHINE}  checkpoint_every={CHECKPOINT_EVERY}  "
        f"plan: drops(rate=0.3) + bit-flip + latency spike + 1 rank death",
        "",
        f"{'app':8s} {'P':>3s} {'steps':>5s} {'drops':>5s} {'flips':>5s} "
        f"{'lates':>5s} {'resend':>6s} {'restarts':>8s} {'replayed':>8s} "
        f"{'recov ms':>9s} {'overhead':>8s} {'bitwise':>8s}",
    ]
    for c in cases:
        s = c.stats
        lines.append(
            f"{c.app:8s} {c.nprocs:3d} {c.steps:5d} "
            f"{int(s['drops_detected']):5d} "
            f"{int(s['corruptions_detected']):5d} "
            f"{int(s['delays_absorbed']):5d} "
            f"{int(s['resends']):6d} "
            f"{int(s['restarts']):8d} "
            f"{int(s['replayed_steps']):8d} "
            f"{c.recovery_s * 1e3:9.3f} "
            f"{c.overhead:8.3f} "
            f"{'yes' if c.identical else 'NO':>8s}"
        )
    lines.append("")
    ok = all(c.identical for c in cases)
    lines.append(
        "acceptance: every faulted run matches its fault-free twin "
        + ("bitwise — PASS" if ok else "bitwise — FAIL")
    )
    lines.append("")
    lines.append("JSON:")
    lines.append(
        json.dumps({c.app: c.as_dict() for c in cases}, indent=2)
    )
    return "\n".join(lines)
