"""Table 3 — FVCAM on the 0.5 x 0.625 degree D mesh."""

from __future__ import annotations

from ..apps.fvcam import TABLE3_ROWS, predict
from . import paper_data
from .common import Cell, mean_abs_deviation, render_comparison

MACHINES = ["Power3", "Itanium2", "X1", "X1E", "ES"]


def run() -> dict[tuple[str, str], Cell]:
    """All Table 3 cells: model prediction vs paper measurement."""
    cells: dict[tuple[str, str], Cell] = {}
    for scenario in TABLE3_ROWS:
        key = (scenario.label, scenario.nprocs)
        label = f"{scenario.label} P={scenario.nprocs}"
        paper_row = paper_data.TABLE3.get(key, {})
        for machine in MACHINES:
            result = predict(machine, scenario)
            cells[(label, machine)] = Cell(
                machine=machine,
                model_gflops=result.gflops_per_proc,
                paper_gflops=paper_row.get(machine),
            )
    return cells


def row_labels() -> list[str]:
    return [f"{s.label} P={s.nprocs}" for s in TABLE3_ROWS]


def render() -> str:
    cells = run()
    body = render_comparison(
        "Table 3: FVCAM Gflop/P, model vs paper (r = model/paper)",
        row_labels(),
        MACHINES,
        cells,
    )
    dev = mean_abs_deviation(cells)
    return body + f"\n\nmean |model/paper - 1| over published cells: {dev:.2f}"
