"""CLI entry point: regenerate any table or figure of the paper.

Usage::

    repro-experiments              # everything
    repro-experiments table5 fig8  # a selection
    python -m repro.experiments table3
"""

from __future__ import annotations

import argparse
import sys

from . import (
    fig2,
    fig3,
    fig4,
    fig8,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    whatif,
)
from . import breakdown, figviz, modelcard, roofline_view, validate

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig8": fig8,
    "whatif": whatif,
    "breakdown": breakdown,
    "validate": validate,
    "figviz": figviz,
    "modelcard": modelcard,
    "roofline": roofline_view,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Leading Computational "
            "Methods on Scalar and Vector HEC Platforms' (SC 2005)."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        choices=[*EXPERIMENTS, "all"],
        default=["all"],
        help="which experiments to run (default: all)",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.names else args.names
    save_dir = None
    if args.save:
        import pathlib

        save_dir = pathlib.Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)
    for i, name in enumerate(names):
        if i:
            print("\n" + "=" * 78 + "\n")
        text = EXPERIMENTS[name].render()
        print(text)
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
