"""CLI entry point: regenerate any table or figure of the paper.

Usage::

    repro-experiments                # everything
    repro-experiments table5 fig8    # a selection
    repro-experiments --list         # what's available
    repro-experiments --json table3  # machine-readable output
    python -m repro.experiments table3
"""

from __future__ import annotations

import argparse
import sys

from . import (
    chaos,
    fig2,
    fig3,
    fig4,
    fig8,
    ipm,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    whatif,
)
from . import breakdown, figviz, modelcard, roofline_view, validate

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig8": fig8,
    "whatif": whatif,
    "breakdown": breakdown,
    "validate": validate,
    "figviz": figviz,
    "modelcard": modelcard,
    "roofline": roofline_view,
    "ipm": ipm,
    "chaos": chaos,
}


def _describe(module) -> str:
    """First line of an experiment module's docstring."""
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


#: Largest seed NumPy's legacy global RNG accepts.
_MAX_SEED = 2**32 - 1


def validate_args(args) -> list[str]:
    """Every CLI-argument problem, found *before* any experiment runs.

    Collected into one list so a bad ``--seed --executor`` combination
    reports both mistakes at once instead of raising mid-run.
    """
    errors: list[str] = []
    if args.executor is not None:
        from ..runtime.executors import get_executor

        try:
            # constructs (without installing) the executor; raises on a
            # malformed spec like "threads:0" or "fibers"
            get_executor(args.executor)
        except ValueError as exc:
            errors.append(f"--executor: {exc}")
    if args.seed is not None and not 0 <= args.seed <= _MAX_SEED:
        errors.append(
            f"--seed: must be in [0, 2**32 - 1], got {args.seed}"
        )
    return errors


def list_experiments() -> str:
    """The ``--list`` text: one ``name — description`` line each."""
    width = max(len(name) for name in EXPERIMENTS)
    return "\n".join(
        f"{name:<{width}}  {_describe(module)}"
        for name, module in EXPERIMENTS.items()
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Leading Computational "
            "Methods on Scalar and Vector HEC Platforms' (SC 2005)."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="name",
        default=["all"],
        help=(
            "which experiments to run (default: all; "
            "see --list for the choices)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_only",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object mapping each name to its rendered text",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    parser.add_argument(
        "--executor",
        metavar="SPEC",
        help=(
            "executor for per-rank compute segments: 'serial', 'threads', "
            "or 'threads:N' (results are identical either way — only "
            "wall-clock differs)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help=(
            "seed NumPy's legacy global RNG before running, so any "
            "experiment replays deterministically on either backend"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "reduced-size variant for experiments that support it "
            "(currently: chaos); others run at full size"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_only:
        print(list_experiments())
        return 0

    errors = validate_args(args)
    if errors:
        for err in errors:
            print(f"repro-experiments: {err}", file=sys.stderr)
        return 2

    if args.executor is not None:
        from ..runtime.executors import set_default_executor

        set_default_executor(args.executor)
    if args.seed is not None:
        import numpy as np

        np.random.seed(args.seed)

    requested = args.names or ["all"]
    unknown = [n for n in requested if n != "all" and n not in EXPERIMENTS]
    if unknown:
        print(
            f"repro-experiments: unknown experiment name(s): "
            f"{', '.join(unknown)}\n"
            f"available: {', '.join(EXPERIMENTS)}, all",
            file=sys.stderr,
        )
        return 2

    names = list(EXPERIMENTS) if "all" in requested else requested
    save_dir = None
    if args.save:
        import pathlib

        save_dir = pathlib.Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)

    import inspect

    outputs: dict[str, str] = {}
    for name in names:
        module = EXPERIMENTS[name]
        render_params = inspect.signature(module.render).parameters
        if args.quick and "quick" in render_params:
            outputs[name] = module.render(quick=True)
        else:
            outputs[name] = module.render()
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(outputs[name] + "\n")

    if args.json:
        import json

        print(json.dumps(outputs, indent=2))
    else:
        print(("\n\n" + "=" * 78 + "\n\n").join(outputs.values()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
