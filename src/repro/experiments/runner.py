"""CLI entry point: regenerate any table or figure of the paper.

Usage::

    repro-experiments                # everything
    repro-experiments table5 fig8    # a selection
    repro-experiments --list         # what's available
    repro-experiments --json table3  # machine-readable output
    python -m repro.experiments table3
"""

from __future__ import annotations

import argparse
import sys

from . import (
    fig2,
    fig3,
    fig4,
    fig8,
    ipm,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    whatif,
)
from . import breakdown, figviz, modelcard, roofline_view, validate

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig8": fig8,
    "whatif": whatif,
    "breakdown": breakdown,
    "validate": validate,
    "figviz": figviz,
    "modelcard": modelcard,
    "roofline": roofline_view,
    "ipm": ipm,
}


def _describe(module) -> str:
    """First line of an experiment module's docstring."""
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def list_experiments() -> str:
    """The ``--list`` text: one ``name — description`` line each."""
    width = max(len(name) for name in EXPERIMENTS)
    return "\n".join(
        f"{name:<{width}}  {_describe(module)}"
        for name, module in EXPERIMENTS.items()
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Leading Computational "
            "Methods on Scalar and Vector HEC Platforms' (SC 2005)."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="name",
        default=["all"],
        help=(
            "which experiments to run (default: all; "
            "see --list for the choices)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_only",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object mapping each name to its rendered text",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    parser.add_argument(
        "--executor",
        metavar="SPEC",
        help=(
            "executor for per-rank compute segments: 'serial', 'threads', "
            "or 'threads:N' (results are identical either way — only "
            "wall-clock differs)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help=(
            "seed NumPy's legacy global RNG before running, so any "
            "experiment replays deterministically on either backend"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_only:
        print(list_experiments())
        return 0

    if args.executor is not None:
        from ..runtime.executors import set_default_executor

        try:
            set_default_executor(args.executor)
        except ValueError as exc:
            print(f"repro-experiments: {exc}", file=sys.stderr)
            return 2
    if args.seed is not None:
        import numpy as np

        np.random.seed(args.seed)

    requested = args.names or ["all"]
    unknown = [n for n in requested if n != "all" and n not in EXPERIMENTS]
    if unknown:
        print(
            f"repro-experiments: unknown experiment name(s): "
            f"{', '.join(unknown)}\n"
            f"available: {', '.join(EXPERIMENTS)}, all",
            file=sys.stderr,
        )
        return 2

    names = list(EXPERIMENTS) if "all" in requested else requested
    save_dir = None
    if args.save:
        import pathlib

        save_dir = pathlib.Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)

    outputs: dict[str, str] = {}
    for name in names:
        outputs[name] = EXPERIMENTS[name].render()
        if save_dir is not None:
            (save_dir / f"{name}.txt").write_text(outputs[name] + "\n")

    if args.json:
        import json

        print(json.dumps(outputs, indent=2))
    else:
        print(("\n\n" + "=" * 78 + "\n\n").join(outputs.values()))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
