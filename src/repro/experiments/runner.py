"""CLI entry point: regenerate any table or figure of the paper.

Usage::

    repro-experiments                # everything
    repro-experiments table5 fig8    # a selection
    repro-experiments --jobs 4       # batch across worker processes
    repro-experiments --list         # what's available
    repro-experiments --json table3  # machine-readable output
    python -m repro.experiments table3

Batch semantics: one failing experiment never aborts the rest — the
failure is reported on stderr, every other requested experiment still
runs, and the exit status is nonzero.  ``--json`` always emits one
complete, well-formed object for the experiments that succeeded.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    chaos,
    fig2,
    fig3,
    fig4,
    fig8,
    ipm,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    whatif,
)
from . import breakdown, figviz, modelcard, roofline_view, validate

EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig8": fig8,
    "whatif": whatif,
    "breakdown": breakdown,
    "validate": validate,
    "figviz": figviz,
    "modelcard": modelcard,
    "roofline": roofline_view,
    "ipm": ipm,
    "chaos": chaos,
}


def _describe(module) -> str:
    """First line of an experiment module's docstring."""
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


#: Largest seed NumPy's legacy global RNG accepts.
_MAX_SEED = 2**32 - 1


def validate_args(args) -> list[str]:
    """Every CLI-argument problem, found *before* any experiment runs.

    Collected into one list so a bad ``--seed --executor`` combination
    reports both mistakes at once instead of raising mid-run.
    """
    errors: list[str] = []
    if args.executor is not None:
        from ..runtime.executors import get_executor

        try:
            # constructs (without installing) the executor; raises on a
            # malformed spec like "threads:0" or "fibers"
            executor = get_executor(args.executor)
        except ValueError as exc:
            errors.append(f"--executor: {exc}")
        else:
            if not executor.in_process:
                support = executor.segment_support()
                if not support.ok:
                    errors.append(
                        f"--executor: {args.executor!r} cannot schedule "
                        f"rank segments on this host ({support.reason}); "
                        "use 'serial' or 'threads[:N]', or --jobs N to "
                        "batch experiments across processes"
                    )
    if args.backend is not None:
        from ..kernels import set_default_backend

        try:
            # validates the name without installing it (raises listing
            # the valid choices); an *unavailable* backend is fine here
            # — each run degrades to the numpy reference with a warning
            set_default_backend(args.backend)
            set_default_backend(None)
        except ValueError as exc:
            errors.append(f"--backend: {exc}")
    if args.seed is not None and not 0 <= args.seed <= _MAX_SEED:
        errors.append(
            f"--seed: must be in [0, 2**32 - 1], got {args.seed}"
        )
    if getattr(args, "jobs", 1) is not None and args.jobs < 1:
        errors.append(f"--jobs: must be >= 1, got {args.jobs}")
    return errors


def _render_one(
    job: tuple[str, bool, "str | None", "str | None", "int | None"]
) -> str:
    """Render one experiment (module-level so worker processes can run
    it): apply the executor/backend/seed knobs locally — a spawned
    worker does not inherit the parent's process-wide defaults — then
    render."""
    name, quick, executor, backend, seed = job
    if executor is not None:
        from ..runtime.executors import set_default_executor

        set_default_executor(executor)
    if backend is not None:
        from ..kernels import set_default_backend

        set_default_backend(backend)
    if seed is not None:
        import numpy as np

        np.random.seed(seed)
    import inspect

    module = EXPERIMENTS[name]
    render_params = inspect.signature(module.render).parameters
    if quick and "quick" in render_params:
        return module.render(quick=True)
    return module.render()


def list_experiments() -> str:
    """The ``--list`` text: one ``name — description`` line each."""
    width = max(len(name) for name in EXPERIMENTS)
    return "\n".join(
        f"{name:<{width}}  {_describe(module)}"
        for name, module in EXPERIMENTS.items()
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the tables and figures of 'Leading Computational "
            "Methods on Scalar and Vector HEC Platforms' (SC 2005)."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="name",
        default=["all"],
        help=(
            "which experiments to run (default: all; "
            "see --list for the choices)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_only",
        help="list the available experiments and exit",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON object mapping each name to its rendered text",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        help="also write each experiment's output to DIR/<name>.txt",
    )
    parser.add_argument(
        "--executor",
        metavar="SPEC",
        help=(
            "executor for per-rank compute segments: 'serial', "
            "'threads[:N]', or 'processes[:N]' (results are identical "
            "either way — only wall-clock differs; processes needs fork "
            "+ POSIX shared memory)"
        ),
    )
    parser.add_argument(
        "--backend",
        metavar="SPEC",
        help=(
            "kernel backend for the solvers' hot loops: 'numpy' or "
            "'numba' (results are bitwise identical either way — only "
            "wall-clock differs; an unavailable backend degrades to the "
            "numpy reference with a warning)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="N",
        help=(
            "seed NumPy's legacy global RNG before running *each* "
            "experiment, so every experiment replays deterministically "
            "regardless of batch order or --jobs fan-out"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=(
            "reduced-size variant for experiments that support it "
            "(currently: chaos); others run at full size"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "render the requested experiments concurrently across N "
            "worker processes (campaign-style batch; default: 1, "
            "in-process)"
        ),
    )
    args = parser.parse_args(argv)

    if args.list_only:
        print(list_experiments())
        return 0

    errors = validate_args(args)
    if errors:
        for err in errors:
            print(f"repro-experiments: {err}", file=sys.stderr)
        return 2

    if args.executor is not None:
        from ..runtime.executors import set_default_executor

        set_default_executor(args.executor)
    if args.backend is not None:
        from ..kernels import set_default_backend

        set_default_backend(args.backend)
    if args.seed is not None:
        import numpy as np

        np.random.seed(args.seed)

    requested = args.names or ["all"]
    unknown = [n for n in requested if n != "all" and n not in EXPERIMENTS]
    if unknown:
        print(
            f"repro-experiments: unknown experiment name(s): "
            f"{', '.join(unknown)}\n"
            f"available: {', '.join(EXPERIMENTS)}, all",
            file=sys.stderr,
        )
        return 2

    names = list(EXPERIMENTS) if "all" in requested else requested
    save_dir = None
    if args.save:
        import pathlib

        save_dir = pathlib.Path(args.save)
        save_dir.mkdir(parents=True, exist_ok=True)

    jobs = [
        (name, args.quick, args.executor, args.backend, args.seed)
        for name in names
    ]
    outputs: dict[str, str] = {}
    failures: dict[str, str] = {}
    if args.jobs > 1 and len(names) > 1:
        # campaign-style batch: fan the renders out across worker
        # processes; per-job error isolation comes with the seam.
        from ..runtime.executors import ProcessExecutor

        executor = ProcessExecutor(min(args.jobs, len(names)))
        completed = executor.imap_unordered(_render_one, jobs)
    else:
        def _serial():
            for i, job in enumerate(jobs):
                try:
                    yield i, _render_one(job), None
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - isolate
                    yield i, None, exc

        completed = _serial()
    for i, text, exc in completed:
        name = names[i]
        if exc is not None:
            failures[name] = f"{type(exc).__name__}: {exc}"
            print(
                f"repro-experiments: {name} failed: {failures[name]}",
                file=sys.stderr,
            )
        else:
            outputs[name] = text
            if save_dir is not None:
                (save_dir / f"{name}.txt").write_text(text + "\n")

    if args.json:
        import json

        # complete, well-formed JSON of the successes only — never a
        # partial object truncated by a mid-batch exception
        print(json.dumps(
            {name: outputs[name] for name in names if name in outputs},
            indent=2,
        ))
    else:
        print(
            ("\n\n" + "=" * 78 + "\n\n").join(
                outputs[name] for name in names if name in outputs
            )
        )
    if failures:
        print(
            f"repro-experiments: {len(failures)} of {len(names)} "
            f"experiment(s) failed: {', '.join(sorted(failures))}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
