"""Table 6 — PARATEC on the 488-atom CdSe quantum dot."""

from __future__ import annotations

from ..apps.paratec import TABLE6_ROWS, predict
from ..apps.paratec.workload import ParatecScenario
from . import paper_data
from .common import Cell, mean_abs_deviation, render_comparison

MACHINES = ["Power3", "Itanium2", "Opteron", "X1", "X1-SSP", "ES", "SX-8"]


def run() -> dict[tuple[str, str], Cell]:
    cells: dict[tuple[str, str], Cell] = {}
    for scenario in TABLE6_ROWS:
        label = f"P={scenario.nprocs}"
        paper_row = paper_data.TABLE6.get(scenario.nprocs, {})
        for machine in MACHINES:
            result = predict(machine, scenario)
            gflops = result.gflops_per_proc
            if machine == "X1-SSP":
                gflops *= 4
            cells[(label, machine)] = Cell(
                machine="X1" if machine == "X1-SSP" else machine,
                model_gflops=gflops,
                paper_gflops=paper_row.get(machine),
            )
    return cells


def row_labels() -> list[str]:
    return [f"P={s.nprocs}" for s in TABLE6_ROWS]


def render() -> str:
    cells = run()
    body = render_comparison(
        "Table 6: PARATEC (488-atom CdSe) Gflop/P, model vs paper",
        row_labels(),
        MACHINES,
        cells,
    )
    dev = mean_abs_deviation(cells)
    es = predict("ES", ParatecScenario(2048))
    body += (
        f"\n\nmean |model/paper - 1| over published cells: {dev:.2f}"
        f"\nES @2048 aggregate: {es.aggregate_tflops:.1f} Tflop/s "
        f"(paper: {paper_data.HEADLINES['paratec_es_2048_tflops']} Tflop/s)"
    )
    return body
