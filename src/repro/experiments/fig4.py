"""Figure 4 — FVCAM simulated days per wall-clock day."""

from __future__ import annotations

from ..apps.fvcam import TABLE3_ROWS, FVCAMScenario, simulated_days_per_day
from . import paper_data

MACHINES = ["Power3", "Itanium2", "X1", "X1E", "ES"]

#: Machines with published Table 3 entries per scenario (others dashed).
_PUBLISHED = {
    (s.label, s.nprocs): set(paper_data.TABLE3.get((s.label, s.nprocs), {}))
    for s in TABLE3_ROWS
}


def run() -> dict[str, list[tuple[str, int, float]]]:
    """Per-machine [(config, P, simulated days/day), ...] series."""
    out: dict[str, list[tuple[str, int, float]]] = {m: [] for m in MACHINES}
    for scenario in TABLE3_ROWS:
        for machine in MACHINES:
            if machine not in _PUBLISHED.get(
                (scenario.label, scenario.nprocs), set()
            ):
                continue
            rate = simulated_days_per_day(machine, scenario)
            out[machine].append((scenario.label, scenario.nprocs, rate))
    return out


def render() -> str:
    data = run()
    lines = [
        "Figure 4: FVCAM simulated days per wall-clock day (model),",
        "evaluated at the published Table 3 cells",
        "",
    ]
    for machine, series in data.items():
        if not series:
            continue
        lines.append(f"{machine}:")
        for label, nprocs, rate in series:
            lines.append(f"   {label:<7} P={nprocs:<5d} {rate:9.0f} days/day")
    best = max(
        (rate, m, p)
        for m, series in data.items()
        for _, p, rate in series
    )
    lines.append("")
    lines.append(
        f"fastest configuration: {best[1]} at P={best[2]} -> "
        f"{best[0]:.0f} simulated days/day "
        f"(paper: speedup over real time of over "
        f"{paper_data.HEADLINES['fvcam_x1e_672_simdays']:.0f} on 672 "
        "processors of the X1E)"
    )
    return "\n".join(lines)
