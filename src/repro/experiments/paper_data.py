"""The paper's published numbers, transcribed table by table.

Every experiment renders its model output side by side with these
reference values, and EXPERIMENTS.md is generated from the comparison.
Units: Gflop/s per processor ("Gflop/P").  X1-SSP entries are the
aggregate of 4 SSPs, as printed in the paper.
"""

from __future__ import annotations

#: Table 3 — FVCAM on the D mesh.  {(config, P): {machine: Gflop/P}}
TABLE3: dict[tuple[str, int], dict[str, float]] = {
    ("1D", 32): {"Power3": 0.12, "Itanium2": 0.40, "X1": 1.72, "X1E": 1.88, "ES": 1.33},
    ("1D", 64): {"Power3": 0.12, "X1E": 1.67, "ES": 1.12},
    ("1D", 128): {"Power3": 0.11, "ES": 0.81},
    ("1D", 256): {"Power3": 0.10, "ES": 0.54},
    ("2D-4v", 128): {"Power3": 0.11, "Itanium2": 0.33, "X1": 1.34, "X1E": 1.48, "ES": 1.01},
    ("2D-4v", 256): {"Power3": 0.09, "Itanium2": 0.30, "X1": 1.05, "X1E": 1.19, "ES": 0.83},
    ("2D-4v", 376): {"Itanium2": 0.27, "X1E": 0.99},
    ("2D-4v", 512): {"Power3": 0.09, "ES": 0.57},
    ("2D-7v", 336): {"Power3": 0.09, "Itanium2": 0.29, "X1": 0.96, "X1E": 1.09, "ES": 0.79},
    ("2D-7v", 644): {"Itanium2": 0.23, "X1E": 0.71},
    ("2D-7v", 672): {"Power3": 0.07, "X1E": 0.70, "ES": 0.56},
    ("2D-7v", 896): {"Power3": 0.06, "ES": 0.44},
    ("2D-7v", 1680): {"Power3": 0.05},
}

#: Table 4 — GTC, fixed 3.2M particles/processor.  {P: {machine: Gflop/P}}
TABLE4: dict[int, dict[str, float]] = {
    64: {"Power3": 0.14, "Itanium2": 0.39, "Opteron": 0.59, "X1": 1.29, "X1-SSP": 1.12, "ES": 1.60, "SX-8": 2.39},
    128: {"Power3": 0.14, "Itanium2": 0.39, "Opteron": 0.59, "X1": 1.22, "X1-SSP": 1.00, "ES": 1.56, "SX-8": 2.28},
    256: {"Power3": 0.14, "Itanium2": 0.38, "Opteron": 0.57, "X1": 1.17, "X1-SSP": 0.92, "ES": 1.55, "SX-8": 2.32},
    512: {"Power3": 0.14, "Itanium2": 0.38, "Opteron": 0.51, "ES": 1.53},
    1024: {"Power3": 0.14, "Itanium2": 0.37, "ES": 1.88},
    2048: {"Power3": 0.13, "Itanium2": 0.37, "ES": 1.82},
}

#: Particles-per-cell labels of Table 4's rows.
TABLE4_PPC: dict[int, int] = {64: 100, 128: 200, 256: 400, 512: 800, 1024: 1600, 2048: 3200}

#: Table 5 — LBMHD3D.  {(grid, P): {machine: Gflop/P}}
TABLE5: dict[tuple[int, int], dict[str, float]] = {
    (256, 16): {"Power3": 0.14, "Itanium2": 0.26, "Opteron": 0.70, "X1": 5.19, "ES": 5.50, "SX-8": 7.89},
    (256, 64): {"Power3": 0.15, "Itanium2": 0.35, "Opteron": 0.68, "X1": 5.24, "ES": 5.25, "SX-8": 8.10},
    (512, 256): {"Power3": 0.14, "Itanium2": 0.32, "Opteron": 0.60, "X1": 5.26, "X1-SSP": 1.34 * 4, "ES": 5.45, "SX-8": 9.52},
    (512, 512): {"Power3": 0.14, "Itanium2": 0.35, "Opteron": 0.59, "X1-SSP": 1.34 * 4, "ES": 5.21},
    (1024, 1024): {"X1-SSP": 1.30 * 4, "ES": 5.44},
    (1024, 2048): {"ES": 5.41},
}

#: Table 6 — PARATEC, 488-atom CdSe dot.  {P: {machine: Gflop/P}}
TABLE6: dict[int, dict[str, float]] = {
    64: {"Power3": 0.94, "X1": 4.25, "X1-SSP": 4.32, "SX-8": 7.91},
    128: {"Power3": 0.93, "Itanium2": 2.84, "X1": 3.19, "X1-SSP": 3.72, "ES": 5.12, "SX-8": 7.53},
    256: {"Power3": 0.85, "Itanium2": 2.63, "Opteron": 1.98, "X1": 3.05, "ES": 4.97, "SX-8": 6.81},
    512: {"Power3": 0.73, "Itanium2": 2.44, "Opteron": 0.95, "ES": 4.36},
    1024: {"Power3": 0.60, "Itanium2": 1.77, "ES": 3.64},
    2048: {"ES": 2.67},
}

#: Headline aggregate claims from the abstract/conclusions.
HEADLINES = {
    "gtc_es_2048_tflops": 3.7,
    "lbmhd_es_4800_tflops": 26.0,
    "paratec_es_2048_tflops": 5.5,
    "fvcam_x1e_672_simdays": 4200.0,
    "lbmhd_es_pct_peak": 68.0,
}


def lookup(app: str, key, machine: str) -> float | None:
    """Paper value for one cell; None when the paper has a dash."""
    table = {"fvcam": TABLE3, "gtc": TABLE4, "lbmhd": TABLE5, "paratec": TABLE6}[app]
    return table.get(key, {}).get(machine)
