"""What-if studies the paper suggests but could not run.

Three counterfactuals, each tied to a paper statement:

* **SX-8 with FPLRAM** — "Faster FPLRAM memory is available for the
  SX-8 and would certainly increase GTC performance; however this
  memory technology is more expensive...": give the SX-8 the ES's
  per-flop gather bandwidth and re-evaluate Table 4.
* **X1 with ES-sized vector registers** — "Because the X1 has fewer
  vector registers than the ES/SX-8 (32 vs 72), vectorizing these
  complex loops will exhaust the hardware limits and force spilling to
  memory": give the X1 72 registers and re-evaluate LBMHD3D, whose
  collision loop is the spill victim.
* **Sensitivity profiles** — which machine parameter binds each
  application (elasticity of modeled rate per parameter).
"""

from __future__ import annotations

from ..apps.fvcam import FVCAMScenario
from ..apps.gtc import GTCScenario
from ..apps.gtc.workload import rank_work as gtc_rank_work
from ..apps.gtc.workload import step_time as gtc_step_time
from ..apps.lbmhd import LBMHDScenario
from ..apps.paratec import ParatecScenario
from ..machines.catalog import get_machine
from ..perfmodel.sensitivity import perturb, sensitivity_profile


def sx8_with_fplram() -> dict[str, float]:
    """GTC rate on the stock SX-8 vs an FPLRAM-equipped counterfactual.

    FPLRAM parity means matching the ES's gather bytes *per peak flop*:
    the SX-8's gather fraction rises until gather_bw / peak equals the
    ES's ratio.
    """
    es = get_machine("ES")
    sx8 = get_machine("SX-8")
    es_gather_per_flop = (
        es.vector.gather_bw_fraction * es.stream_bw_gbs / es.peak_gflops
    )
    target_fraction = (
        es_gather_per_flop * sx8.peak_gflops / sx8.stream_bw_gbs
    )
    upgraded = perturb(
        sx8,
        "vector.gather_bw_fraction",
        target_fraction / sx8.vector.gather_bw_fraction,
    )

    scenario = GTCScenario(256, 400)

    def rate(spec):
        t_comp, t_comm = gtc_step_time(spec, scenario)
        return gtc_rank_work(spec).flops / (t_comp + t_comm) / 1e9

    return {
        "stock": rate(sx8),
        "fplram": rate(upgraded),
        "speedup": rate(upgraded) / rate(sx8),
    }


def x1_with_es_registers() -> dict[str, float]:
    """LBMHD on the stock 32-register X1 vs a 72-register counterfactual.

    The spill-traffic model (repro.machines.vector) charges the memory
    system for the collision loop's excess live values; 72 registers
    eliminate the spills outright.
    """
    from ..apps.lbmhd.collision import collision_work
    from ..apps.lbmhd.workload import step_time as lbmhd_step_time

    x1 = get_machine("X1")
    upgraded = perturb(x1, "vector.num_registers", 72.0 / 32.0)
    scenario = LBMHDScenario(512, 256)

    def rate(spec):
        t_comp, t_comm = lbmhd_step_time(spec, scenario)
        flops = collision_work(
            int(round(scenario.grid**3 / scenario.nprocs))
        ).flops
        return flops / (t_comp + t_comm) / 1e9

    return {
        "stock": rate(x1),
        "more_registers": rate(upgraded),
        "speedup": rate(upgraded) / rate(x1),
    }


#: (app, scenario) pairs used for the sensitivity table.
SENSITIVITY_CASES = {
    "lbmhd": LBMHDScenario(512, 256),
    "gtc": GTCScenario(256, 400),
    "paratec": ParatecScenario(256),
    "fvcam": FVCAMScenario(256, 4),
}

SENSITIVITY_PARAMS = (
    "peak_gflops",
    "stream_bw_gbs",
    "vector.gather_bw_fraction",
    "vector.scalar_ratio",
    "blas3_efficiency",
)


def sensitivity_profiles() -> dict[str, dict[str, float]]:
    """Per-parameter elasticity of the modeled ES rate, per application."""
    return {
        app: sensitivity_profile(
            app, scenario, get_machine("ES"), SENSITIVITY_PARAMS
        )
        for app, scenario in SENSITIVITY_CASES.items()
    }


#: Named counterfactuals, individually addressable — this is what the
#: service's ``GET /v1/whatif/<name>`` endpoint serves.
WHATIF_CASES = {
    "sx8_fplram": sx8_with_fplram,
    "x1_registers": x1_with_es_registers,
    "sensitivity": sensitivity_profiles,
}


def run() -> dict:
    return {
        "sx8_fplram": sx8_with_fplram(),
        "x1_registers": x1_with_es_registers(),
        "es_sensitivity": sensitivity_profiles(),
    }


def render() -> str:
    data = run()
    lines = ["What-if studies (model counterfactuals)", ""]
    s = data["sx8_fplram"]
    lines.append(
        f"SX-8 + FPLRAM, GTC @256: {s['stock']:.2f} -> {s['fplram']:.2f} "
        f"Gflop/P ({(s['speedup'] - 1) * 100:+.0f}%) — 'faster FPLRAM ... "
        "would certainly increase GTC performance'."
    )
    x = data["x1_registers"]
    lines.append(
        f"X1 with 72 vector registers, LBMHD3D @256: {x['stock']:.2f} -> "
        f"{x['more_registers']:.2f} Gflop/P "
        f"({(x['speedup'] - 1) * 100:+.0f}%) — tiny, matching the paper's "
        "own surprise: 'we see no performance penalty ... probably due to "
        "the spilled registers being effectively cached'."
    )
    lines += [
        "",
        "Elasticity of the modeled ES rate (1.0 = binds, 0.0 = slack):",
        f"{'parameter':<28}"
        + "".join(f" {a:>8}" for a in data["es_sensitivity"]),
    ]
    for param in SENSITIVITY_PARAMS:
        row = f"{param:<28}"
        for app in data["es_sensitivity"]:
            row += f" {data['es_sensitivity'][app].get(param, 0.0):8.2f}"
        lines.append(row)
    lines += [
        "",
        "Reading: LBMHD rides the vector pipes (peak binds), GTC the",
        "gather rate, PARATEC the BLAS3 efficiency + peak, and FVCAM a",
        "mix of peak and the scalar unit (its unvectorized remainder).",
    ]
    return "\n".join(lines)
