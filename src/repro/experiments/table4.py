"""Table 4 — GTC at fixed 3.2M particles per processor."""

from __future__ import annotations

from ..apps.gtc import TABLE4_ROWS, predict
from . import paper_data
from .common import Cell, mean_abs_deviation, render_comparison

MACHINES = ["Power3", "Itanium2", "Opteron", "X1", "X1-SSP", "ES", "SX-8"]


def run() -> dict[tuple[str, str], Cell]:
    cells: dict[tuple[str, str], Cell] = {}
    for scenario in TABLE4_ROWS:
        label = f"P={scenario.nprocs} ({scenario.particles_per_cell}/cell)"
        paper_row = paper_data.TABLE4.get(scenario.nprocs, {})
        for machine in MACHINES:
            result = predict(machine, scenario)
            gflops = result.gflops_per_proc
            if machine == "X1-SSP":
                gflops *= 4  # the paper reports 4-SSP aggregates
            cells[(label, machine)] = Cell(
                machine="X1" if machine == "X1-SSP" else machine,
                model_gflops=gflops,
                paper_gflops=paper_row.get(machine),
            )
    return cells


def row_labels() -> list[str]:
    return [
        f"P={s.nprocs} ({s.particles_per_cell}/cell)" for s in TABLE4_ROWS
    ]


def render() -> str:
    cells = run()
    body = render_comparison(
        "Table 4: GTC Gflop/P, model vs paper (X1-SSP = 4-SSP aggregate)",
        row_labels(),
        MACHINES,
        cells,
    )
    dev = mean_abs_deviation(cells)
    # headline: 2048-way ES aggregate
    from ..apps.gtc import GTCScenario

    es = predict("ES", GTCScenario(2048, 3200))
    body += (
        f"\n\nmean |model/paper - 1| over published cells: {dev:.2f}"
        f"\nES @2048 aggregate: {es.aggregate_tflops:.1f} Tflop/s "
        f"(paper: {paper_data.HEADLINES['gtc_es_2048_tflops']} Tflop/s)"
    )
    return body
