"""Table 1 — architectural highlights of the evaluated platforms."""

from __future__ import annotations

from ..machines.catalog import list_machines


def run() -> list[dict]:
    """One record per platform, mirroring Table 1's columns."""
    rows = []
    for m in list_machines():
        if m.name == "X1-SSP":  # a mode of the X1, not a Table 1 row
            continue
        rows.append(
            {
                "Platform": m.name,
                "Network": m.interconnect_name,
                "CPU/Node": m.node.cpus_per_node,
                "Clock (MHz)": m.clock_mhz,
                "Peak (GF/s)": m.peak_gflops,
                "Stream BW (GB/s/CPU)": m.stream_bw_gbs,
                "Peak Stream (B/F)": round(m.bytes_per_flop, 2),
                "MPI Lat (usec)": m.mpi_latency_us,
                "MPI BW (GB/s/CPU)": m.mpi_bw_gbs,
                "Topology": m.topology.value,
            }
        )
    return rows


def render() -> str:
    rows = run()
    cols = list(rows[0].keys())
    widths = {
        c: max(len(c), *(len(str(r[c])) for r in rows)) for c in cols
    }
    lines = ["Table 1: Architectural highlights (model catalog)", ""]
    lines.append("  ".join(f"{c:>{widths[c]}}" for c in cols))
    lines.append("-" * (sum(widths.values()) + 2 * (len(cols) - 1)))
    for r in rows:
        lines.append("  ".join(f"{str(r[c]):>{widths[c]}}" for c in cols))
    return "\n".join(lines)
