"""Figure 3 — FVCAM percentage of peak vs processor count."""

from __future__ import annotations

from ..apps.fvcam import FVCAMScenario, predict
from ..machines.catalog import get_machine

#: The decompositions Figure 3 selects.
SERIES = (
    FVCAMScenario(32, 1),
    FVCAMScenario(256, 4),
    FVCAMScenario(336, 7),
    FVCAMScenario(672, 7),
)

MACHINES = ["Power3", "Itanium2", "X1", "X1E", "ES"]


def run() -> dict[str, list[tuple[int, float]]]:
    """Per-machine [(P, %peak), ...] series."""
    out: dict[str, list[tuple[int, float]]] = {}
    for machine in MACHINES:
        series = []
        for scenario in SERIES:
            r = predict(machine, scenario)
            series.append((scenario.nprocs, r.pct_peak))
        out[machine] = series
    return out


def render() -> str:
    data = run()
    lines = [
        "Figure 3: FVCAM % of theoretical peak vs processors (model)",
        "",
        f"{'Machine':<10}"
        + "".join(f"  P={s.nprocs:<5d}({s.label})" for s in SERIES),
    ]
    for machine, series in data.items():
        lines.append(
            f"{machine:<10}"
            + "".join(f"  {pct:6.1f}%{'':<7}" for _, pct in series)
        )
    lines.append("")
    # the figure's two headline observations
    es_leads = all(
        data["ES"][k][1] >= max(data[m][k][1] for m in MACHINES) - 1e-9
        for k in range(len(SERIES))
    )
    declines = all(
        data[m][0][1] >= data[m][-1][1] for m in MACHINES
    )
    lines.append(
        f"ES achieves the highest %peak in every column: {es_leads} "
        "(paper: 'the ES consistently achieves the highest percentage of peak')"
    )
    lines.append(
        f"%peak declines with processor count on every machine: {declines}"
    )
    return "\n".join(lines)
