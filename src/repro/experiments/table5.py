"""Table 5 — LBMHD3D across grid sizes and concurrencies."""

from __future__ import annotations

from ..apps.lbmhd import ES_HEADLINE, TABLE5_ROWS, predict
from . import paper_data
from .common import Cell, mean_abs_deviation, render_comparison

MACHINES = ["Power3", "Itanium2", "Opteron", "X1", "X1-SSP", "ES", "SX-8"]


def run() -> dict[tuple[str, str], Cell]:
    cells: dict[tuple[str, str], Cell] = {}
    for scenario in TABLE5_ROWS:
        key = (scenario.grid, scenario.nprocs)
        label = f"{scenario.label} P={scenario.nprocs}"
        paper_row = paper_data.TABLE5.get(key, {})
        for machine in MACHINES:
            result = predict(machine, scenario)
            gflops = result.gflops_per_proc
            if machine == "X1-SSP":
                gflops *= 4
            cells[(label, machine)] = Cell(
                machine="X1" if machine == "X1-SSP" else machine,
                model_gflops=gflops,
                paper_gflops=paper_row.get(machine),
            )
    return cells


def row_labels() -> list[str]:
    return [f"{s.label} P={s.nprocs}" for s in TABLE5_ROWS]


def render() -> str:
    cells = run()
    body = render_comparison(
        "Table 5: LBMHD3D Gflop/P, model vs paper (X1-SSP = 4-SSP aggregate)",
        row_labels(),
        MACHINES,
        cells,
    )
    dev = mean_abs_deviation(cells)
    es = predict("ES", ES_HEADLINE)
    body += (
        f"\n\nmean |model/paper - 1| over published cells: {dev:.2f}"
        f"\nES @4800 aggregate: {es.aggregate_tflops:.1f} Tflop/s at "
        f"{es.pct_peak:.0f}% of peak (paper: >"
        f"{paper_data.HEADLINES['lbmhd_es_4800_tflops']:.0f} Tflop/s at "
        f"{paper_data.HEADLINES['lbmhd_es_pct_peak']:.0f}%)"
    )
    return body
