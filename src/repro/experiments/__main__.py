"""``python -m repro.experiments`` — same as the ``repro-experiments`` CLI."""

import sys

from .runner import main

sys.exit(main())
