"""Roofline view: every application placed on every machine's roofline.

The paper's Table 1 column "Peak Stream (Bytes/Flop)" is the roofline
argument in embryo: a machine's attainable rate is
``min(peak, STREAM x intensity)``, and each code's computational
intensity decides which side of the ridge it lands on.  This experiment
draws the classic log-log roofline in ASCII for selected machines and
marks the four applications at their modeled intensities.
"""

from __future__ import annotations

import numpy as np

from ..apps.fvcam import FVCAMScenario
from ..apps.fvcam.workload import rank_step_work
from ..apps.gtc import GTCScenario
from ..apps.gtc.workload import rank_work as gtc_rank_work
from ..apps.lbmhd import LBMHDScenario
from ..apps.lbmhd.workload import kernel_works as lbmhd_kernels
from ..apps.paratec import ParatecScenario
from ..apps.paratec.workload import rank_work as paratec_rank_work
from ..machines.catalog import get_machine
from ..perfmodel.roofline import Roofline

MACHINES = ("Opteron", "X1", "ES", "SX-8")
MARKS = {"lbmhd": "L", "gtc": "G", "paratec": "P", "fvcam": "F"}


def app_points(machine: str) -> dict[str, tuple[float, float]]:
    """(intensity flops/byte, modeled Gflop/P) per application."""
    spec = get_machine(machine)
    roof = Roofline(spec)
    works = {
        "lbmhd": next(
            iter(lbmhd_kernels(spec, LBMHDScenario(512, 256)).values())
        ),
        "gtc": gtc_rank_work(spec),
        "paratec": paratec_rank_work(spec, 256),
        "fvcam": rank_step_work(spec, FVCAMScenario(256, 4)),
    }
    return {
        app: (min(w.intensity, 64.0), roof.sustained(w))
        for app, w in works.items()
    }


def ascii_roofline(machine: str, width: int = 56, height: int = 12) -> str:
    """Log-log ASCII roofline with application markers."""
    spec = get_machine(machine)
    roof = Roofline(spec)
    x_lo, x_hi = -4.0, 6.0  # log2 intensity range
    y_hi = np.log2(spec.peak_gflops) + 0.5
    y_lo = y_hi - 9.0

    canvas = [[" "] * width for _ in range(height)]

    def to_col(log2_x: float) -> int:
        return int((log2_x - x_lo) / (x_hi - x_lo) * (width - 1))

    def to_row(log2_y: float) -> int:
        frac = (log2_y - y_lo) / (y_hi - y_lo)
        return int((1.0 - frac) * (height - 1))

    for col in range(width):
        log2_x = x_lo + col / (width - 1) * (x_hi - x_lo)
        attainable = roof.attainable(2.0**log2_x)
        row = to_row(np.log2(attainable))
        if 0 <= row < height:
            canvas[row][col] = "-" if attainable >= spec.peak_gflops else "/"

    for app, (intensity, rate) in app_points(machine).items():
        col = np.clip(to_col(np.log2(max(intensity, 2.0**x_lo))), 0, width - 1)
        row = np.clip(to_row(np.log2(max(rate, 2.0**y_lo))), 0, height - 1)
        canvas[row][col] = MARKS[app]

    lines = [
        f"{machine}: peak {spec.peak_gflops} GF/s, STREAM "
        f"{spec.stream_bw_gbs} GB/s, ridge at "
        f"{roof.ridge_intensity:.2f} flops/byte",
    ]
    for r, row in enumerate(canvas):
        label = (
            f"{2.0 ** (y_hi - r / (height - 1) * (y_hi - y_lo)):8.2f} |"
            if r % 3 == 0
            else f"{'':8} |"
        )
        lines.append(label + "".join(row))
    lines.append(f"{'':8} +" + "-" * width)
    lines.append(
        f"{'':10}2^{x_lo:.0f} ... 2^{x_hi:.0f} flops/byte   "
        "(L=LBMHD G=GTC P=PARATEC F=FVCAM)"
    )
    return "\n".join(lines)


def run() -> dict[str, dict[str, tuple[float, float]]]:
    return {m: app_points(m) for m in MACHINES}


def render() -> str:
    parts = ["Roofline view of the four applications (model)", ""]
    for m in MACHINES:
        parts.append(ascii_roofline(m))
        parts.append("")
    parts.append(
        "Reading: on the ES every code but GTC sits right of the ridge\n"
        "(0.30 flops/byte) — compute-limited, where vector pipes shine;\n"
        "GTC's gathers land it far below the unit-stride roof on every\n"
        "machine, deepest on the DDR2-equipped SX-8."
    )
    return "\n".join(parts)
