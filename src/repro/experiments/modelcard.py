"""Model card: every free parameter of the performance model, disclosed.

Performance models earn trust by disclosing their knobs.  This
experiment prints (1) the calibration residuals with their bounds,
(2) the fitted microarchitectural constants of the catalog, and
(3) the resulting mean model-vs-paper deviation per table — the same
numbers the test suite pins.
"""

from __future__ import annotations

from ..machines.catalog import list_machines
from ..machines.spec import ProcessorKind
from ..perfmodel.efficiency import RESIDUAL_BAND, all_calibrations


def run() -> dict:
    residuals = all_calibrations()
    machines = {}
    for spec in list_machines():
        entry = {
            "blas3_efficiency": spec.blas3_efficiency,
            "bisection_oversubscription": spec.bisection_oversubscription,
        }
        if spec.kind is ProcessorKind.VECTOR:
            entry.update(
                {
                    "gather_bw_fraction": spec.vector.gather_bw_fraction,
                    "scalar_ratio": spec.vector.scalar_ratio,
                    "startup_cycles": spec.vector.startup_cycles,
                    "num_registers": spec.vector.num_registers,
                }
            )
        else:
            entry.update(
                {
                    "gather_bw_fraction": spec.scalar.gather_bw_fraction,
                    "issue_efficiency": spec.scalar.issue_efficiency,
                    "has_fma": spec.scalar.has_fma,
                }
            )
        machines[spec.name] = entry
    return {"residuals": residuals, "machines": machines}


def render() -> str:
    data = run()
    lines = [
        "Model card: the performance model's free parameters",
        "",
        f"Calibration residuals (rate multipliers, band {RESIDUAL_BAND};",
        "provenance comments live in repro/perfmodel/efficiency.py):",
        "",
        f"{'app':<10}"
        + "".join(
            f" {m:>9}"
            for m in (
                "Power3",
                "Itanium2",
                "Opteron",
                "X1",
                "X1-SSP",
                "X1E",
                "ES",
                "SX-8",
            )
        ),
    ]
    residuals = data["residuals"]
    for app in ("fvcam", "gtc", "lbmhd", "paratec"):
        row = f"{app:<10}"
        for machine in (
            "Power3",
            "Itanium2",
            "Opteron",
            "X1",
            "X1-SSP",
            "X1E",
            "ES",
            "SX-8",
        ):
            value = residuals.get((app, machine))
            row += f" {value:9.2f}" if value is not None else f" {'1.00':>9}"
        lines.append(row)

    lines += [
        "",
        "Fitted microarchitectural constants (annotated in catalog.py):",
        "",
    ]
    for name, entry in data["machines"].items():
        parts = ", ".join(
            f"{k}={v}" for k, v in entry.items() if k != "has_fma"
        )
        lines.append(f"{name:<9} {parts}")

    lines += [
        "",
        "Everything else in the model is either a Table 1 measurement or",
        "a first-principles formula (roofline, Hockney, Amdahl, log-tree",
        "collectives); see docs/performance-model.md.",
    ]
    return "\n".join(lines)
