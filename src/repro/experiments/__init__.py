"""Experiment modules — one per table/figure of the paper's evaluation.

Each module exposes ``run()`` (structured data) and ``render()`` (the
printable table/figure).  The CLI lives in
:mod:`repro.experiments.runner` (``repro-experiments``).
"""

from . import (  # noqa: F401
    breakdown,
    fig2,
    fig3,
    fig4,
    fig8,
    figviz,
    ipm,
    modelcard,
    paper_data,
    roofline_view,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    validate,
    whatif,
)
from .runner import EXPERIMENTS, main

__all__ = [
    "EXPERIMENTS",
    "breakdown",
    "fig2",
    "fig3",
    "fig4",
    "fig8",
    "figviz",
    "ipm",
    "modelcard",
    "roofline_view",
    "main",
    "paper_data",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "validate",
    "whatif",
]
