"""IPM-style per-phase profiles of all four applications on one machine.

The paper's methodology in one table set: every application runs through
the unified harness (:mod:`repro.harness`) on the Earth Simulator
machine model with a phase ledger attached, and each run's per-phase
compute / communication / synchronization / byte-volume breakdown is
printed — the simulated counterpart of the IPM profiles the authors
collected on each platform.
"""

from __future__ import annotations

from .. import harness
from ..apps.fvcam import FVCAMParams, LatLonGrid
from ..apps.gtc import GTCParams
from ..apps.lbmhd import LBMHDParams
from ..apps.paratec import ParatecParams

MACHINE = "ES"

#: (app key, params, nprocs, steps) of each profiled run — laptop-scale
#: configurations with genuinely parallel decompositions.
RUNS = (
    ("lbmhd", LBMHDParams(shape=(8, 8, 8)), 8, 3),
    (
        "gtc",
        GTCParams(mpsi=12, mtheta=16, ntoroidal=4, particles_per_cell=5),
        8,
        3,
    ),
    (
        "fvcam",
        FVCAMParams(grid=LatLonGrid(im=24, jm=18, km=4), py=3, pz=2),
        6,
        4,
    ),
    ("paratec", ParatecParams(), 2, 2),
)


def run() -> list[harness.HarnessResult]:
    """Execute every configured run on the machine model."""
    return [
        harness.run(key, params, steps=steps, nprocs=nprocs, machine=MACHINE)
        for key, params, nprocs, steps in RUNS
    ]


def render() -> str:
    results = run()
    lines = [
        "IPM-style phase profiles: all four applications through the",
        f"unified harness on the {MACHINE} machine model "
        "(per step, rank-averaged)",
    ]
    for result in results:
        lines.append("")
        lines.append(result.render())
        bd = result.breakdown()
        lines.append(
            f"{'':<14} comm+sync fraction: {100 * bd.comm_fraction:5.1f}%"
        )
    return "\n".join(lines)
