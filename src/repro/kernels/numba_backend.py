"""Numba-accelerated kernel backend.

Overrides only the kernels whose NumPy reference is a *sequential*
elementwise/scatter recipe that a jitted loop can replicate operation
for operation — which is what makes the bitwise contract provable:

* GTC deposit (scalar + work-vector): ``np.add.at`` / per-stripe
  ``np.bincount`` are sequential accumulations in ravel order; the
  jitted loops run the identical additions in the identical order.
* GTC gather + push: elementwise expressions whose association order
  the loops reproduce exactly (IEEE-754 elementwise arithmetic is
  deterministic per element; only re-association could change bits,
  and none happens here).  ``np.mod``'s fmod-then-correct semantics
  and ``np.clip``/``np.where`` selection are replicated explicitly.
* FVCAM suffix sum / geopotential: ``np.cumsum`` is a sequential
  accumulation along the axis; the jitted loop accumulates in the same
  order.

LBMHD collision (BLAS matmul, einsum) and PARATEC FFT/CG (pocketfft,
BLAS) are *not* overridden: their reference implementations dispatch to
vendor kernels whose reduction order a jitted loop cannot cheaply
reproduce bitwise, and ``numba`` does not support ``np.fft`` at all.
They inherit the reference — per-kernel inheritance is the designed
degrade path (see :mod:`repro.kernels.base`).

``fastmath`` stays off everywhere: the whole point of the backend
contract is that speed never buys re-association.

The module imports without numba installed; :meth:`NumbaBackend.available`
probes for it (and honours ``REPRO_NUMBA_DISABLE``, the analogue of
``REPRO_SHM_DISABLE``), and the registry's capability policy handles
rejection/degrade.  JIT compilation is lazy and memoized per kernel,
with ``cache=True`` so repeated processes (campaign workers, CI) reuse
the compiled artifacts.
"""

from __future__ import annotations

import math
import os
from typing import Any, Callable

import numpy as np

from .base import KernelBackend, KernelSupport

#: cached import probe (the env toggle is re-read on every call so tests
#: can flip it, but the "is numba importable" answer never changes
#: within a process).
_PROBE: KernelSupport | None = None

_JITTED: dict[Callable, Callable] = {}


def _probe_numba() -> KernelSupport:
    global _PROBE
    if _PROBE is None:
        try:
            import numba  # noqa: F401
        except Exception as exc:  # pragma: no cover - host-dependent
            _PROBE = KernelSupport(
                False, f"numba is not importable ({exc.__class__.__name__})"
            )
        else:
            _PROBE = KernelSupport(
                True, f"numba {numba.__version__} JIT kernels"
            )
    return _PROBE


def _jit(py_fn: Callable) -> Callable:
    """Lazily njit-compile ``py_fn`` (memoized per function)."""
    fn = _JITTED.get(py_fn)
    if fn is None:
        import numba

        fn = numba.njit(cache=True, fastmath=False)(py_fn)
        _JITTED[py_fn] = fn
    return fn


# -- jitted loop bodies (plain Python; compiled on first use) -----------


def _scatter_add(rho, idx, wts):
    # np.add.at(rho, idx, wts): sequential read-modify-write in input
    # (ravel) order — this loop is that order, addition for addition.
    for k in range(idx.shape[0]):
        rho[idx[k]] += wts[k]


def _deposit_stripes(total, tmp, idx, wts, num_copies, n):
    # Reference: per stripe c, total += bincount(idx[:, sel].ravel(),
    # wts[:, sel].ravel()).  bincount accumulates sequentially in input
    # order = row-major over (stencil row, selected column); selected
    # columns of stripe c are exactly cols c, c+num_copies, ...  Empty
    # stripes are skipped (no `total += zeros`, which would flip -0.0).
    rows = idx.shape[0]
    for c in range(num_copies):
        if c >= n:
            continue
        for g in range(total.shape[0]):
            tmp[g] = 0.0
        for row in range(rows):
            for col in range(c, n, num_copies):
                tmp[idx[row, col]] += wts[row, col]
        for g in range(total.shape[0]):
            total[g] += tmp[g]


def _gather(field, i, j, ip, jp, w00, w01, w10, w11, out):
    # ((w00*f + w01*f) + w10*f) + w11*f — the reference's left-to-right
    # association, per element.
    for k in range(i.shape[0]):
        out[k] = (
            w00[k] * field[i[k], j[k]]
            + w01[k] * field[i[k], jp[k]]
            + w10[k] * field[ip[k], j[k]]
            + w11[k] * field[ip[k], jp[k]]
        )


def _push(
    r,
    theta,
    zeta,
    vpar,
    e_r,
    e_theta,
    b0,
    q_r0,
    dt,
    major_radius,
    lo,
    hi,
    out_r,
    out_theta,
    out_zeta,
):
    two_lo = 2.0 * lo
    two_hi = 2.0 * hi
    tau = 2.0 * np.pi
    for k in range(r.shape[0]):
        vr = -e_theta[k] / b0
        vtheta = e_r[k] / (b0 * r[k]) + vpar[k] / (q_r0 * r[k])
        new_r = r[k] + dt * vr
        # np.where reflections, applied low-then-high like the reference
        if new_r < lo:
            new_r = two_lo - new_r
        if new_r > hi:
            new_r = two_hi - new_r
        # np.clip: pure selection, no arithmetic
        if new_r < lo:
            new_r = lo
        if new_r > hi:
            new_r = hi
        out_r[k] = new_r
        # np.mod = fmod, then sign-correct; exact zero becomes +0.0
        x = theta[k] + dt * vtheta
        m = math.fmod(x, tau)
        if m != 0.0:
            if m < 0.0:
                m += tau
        else:
            m = 0.0
        out_theta[k] = m
        out_zeta[k] = zeta[k] + (dt * vpar[k]) / major_radius


def _suffix_sum_2d(h, out):
    # np.cumsum(h[::-1], axis=0)[::-1]: out[k] = out[k+1] + h[k],
    # accumulated bottom-up exactly like the reference's running sum.
    levels, cols = h.shape
    for m in range(cols):
        out[levels - 1, m] = h[levels - 1, m]
    for k in range(levels - 2, -1, -1):
        for m in range(cols):
            out[k, m] = out[k + 1, m] + h[k, m]


def _scale_2d(a, alpha):
    rows, cols = a.shape
    for r_ in range(rows):
        for c in range(cols):
            a[r_, c] = alpha * a[r_, c]


class NumbaBackend(KernelBackend):
    """JIT-compiled loops for the scatter/gather/push hot paths."""

    name = "numba"

    def available(self) -> KernelSupport:
        # env toggle checked fresh each call (tests flip it); the
        # import probe is cached for the life of the process.
        if os.environ.get("REPRO_NUMBA_DISABLE"):
            return KernelSupport(
                False, "REPRO_NUMBA_DISABLE is set in the environment"
            )
        return _probe_numba()

    # -- GTC ------------------------------------------------------------

    def gtc_deposit_scalar(
        self,
        grid: Any,
        particles: Any,
        gyro_radius: float = 0.0,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        from ..apps.gtc.deposit import _ring_stencils

        idx, wts = _ring_stencils(grid, particles, gyro_radius)
        if out is not None:
            rho = out.view()
            rho.shape = (grid.num_points,)
            rho.fill(0.0)
        elif arena is not None:
            rho = arena.scratch("gtc.deposit.rho", (grid.num_points,))
            rho.fill(0.0)
        else:
            rho = np.zeros(grid.num_points)
        _jit(_scatter_add)(
            rho,
            np.ascontiguousarray(idx).reshape(-1),
            np.ascontiguousarray(wts).reshape(-1),
        )
        return rho.reshape(grid.shape)

    def gtc_deposit_work_vector(
        self,
        grid: Any,
        particles: Any,
        num_copies: int,
        gyro_radius: float = 0.0,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        from ..apps.gtc.deposit import _ring_stencils

        if num_copies < 1:
            raise ValueError("num_copies must be >= 1")
        idx, wts = _ring_stencils(grid, particles, gyro_radius)
        n = len(particles)
        if out is not None:
            total = out.view()
            total.shape = (grid.num_points,)
            total.fill(0.0)
        elif arena is not None:
            total = arena.scratch(
                "gtc.deposit.wv_total", (grid.num_points,)
            )
            total.fill(0.0)
        else:
            total = np.zeros(grid.num_points)
        tmp = np.empty(grid.num_points)
        _jit(_deposit_stripes)(
            total,
            tmp,
            np.ascontiguousarray(idx),
            np.ascontiguousarray(wts),
            num_copies,
            n,
        )
        return total.reshape(grid.shape)

    def gtc_gather_field(
        self,
        grid: Any,
        e_r: np.ndarray,
        e_theta: np.ndarray,
        particles: Any,
    ) -> tuple[np.ndarray, np.ndarray]:
        i, j, fi, fj = grid.locate(particles.r, particles.theta)
        jp = (j + 1) % grid.mtheta
        ip = np.minimum(i + 1, grid.mpsi - 1)
        # weights computed with the reference's exact numpy expressions
        w00 = (1 - fi) * (1 - fj)
        w01 = (1 - fi) * fj
        w10 = fi * (1 - fj)
        w11 = fi * fj
        gather = _jit(_gather)
        out_r = np.empty_like(fi)
        out_t = np.empty_like(fi)
        gather(
            np.ascontiguousarray(e_r), i, j, ip, jp, w00, w01, w10, w11,
            out_r,
        )
        gather(
            np.ascontiguousarray(e_theta), i, j, ip, jp, w00, w01, w10,
            w11, out_t,
        )
        return out_r, out_t

    def gtc_push_particles(
        self,
        torus: Any,
        particles: Any,
        e_r_at_p: np.ndarray,
        e_theta_at_p: np.ndarray,
        params: Any,
        out: Any | None = None,
    ) -> Any:
        from ..apps.gtc.particles import ParticleArray

        plane = torus.plane
        lo, hi = plane.r0 + 1e-6, plane.r1 - 1e-6
        if out is None:
            out = ParticleArray(
                r=np.empty_like(particles.r),
                theta=np.empty_like(particles.theta),
                zeta=np.empty_like(particles.zeta),
                vpar=particles.vpar.copy(),
                weight=particles.weight.copy(),
                species=particles.species.copy(),
            )
        else:
            out.vpar[...] = particles.vpar
            out.weight[...] = particles.weight
            out.species[...] = particles.species
        _jit(_push)(
            particles.r,
            particles.theta,
            particles.zeta,
            particles.vpar,
            e_r_at_p,
            e_theta_at_p,
            params.b0,
            params.safety_q * torus.major_radius,
            params.dt,
            torus.major_radius,
            lo,
            hi,
            out.r,
            out.theta,
            out.zeta,
        )
        return out

    # -- FVCAM ----------------------------------------------------------

    def fvcam_suffix_sum(self, h: np.ndarray) -> np.ndarray:
        h2 = np.ascontiguousarray(h).reshape(h.shape[0], -1)
        out = np.empty_like(h2)
        _jit(_suffix_sum_2d)(h2, out)
        return out.reshape(h.shape)

    def fvcam_geopotential(self, h: np.ndarray, gravity: float) -> np.ndarray:
        # gravity * suffix: one multiply per element, same as the
        # reference's `gravity * np.cumsum(...)`.
        h2 = np.ascontiguousarray(h).reshape(h.shape[0], -1)
        out = np.empty_like(h2)
        _jit(_suffix_sum_2d)(h2, out)
        _jit(_scale_2d)(out, float(gravity))
        return out.reshape(h.shape)
