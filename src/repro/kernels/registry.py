"""Kernel-backend registration and resolution.

Mirrors the executor seam (:mod:`repro.runtime.executors`): one flat
namespace of named backends, resolved per call site with the chain

1. an explicit :class:`~repro.kernels.base.KernelBackend` instance or
   name passed by the caller;
2. the process-wide default installed with :func:`set_default_backend`
   (what the ``repro-experiments --backend`` flag uses);
3. the ``REPRO_KERNEL_BACKEND`` environment variable (what the CI
   kernel-backend job sets);
4. ``"numpy"``.

Capability policy, mirroring ``segment_support()``: a backend that
cannot run on this host (:meth:`KernelBackend.available` is falsy) is
**rejected with a ValueError naming the reason** when the caller asked
for it explicitly, but **warned about once and degraded to the numpy
reference** when it arrived ambiently (default or environment) — so a
campaign sweep with a ``numba`` axis completes on a numba-less host
instead of dying, and the warning tells you the cells ran on the
reference backend.

Unknown backend *names* are always an error listing the valid choices
— and naming ``REPRO_KERNEL_BACKEND`` as the source when the bad spec
came from the environment, so a typo in CI config is diagnosable from
the message alone.
"""

from __future__ import annotations

import os
import threading
import warnings
from typing import Callable

from .base import KernelBackend, KernelSupport, NumPyBackend

_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: name -> zero-arg factory; factories import lazily so registering the
#: numba backend costs nothing until someone asks for it.
_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
#: name -> constructed singleton (backends are stateless; one each).
_INSTANCES: dict[str, KernelBackend] = {}
_REGISTRY_LOCK = threading.Lock()

_DEFAULT_LOCK = threading.Lock()
_default_spec: "str | KernelBackend | None" = None

#: backend names already warned about this process (once-per-key policy)
_WARNED: set[str] = set()
_WARNED_LOCK = threading.Lock()


def register_backend(
    name: str,
    factory: Callable[[], KernelBackend],
    *,
    replace: bool = False,
) -> None:
    """Register a backend factory under ``name``.

    ``replace=True`` allows shadowing an existing registration (tests
    use this to install toy backends); otherwise a duplicate name is an
    error so two subsystems cannot silently fight over one name.
    """
    key = name.strip().lower()
    if not key:
        raise ValueError("backend name must be non-empty")
    with _REGISTRY_LOCK:
        if key in _FACTORIES and not replace:
            raise ValueError(f"kernel backend {key!r} is already registered")
        _FACTORIES[key] = factory
        _INSTANCES.pop(key, None)


def unregister_backend(name: str) -> None:
    """Remove a registration (tests cleaning up toy backends)."""
    key = name.strip().lower()
    with _REGISTRY_LOCK:
        _FACTORIES.pop(key, None)
        _INSTANCES.pop(key, None)


def backend_names() -> list[str]:
    """Registered spec names, registration order (for CLI help/errors)."""
    with _REGISTRY_LOCK:
        return list(_FACTORIES)


def available_backends() -> dict[str, KernelSupport]:
    """Name -> :class:`KernelSupport` for every registered backend."""
    return {name: _instance(name).available() for name in backend_names()}


def _instance(name: str) -> KernelBackend:
    with _REGISTRY_LOCK:
        backend = _INSTANCES.get(name)
        if backend is None:
            factory = _FACTORIES.get(name)
            if factory is None:
                raise KeyError(name)  # _parse turns this into a ValueError
            backend = factory()
            _INSTANCES[name] = backend
    return backend


def _parse(
    spec: "str | KernelBackend", source: str = "argument"
) -> KernelBackend:
    """Resolve a spec to a backend instance; unknown names are a
    ValueError listing the valid choices and naming the environment
    variable when that is where the bad spec came from."""
    if isinstance(spec, KernelBackend):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            "kernel backend spec must be a string or KernelBackend, "
            f"got {type(spec)!r}"
        )
    key = spec.strip().lower()
    try:
        return _instance(key)
    except KeyError:
        origin = f" (from {_ENV_VAR})" if source == "env" else ""
        choices = ", ".join(repr(n) for n in backend_names())
        raise ValueError(
            f"unknown kernel backend {spec!r}{origin}; "
            f"valid choices: {choices}"
        ) from None


def set_default_backend(
    spec: "str | KernelBackend | None",
) -> KernelBackend | None:
    """Install a process-wide default backend (``None`` clears it).

    Returns the resolved backend (so callers can log the choice), or
    ``None`` when clearing.  The default outranks ``REPRO_KERNEL_BACKEND``
    but is outranked by an explicit per-call argument.  The name is
    validated here; *availability* is checked at resolution time, where
    an unavailable ambient default degrades to numpy with a warning.
    """
    global _default_spec
    resolved = None if spec is None else _parse(spec)
    with _DEFAULT_LOCK:
        _default_spec = spec
    return resolved


def _warn_once(name: str, reason: str) -> None:
    with _WARNED_LOCK:
        if name in _WARNED:
            return
        _WARNED.add(name)
    warnings.warn(
        f"kernel backend {name!r} is unavailable here ({reason}); "
        "using the numpy reference backend instead",
        RuntimeWarning,
        stacklevel=3,
    )


def _clear_warned() -> None:
    """Reset the once-per-key warning memory (tests only)."""
    with _WARNED_LOCK:
        _WARNED.clear()


def get_backend(
    spec: "str | KernelBackend | None" = None,
) -> KernelBackend:
    """Resolve a backend spec (see module docstring for the chain).

    An explicitly requested backend that cannot run here raises a
    ValueError naming the reason; an ambient one (default/env) warns
    once and degrades to the numpy reference.
    """
    explicit = spec is not None
    source = "argument"
    if spec is None:
        with _DEFAULT_LOCK:
            spec = _default_spec
        source = "default"
    if spec is None:
        env = os.environ.get(_ENV_VAR)
        if env:
            spec, source = env, "env"
        else:
            return _instance("numpy")
    backend = _parse(spec, source)
    support = backend.available()
    if support.ok:
        return backend
    if explicit:
        raise ValueError(
            f"kernel backend {backend.name!r} is unavailable here: "
            f"{support.reason}"
        )
    _warn_once(backend.name, support.reason)
    return _instance("numpy")


def resolve_backend(
    spec: "str | KernelBackend | None" = None,
) -> KernelBackend:
    """Harness-style resolution: degrade even explicit-but-unavailable
    specs to the numpy reference (with the once-per-key warning) rather
    than raise.  Unknown names still raise — a typo is never silently
    the reference backend.  This is what ``harness.run(kernel_backend=)``
    and campaign workers use, so a sweep with a ``numba`` axis completes
    on hosts without numba while recording what actually ran.
    """
    try:
        return get_backend(spec)
    except ValueError as exc:
        if spec is None or "unavailable here" not in str(exc):
            raise
        backend = _parse(spec)
        _warn_once(backend.name, backend.available().reason)
        return _instance("numpy")


def _register_builtins() -> None:
    register_backend("numpy", NumPyBackend, replace=True)

    def _make_numba() -> KernelBackend:
        from .numba_backend import NumbaBackend

        return NumbaBackend()

    register_backend("numba", _make_numba, replace=True)


_register_builtins()
