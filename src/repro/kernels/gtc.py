"""Backend-dispatched GTC hot kernels (deposit, gather, push)."""

from __future__ import annotations

from typing import Any

import numpy as np

from .registry import get_backend

__all__ = [
    "deposit_scalar",
    "deposit_work_vector",
    "gather_field",
    "push_particles",
]


def deposit_scalar(
    grid: Any,
    particles: Any,
    gyro_radius: float = 0.0,
    out: np.ndarray | None = None,
    arena: Any | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).gtc_deposit_scalar(
        grid, particles, gyro_radius, out=out, arena=arena
    )


def deposit_work_vector(
    grid: Any,
    particles: Any,
    num_copies: int,
    gyro_radius: float = 0.0,
    out: np.ndarray | None = None,
    arena: Any | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).gtc_deposit_work_vector(
        grid, particles, num_copies, gyro_radius, out=out, arena=arena
    )


def gather_field(
    grid: Any,
    e_r: np.ndarray,
    e_theta: np.ndarray,
    particles: Any,
    backend: Any | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    return get_backend(backend).gtc_gather_field(grid, e_r, e_theta, particles)


def push_particles(
    torus: Any,
    particles: Any,
    e_r_at_p: np.ndarray,
    e_theta_at_p: np.ndarray,
    params: Any,
    out: Any | None = None,
    backend: Any | None = None,
) -> Any:
    return get_backend(backend).gtc_push_particles(
        torus, particles, e_r_at_p, e_theta_at_p, params, out=out
    )
