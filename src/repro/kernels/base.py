"""The kernel-backend contract and the NumPy reference backend.

A :class:`KernelBackend` is one *implementation family* for every hot
loop body the four solvers dispatch: LBMHD collision/equilibria/stream,
GTC deposit/gather/push, PARATEC line/plane FFTs and CG sweep
primitives, FVCAM geopotential/dynamics.  The base class **is** the
reference implementation — every method delegates to the existing NumPy
kernels in :mod:`repro.apps`, bitwise-unchanged — so an accelerated
backend subclasses it and overrides only the kernels it genuinely
speeds up; everything else inherits the reference.  That per-kernel
inheritance is what keeps the parity contract cheap to uphold:

*Every backend must produce bitwise-identical results to the NumPy
reference for every kernel*, across decompositions and executors (the
``tests/test_kernels.py`` matrix enforces this).  A backend that cannot
meet that bar for some kernel must not override it.

Backends are stateless (safe to share across threads and to inherit
copy-on-write into forked segment workers) and are resolved through
:mod:`repro.kernels.registry` exactly like executors: explicit argument
> process default > ``REPRO_KERNEL_BACKEND`` > ``"numpy"``.
"""

from __future__ import annotations

from typing import Any

import numpy as np


class KernelSupport:
    """Whether a backend can run on this host — and why not.

    Truthy exactly when the backend is usable; ``reason`` carries the
    human-readable explanation either way (capability on success, the
    missing prerequisite on failure), mirroring
    :class:`repro.runtime.executors.SegmentSupport` so rejection errors
    and fallback warnings can name the actual cause.
    """

    __slots__ = ("ok", "reason")

    def __init__(self, ok: bool, reason: str) -> None:
        self.ok = ok
        self.reason = reason

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KernelSupport(ok={self.ok}, reason={self.reason!r})"


class KernelBackend:
    """One implementation family for the solvers' hot kernels.

    The base class is the NumPy reference: every method calls the
    existing :mod:`repro.apps` kernel with unchanged arguments, so the
    default backend is bitwise-identical to the historical code paths
    by construction.  App modules are imported inside the methods (the
    import is a cached ``sys.modules`` lookup after the first call) so
    this module never participates in an import cycle with the app
    packages that import the registry.
    """

    #: spec-style name ("numpy", "numba")
    name: str = "kernel-backend"

    def available(self) -> KernelSupport:
        """Can this backend run here?  The reference always can."""
        return KernelSupport(True, "NumPy reference kernels")

    # -- LBMHD ----------------------------------------------------------

    def lbmhd_collide(
        self,
        state: np.ndarray,
        params: Any,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        """One BGK collision over the (local) grid; returns new state."""
        from ..apps.lbmhd.collision import collide

        return collide(state, params, out=out, arena=arena)

    def lbmhd_f_equilibrium(
        self,
        rho: np.ndarray,
        u: np.ndarray,
        B: np.ndarray,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        from ..apps.lbmhd.equilibrium import f_equilibrium

        return f_equilibrium(rho, u, B, out=out, arena=arena)

    def lbmhd_g_equilibrium(
        self,
        u: np.ndarray,
        B: np.ndarray,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        from ..apps.lbmhd.equilibrium import g_equilibrium

        return g_equilibrium(u, B, out=out, arena=arena)

    def lbmhd_stream_periodic(
        self, state: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        from ..apps.lbmhd.stream import stream_periodic

        return stream_periodic(state, out=out)

    def lbmhd_stream_from_padded(
        self, padded: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        from ..apps.lbmhd.stream import stream_from_padded

        return stream_from_padded(padded, out=out)

    def lbmhd_stream_from_padded_batch(
        self, padded: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        from ..apps.lbmhd.stream import stream_from_padded_batch

        return stream_from_padded_batch(padded, out=out)

    # -- GTC ------------------------------------------------------------

    def gtc_deposit_scalar(
        self,
        grid: Any,
        particles: Any,
        gyro_radius: float = 0.0,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        from ..apps.gtc.deposit import deposit_scalar

        return deposit_scalar(
            grid, particles, gyro_radius, out=out, arena=arena
        )

    def gtc_deposit_work_vector(
        self,
        grid: Any,
        particles: Any,
        num_copies: int,
        gyro_radius: float = 0.0,
        out: np.ndarray | None = None,
        arena: Any | None = None,
    ) -> np.ndarray:
        from ..apps.gtc.deposit import deposit_work_vector

        return deposit_work_vector(
            grid, particles, num_copies, gyro_radius, out=out, arena=arena
        )

    def gtc_gather_field(
        self,
        grid: Any,
        e_r: np.ndarray,
        e_theta: np.ndarray,
        particles: Any,
    ) -> tuple[np.ndarray, np.ndarray]:
        from ..apps.gtc.push import gather_field

        return gather_field(grid, e_r, e_theta, particles)

    def gtc_push_particles(
        self,
        torus: Any,
        particles: Any,
        e_r_at_p: np.ndarray,
        e_theta_at_p: np.ndarray,
        params: Any,
        out: Any | None = None,
    ) -> Any:
        from ..apps.gtc.push import push_particles

        return push_particles(
            torus, particles, e_r_at_p, e_theta_at_p, params, out=out
        )

    # -- PARATEC --------------------------------------------------------

    def paratec_ifft_z(self, lines: np.ndarray) -> np.ndarray:
        """Inverse 1-D FFT along z of one rank's column lines."""
        return np.fft.ifft(lines, axis=1)

    def paratec_fft_z(self, lines: np.ndarray) -> np.ndarray:
        """Forward 1-D FFT along z of one rank's column lines."""
        return np.fft.fft(lines, axis=1)

    def paratec_ifft2_planes(self, slab: np.ndarray) -> np.ndarray:
        """Inverse planar FFTs of one rank's z-slab."""
        return np.fft.ifft2(slab, axes=(0, 1))

    def paratec_fft2_planes(self, slab: np.ndarray) -> np.ndarray:
        """Forward planar FFTs of one rank's z-slab."""
        return np.fft.fft2(slab, axes=(0, 1))

    def paratec_cg_axpy(
        self, y: np.ndarray, alpha: complex, x: np.ndarray
    ) -> None:
        """One slice of the CG sweep's y += alpha x, in place."""
        y += alpha * x

    def paratec_cg_scale(self, x: np.ndarray, alpha: complex) -> None:
        """One slice of the CG sweep's x *= alpha, in place."""
        x *= alpha

    def paratec_cg_precondition(
        self, g: np.ndarray, kinetic: np.ndarray, e_ref: float
    ) -> np.ndarray:
        """Teter diagonal preconditioner g / (1 + T/E) for one slice."""
        return g / (1.0 + kinetic / e_ref)

    # -- FVCAM ----------------------------------------------------------

    def fvcam_suffix_sum(self, h: np.ndarray) -> np.ndarray:
        """Vertical suffix sum: out[k] = sum_{k' >= k} h[k']."""
        return np.cumsum(h[::-1], axis=0)[::-1]

    def fvcam_geopotential(self, h: np.ndarray, gravity: float) -> np.ndarray:
        from ..apps.fvcam.dynamics import geopotential

        return geopotential(h, gravity)

    def fvcam_transport_2d(
        self,
        grid: Any,
        q: np.ndarray,
        cu: np.ndarray,
        cv: np.ndarray,
    ) -> np.ndarray:
        from ..apps.fvcam.dynamics import transport_2d

        return transport_2d(grid, q, cu, cv)

    def fvcam_pressure_gradient(
        self,
        grid: Any,
        phi: np.ndarray,
        coslat: np.ndarray,
        dt: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        from ..apps.fvcam.dynamics import pressure_gradient

        return pressure_gradient(grid, phi, coslat, dt)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"


class NumPyBackend(KernelBackend):
    """The reference backend: the extracted current code, unchanged."""

    name = "numpy"
