"""Backend-dispatched LBMHD hot kernels (collision, equilibria, stream).

Thin module-level entry points over :class:`KernelBackend` methods —
the one-API-many-implementations surface.  ``backend=None`` resolves
through the registry chain (explicit > default > ``REPRO_KERNEL_BACKEND``
> numpy); passing a name or instance pins the implementation for this
call only.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .registry import get_backend

__all__ = [
    "collide",
    "f_equilibrium",
    "g_equilibrium",
    "stream_periodic",
    "stream_from_padded",
    "stream_from_padded_batch",
]


def collide(
    state: np.ndarray,
    params: Any,
    out: np.ndarray | None = None,
    arena: Any | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).lbmhd_collide(
        state, params, out=out, arena=arena
    )


def f_equilibrium(
    rho: np.ndarray,
    u: np.ndarray,
    B: np.ndarray,
    out: np.ndarray | None = None,
    arena: Any | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).lbmhd_f_equilibrium(
        rho, u, B, out=out, arena=arena
    )


def g_equilibrium(
    u: np.ndarray,
    B: np.ndarray,
    out: np.ndarray | None = None,
    arena: Any | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).lbmhd_g_equilibrium(
        u, B, out=out, arena=arena
    )


def stream_periodic(
    state: np.ndarray,
    out: np.ndarray | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).lbmhd_stream_periodic(state, out=out)


def stream_from_padded(
    padded: np.ndarray,
    out: np.ndarray | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).lbmhd_stream_from_padded(padded, out=out)


def stream_from_padded_batch(
    padded: np.ndarray,
    out: np.ndarray | None = None,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).lbmhd_stream_from_padded_batch(
        padded, out=out
    )
