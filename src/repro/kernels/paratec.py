"""Backend-dispatched PARATEC hot kernels (3-D FFT stages, CG sweep)."""

from __future__ import annotations

from typing import Any

import numpy as np

from .registry import get_backend

__all__ = [
    "ifft_z",
    "fft_z",
    "ifft2_planes",
    "fft2_planes",
    "cg_axpy",
    "cg_scale",
    "cg_precondition",
]


def ifft_z(lines: np.ndarray, backend: Any | None = None) -> np.ndarray:
    return get_backend(backend).paratec_ifft_z(lines)


def fft_z(lines: np.ndarray, backend: Any | None = None) -> np.ndarray:
    return get_backend(backend).paratec_fft_z(lines)


def ifft2_planes(slab: np.ndarray, backend: Any | None = None) -> np.ndarray:
    return get_backend(backend).paratec_ifft2_planes(slab)


def fft2_planes(slab: np.ndarray, backend: Any | None = None) -> np.ndarray:
    return get_backend(backend).paratec_fft2_planes(slab)


def cg_axpy(
    y: np.ndarray, alpha: complex, x: np.ndarray, backend: Any | None = None
) -> None:
    get_backend(backend).paratec_cg_axpy(y, alpha, x)


def cg_scale(
    x: np.ndarray, alpha: complex, backend: Any | None = None
) -> None:
    get_backend(backend).paratec_cg_scale(x, alpha)


def cg_precondition(
    g: np.ndarray,
    kinetic: np.ndarray,
    e_ref: float,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).paratec_cg_precondition(g, kinetic, e_ref)
