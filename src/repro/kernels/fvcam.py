"""Backend-dispatched FVCAM hot kernels (geopotential, dynamics)."""

from __future__ import annotations

from typing import Any

import numpy as np

from .registry import get_backend

__all__ = [
    "suffix_sum",
    "geopotential",
    "transport_2d",
    "pressure_gradient",
]


def suffix_sum(h: np.ndarray, backend: Any | None = None) -> np.ndarray:
    return get_backend(backend).fvcam_suffix_sum(h)


def geopotential(
    h: np.ndarray, gravity: float, backend: Any | None = None
) -> np.ndarray:
    return get_backend(backend).fvcam_geopotential(h, gravity)


def transport_2d(
    grid: Any,
    q: np.ndarray,
    cu: np.ndarray,
    cv: np.ndarray,
    backend: Any | None = None,
) -> np.ndarray:
    return get_backend(backend).fvcam_transport_2d(grid, q, cu, cv)


def pressure_gradient(
    grid: Any,
    phi: np.ndarray,
    coslat: np.ndarray,
    dt: float,
    backend: Any | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    return get_backend(backend).fvcam_pressure_gradient(grid, phi, coslat, dt)
