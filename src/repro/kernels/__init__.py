"""repro.kernels — pluggable backends for the solvers' hot kernels.

One API, many implementations (the FluidFFT pattern): every hot loop
body the four solvers execute — LBMHD collision/equilibria/stream, GTC
deposit/gather/push, PARATEC FFT stages and CG sweep primitives, FVCAM
geopotential/dynamics — is a method on :class:`KernelBackend`, with a
``numpy`` reference backend (the historical code, bitwise-unchanged)
and a ``numba`` accelerated backend that overrides the kernels it can
replicate bitwise and inherits the reference for the rest.

Resolution mirrors the executor seam: explicit argument > process
default (:func:`set_default_backend`) > ``REPRO_KERNEL_BACKEND`` >
``"numpy"``; unavailable explicit backends raise naming the reason,
unavailable ambient ones warn once and degrade to numpy.  See
``docs/kernels.md``.
"""

from .base import KernelBackend, KernelSupport, NumPyBackend
from .registry import (
    available_backends,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    unregister_backend,
)

__all__ = [
    "KernelBackend",
    "KernelSupport",
    "NumPyBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "unregister_backend",
]
