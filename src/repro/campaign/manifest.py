"""JSONL progress journal of one campaign invocation.

Every event is one JSON object per line, appended and flushed as it
happens, so a campaign killed mid-flight leaves a readable journal up
to the kill point.  The journal is *descriptive* — resume correctness
comes from the content-addressed cache (a completed run's entry was
published before its ``run-done`` event was journaled) — but it is what
``repro-campaign status`` renders and what post-hoc tooling reads.

Events::

    {"event": "campaign-start", "name": ..., "total": N, "spec": {...},
     "host": {"name": ..., "cpu_count": N}, "version": ...}
    {"event": "run-start",  "key": ..., "label": ..., "config": {...}}
    {"event": "run-done",   "key": ..., "label": ..., "config": {...},
     "cached": bool, "wall_s": ..., "gflops": ...}
    {"event": "run-failed", "key": ..., "label": ..., "config": {...},
     "error": "..."}
    {"event": "campaign-end", "hits": H, "misses": M, "failures": F,
     "wall_s": ...}

The ``config`` and ``host``/``version`` fields are what
:func:`repro.perfdb.ingest.records_from_manifest` normalizes into
canonical :class:`~repro.perfdb.record.RunRecord` rows; journals from
older package versions lack them, and the ingester falls back to
expanding the journaled spec and matching content keys.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator


class Manifest:
    """Append-only JSONL journal (opened lazily, flushed per event)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, event: dict[str, Any]) -> None:
        with self.path.open("a") as fh:
            fh.write(json.dumps(event, sort_keys=True) + "\n")
            fh.flush()


class NullManifest:
    """No-op stand-in when journaling is disabled."""

    path = None

    def append(self, event: dict[str, Any]) -> None:  # pragma: no cover
        pass


def read_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Parse a journal, skipping a torn trailing line if the writer died
    mid-append."""
    p = Path(path)
    if not p.exists():
        return
    with p.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                continue


def summarize(path: str | Path) -> dict[str, Any]:
    """Aggregate a journal into the ``status`` view.

    Returns name/total plus per-state counts and the latest event per
    run key, so an interrupted campaign shows exactly which configs
    completed, failed, or never started.
    """
    name = None
    total = 0
    runs: dict[str, dict[str, Any]] = {}
    ended = False
    for event in read_events(path):
        kind = event.get("event")
        if kind == "campaign-start":
            name = event.get("name")
            total = int(event.get("total", 0))
            runs.clear()
            ended = False
        elif kind in ("run-start", "run-done", "run-failed"):
            key = str(event.get("key"))
            runs[key] = event
        elif kind == "campaign-end":
            ended = True
    done = [e for e in runs.values() if e.get("event") == "run-done"]
    failed = [e for e in runs.values() if e.get("event") == "run-failed"]
    running = [e for e in runs.values() if e.get("event") == "run-start"]
    hits = sum(1 for e in done if e.get("cached"))
    return {
        "name": name,
        "total": total,
        "complete": ended,
        "done": len(done),
        "hits": hits,
        "misses": len(done) - hits,
        "failed": len(failed),
        "in_flight": len(running),
        "pending": max(total - len(runs), 0),
        "runs": runs,
    }
