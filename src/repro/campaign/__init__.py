"""Declarative measurement campaigns: cached, resumable, multi-process.

The paper's results are sweeps — every table and figure is a grid of
(application x platform x concurrency x decomposition) measurements.
This package turns such a grid into a managed campaign:

* :class:`~repro.campaign.spec.CampaignSpec` declares the sweep axes
  and expands into hashable :class:`~repro.campaign.spec.RunConfig`\\ s;
* :mod:`~repro.campaign.worker` executes one config through the
  harness inside a worker process and marshals the result back as a
  plain dict;
* :class:`~repro.campaign.cache.ResultCache` is a content-addressed
  on-disk store keyed by config hash + package version, so completed
  runs are never re-executed;
* :class:`~repro.campaign.manifest.Manifest` journals progress to a
  JSONL file, so an interrupted campaign resumes by skipping hits;
* :func:`~repro.campaign.engine.run_campaign` schedules the misses
  concurrently across worker processes (``ProcessExecutor``) and
  aggregates everything into a
  :class:`~repro.campaign.report.CampaignReport`.

The ``repro-campaign`` CLI (:mod:`repro.campaign.cli`) exposes
``run`` / ``status`` / ``clean`` on top.
"""

from .cache import CacheStats, ResultCache
from .engine import run_campaign
from .manifest import Manifest, read_events, summarize
from .report import CampaignReport, ConfigResult
from .spec import CampaignSpec, RunConfig

__all__ = [
    "CacheStats",
    "CampaignReport",
    "CampaignSpec",
    "ConfigResult",
    "Manifest",
    "ResultCache",
    "RunConfig",
    "read_events",
    "run_campaign",
    "summarize",
]
