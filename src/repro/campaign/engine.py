"""The campaign scheduler: cache-check, fan out, journal, aggregate.

:func:`run_campaign` expands a spec, serves every config it can from
the :class:`~repro.campaign.cache.ResultCache`, schedules the misses
concurrently on an executor (worker *processes* by default), journals
every completion to the JSONL manifest, and returns a
:class:`~repro.campaign.report.CampaignReport`.

Resume comes for free: workers publish each result to the
content-addressed cache the moment it completes, so re-invoking an
interrupted campaign finds the finished configs as cache hits and only
executes the remainder.  A failing config is isolated — it is reported
(journal + report row) and the rest of the sweep still runs.
"""

from __future__ import annotations

import os
import socket
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from .. import __version__
from ..runtime.executors import Executor, get_executor
from . import worker
from .cache import ResultCache
from .manifest import Manifest, NullManifest
from .report import CampaignReport, ConfigResult
from .spec import CampaignSpec, RunConfig, unique_configs

#: Called after every config completes: (done_so_far, total, row).
ProgressFn = Callable[[int, int, ConfigResult], None]


def default_manifest_path(
    cache_root: str | Path, name: str
) -> Path:
    """Where ``repro-campaign run`` journals campaign ``name``."""
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
    return Path(cache_root) / f"{safe}.manifest.jsonl"


def resolve_scheduler(spec: "str | Executor") -> Executor:
    """Resolve a campaign scheduler spec to an executor.

    Everything :func:`~repro.runtime.executors.get_executor` accepts,
    plus ``"distrib:HOST:PORT"`` — distributed dispatch to
    ``repro-distrib worker`` processes (lazily imported so the socket
    machinery costs nothing until someone asks for it).
    """
    if isinstance(spec, Executor):
        return spec
    if isinstance(spec, str) and spec.strip().lower().startswith("distrib:"):
        from ..distrib.dispatch import DistribExecutor

        return DistribExecutor.from_spec(spec)
    return get_executor(spec)


#: Backward-compatible alias (pre-distrib name, kept for callers).
_scheduler = resolve_scheduler


def run_campaign(
    spec: CampaignSpec,
    *,
    configs: "Iterable[RunConfig] | None" = None,
    cache: "ResultCache | str | Path | None" = None,
    manifest: "Manifest | str | Path | None" = None,
    scheduler: "str | Executor" = "processes",
    rerun: bool = False,
    progress: ProgressFn | None = None,
) -> CampaignReport:
    """Execute (or resume) a campaign and aggregate the results.

    Parameters
    ----------
    configs:
        Explicit :class:`RunConfig` list to schedule instead of
        ``spec.expand()`` — for sweeps whose cells vary in ways the
        spec axes cannot express (e.g. per-config parameter overrides,
        as in the Figure 2 decomposition comparison).  The spec still
        names the campaign and is journaled as its identity.
    cache:
        A :class:`ResultCache`, a directory for one, or ``None`` to run
        uncached (every config executes; benchmarks do this).
    manifest:
        A :class:`Manifest`, a path for one, or ``None`` for no journal.
    scheduler:
        How configs are fanned out: an executor spec string
        (``"processes"``, ``"processes:N"``, ``"serial"``,
        ``"threads:N"``, or ``"distrib:HOST:PORT"`` for remote
        ``repro-distrib`` workers) or an :class:`Executor`.  This is the
        *campaign-level* scheduler; each config's ``executor`` field
        governs rank stepping inside its own run.
    rerun:
        Ignore cache hits and re-execute everything (entries are
        overwritten with the fresh results).
    progress:
        Callback invoked after every config resolves (hit, miss, or
        failure) with ``(done, total, row)`` — the CLI's live line.
    """
    t0 = time.perf_counter()
    if cache is not None and not isinstance(cache, ResultCache):
        cache = ResultCache(cache)
    journal: "Manifest | NullManifest"
    if manifest is None:
        journal = NullManifest()
    elif isinstance(manifest, Manifest):
        journal = manifest
    else:
        journal = Manifest(manifest)

    configs = unique_configs(
        spec.expand() if configs is None else configs
    )
    executor = resolve_scheduler(scheduler)
    journal.append(
        {
            "event": "campaign-start",
            "name": spec.name,
            "total": len(configs),
            "scheduler": executor.name,
            "spec": spec.to_dict(),
            # provenance for repro.perfdb ingestion: which host and
            # package version this invocation's numbers come from
            "host": {
                "name": socket.gethostname(),
                "cpu_count": os.cpu_count() or 1,
            },
            "version": __version__,
        }
    )

    rows: dict[int, ConfigResult] = {}
    pending: list[int] = []
    done = 0

    def finish(i: int, row: ConfigResult) -> None:
        nonlocal done
        done += 1
        rows[i] = row
        if row.ok:
            event = {
                "event": "run-done",
                "key": row.key,
                "label": row.config.label,
                "config": row.config.to_dict(),
                "cached": row.cached,
                "wall_s": row.wall_s,
                "gflops": row.gflops,
            }
            # per-run provenance: with a distrib scheduler different
            # cells run on different hosts, so the campaign-start
            # host block is not authoritative — journal where this
            # result was actually computed (cache hits carry the
            # original computing host, which is the right answer)
            result = row.result or {}
            for field in ("host", "cpu_count", "version", "worker"):
                if field in result:
                    event[field] = result[field]
            journal.append(event)
        else:
            journal.append(
                {
                    "event": "run-failed",
                    "key": row.key,
                    "label": row.config.label,
                    "config": row.config.to_dict(),
                    "error": row.error,
                }
            )
        if progress is not None:
            progress(done, len(configs), row)

    for i, cfg in enumerate(configs):
        hit = cache.get(cfg) if (cache is not None and not rerun) else None
        if hit is None and rerun and cache is not None:
            # a forced execution never called cache.get, but its put
            # still lands — book the lookup-we-skipped so lifetime
            # counters keep gets == hits + misses (with a distinct
            # rerun count so status can attribute it)
            cache.count_rerun()
        if hit is not None:
            finish(
                i,
                ConfigResult(
                    config=cfg,
                    key=cfg.key(),
                    cached=True,
                    wall_s=float(hit.get("wall_s", 0.0)),
                    gflops=float(hit.get("gflops", 0.0)),
                    result=hit,
                ),
            )
        else:
            pending.append(i)

    if pending:
        cache_root = str(cache.root) if cache is not None else None
        jobs: list[tuple[dict[str, Any], str | None]] = []
        for i in pending:
            cfg = configs[i]
            journal.append(
                {
                    "event": "run-start",
                    "key": cfg.key(),
                    "label": cfg.label,
                    "config": cfg.to_dict(),
                }
            )
            jobs.append((cfg.to_dict(), cache_root))
        for j, payload, exc in executor.imap_unordered(
            worker.run_and_cache, jobs
        ):
            cfg = configs[pending[j]]
            if exc is not None:
                row = ConfigResult(
                    config=cfg,
                    key=cfg.key(),
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            else:
                result = payload["result"]
                row = ConfigResult(
                    config=cfg,
                    key=payload["key"],
                    cached=False,
                    wall_s=float(result.get("wall_s", 0.0)),
                    gflops=float(result.get("gflops", 0.0)),
                    result=result,
                )
            finish(pending[j], row)

    report = CampaignReport(
        spec=spec,
        rows=[rows[i] for i in sorted(rows)],
        wall_s=time.perf_counter() - t0,
        scheduler=executor.name,
    )
    journal.append(
        {
            "event": "campaign-end",
            "hits": report.hits,
            "misses": report.misses,
            "failures": report.failures,
            "wall_s": report.wall_s,
        }
    )
    if cache is not None:
        # lifetime counters: workers flushed their puts as they
        # published; this invocation's hits/misses flush here
        cache.persist_stats()
    return report
