"""``repro-campaign`` — run, inspect, and clean measurement campaigns.

Usage::

    repro-campaign run sweep.json                 # execute / resume
    repro-campaign run sweep.json --scheduler processes:4 --json
    repro-campaign status                         # latest journal
    repro-campaign status path/to/x.manifest.jsonl
    repro-campaign clean                          # drop cache + journals
    python -m repro.campaign.cli run sweep.json

A spec file is the JSON form of
:class:`~repro.campaign.spec.CampaignSpec`::

    {"name": "demo",
     "apps": ["lbmhd", "fvcam"],
     "nprocs": [4, 8],
     "steps": 2,
     "params": {"lbmhd": {"shape": [8, 8, 8]}}}
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .cache import ResultCache
from .engine import default_manifest_path, run_campaign
from .manifest import summarize
from .spec import CampaignSpec

DEFAULT_CACHE_DIR = ".repro-cache"


def _progress_printer(stream):
    def progress(done, total, row):
        wall = f"{row.wall_s:8.3f}s" if row.ok else "       -"
        print(
            f"[{done:>{len(str(total))}}/{total}] "
            f"{row.config.label:<40} {row.status:>6} {wall}",
            file=stream,
            flush=True,
        )

    return progress


def _cmd_run(args) -> int:
    spec_path = Path(args.spec)
    try:
        spec = CampaignSpec.from_json(spec_path.read_text())
    except FileNotFoundError:
        print(f"repro-campaign: no such spec file: {spec_path}",
              file=sys.stderr)
        return 2
    except (json.JSONDecodeError, TypeError, ValueError) as exc:
        print(f"repro-campaign: bad spec {spec_path}: {exc}",
              file=sys.stderr)
        return 2

    cache = ResultCache(args.cache_dir)
    manifest = (
        Path(args.manifest)
        if args.manifest
        else default_manifest_path(args.cache_dir, spec.name)
    )
    progress = None if args.quiet else _progress_printer(sys.stderr)
    try:
        report = run_campaign(
            spec,
            cache=cache,
            manifest=manifest,
            scheduler=args.scheduler,
            rerun=args.rerun,
            progress=progress,
        )
    except ValueError as exc:  # bad --scheduler spec
        print(f"repro-campaign: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _latest_manifest(cache_dir: str) -> Path | None:
    root = Path(cache_dir)
    journals = sorted(
        root.glob("*.manifest.jsonl"), key=lambda p: p.stat().st_mtime
    )
    return journals[-1] if journals else None


def _cache_stats_line(cache_dir: str) -> str | None:
    """Entry count + lifetime hit/miss/put counters, or ``None`` when
    there is no cache directory to describe."""
    root = Path(cache_dir)
    if not root.is_dir():
        return None
    cache = ResultCache(root)
    life = cache.lifetime_stats()
    line = (
        f"cache {root}: {len(cache)} entr{'y' if len(cache) == 1 else 'ies'}; "
        f"lifetime {life.hits} hit(s), {life.misses} miss(es), "
        f"{life.puts} put(s)"
    )
    if life.reruns:
        # forced executions are already inside the miss count; name
        # them so a 0% hit rate after --rerun reads as intentional
        line += f" ({life.reruns} forced rerun(s))"
    return line


def _cmd_status(args) -> int:
    path = Path(args.manifest) if args.manifest else _latest_manifest(
        args.cache_dir
    )
    if path is None or not path.exists():
        where = args.manifest or f"{args.cache_dir}/*.manifest.jsonl"
        print(f"repro-campaign: no manifest found: {where}",
              file=sys.stderr)
        return 2
    s = summarize(path)
    if s["name"] is None and not s["runs"]:
        print(f"repro-campaign: empty manifest: {path}", file=sys.stderr)
        return 2
    if args.json:
        root = Path(args.cache_dir)
        if root.is_dir():
            cache = ResultCache(root)
            s["cache"] = {
                "entries": len(cache),
                "lifetime": cache.lifetime_stats().as_dict(),
            }
        print(json.dumps(s, indent=2, sort_keys=True))
        return 0
    state = "complete" if s["complete"] else "interrupted/in progress"
    print(
        f"campaign {s['name']!r} [{state}] — {s['done']}/{s['total']} done "
        f"({s['hits']} hit(s), {s['misses']} miss(es)), "
        f"{s['failed']} failed, {s['in_flight']} in flight, "
        f"{s['pending']} never started   [{path}]"
    )
    for key, event in sorted(
        s["runs"].items(), key=lambda kv: kv[1].get("label", "")
    ):
        kind = event.get("event")
        if kind == "run-done":
            tag = "hit " if event.get("cached") else "done"
            extra = f"{event.get('wall_s', 0.0):8.3f}s"
        elif kind == "run-failed":
            tag, extra = "FAIL", str(event.get("error", ""))
        else:
            tag, extra = "....", "(started, no completion journaled)"
        config = event.get("config") or {}
        backend = config.get("kernel_backend", "-")
        print(
            f"  {tag}  {event.get('label', key):<40} "
            f"{backend:<8} {extra}"
        )
    cache_line = _cache_stats_line(args.cache_dir)
    if cache_line is not None:
        print(cache_line)
    return 0


def _cmd_clean(args) -> int:
    cache = ResultCache(args.cache_dir)
    removed = cache.clear()
    journals = 0
    for path in Path(args.cache_dir).glob("*.manifest.jsonl"):
        path.unlink()
        journals += 1
    print(
        f"repro-campaign: removed {removed} cached result(s) and "
        f"{journals} manifest(s) from {args.cache_dir}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description=(
            "Cached, resumable, multi-process measurement campaigns over "
            "the harness applications."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )

    p_run = sub.add_parser(
        "run", parents=[common],
        help="execute (or resume) a campaign spec",
    )
    p_run.add_argument("spec", help="JSON CampaignSpec file")
    p_run.add_argument(
        "--scheduler",
        default="processes",
        metavar="SPEC",
        help=(
            "campaign-level scheduler: 'processes[:N]' (default), "
            "'serial', 'threads[:N]', or 'distrib:HOST:PORT' (dispatch "
            "to connected repro-distrib workers)"
        ),
    )
    p_run.add_argument(
        "--manifest", metavar="FILE",
        help="journal path (default: <cache-dir>/<name>.manifest.jsonl)",
    )
    p_run.add_argument(
        "--rerun", action="store_true",
        help="ignore cache hits and re-execute every config",
    )
    p_run.add_argument(
        "--json", action="store_true",
        help="emit the aggregated report as JSON on stdout",
    )
    p_run.add_argument(
        "--quiet", action="store_true",
        help="suppress the live per-run progress lines (stderr)",
    )
    p_run.set_defaults(fn=_cmd_run)

    p_status = sub.add_parser(
        "status", parents=[common],
        help="summarize a campaign journal",
    )
    p_status.add_argument(
        "manifest", nargs="?",
        help="journal to summarize (default: newest in --cache-dir)",
    )
    p_status.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    p_status.set_defaults(fn=_cmd_status)

    p_clean = sub.add_parser(
        "clean", parents=[common],
        help="delete cached results and journals",
    )
    p_clean.set_defaults(fn=_cmd_clean)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
