"""Content-addressed on-disk store of completed campaign runs.

One JSON file per result, addressed by :meth:`RunConfig.key` — the
SHA-256 of the canonical config plus the package version.  Identical
configs therefore share one entry across campaigns, and bumping the
package version invalidates everything at once (stale physics is worse
than a cold cache).

Entries are written atomically (temp file + rename in the same
directory), so a campaign killed mid-write never leaves a torn entry —
the resume path either sees a complete result or a miss.  Workers in
different processes may race to publish the same key; last rename wins
and both wrote identical content, so the race is benign.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from .. import __version__
from .spec import RunConfig


class ResultCache:
    """Directory of ``<key[:2]>/<key>.json`` result entries."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, config: RunConfig) -> dict[str, Any] | None:
        """The cached result dict for ``config``, or ``None`` on a miss."""
        path = self._path(config.key())
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # unreadable entry == miss; the rerun will overwrite it
            return None
        return entry.get("result")

    def put(self, config: RunConfig, result: dict[str, Any]) -> Path:
        """Atomically publish one completed run."""
        key = config.key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "version": __version__,
            "config": config.to_dict(),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return path

    def entries(self) -> Iterator[dict[str, Any]]:
        """Every readable entry (config + result + version)."""
        for path in sorted(self.root.glob("*/*.json")):
            try:
                yield json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def __contains__(self, config: RunConfig) -> bool:
        return self._path(config.key()).exists()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.root.glob("*/*.json")):
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:
                pass
        for sub in list(self.root.iterdir()):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed
