"""Content-addressed on-disk store of completed campaign runs.

One JSON file per result, addressed by :meth:`RunConfig.key` — the
SHA-256 of the canonical config plus the package version.  Identical
configs therefore share one entry across campaigns, and bumping the
package version invalidates everything at once (stale physics is worse
than a cold cache).

Entries are written atomically (temp file + rename in the same
directory), so a campaign killed mid-write never leaves a torn entry —
the resume path either sees a complete result or a miss.  Workers in
different processes may race to publish the same key; last rename wins
and both wrote identical content, so the race is benign.

Every cache instance counts its own traffic (:class:`CacheStats`:
hits, misses, puts) so cache effectiveness is observable directly —
the service's ``/v1/stats`` endpoint reads the live counters, and
``repro-campaign status`` reads the *lifetime* counters, which
instances persist as append-only delta lines in
``<root>/cache-stats.jsonl`` (one small ``O_APPEND`` write per flush,
so concurrent campaigns and worker processes never torn-write each
other).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from .. import __version__
from .spec import RunConfig

#: File (under the cache root) accumulating persisted counter deltas.
STATS_FILENAME = "cache-stats.jsonl"


@dataclass
class CacheStats:
    """Traffic counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Forced executions (``rerun=True``): counted inside ``misses``
    #: too — a forced rerun *is* a lookup the cache did not serve, and
    #: counting it preserves the ``gets == hits + misses`` invariant
    #: that hit-rate rendering relies on — but broken out so status
    #: output can tell "cold cache" from "operator forced it".
    reruns: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "reruns": self.reruns,
        }

    @property
    def gets(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when nothing was looked up yet)."""
        return self.hits / self.gets if self.gets else 0.0


class ResultCache:
    """Directory of ``<key[:2]>/<key>.json`` result entries."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self._stats_lock = threading.Lock()
        self._persisted = CacheStats()  # counts already flushed to disk

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, config: RunConfig) -> dict[str, Any] | None:
        """The cached result dict for ``config``, or ``None`` on a miss."""
        path = self._path(config.key())
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            self._count(misses=1)
            return None
        except (json.JSONDecodeError, OSError):
            # unreadable entry == miss; the rerun will overwrite it
            self._count(misses=1)
            return None
        self._count(hits=1)
        return entry.get("result")

    def put(self, config: RunConfig, result: dict[str, Any]) -> Path:
        """Atomically publish one completed run."""
        key = config.key()
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "key": key,
            "version": __version__,
            "config": config.to_dict(),
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        self._count(puts=1)
        return path

    def count_rerun(self) -> None:
        """Book one forced execution (``run_campaign(rerun=True)``).

        A forced rerun bypasses :meth:`get`, so without this the
        resulting :meth:`put` would persist with no matching lookup and
        lifetime counters would violate ``gets == hits + misses``.  It
        counts as a miss (a lookup the cache did not serve) *and* as a
        distinct ``reruns`` counter so status output can attribute it.
        """
        self._count(misses=1, reruns=1)

    def _count(
        self,
        *,
        hits: int = 0,
        misses: int = 0,
        puts: int = 0,
        reruns: int = 0,
    ) -> None:
        with self._stats_lock:
            self.stats.hits += hits
            self.stats.misses += misses
            self.stats.puts += puts
            self.stats.reruns += reruns

    def persist_stats(self) -> None:
        """Append this instance's unflushed counter deltas to
        ``cache-stats.jsonl`` (no-op when nothing changed since the last
        flush).  Campaign engines call this once per invocation; workers
        call it after publishing, so lifetime counters survive across
        processes."""
        with self._stats_lock:
            delta = CacheStats(
                hits=self.stats.hits - self._persisted.hits,
                misses=self.stats.misses - self._persisted.misses,
                puts=self.stats.puts - self._persisted.puts,
                reruns=self.stats.reruns - self._persisted.reruns,
            )
            if not (delta.hits or delta.misses or delta.puts or delta.reruns):
                return
            self._persisted = CacheStats(**self.stats.as_dict())
        line = json.dumps(
            {**delta.as_dict(), "time": time.time()}, sort_keys=True
        )
        # O_APPEND: one small write, atomic in practice across processes
        with (self.root / STATS_FILENAME).open("a") as fh:
            fh.write(line + "\n")

    def lifetime_stats(self) -> CacheStats:
        """Summed persisted counters across every instance and process
        that ever flushed into this cache root (torn lines skipped)."""
        total = CacheStats()
        path = self.root / STATS_FILENAME
        try:
            lines = path.read_text().splitlines()
        except (FileNotFoundError, OSError):
            return total
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError:
                continue
            total.hits += int(d.get("hits", 0))
            total.misses += int(d.get("misses", 0))
            total.puts += int(d.get("puts", 0))
            # older stats lines predate the reruns counter
            total.reruns += int(d.get("reruns", 0))
        return total

    @staticmethod
    def _is_entry(path: Path) -> bool:
        """True for a published entry file — explicitly *not* for the
        ``.{key[:8]}-*.tmp`` staging files :meth:`put` writes before its
        atomic rename (a worker killed between ``mkstemp`` and
        ``os.replace`` leaves one behind)."""
        return path.suffix == ".json" and not path.name.startswith(".")

    def entries(self) -> Iterator[dict[str, Any]]:
        """Every readable entry (config + result + version)."""
        for path in sorted(self.root.glob("*/*.json")):
            if not self._is_entry(path):
                continue
            try:
                yield json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                continue

    def __len__(self) -> int:
        return sum(1 for p in self.root.glob("*/*.json") if self._is_entry(p))

    def __contains__(self, config: RunConfig) -> bool:
        return self._path(config.key()).exists()

    def sweep_tmp(self) -> int:
        """Remove staging files orphaned by killed writers; returns how
        many were swept.  Safe against live writers only in the sense
        every cleanup of a rename-based scheme is: a concurrent ``put``
        whose tmp file is swept fails its ``os.replace`` loudly and the
        entry is simply re-put — never torn."""
        swept = 0
        for path in list(self.root.glob("*/*.tmp")):
            try:
                path.unlink()
                swept += 1
            except FileNotFoundError:
                pass
        return swept

    def clear(self) -> int:
        """Delete every entry (stale ``.tmp`` staging files included, so
        shard dirs actually empty out); returns how many entries were
        removed."""
        removed = 0
        self.sweep_tmp()
        for path in list(self.root.glob("*/*.json")):
            try:
                path.unlink()
                if self._is_entry(path):
                    removed += 1
            except FileNotFoundError:
                pass
        for sub in list(self.root.iterdir()):
            if sub.is_dir():
                try:
                    sub.rmdir()
                except OSError:
                    pass
        try:  # lifetime counters describe the entries; drop them together
            (self.root / STATS_FILENAME).unlink()
        except FileNotFoundError:
            pass
        with self._stats_lock:
            self.stats = CacheStats()
            self._persisted = CacheStats()
        return removed
