"""Campaign specs and the hashable run configurations they expand into.

A :class:`CampaignSpec` names the sweep axes (apps x machines x P x
executor x kernel backend x seeds), plus shared knobs (steps, repeats,
arena, trace, per-app parameter overrides).  :meth:`CampaignSpec.expand` takes the
cross product and returns one :class:`RunConfig` per cell.

``RunConfig`` is frozen and hashable; :meth:`RunConfig.key` is the
cache identity — a SHA-256 over the canonical JSON form of the config
*plus the package version*, so results computed by one version of the
solvers are never served to another.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from itertools import product
from typing import Any, Iterable, Mapping

from .. import __version__


def _freeze(value: Any) -> Any:
    """Recursively convert JSON-plain values to hashable equivalents."""
    if isinstance(value, dict):
        return tuple(sorted((str(k), _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"campaign parameter values must be JSON-plain "
        f"(str/int/float/bool/None/list/dict), got {type(value).__name__}"
    )


def _thaw(value: Any) -> Any:
    """Inverse of :func:`_freeze`: back to JSON-plain dicts/lists."""
    if isinstance(value, tuple):
        if all(
            isinstance(v, tuple) and len(v) == 2 and isinstance(v[0], str)
            for v in value
        ):
            return {k: _thaw(v) for k, v in value}
        return [_thaw(v) for v in value]
    return value


def freeze_params(params: Mapping[str, Any] | None) -> tuple:
    """Normalize a parameter-override mapping to its frozen form."""
    if not params:
        return ()
    return _freeze(dict(params))


@dataclass(frozen=True)
class RunConfig:
    """One cell of a campaign: everything one ``harness.run`` needs.

    ``params`` is the frozen form of a JSON-plain override mapping
    applied on top of the application's ``default_params()`` (see
    ``repro.campaign.worker``); use :meth:`params_dict` to read it.
    ``executor`` is the *rank-level* executor used inside the run —
    campaign-level scheduling across configs is the engine's business,
    not the config's.
    """

    app: str
    nprocs: int | None = None
    steps: int = 1
    machine: str | None = None
    executor: str = "serial"
    kernel_backend: str = "numpy"
    seed: int | None = None
    params: tuple = ()
    arena: bool = False
    trace: bool = False
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.steps < 0:
            raise ValueError("steps must be >= 0")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        object.__setattr__(self, "params", _freeze(self.params_dict()))

    def params_dict(self) -> dict[str, Any]:
        thawed = _thaw(self.params) if self.params else {}
        return thawed if isinstance(thawed, dict) else dict(self.params)

    def to_dict(self) -> dict[str, Any]:
        return {
            "app": self.app,
            "nprocs": self.nprocs,
            "steps": self.steps,
            "machine": self.machine,
            "executor": self.executor,
            "kernel_backend": self.kernel_backend,
            "seed": self.seed,
            "params": self.params_dict(),
            "arena": self.arena,
            "trace": self.trace,
            "repeats": self.repeats,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown RunConfig field(s): {', '.join(unknown)}"
            )
        kwargs = dict(d)
        kwargs["params"] = freeze_params(kwargs.get("params"))
        return cls(**kwargs)

    def key(self, version: str = __version__) -> str:
        """Content hash identifying this config's cached result."""
        canon = json.dumps(
            {"config": self.to_dict(), "version": version},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canon.encode()).hexdigest()

    @property
    def label(self) -> str:
        """Short human-readable identity for progress lines."""
        bits = [self.app]
        if self.machine:
            bits.append(f"@{self.machine}")
        if self.nprocs is not None:
            bits.append(f" P={self.nprocs}")
        bits.append(f" x{self.steps}")
        if self.executor != "serial":
            bits.append(f" {self.executor}")
        if self.kernel_backend != "numpy":
            bits.append(f" k:{self.kernel_backend}")
        if self.seed is not None:
            bits.append(f" seed={self.seed}")
        if self.repeats > 1:
            bits.append(f" r{self.repeats}")
        return "".join(bits)


@dataclass(frozen=True)
class CampaignSpec:
    """The declarative sweep: axes crossed by :meth:`expand`.

    ``params`` maps an app key to its override mapping (applied to every
    config of that app); apps absent from it run on defaults.  A
    ``None`` entry in ``machines`` is the ideal (cost-free) platform; a
    ``None`` in ``nprocs`` is the app's default concurrency.
    """

    name: str
    apps: tuple[str, ...]
    machines: tuple[str | None, ...] = (None,)
    nprocs: tuple[int | None, ...] = (None,)
    executors: tuple[str, ...] = ("serial",)
    kernel_backends: tuple[str, ...] = ("numpy",)
    seeds: tuple[int | None, ...] = (None,)
    steps: int = 1
    repeats: int = 1
    arena: bool = False
    trace: bool = False
    params: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.apps:
            raise ValueError("a campaign needs at least one app")
        for axis in (
            "apps", "machines", "nprocs", "executors",
            "kernel_backends", "seeds",
        ):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        object.__setattr__(self, "params", _freeze(self.params_mapping()))

    def params_mapping(self) -> dict[str, dict[str, Any]]:
        thawed = _thaw(self.params) if self.params else {}
        return thawed if isinstance(thawed, dict) else {}

    def expand(self) -> list[RunConfig]:
        """Cross the axes into one :class:`RunConfig` per cell."""
        overrides = self.params_mapping()
        return [
            RunConfig(
                app=app,
                nprocs=p,
                steps=self.steps,
                machine=machine,
                executor=executor,
                kernel_backend=backend,
                seed=seed,
                params=freeze_params(overrides.get(app)),
                arena=self.arena,
                trace=self.trace,
                repeats=self.repeats,
            )
            for app, machine, p, executor, backend, seed in product(
                self.apps, self.machines, self.nprocs,
                self.executors, self.kernel_backends, self.seeds,
            )
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "apps": list(self.apps),
            "machines": list(self.machines),
            "nprocs": list(self.nprocs),
            "executors": list(self.executors),
            "kernel_backends": list(self.kernel_backends),
            "seeds": list(self.seeds),
            "steps": self.steps,
            "repeats": self.repeats,
            "arena": self.arena,
            "trace": self.trace,
            "params": self.params_mapping(),
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "CampaignSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise ValueError(
                f"unknown CampaignSpec field(s): {', '.join(unknown)}"
            )
        kwargs = dict(d)
        for axis in (
            "apps", "machines", "nprocs", "executors",
            "kernel_backends", "seeds",
        ):
            if axis in kwargs:
                value = kwargs[axis]
                if isinstance(value, (str, int)) or value is None:
                    value = [value]
                kwargs[axis] = tuple(value)
        kwargs["params"] = freeze_params(kwargs.get("params"))
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))


def unique_configs(configs: Iterable[RunConfig]) -> list[RunConfig]:
    """Drop exact duplicates, preserving first-seen order."""
    seen: set[RunConfig] = set()
    out: list[RunConfig] = []
    for cfg in configs:
        if cfg not in seen:
            seen.add(cfg)
            out.append(cfg)
    return out
