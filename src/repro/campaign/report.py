"""Aggregated view of one campaign invocation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .spec import CampaignSpec, RunConfig


@dataclass
class ConfigResult:
    """Outcome of one config within a campaign invocation."""

    config: RunConfig
    key: str
    cached: bool = False
    ok: bool = True
    wall_s: float = 0.0
    gflops: float = 0.0
    error: str | None = None
    result: dict[str, Any] | None = None

    @property
    def status(self) -> str:
        if not self.ok:
            return "FAILED"
        return "hit" if self.cached else "miss"


@dataclass
class CampaignReport:
    """Everything one :func:`~repro.campaign.engine.run_campaign` did."""

    spec: CampaignSpec
    rows: list[ConfigResult] = field(default_factory=list)
    #: Real seconds the whole invocation took (scheduling included).
    wall_s: float = 0.0
    scheduler: str = "serial"

    @property
    def hits(self) -> int:
        return sum(1 for r in self.rows if r.ok and r.cached)

    @property
    def misses(self) -> int:
        return sum(1 for r in self.rows if r.ok and not r.cached)

    @property
    def failures(self) -> int:
        return sum(1 for r in self.rows if not r.ok)

    @property
    def ok(self) -> bool:
        return self.failures == 0

    @property
    def executed_wall_s(self) -> float:
        """Summed per-run wall-clock of the runs actually executed."""
        return sum(r.wall_s for r in self.rows if r.ok and not r.cached)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "scheduler": self.scheduler,
            "wall_s": self.wall_s,
            "hits": self.hits,
            "misses": self.misses,
            "failures": self.failures,
            "rows": [
                {
                    "key": r.key,
                    "label": r.config.label,
                    "config": r.config.to_dict(),
                    "status": r.status,
                    "wall_s": r.wall_s,
                    "gflops": r.gflops,
                    "error": r.error,
                }
                for r in self.rows
            ],
        }

    def to_records(self, *, source: str = "") -> list:
        """This invocation as canonical :class:`repro.perfdb.RunRecord`
        rows — the uniform emission path every measurement shares."""
        from ..perfdb.ingest import records_from_report

        return records_from_report(self, source=source)

    def render(self) -> str:
        """ASCII per-config table plus the hit/miss/time footer."""
        width = max([len(r.config.label) for r in self.rows] or [10])
        width = max(width, len("config"))
        bwidth = max(
            [len(r.config.kernel_backend) for r in self.rows]
            + [len("backend")]
        )
        lines = [
            f"campaign {self.spec.name!r}: {len(self.rows)} config(s) "
            f"via {self.scheduler}",
            f"{'config':<{width}}  {'backend':<{bwidth}}  {'status':>6}  "
            f"{'wall s':>9}  {'Gflop/s':>9}",
        ]
        for r in self.rows:
            gf = f"{r.gflops:9.3f}" if r.ok else "        -"
            wall = f"{r.wall_s:9.3f}" if r.ok else "        -"
            lines.append(
                f"{r.config.label:<{width}}  "
                f"{r.config.kernel_backend:<{bwidth}}  "
                f"{r.status:>6}  {wall}  {gf}"
            )
            if r.error:
                lines.append(f"{'':<{width}}  ! {r.error}")
        lines.append(
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.failures} failure(s); "
            f"campaign wall {self.wall_s:.3f} s "
            f"(executed runs {self.executed_wall_s:.3f} rank-process s)"
        )
        return "\n".join(lines)
