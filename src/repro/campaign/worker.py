"""Worker-side execution of one campaign config.

These functions are module-level on purpose: the
:class:`~repro.runtime.executors.ProcessExecutor` pickles the callable
and its argument into a worker process, runs the harness there, and
pickles the return value back.  Everything that crosses the boundary is
a plain dict of JSON-plain values — solver objects, communicators, and
ledgers stay in the worker.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import time
from typing import Any

from .. import __version__, harness
from ..harness.apps import get_application
from .cache import ResultCache
from .spec import RunConfig


def _coerce(current: Any, value: Any) -> Any:
    """Shape a JSON-plain override to the default field's type.

    JSON has no tuples and no nested dataclasses, so ``[8, 8, 8]``
    overriding a tuple default becomes a tuple, and a dict overriding a
    dataclass default (FVCAM's ``grid``) becomes ``replace(default,
    **coerced_fields)``.
    """
    if dataclasses.is_dataclass(current) and isinstance(value, dict):
        return dataclasses.replace(
            current,
            **{
                k: _coerce(getattr(current, k), v)
                for k, v in value.items()
            },
        )
    if isinstance(current, tuple) and isinstance(value, (list, tuple)):
        return tuple(value)
    return value


def build_params(app: str, overrides: dict[str, Any]) -> Any:
    """The app's ``default_params()`` with coerced overrides applied."""
    defaults = get_application(app).default_params()
    if not overrides:
        return defaults
    unknown = [k for k in overrides if not hasattr(defaults, k)]
    if unknown:
        raise ValueError(
            f"unknown parameter(s) for {app!r}: {', '.join(sorted(unknown))}"
        )
    return dataclasses.replace(
        defaults,
        **{
            k: _coerce(getattr(defaults, k), v)
            for k, v in overrides.items()
        },
    )


def execute_config(config: RunConfig) -> dict[str, Any]:
    """Run one config through the harness; return a plain result dict.

    ``repeats`` re-runs the whole thing (fresh solver each time) and
    reports every wall-clock sample plus the best; diagnostics and
    instrumentation come from the last repeat.  With a seed set, the
    global RNG is re-seeded before *each* repeat so they are identical
    workloads.
    """
    params = build_params(config.app, config.params_dict())
    arena = None
    if config.arena:
        from ..runtime.arena import Arena

        arena = Arena()

    samples: list[float] = []
    result = None
    for _ in range(config.repeats):
        if config.seed is not None:
            import numpy as np

            np.random.seed(config.seed)
        t0 = time.perf_counter()
        result = harness.run(
            config.app,
            params,
            steps=config.steps,
            nprocs=config.nprocs,
            machine=config.machine,
            executor=config.executor,
            kernel_backend=config.kernel_backend,
            trace=config.trace,
            arena=arena,
        )
        samples.append(time.perf_counter() - t0)

    wall_s = min(samples)
    flops_per_step = float(result.flops_per_step)
    total_flops = flops_per_step * config.steps
    out: dict[str, Any] = {
        "label": config.label,
        "wall_s": wall_s,
        "wall_samples_s": samples,
        "machine": result.machine_name,
        "nprocs": result.comm.nprocs,
        "steps": config.steps,
        "flops_per_step": flops_per_step,
        # Gflop/s-equivalent: the modeled flop count of the simulated
        # application divided by the *real* seconds this host took —
        # the campaign's cross-config throughput yardstick.
        "gflops": (total_flops / wall_s / 1e9) if wall_s > 0 else 0.0,
        "virtual_elapsed_s": float(result.comm.elapsed),
        "diagnostics": {
            k: float(v) for k, v in result.diagnostics.items()
        },
        # provenance for repro.perfdb: where and by which package
        # version this number was measured (host-aware regression
        # thresholds key on these)
        "host": socket.gethostname(),
        "cpu_count": os.cpu_count() or 1,
        "version": __version__,
    }
    if result.ledger is not None:
        out["phases"] = result.ledger.as_records(steps=max(config.steps, 1))
    if config.trace and result.comm.trace is not None:
        out["trace_volume"] = result.comm.trace.matrix().tolist()
    return out


def run_and_cache(job: tuple[dict[str, Any], str | None]) -> dict[str, Any]:
    """Process-pool entry point: execute a config dict, publish to the
    cache *from the worker* (so a parent killed mid-campaign still finds
    the completed result on resume), and return ``{"key", "result"}``.
    """
    config_dict, cache_root = job
    config = RunConfig.from_dict(config_dict)
    result = execute_config(config)
    if cache_root is not None:
        cache = ResultCache(cache_root)
        cache.put(config, result)
        cache.persist_stats()  # lifetime put counters survive the worker
    return {"key": config.key(), "result": result}
