"""Pluggable executors: how per-rank compute segments are scheduled.

The simulated machine keeps every rank's data in one Python process, so
"parallel" rank compute has historically meant a serial ``for rank in
range(nprocs)`` loop.  The executor seam makes that loop pluggable:

* :class:`SerialExecutor` — run segments one after another on the
  calling thread.  This is the default and reproduces the historical
  lockstep semantics exactly.
* :class:`ThreadExecutor` — dispatch segments to a shared thread pool.
  The rank kernels are NumPy-heavy and release the GIL inside array
  arithmetic, so independent rank segments genuinely overlap on a
  multi-core host.
* :class:`ProcessExecutor` — run jobs in worker *processes*, two ways.
  Coarse campaign-level jobs (whole ``harness.run`` invocations with
  picklable dict arguments/results, see :mod:`repro.campaign`) go
  through the long-lived shared pool (:meth:`~Executor.map` /
  :meth:`~Executor.imap_unordered`).  Per-rank compute segments go
  through :meth:`ProcessExecutor.map_segments`: each parallel region
  forks fresh children that inherit the caller's live memory
  copy-on-write, so segment callables need not pickle — only their
  results (and deferred accounting charges) ride back over a pipe.
  Segment scheduling needs ``fork`` plus POSIX shared memory (for the
  solvers' in-place state blocks); :meth:`~Executor.segment_support`
  reports whether this host qualifies and why not, and communicators
  refuse the executor — or fall back to serial, if it was ambient —
  only when it doesn't.

Executors schedule **compute only**.  Communication stays serialized
between parallel regions (see ``Communicator.map_ranks``), and the
deferred-accounting replay in the communicator guarantees that every
executor produces bitwise-identical solver states and identical
clock/trace/ledger instrumentation — only real wall-clock differs.

Resolution order for "which executor should this run use":

1. an explicit ``Executor`` instance or spec string passed by the caller;
2. the process-wide default installed with :func:`set_default_executor`
   (what the ``repro-experiments --executor`` flag uses);
3. the ``REPRO_EXECUTOR`` environment variable (what the CI threaded job
   sets);
4. ``"serial"``.

Spec strings are ``"serial"``, ``"threads"`` (worker count picked from
the host), ``"threads:N"``, ``"processes"``, or ``"processes:N"``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Callable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

_ENV_VAR = "REPRO_EXECUTOR"


class SegmentSupport:
    """Whether an executor can run rank segments here — and why not.

    Truthy exactly when segments are supported; ``reason`` carries the
    human-readable explanation either way (capability on success, the
    missing prerequisite on failure) so rejection errors and fallback
    warnings can name the actual cause.
    """

    __slots__ = ("ok", "reason")

    def __init__(self, ok: bool, reason: str) -> None:
        self.ok = ok
        self.reason = reason

    def __bool__(self) -> bool:
        return self.ok

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SegmentSupport(ok={self.ok}, reason={self.reason!r})"


class Executor:
    """Schedules a batch of independent segments and collects results.

    Subclasses must preserve *result order*: ``map(fn, items)`` returns
    ``[fn(items[0]), fn(items[1]), ...]`` regardless of the order the
    calls actually ran in.  If any call raises, ``map`` raises (the
    first failure in item order); remaining segments may or may not
    have run, so callers must treat a raised region as charged-nothing
    (the communicator does).
    """

    #: spec-style name ("serial", "threads")
    name: str = "executor"
    #: number of worker threads segments may occupy concurrently
    workers: int = 1
    #: True when segments may run concurrently (drives deferred
    #: accounting and the parallel-region communication guard)
    parallel: bool = False
    #: True when jobs run in the calling process, sharing its memory.
    #: Process executors set this False; their rank segments run in
    #: forked workers (see :meth:`map_segments`) and must route effects
    #: through return values or shared-memory buffers.
    in_process: bool = True

    def map(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:  # pragma: no cover - interface
        raise NotImplementedError

    def segment_support(self) -> SegmentSupport:
        """Can this executor schedule ``map_ranks`` segments here?

        In-process executors always can; :class:`ProcessExecutor`
        checks the host for ``fork`` and POSIX shared memory.  The
        communicator consults this instead of hard-rejecting by class.
        """
        return SegmentSupport(True, "segments run in the calling process")

    def map_segments(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        """Like :meth:`map`, for rank segments specifically.

        In-process executors have no distinction to make.  Process
        executors override this with the fork-per-region path, which is
        what lets segment callables stay unpicklable closures over the
        caller's live memory.
        """
        return self.map(fn, items)

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        """Yield ``(index, result, error)`` as each job *completes*.

        Exactly one of ``result``/``error`` is non-None per item; the
        order is completion order, not item order (serial executors
        complete in item order by construction).  Unlike :meth:`map`, a
        failing job does not poison the batch — the exception is
        yielded, and every other item still runs.  This is the campaign
        engine's seam: it needs per-completion progress/journaling and
        per-job error isolation, which a barrier ``map`` cannot give.
        """
        for i, item in enumerate(items):
            try:
                yield i, fn(item), None
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - isolation seam
                yield i, None, exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Run every segment on the calling thread, in item order."""

    name = "serial"
    workers = 1
    parallel = False

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        return [fn(item) for item in items]


# One shared pool per worker count, process-wide.  Communicators are
# created by the hundreds across a test run; per-communicator pools
# would churn threads, and idle pool threads cost nothing.
_POOLS: dict[int, _ThreadPool] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> _ThreadPool:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = _ThreadPool(
                max_workers=workers, thread_name_prefix=f"repro-exec{workers}"
            )
            _POOLS[workers] = pool
        return pool


class ThreadExecutor(Executor):
    """Run segments on a shared thread pool (NumPy releases the GIL).

    ``workers=None`` picks ``min(8, os.cpu_count())`` — eight threads
    saturate the per-rank segment sizes the benchmarks use, and more
    only adds scheduling noise.
    """

    name = "threads"
    parallel = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = min(8, os.cpu_count() or 1)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = _shared_pool(self.workers)
        futures = [pool.submit(fn, item) for item in items]
        # result() in submission order: ordered results, and the first
        # failing item's exception (not an arbitrary thread's).
        return [f.result() for f in futures]

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        pool = _shared_pool(self.workers)
        yield from _drain_as_completed(pool, fn, items)


def _drain_as_completed(pool, fn, items):
    """Submit all items and yield ``(index, result, error)`` triples as
    futures finish; on generator teardown (e.g. a KeyboardInterrupt in
    the consumer) the not-yet-started futures are cancelled."""
    futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
    try:
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for f in done:
                i = futures[f]
                exc = f.exception()
                if exc is not None:
                    yield i, None, exc
                else:
                    yield i, f.result(), None
    finally:
        for f in futures:
            f.cancel()


# Process pools are shared per worker count like thread pools: campaign
# invocations come in bursts (cold sweep, then warm rerun) and re-forking
# a pool for each would dominate small sweeps.  ``shutdown_pools`` exists
# for tests and for __main__ benchmarks that want a cold-start measure.
_PROC_POOLS: dict[int, _ProcessPool] = {}
_PROC_POOLS_LOCK = threading.Lock()


def _shared_process_pool(workers: int) -> _ProcessPool:
    with _PROC_POOLS_LOCK:
        pool = _PROC_POOLS.get(workers)
        if pool is None:
            import multiprocessing

            # fork keeps worker start cheap (no re-import of NumPy/SciPy)
            # where available; spawn elsewhere.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            pool = _ProcessPool(max_workers=workers, mp_context=ctx)
            _PROC_POOLS[workers] = pool
        return pool


def shutdown_process_pools() -> None:
    """Tear down the shared worker-process pools (tests/benchmarks)."""
    with _PROC_POOLS_LOCK:
        pools = list(_PROC_POOLS.values())
        _PROC_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


def _segment_shard_main(conn, fn, shard) -> None:
    """Forked-child entry: run a shard of ``(index, item)`` segments.

    Collects ``(index, ok, value-or-exception)`` triples and ships the
    whole shard's outcomes in one pipe message.  A result that refuses
    to pickle is downgraded to a per-item error (retrying the send
    is safe: ``Connection.send`` pickles fully before writing any
    bytes, so a failed send leaves the stream clean).
    """
    out = []
    for i, item in shard:
        try:
            out.append((i, True, fn(item)))
        except BaseException as exc:  # noqa: BLE001 - marshalled to parent
            out.append((i, False, exc))
    try:
        conn.send(out)
    except Exception:
        import pickle

        safe = []
        for i, ok, value in out:
            try:
                pickle.dumps(value)
            except Exception as exc:
                ok, value = False, RuntimeError(
                    f"segment {i} produced a result that cannot be "
                    f"pickled back to the parent: {exc!r}"
                )
            safe.append((i, ok, value))
        conn.send(safe)
    finally:
        conn.close()


class ProcessExecutor(Executor):
    """Run jobs on worker processes — pooled jobs or forked segments.

    Campaign-level scheduling (:meth:`map` / :meth:`imap_unordered`)
    uses the long-lived shared pool: ``fn`` must be a module-level
    callable and items/results must pickle (plain dicts in practice —
    see ``repro.campaign.worker``).

    Rank segments (:meth:`map_segments`) cannot use a long-lived pool:
    they are closures over the caller's *live* solver state, which a
    worker forked at pool-construction time would see stale.  Each
    parallel region therefore forks fresh children (copy-on-write, no
    pickling of the callable), shards the segments contiguously across
    them, and pipes only results and deferred accounting charges back.
    In-place writes to ordinary memory die with the child — segments
    scheduled here must return their effects or write through
    shared-memory buffers (:class:`~repro.runtime.shm.ShmArena`);
    :meth:`segment_support` gates the whole mode on ``fork`` + POSIX
    shared memory being available.

    ``workers=None`` uses every core — both whole-run campaign jobs
    and forked rank segments scale to the host, unlike the eight-way
    segment sweet spot the thread pool targets.
    """

    name = "processes"
    parallel = True
    in_process = False

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def segment_support(self) -> SegmentSupport:
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return SegmentSupport(
                False,
                "the host has no fork start method (segment callables "
                "close over live solver state and cannot be pickled to "
                "spawned workers)",
            )
        from .shm import shm_available

        if not shm_available():
            if os.environ.get("REPRO_SHM_DISABLE"):
                return SegmentSupport(
                    False, "REPRO_SHM_DISABLE is set in the environment"
                )
            return SegmentSupport(
                False,
                "POSIX shared memory is unavailable (no usable /dev/shm)",
            )
        return SegmentSupport(
            True, "fork + POSIX shared memory are available"
        )

    def map_segments(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        items = list(items)
        if len(items) <= 1 or self.workers == 1:
            # nothing to overlap: run inline, skip the fork entirely
            return [fn(item) for item in items]
        support = self.segment_support()
        if not support.ok:
            raise RuntimeError(
                f"process executor cannot run rank segments here: "
                f"{support.reason}"
            )
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        nworkers = min(self.workers, len(items))
        shards: list[list[tuple[int, _T]]] = []
        base, extra = divmod(len(items), nworkers)
        lo = 0
        for w in range(nworkers):
            hi = lo + base + (1 if w < extra else 0)
            shards.append([(i, items[i]) for i in range(lo, hi)])
            lo = hi

        procs, conns = [], []
        for shard in shards:
            recv_end, send_end = ctx.Pipe(duplex=False)
            p = ctx.Process(
                target=_segment_shard_main,
                args=(send_end, fn, shard),
                daemon=True,
            )
            p.start()
            send_end.close()  # parent keeps only the receiving end
            procs.append(p)
            conns.append(recv_end)

        outcomes: list = [None] * len(items)
        errors: list[tuple[int, BaseException]] = []
        try:
            for shard, conn, p in zip(shards, conns, procs):
                try:
                    payload = conn.recv()
                except EOFError:
                    payload = None
                p.join()
                if payload is None:
                    errors.append(
                        (
                            shard[0][0],
                            RuntimeError(
                                f"segment worker (pid {p.pid}) died with "
                                f"exit code {p.exitcode} before returning "
                                "results"
                            ),
                        )
                    )
                    continue
                for i, ok, value in payload:
                    if ok:
                        outcomes[i] = value
                    else:
                        errors.append((i, value))
        finally:
            for conn in conns:
                conn.close()
            for p in procs:
                if p.is_alive():  # pragma: no cover - error unwind only
                    p.terminate()
                p.join()
        if errors:
            # first failure in item order, matching map()'s contract
            errors.sort(key=lambda e: e[0])
            raise errors[0][1]
        return outcomes

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        items = list(items)
        if not items:
            return []
        pool = _shared_process_pool(self.workers)
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        pool = _shared_process_pool(self.workers)
        yield from _drain_as_completed(pool, fn, items)


_DEFAULT_LOCK = threading.Lock()
_default_spec: "str | Executor | None" = None


def set_default_executor(spec: "str | Executor | None") -> Executor | None:
    """Install a process-wide default executor (``None`` clears it).

    Returns the resolved executor (so callers can log the choice), or
    ``None`` when clearing.  The default outranks ``REPRO_EXECUTOR``
    but is outranked by an explicit per-communicator argument.
    """
    global _default_spec
    resolved = None if spec is None else _parse(spec)
    with _DEFAULT_LOCK:
        _default_spec = spec
    return resolved


def get_executor(spec: "str | Executor | None" = None) -> Executor:
    """Resolve an executor spec (see module docstring for the chain)."""
    source = "argument"
    if spec is None:
        with _DEFAULT_LOCK:
            spec = _default_spec
        source = "default"
    if spec is None:
        env = os.environ.get(_ENV_VAR)
        if env:
            spec, source = env, "env"
        else:
            spec = "serial"
    return _parse(spec, source)


def _parse(spec: "str | Executor", source: str = "argument") -> Executor:
    """Resolve a spec to an executor; a malformed spec is a ValueError
    listing the valid forms and naming ``REPRO_EXECUTOR`` as the source
    when that is where the bad spec came from."""
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"executor spec must be a string or Executor, got {type(spec)!r}"
        )
    origin = f" (from {_ENV_VAR})" if source == "env" else ""
    base, _, arg = spec.partition(":")
    base = base.strip().lower()
    if base == "serial":
        if arg:
            raise ValueError(
                f"serial executor takes no argument: {spec!r}{origin}"
            )
        return SerialExecutor()
    if base in ("threads", "processes"):
        cls = ThreadExecutor if base == "threads" else ProcessExecutor
        if not arg:
            return cls()
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(
                f"bad worker count in executor spec {spec!r}{origin}"
            ) from None
        return cls(workers)
    raise ValueError(
        f"unknown executor {spec!r}{origin}; expected 'serial', 'threads', "
        "'threads:N', 'processes', or 'processes:N'"
    )


def available_executors() -> list[str]:
    """Spec names accepted by :func:`get_executor` (for CLI help)."""
    return ["serial", "threads", "threads:N", "processes", "processes:N"]
