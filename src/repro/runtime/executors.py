"""Pluggable executors: how per-rank compute segments are scheduled.

The simulated machine keeps every rank's data in one Python process, so
"parallel" rank compute has historically meant a serial ``for rank in
range(nprocs)`` loop.  The executor seam makes that loop pluggable:

* :class:`SerialExecutor` — run segments one after another on the
  calling thread.  This is the default and reproduces the historical
  lockstep semantics exactly.
* :class:`ThreadExecutor` — dispatch segments to a shared thread pool.
  The rank kernels are NumPy-heavy and release the GIL inside array
  arithmetic, so independent rank segments genuinely overlap on a
  multi-core host.
* :class:`ProcessExecutor` — dispatch jobs to a pool of worker
  *processes*.  This one is **not** for rank segments (closures over
  shared solver state cannot cross a process boundary); it schedules
  coarse campaign-level jobs — whole ``harness.run`` invocations whose
  arguments and results are plain picklable dicts (see
  :mod:`repro.campaign`).  Communicators refuse it.

Executors schedule **compute only**.  Communication stays serialized
between parallel regions (see ``Communicator.map_ranks``), and the
deferred-accounting replay in the communicator guarantees that both
executors produce bitwise-identical solver states and identical
clock/trace/ledger instrumentation — only real wall-clock differs.

Resolution order for "which executor should this run use":

1. an explicit ``Executor`` instance or spec string passed by the caller;
2. the process-wide default installed with :func:`set_default_executor`
   (what the ``repro-experiments --executor`` flag uses);
3. the ``REPRO_EXECUTOR`` environment variable (what the CI threaded job
   sets);
4. ``"serial"``.

Spec strings are ``"serial"``, ``"threads"`` (worker count picked from
the host), ``"threads:N"``, ``"processes"``, or ``"processes:N"``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Callable, Iterator, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

_ENV_VAR = "REPRO_EXECUTOR"


class Executor:
    """Schedules a batch of independent segments and collects results.

    Subclasses must preserve *result order*: ``map(fn, items)`` returns
    ``[fn(items[0]), fn(items[1]), ...]`` regardless of the order the
    calls actually ran in.  If any call raises, ``map`` raises (the
    first failure in item order); remaining segments may or may not
    have run, so callers must treat a raised region as charged-nothing
    (the communicator does).
    """

    #: spec-style name ("serial", "threads")
    name: str = "executor"
    #: number of worker threads segments may occupy concurrently
    workers: int = 1
    #: True when segments may run concurrently (drives deferred
    #: accounting and the parallel-region communication guard)
    parallel: bool = False
    #: True when jobs run in the calling process, sharing its memory.
    #: Process executors set this False; communicators require True
    #: (rank segments are closures over shared solver state).
    in_process: bool = True

    def map(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:  # pragma: no cover - interface
        raise NotImplementedError

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        """Yield ``(index, result, error)`` as each job *completes*.

        Exactly one of ``result``/``error`` is non-None per item; the
        order is completion order, not item order (serial executors
        complete in item order by construction).  Unlike :meth:`map`, a
        failing job does not poison the batch — the exception is
        yielded, and every other item still runs.  This is the campaign
        engine's seam: it needs per-completion progress/journaling and
        per-job error isolation, which a barrier ``map`` cannot give.
        """
        for i, item in enumerate(items):
            try:
                yield i, fn(item), None
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - isolation seam
                yield i, None, exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Run every segment on the calling thread, in item order."""

    name = "serial"
    workers = 1
    parallel = False

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        return [fn(item) for item in items]


# One shared pool per worker count, process-wide.  Communicators are
# created by the hundreds across a test run; per-communicator pools
# would churn threads, and idle pool threads cost nothing.
_POOLS: dict[int, _ThreadPool] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> _ThreadPool:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = _ThreadPool(
                max_workers=workers, thread_name_prefix=f"repro-exec{workers}"
            )
            _POOLS[workers] = pool
        return pool


class ThreadExecutor(Executor):
    """Run segments on a shared thread pool (NumPy releases the GIL).

    ``workers=None`` picks ``min(8, os.cpu_count())`` — eight threads
    saturate the per-rank segment sizes the benchmarks use, and more
    only adds scheduling noise.
    """

    name = "threads"
    parallel = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = min(8, os.cpu_count() or 1)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = _shared_pool(self.workers)
        futures = [pool.submit(fn, item) for item in items]
        # result() in submission order: ordered results, and the first
        # failing item's exception (not an arbitrary thread's).
        return [f.result() for f in futures]

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        pool = _shared_pool(self.workers)
        yield from _drain_as_completed(pool, fn, items)


def _drain_as_completed(pool, fn, items):
    """Submit all items and yield ``(index, result, error)`` triples as
    futures finish; on generator teardown (e.g. a KeyboardInterrupt in
    the consumer) the not-yet-started futures are cancelled."""
    futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
    try:
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for f in done:
                i = futures[f]
                exc = f.exception()
                if exc is not None:
                    yield i, None, exc
                else:
                    yield i, f.result(), None
    finally:
        for f in futures:
            f.cancel()


# Process pools are shared per worker count like thread pools: campaign
# invocations come in bursts (cold sweep, then warm rerun) and re-forking
# a pool for each would dominate small sweeps.  ``shutdown_pools`` exists
# for tests and for __main__ benchmarks that want a cold-start measure.
_PROC_POOLS: dict[int, _ProcessPool] = {}
_PROC_POOLS_LOCK = threading.Lock()


def _shared_process_pool(workers: int) -> _ProcessPool:
    with _PROC_POOLS_LOCK:
        pool = _PROC_POOLS.get(workers)
        if pool is None:
            import multiprocessing

            # fork keeps worker start cheap (no re-import of NumPy/SciPy)
            # where available; spawn elsewhere.
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            pool = _ProcessPool(max_workers=workers, mp_context=ctx)
            _PROC_POOLS[workers] = pool
        return pool


def shutdown_process_pools() -> None:
    """Tear down the shared worker-process pools (tests/benchmarks)."""
    with _PROC_POOLS_LOCK:
        pools = list(_PROC_POOLS.values())
        _PROC_POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


class ProcessExecutor(Executor):
    """Run jobs on a pool of worker processes.

    For campaign-level scheduling only: ``fn`` must be a module-level
    callable and items/results must pickle (plain dicts in practice —
    see ``repro.campaign.worker``).  Communicators reject this executor
    (``in_process`` is False): per-rank segments close over shared
    solver state that cannot cross a process boundary.

    ``workers=None`` uses every core — campaign jobs are whole
    application runs, so the pool is sized to the host, not to the
    eight-way segment sweet spot the thread pool targets.
    """

    name = "processes"
    parallel = True
    in_process = False

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        items = list(items)
        if not items:
            return []
        pool = _shared_process_pool(self.workers)
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        pool = _shared_process_pool(self.workers)
        yield from _drain_as_completed(pool, fn, items)


_DEFAULT_LOCK = threading.Lock()
_default_spec: "str | Executor | None" = None


def set_default_executor(spec: "str | Executor | None") -> Executor | None:
    """Install a process-wide default executor (``None`` clears it).

    Returns the resolved executor (so callers can log the choice), or
    ``None`` when clearing.  The default outranks ``REPRO_EXECUTOR``
    but is outranked by an explicit per-communicator argument.
    """
    global _default_spec
    resolved = None if spec is None else _parse(spec)
    with _DEFAULT_LOCK:
        _default_spec = spec
    return resolved


def get_executor(spec: "str | Executor | None" = None) -> Executor:
    """Resolve an executor spec (see module docstring for the chain)."""
    if spec is None:
        with _DEFAULT_LOCK:
            spec = _default_spec
    if spec is None:
        spec = os.environ.get(_ENV_VAR) or "serial"
    return _parse(spec)


def _parse(spec: "str | Executor") -> Executor:
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"executor spec must be a string or Executor, got {type(spec)!r}"
        )
    base, _, arg = spec.partition(":")
    base = base.strip().lower()
    if base == "serial":
        if arg:
            raise ValueError(f"serial executor takes no argument: {spec!r}")
        return SerialExecutor()
    if base in ("threads", "processes"):
        cls = ThreadExecutor if base == "threads" else ProcessExecutor
        if not arg:
            return cls()
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(
                f"bad worker count in executor spec {spec!r}"
            ) from None
        return cls(workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected 'serial', 'threads', "
        "'threads:N', 'processes', or 'processes:N'"
    )


def available_executors() -> list[str]:
    """Spec names accepted by :func:`get_executor` (for CLI help)."""
    return ["serial", "threads", "threads:N", "processes", "processes:N"]
