"""Pluggable executors: how per-rank compute segments are scheduled.

The simulated machine keeps every rank's data in one Python process, so
"parallel" rank compute has historically meant a serial ``for rank in
range(nprocs)`` loop.  The executor seam makes that loop pluggable:

* :class:`SerialExecutor` — run segments one after another on the
  calling thread.  This is the default and reproduces the historical
  lockstep semantics exactly.
* :class:`ThreadExecutor` — dispatch segments to a shared thread pool.
  The rank kernels are NumPy-heavy and release the GIL inside array
  arithmetic, so independent rank segments genuinely overlap on a
  multi-core host.

Executors schedule **compute only**.  Communication stays serialized
between parallel regions (see ``Communicator.map_ranks``), and the
deferred-accounting replay in the communicator guarantees that both
executors produce bitwise-identical solver states and identical
clock/trace/ledger instrumentation — only real wall-clock differs.

Resolution order for "which executor should this run use":

1. an explicit ``Executor`` instance or spec string passed by the caller;
2. the process-wide default installed with :func:`set_default_executor`
   (what the ``repro-experiments --executor`` flag uses);
3. the ``REPRO_EXECUTOR`` environment variable (what the CI threaded job
   sets);
4. ``"serial"``.

Spec strings are ``"serial"``, ``"threads"`` (worker count picked from
the host), or ``"threads:N"``.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from typing import Callable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")

_ENV_VAR = "REPRO_EXECUTOR"


class Executor:
    """Schedules a batch of independent segments and collects results.

    Subclasses must preserve *result order*: ``map(fn, items)`` returns
    ``[fn(items[0]), fn(items[1]), ...]`` regardless of the order the
    calls actually ran in.  If any call raises, ``map`` raises (the
    first failure in item order); remaining segments may or may not
    have run, so callers must treat a raised region as charged-nothing
    (the communicator does).
    """

    #: spec-style name ("serial", "threads")
    name: str = "executor"
    #: number of worker threads segments may occupy concurrently
    workers: int = 1
    #: True when segments may run concurrently (drives deferred
    #: accounting and the parallel-region communication guard)
    parallel: bool = False

    def map(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:  # pragma: no cover - interface
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Run every segment on the calling thread, in item order."""

    name = "serial"
    workers = 1
    parallel = False

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        return [fn(item) for item in items]


# One shared pool per worker count, process-wide.  Communicators are
# created by the hundreds across a test run; per-communicator pools
# would churn threads, and idle pool threads cost nothing.
_POOLS: dict[int, _ThreadPool] = {}
_POOLS_LOCK = threading.Lock()


def _shared_pool(workers: int) -> _ThreadPool:
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = _ThreadPool(
                max_workers=workers, thread_name_prefix=f"repro-exec{workers}"
            )
            _POOLS[workers] = pool
        return pool


class ThreadExecutor(Executor):
    """Run segments on a shared thread pool (NumPy releases the GIL).

    ``workers=None`` picks ``min(8, os.cpu_count())`` — eight threads
    saturate the per-rank segment sizes the benchmarks use, and more
    only adds scheduling noise.
    """

    name = "threads"
    parallel = True

    def __init__(self, workers: int | None = None) -> None:
        if workers is None:
            workers = min(8, os.cpu_count() or 1)
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map(self, fn: Callable[[_T], _R], items: Sequence[_T]) -> list[_R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        pool = _shared_pool(self.workers)
        futures = [pool.submit(fn, item) for item in items]
        # result() in submission order: ordered results, and the first
        # failing item's exception (not an arbitrary thread's).
        return [f.result() for f in futures]


_DEFAULT_LOCK = threading.Lock()
_default_spec: "str | Executor | None" = None


def set_default_executor(spec: "str | Executor | None") -> Executor | None:
    """Install a process-wide default executor (``None`` clears it).

    Returns the resolved executor (so callers can log the choice), or
    ``None`` when clearing.  The default outranks ``REPRO_EXECUTOR``
    but is outranked by an explicit per-communicator argument.
    """
    global _default_spec
    resolved = None if spec is None else _parse(spec)
    with _DEFAULT_LOCK:
        _default_spec = spec
    return resolved


def get_executor(spec: "str | Executor | None" = None) -> Executor:
    """Resolve an executor spec (see module docstring for the chain)."""
    if spec is None:
        with _DEFAULT_LOCK:
            spec = _default_spec
    if spec is None:
        spec = os.environ.get(_ENV_VAR) or "serial"
    return _parse(spec)


def _parse(spec: "str | Executor") -> Executor:
    if isinstance(spec, Executor):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"executor spec must be a string or Executor, got {type(spec)!r}"
        )
    base, _, arg = spec.partition(":")
    base = base.strip().lower()
    if base == "serial":
        if arg:
            raise ValueError(f"serial executor takes no argument: {spec!r}")
        return SerialExecutor()
    if base == "threads":
        if not arg:
            return ThreadExecutor()
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(
                f"bad worker count in executor spec {spec!r}"
            ) from None
        return ThreadExecutor(workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected 'serial', 'threads', or "
        "'threads:N'"
    )


def available_executors() -> list[str]:
    """Spec names accepted by :func:`get_executor` (for CLI help)."""
    return ["serial", "threads", "threads:N"]
