"""Scratch-buffer arena: reusable, shape/dtype-keyed workspaces.

The simulated machine runs every rank in one Python process, so the
"bandwidth-bound" kernels the paper studies spend a large share of
their real wall-clock time in ``malloc``/``free`` churn: every LBMHD
collision re-allocates its equilibrium temporaries, every GTC deposit
its stencil stacks, every PARATEC transpose its pack buffers.  An
:class:`Arena` hands those kernels persistent buffers instead.

Contract
--------
* ``scratch(key, shape, dtype)`` returns a buffer that is **zeroed the
  first time** a given ``(key, shape, dtype)`` is requested and
  returned **as-is** (previous contents intact) afterwards.  Callers
  must therefore either fully overwrite the buffer or explicitly clear
  it — the hot kernels here always do the former.
* Distinct call sites use distinct ``key`` strings, so two kernels can
  never collide on a workspace even when their shapes agree.
* An arena is **not** thread-safe and buffers must not be held across
  a second ``scratch`` call with the same key: the second call returns
  the same memory.

Passing ``arena=None`` to any kernel that accepts one falls back
transparently to the seed's allocating behavior (every call gets fresh
memory), which keeps the allocating path alive as the bit-exactness
oracle for the fast path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Arena:
    """A pool of named, shape/dtype-keyed scratch buffers.

    Attributes
    ----------
    hits, misses:
        Reuse statistics: ``misses`` counts fresh allocations,
        ``hits`` counts calls served from the pool.  A steady-state hot
        loop should show ``hits`` growing while ``misses`` stays flat.
    """

    name: str = "arena"
    hits: int = 0
    misses: int = 0
    _pool: dict[tuple, np.ndarray] = field(default_factory=dict, repr=False)

    def scratch(
        self,
        key: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A persistent workspace for one call site.

        Zero-filled on the first request of a ``(key, shape, dtype)``;
        returned with its previous contents on every later request.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        k = (key, tuple(int(s) for s in shape), np.dtype(dtype).str)
        buf = self._pool.get(k)
        if buf is None:
            buf = np.zeros(k[1], dtype=np.dtype(dtype))
            self._pool[k] = buf
            self.misses += 1
        else:
            self.hits += 1
        return buf

    def scratch_like(self, key: str, ref: np.ndarray) -> np.ndarray:
        """Workspace with the shape and dtype of a reference array."""
        return self.scratch(key, ref.shape, ref.dtype)

    # -- introspection -------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(int(b.nbytes) for b in self._pool.values())

    @property
    def num_buffers(self) -> int:
        return len(self._pool)

    def keys(self) -> list[tuple]:
        """The (key, shape, dtype) triples currently pooled."""
        return sorted(self._pool, key=str)

    def clear(self) -> None:
        """Drop every pooled buffer (and reset the statistics)."""
        self._pool.clear()
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Arena({self.name!r}, buffers={self.num_buffers}, "
            f"bytes={self.nbytes}, hits={self.hits}, misses={self.misses})"
        )


def scratch_or_empty(
    arena: Arena | None,
    key: str,
    shape: tuple[int, ...] | int,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Arena workspace when pooling, fresh zeroed memory when not.

    The single helper hot kernels route every temporary through: the
    two branches return buffers with identical contents guarantees
    (zeroed on first use of a key), so a kernel's arithmetic cannot
    depend on which branch served it.
    """
    if arena is not None:
        return arena.scratch(key, shape, dtype)
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    return np.zeros(shape, dtype=np.dtype(dtype))
