"""Scratch-buffer arena: reusable, shape/dtype-keyed workspaces.

The simulated machine runs every rank in one Python process, so the
"bandwidth-bound" kernels the paper studies spend a large share of
their real wall-clock time in ``malloc``/``free`` churn: every LBMHD
collision re-allocates its equilibrium temporaries, every GTC deposit
its stencil stacks, every PARATEC transpose its pack buffers.  An
:class:`Arena` hands those kernels persistent buffers instead.

Contract
--------
* ``scratch(key, shape, dtype)`` returns a buffer that is **zeroed the
  first time** a given ``(key, shape, dtype)`` is requested and
  returned **as-is** (previous contents intact) afterwards.  Callers
  must therefore either fully overwrite the buffer or explicitly clear
  it — the hot kernels here always do the former.
* Distinct call sites use distinct ``key`` strings, so two kernels can
  never collide on a workspace even when their shapes agree.
* Pool bookkeeping is lock-guarded, so concurrent ``scratch`` calls
  are safe and two threads asking for the same key get the same
  buffer.  That is still *aliasing* if the threads are different
  ranks: concurrent rank segments must draw from per-rank child arenas
  (:meth:`Arena.for_rank`), which hold disjoint pools by construction.
* Buffers must not be held across a second ``scratch`` call with the
  same key on the same arena: the second call returns the same memory.

Passing ``arena=None`` to any kernel that accepts one falls back
transparently to the seed's allocating behavior (every call gets fresh
memory), which keeps the allocating path alive as the bit-exactness
oracle for the fast path.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np


@dataclass
class Arena:
    """A pool of named, shape/dtype-keyed scratch buffers.

    Attributes
    ----------
    hits, misses:
        Reuse statistics: ``misses`` counts fresh allocations,
        ``hits`` counts calls served from the pool.  A steady-state hot
        loop should show ``hits`` growing while ``misses`` stays flat.
    """

    name: str = "arena"
    hits: int = 0
    misses: int = 0
    _pool: dict[tuple, np.ndarray] = field(default_factory=dict, repr=False)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _children: dict[int, "Arena"] = field(
        default_factory=dict, repr=False, compare=False
    )

    def scratch(
        self,
        key: str,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
    ) -> np.ndarray:
        """A persistent workspace for one call site.

        Zero-filled on the first request of a ``(key, shape, dtype)``;
        returned with its previous contents on every later request.
        """
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        k = (key, tuple(int(s) for s in shape), np.dtype(dtype).str)
        with self._lock:
            buf = self._pool.get(k)
            if buf is None:
                buf = self._new_buffer(key, k[1], np.dtype(dtype))
                self._pool[k] = buf
                self.misses += 1
            else:
                self.hits += 1
        return buf

    def _new_buffer(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """Allocation hook: where a first-request buffer comes from.

        Must return zero-filled memory of exactly ``shape``/``dtype``
        (the contract callers rely on).  The base arena uses private
        process memory; :class:`~repro.runtime.shm.ShmArena` overrides
        this to place buffers in shared-memory segments.
        """
        return np.zeros(shape, dtype=dtype)

    @property
    def shared(self) -> bool:
        """True when buffers are visible to forked worker processes.

        Private-memory arenas answer ``False``; solvers use this to
        gate in-place fast paths that require cross-process visibility
        (e.g. the LBMHD batched state block) when segments run on a
        process executor.
        """
        return False

    def scratch_like(self, key: str, ref: np.ndarray) -> np.ndarray:
        """Workspace with the shape and dtype of a reference array."""
        return self.scratch(key, ref.shape, ref.dtype)

    def for_rank(self, rank: int) -> "Arena":
        """The per-rank child arena — disjoint pool, stable identity.

        Rank kernels share arena keys ("lbmhd.collide.rho",
        "gtc.deposit.rho", ...) because the key names the *call site*,
        not the rank.  When rank segments run concurrently those keys
        must not resolve to one buffer, so each rank draws scratch from
        its own child.  Children are cached: the same child (hence the
        same buffers) comes back every step, preserving the reuse the
        arena exists for.
        """
        rank = int(rank)
        with self._lock:
            child = self._children.get(rank)
            if child is None:
                child = self._make_child(rank)
                self._children[rank] = child
        return child

    def _make_child(self, rank: int) -> "Arena":
        """Construction hook for per-rank children (same arena kind)."""
        return Arena(name=f"{self.name}[{rank}]")

    # -- introspection -------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes held by the pool, including per-rank children."""
        with self._lock:
            own = sum(int(b.nbytes) for b in self._pool.values())
            children = list(self._children.values())
        return own + sum(c.nbytes for c in children)

    @property
    def num_buffers(self) -> int:
        with self._lock:
            own = len(self._pool)
            children = list(self._children.values())
        return own + sum(c.num_buffers for c in children)

    def keys(self) -> list[tuple]:
        """The (key, shape, dtype) triples pooled by *this* arena."""
        with self._lock:
            return sorted(self._pool, key=str)

    def clear(self) -> None:
        """Drop every pooled buffer and child (and reset statistics)."""
        with self._lock:
            self._pool.clear()
            self._children.clear()
            self.hits = 0
            self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Arena({self.name!r}, buffers={self.num_buffers}, "
            f"bytes={self.nbytes}, hits={self.hits}, misses={self.misses})"
        )


def scratch_or_empty(
    arena: Arena | None,
    key: str,
    shape: tuple[int, ...] | int,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Arena workspace when pooling, fresh zeroed memory when not.

    The single helper hot kernels route every temporary through: the
    two branches return buffers with identical contents guarantees
    (zeroed on first use of a key), so a kernel's arithmetic cannot
    depend on which branch served it.
    """
    if arena is not None:
        return arena.scratch(key, shape, dtype)
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    return np.zeros(shape, dtype=np.dtype(dtype))
