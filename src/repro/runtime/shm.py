"""Shared-memory arena backing: rank state visible across processes.

The executor seam made per-rank compute segments schedulable on a
thread pool; this module makes them schedulable on *worker processes*.
A :class:`SharedArenaPool` owns a handful of POSIX shared-memory slabs
(``multiprocessing.shared_memory``) and hands out NumPy views into
them; an :class:`ShmArena` is a drop-in :class:`~repro.runtime.arena.
Arena` whose buffers live in those slabs, so a forked worker's in-place
writes to a rank's state block are visible to the parent with zero
copies and zero pickling.

Design points, in the order they bit:

* **Bump allocation, no reuse.**  Freshly ``ftruncate``-extended shm is
  zero-filled by the kernel, and the pool never hands the same bytes
  out twice, so every buffer honors the arena contract (zeroed on first
  request) without an explicit ``memset``.  Buffers are 64-byte
  aligned; a request larger than the slab size gets its own slab.
* **Creator-only allocation.**  Only the process that built the pool
  may allocate (``try_allocate`` returns ``None`` elsewhere, and
  :class:`ShmArena` then falls back to private memory).  A forked
  segment that invents a new scratch key mid-region gets an ordinary
  private buffer — correct, just not shared — instead of creating an
  shm segment the parent would never learn about (and could therefore
  never unlink).
* **Unlink exactly once, deterministically.**  ``close()`` unlinks
  every slab (idempotent: first call wins) and is backstopped by a
  ``weakref.finalize`` so an abandoned pool still unlinks at garbage
  collection rather than tripping the interpreter's resource-tracker
  "leaked shared_memory objects" warning.  Live NumPy views keep the
  *mapping* valid after unlink (POSIX semantics), so results handed to
  callers survive the pool they were allocated from.
* **Graceful degradation.**  :func:`shm_available` actually probes a
  segment create (cached) and honors the ``REPRO_SHM_DISABLE``
  environment toggle, so hosts without a usable ``/dev/shm`` — and CI
  jobs simulating them — fall back to serial execution instead of
  failing mid-run.

:class:`ShmHandles` (from :meth:`SharedArenaPool.handles`) is the
picklable by-name description of the pool for processes that did *not*
fork from the creator — spawned workers attach each slab by name and
resolve labeled buffers to views.  Forked workers don't need it: they
inherit the mappings.
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .arena import Arena

__all__ = [
    "SharedArenaPool",
    "ShmArena",
    "ShmHandles",
    "shm_available",
]

_ENV_DISABLE = "REPRO_SHM_DISABLE"
_ALIGN = 64
_DEFAULT_SLAB_BYTES = 16 * 1024 * 1024

_probe_lock = threading.Lock()
_probe_result: bool | None = None


def shm_available() -> bool:
    """Can this host actually create POSIX shared memory?

    Probes one tiny segment create/unlink (result cached for the
    process).  Setting ``REPRO_SHM_DISABLE`` to any non-empty value
    forces ``False`` — the CI fallback job uses this to exercise the
    degrade-to-serial path on hosts that do have ``/dev/shm``.
    """
    if os.environ.get(_ENV_DISABLE):
        return False
    global _probe_result
    with _probe_lock:
        if _probe_result is None:
            try:
                seg = shared_memory.SharedMemory(create=True, size=_ALIGN)
            except (OSError, ValueError):
                _probe_result = False
            else:
                _detach_segment(seg)
                try:
                    seg.unlink()
                except OSError:  # pragma: no cover - raced cleanup
                    pass
                _probe_result = True
    return _probe_result


def _detach_segment(seg: shared_memory.SharedMemory) -> None:
    """Close one segment handle without unmapping under live views.

    ``SharedMemory.close()`` must never be called here: it unmaps
    unconditionally.  NumPy arrays built on ``seg.buf`` keep the
    memoryview only as their ``base`` — they hold no PEP-3118 export —
    so ``close()`` raises no ``BufferError`` and would pull the mapping
    out from under live result arrays (a segfault on the next read).
    Dropping the handle's own references instead leaves the mapping
    governed by refcount: any view chains ndarray -> memoryview ->
    mmap, so the memory is unmapped by ``mmap.__del__`` exactly when
    the last view dies (immediately, if there are none).  The fd
    closes now, and ``SharedMemory.__del__`` finds nothing left to
    close (no "Exception ignored" noise at GC).
    """
    seg._buf = None
    seg._mmap = None
    if seg._fd >= 0:
        os.close(seg._fd)
        seg._fd = -1


def _release_segments(segments: list, owner_pid: int) -> None:
    """Unlink + detach every slab (close/finalize callback, runs once).

    Guarded by pid so a forked child that garbage-collects its copy of
    a pool can never unlink the parent's live segments.
    """
    if os.getpid() != owner_pid:
        return
    for seg in segments:
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover - raced
            pass
        _detach_segment(seg)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment by name, without tracker ownership.

    On Python < 3.13, ``SharedMemory(name)`` registers the segment with
    this process's resource tracker even though it did not create it —
    exiting would then both warn about and *unlink* a segment the
    creator still owns.  Attachers are guests: unregister immediately.
    """
    seg = shared_memory.SharedMemory(name=name)
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift
        pass
    return seg


@dataclass(frozen=True)
class ShmHandles:
    """Picklable by-name description of a pool's slabs and buffers.

    ``buffers`` maps label -> (slab index, byte offset, shape, dtype
    str).  :meth:`open` attaches every slab in a foreign process (one
    that did not fork from the pool's creator) and resolves labels to
    live views.
    """

    segments: tuple[str, ...]
    buffers: tuple[tuple[str, int, int, tuple[int, ...], str], ...]

    def open(self) -> "AttachedPool":
        return AttachedPool(self)


class AttachedPool:
    """A foreign process's live attachment to a pool's slabs."""

    def __init__(self, handles: ShmHandles) -> None:
        self._segments = [_attach_segment(n) for n in handles.segments]
        self._index = {
            label: (seg, off, shape, dtype)
            for label, seg, off, shape, dtype in handles.buffers
        }

    def view(self, label: str) -> np.ndarray:
        """The live shared view of one labeled buffer."""
        seg_idx, off, shape, dtype = self._index[label]
        return np.ndarray(
            shape,
            dtype=np.dtype(dtype),
            buffer=self._segments[seg_idx].buf,
            offset=off,
        )

    def labels(self) -> list[str]:
        return sorted(self._index)

    def close(self) -> None:
        """Detach (never unlink — attachers are guests, not owners)."""
        for seg in self._segments:
            _detach_segment(seg)
        self._segments = []


class SharedArenaPool:
    """Owner of shared-memory slabs serving zero-filled NumPy buffers.

    Build one per run in the process that steps the solver, draw the
    run's arenas from :meth:`arena`, and :meth:`close` it when the run
    ends — segments are created once (partition-and-build-once), reused
    across every step, and unlinked exactly once.
    """

    def __init__(
        self,
        slab_bytes: int = _DEFAULT_SLAB_BYTES,
        name: str = "repro-shm",
    ) -> None:
        if slab_bytes < _ALIGN:
            raise ValueError(f"slab_bytes must be >= {_ALIGN}")
        if not shm_available():
            raise RuntimeError(
                "POSIX shared memory is unavailable on this host"
                + (
                    f" ({_ENV_DISABLE} is set)"
                    if os.environ.get(_ENV_DISABLE)
                    else " (no usable /dev/shm)"
                )
            )
        self.name = name
        self._slab_bytes = int(slab_bytes)
        self._lock = threading.Lock()
        self._segments: list[shared_memory.SharedMemory] = []
        self._spare = 0  # bytes left in the last slab
        self._table: dict[str, tuple[int, int, tuple[int, ...], str]] = {}
        self._owner_pid = os.getpid()
        self._closed = False
        self._buffers = 0
        self._used_bytes = 0
        # GC backstop: an abandoned pool still unlinks its slabs (the
        # callback must not reference self, or it would never fire).
        self._finalizer = weakref.finalize(
            self, _release_segments, self._segments, self._owner_pid
        )

    # -- allocation -----------------------------------------------------

    @property
    def writable(self) -> bool:
        """True when this process may allocate from the pool."""
        return not self._closed and os.getpid() == self._owner_pid

    def try_allocate(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        label: str | None = None,
    ) -> np.ndarray | None:
        """A zero-filled shared buffer, or ``None`` when not writable.

        The ``None`` return is the graceful path a forked worker (or a
        closed pool) takes — callers substitute private memory.
        """
        if not self.writable:
            return None
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(s) for s in shape)
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        need = max(_ALIGN, -(-max(nbytes, 1) // _ALIGN) * _ALIGN)
        with self._lock:
            if self._closed:
                return None
            if not self._segments or self._spare < need:
                size = max(self._slab_bytes, need)
                seg = shared_memory.SharedMemory(create=True, size=size)
                self._segments.append(seg)
                self._spare = size
            seg_idx = len(self._segments) - 1
            seg = self._segments[seg_idx]
            offset = seg.size - self._spare
            self._spare -= need
            self._buffers += 1
            self._used_bytes += nbytes
            if label is not None:
                self._table[label] = (seg_idx, offset, shape, dt.str)
        return np.ndarray(shape, dtype=dt, buffer=seg.buf, offset=offset)

    def allocate(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        label: str | None = None,
    ) -> np.ndarray:
        """Like :meth:`try_allocate` but raising instead of ``None``."""
        buf = self.try_allocate(shape, dtype, label=label)
        if buf is None:
            raise RuntimeError(
                f"pool {self.name!r} is not writable here "
                f"(closed={self._closed}, owner pid {self._owner_pid}, "
                f"this pid {os.getpid()})"
            )
        return buf

    def arena(self, name: str = "shm-arena") -> "ShmArena":
        """A fresh :class:`ShmArena` drawing its buffers from this pool."""
        return ShmArena(self, name=name)

    def handles(self) -> ShmHandles:
        """Picklable attachment info for non-forked worker processes."""
        with self._lock:
            return ShmHandles(
                segments=tuple(seg.name for seg in self._segments),
                buffers=tuple(
                    (label, *entry) for label, entry in self._table.items()
                ),
            )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Unlink every slab (exactly once; safe to call repeatedly).

        Live views stay valid — POSIX keeps an unlinked mapping alive
        until the last reference dies — but no further shared
        allocations are served (:meth:`try_allocate` returns ``None``).
        """
        with self._lock:
            self._closed = True
        self._finalizer()  # weakref.finalize: runs the callback once

    @property
    def closed(self) -> bool:
        return self._closed

    # -- introspection --------------------------------------------------

    @property
    def num_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def num_buffers(self) -> int:
        return self._buffers

    @property
    def nbytes(self) -> int:
        """Bytes handed out (excluding alignment/slab slack)."""
        return self._used_bytes

    def __enter__(self) -> "SharedArenaPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SharedArenaPool({self.name!r}, slabs={self.num_segments}, "
            f"buffers={self._buffers}, bytes={self._used_bytes}, "
            f"closed={self._closed})"
        )


class ShmArena(Arena):
    """An :class:`Arena` whose buffers are shared-memory views.

    Behaviorally identical to the base arena (zeroed on first request
    of a key, contents persist, per-rank children disjoint) — only the
    backing storage differs, which is what lets forked rank segments
    mutate state blocks the parent can see.  When the pool is not
    writable (forked child, closed pool), new keys silently fall back
    to private memory: still correct, just not shared, so a worker that
    invents a scratch key mid-segment cannot leak an shm segment.
    """

    def __init__(self, pool: SharedArenaPool, name: str = "shm-arena") -> None:
        super().__init__(name=name)
        self._shm_pool = pool

    @property
    def pool(self) -> SharedArenaPool:
        return self._shm_pool

    @property
    def shared(self) -> bool:
        return self._shm_pool.writable

    def _new_buffer(
        self, key: str, shape: tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        label = f"{self.name}/{key}/{'x'.join(map(str, shape))}/{dtype.str}"
        buf = self._shm_pool.try_allocate(shape, dtype, label=label)
        if buf is None:
            return np.zeros(shape, dtype=dtype)
        return buf

    def _make_child(self, rank: int) -> "ShmArena":
        return ShmArena(self._shm_pool, name=f"{self.name}[{rank}]")
