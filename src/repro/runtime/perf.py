"""Wall-clock measurement helpers for the hot-path benchmarks.

Unlike :mod:`repro.perfmodel`, which models *virtual* time on the
paper's seven platforms, this module measures the *real* time this
reproduction takes to run — the quantity ``benchmarks/bench_hotpath.py``
tracks across PRs in the ``BENCH_*.json`` files.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable


@dataclass(frozen=True)
class Timing:
    """Wall-clock samples of one benchmarked callable."""

    label: str
    samples: tuple[float, ...]

    @property
    def best(self) -> float:
        """Minimum sample — the least-noisy wall-clock estimate."""
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def repeats(self) -> int:
        return len(self.samples)

    def speedup_over(self, other: "Timing") -> float:
        """How many times faster this timing is than ``other``."""
        return other.best / self.best if self.best > 0 else float("inf")

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "best_s": self.best,
            "mean_s": self.mean,
            "samples_s": list(self.samples),
        }


def measure(
    fn: Callable[[], object],
    label: str = "",
    repeats: int = 5,
    warmup: int = 1,
) -> Timing:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded runs."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return Timing(label=label, samples=tuple(samples))


@dataclass
class StopWatch:
    """Accumulating named-section timer (for ad-hoc phase breakdowns)."""

    sections: dict[str, float] = field(default_factory=dict)
    _t0: float | None = None
    _current: str | None = None

    def start(self, section: str) -> None:
        if self._current is not None:
            self.stop()
        self._current = section
        self._t0 = time.perf_counter()

    def stop(self) -> None:
        if self._current is None or self._t0 is None:
            return
        dt = time.perf_counter() - self._t0
        self.sections[self._current] = self.sections.get(self._current, 0.0) + dt
        self._current = None
        self._t0 = None


#: Decimal places kept in emitted BENCH_*.json floats.  Nanosecond
#: wall-clock noise in the 15th digit is not reviewable information;
#: nine places keep every meaningful digit of a perf_counter sample
#: while making cross-PR diffs of tracked files stable.
FLOAT_DECIMALS = 9


def round_floats(obj: object, ndigits: int = FLOAT_DECIMALS) -> object:
    """Recursively round every float in a JSON-plain structure."""
    if isinstance(obj, float):
        return round(obj, ndigits)
    if isinstance(obj, dict):
        return {k: round_floats(v, ndigits) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [round_floats(v, ndigits) for v in obj]
    return obj


def write_results(path: str | Path, results: dict) -> Path:
    """Write one benchmark campaign to a ``BENCH_*.json`` file.

    Emission is normalized — sorted keys, floats rounded to
    :data:`FLOAT_DECIMALS` places, trailing newline — so tracked
    benchmark files diff cleanly across PRs.
    """
    p = Path(path)
    p.write_text(
        json.dumps(round_floats(results), indent=2, sort_keys=True) + "\n"
    )
    return p
