"""Execution-runtime utilities shared by the hot paths.

* :mod:`repro.runtime.arena` — shape/dtype-keyed scratch-buffer arena
  that lets hot kernels (LBMHD collide, GTC deposit/push, PARATEC FFT
  transposes) reuse workspaces across time steps instead of
  reallocating them; per-rank child arenas keep concurrent rank
  segments from aliasing a workspace;
* :mod:`repro.runtime.executors` — the executor seam: serial lockstep
  or a thread pool for per-rank compute segments, resolved from an
  explicit spec, :func:`set_default_executor`, or ``REPRO_EXECUTOR``;
* :mod:`repro.runtime.perf` — small wall-clock timing helpers backing
  ``benchmarks/bench_hotpath.py`` and the ``BENCH_*.json`` perf
  trajectory.
"""

from .arena import Arena
from .executors import (
    Executor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    get_executor,
    set_default_executor,
)
from .perf import Timing, measure, write_results

__all__ = [
    "Arena",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "Timing",
    "available_executors",
    "get_executor",
    "measure",
    "set_default_executor",
    "write_results",
]
