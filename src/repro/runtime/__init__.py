"""Execution-runtime utilities shared by the hot paths.

* :mod:`repro.runtime.arena` — shape/dtype-keyed scratch-buffer arena
  that lets hot kernels (LBMHD collide, GTC deposit/push, PARATEC FFT
  transposes) reuse workspaces across time steps instead of
  reallocating them; per-rank child arenas keep concurrent rank
  segments from aliasing a workspace;
* :mod:`repro.runtime.shm` — the shared-memory backing for arenas:
  :class:`SharedArenaPool` owns POSIX shared-memory slabs and serves
  :class:`ShmArena` buffers as views into them, so forked process
  workers mutate rank state the parent can see (zero-copy exchange);
* :mod:`repro.runtime.executors` — the executor seam: serial lockstep,
  a thread pool, or forked worker processes for per-rank compute
  segments, resolved from an explicit spec,
  :func:`set_default_executor`, or ``REPRO_EXECUTOR``;
* :mod:`repro.runtime.perf` — small wall-clock timing helpers backing
  ``benchmarks/bench_hotpath.py`` and the ``BENCH_*.json`` perf
  trajectory.
"""

from .arena import Arena
from .executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    available_executors,
    get_executor,
    set_default_executor,
)
from .perf import Timing, measure, write_results
from .shm import SharedArenaPool, ShmArena, ShmHandles, shm_available

__all__ = [
    "Arena",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "SharedArenaPool",
    "ShmArena",
    "ShmHandles",
    "Timing",
    "ThreadExecutor",
    "available_executors",
    "get_executor",
    "measure",
    "set_default_executor",
    "shm_available",
    "write_results",
]
