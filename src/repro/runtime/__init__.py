"""Execution-runtime utilities shared by the hot paths.

* :mod:`repro.runtime.arena` — shape/dtype-keyed scratch-buffer arena
  that lets hot kernels (LBMHD collide, GTC deposit/push, PARATEC FFT
  transposes) reuse workspaces across time steps instead of
  reallocating them;
* :mod:`repro.runtime.perf` — small wall-clock timing helpers backing
  ``benchmarks/bench_hotpath.py`` and the ``BENCH_*.json`` perf
  trajectory.
"""

from .arena import Arena
from .perf import Timing, measure, write_results

__all__ = ["Arena", "Timing", "measure", "write_results"]
