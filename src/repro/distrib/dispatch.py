"""The executor seam adapter: ``scheduler="distrib:HOST:PORT"``.

:class:`DistribExecutor` wraps a :class:`~repro.distrib.coordinator.
Coordinator` in the :class:`~repro.runtime.executors.Executor`
interface the campaign engine already speaks, so
``run_campaign(..., scheduler="distrib:0.0.0.0:7713")`` and
``repro-campaign run --scheduler distrib:...`` fan a sweep out to
however many ``repro-distrib worker`` processes connect — with zero
changes to the engine's progress, journaling, caching, or per-config
failure isolation, all of which key off the ``imap_unordered``
contract.

Scope: campaign-level jobs only.  :meth:`segment_support` reports
False — per-rank compute segments are closures over live solver
memory and cannot cross a socket — so a communicator handed this
executor falls back to serial rank stepping, exactly like a host
without fork support.

Tuning knobs ride on environment variables (the spec string stays a
plain endpoint so every existing ``--scheduler`` surface works
unchanged):

=========================  ==========================================
``REPRO_DISTRIB_TIMEOUT``  per-config deadline, seconds (default 600)
``REPRO_DISTRIB_ATTEMPTS`` attempt budget per config (default 3)
``REPRO_DISTRIB_GRACE``    seconds with no workers before the local
                           fallback starts draining (default 5)
``REPRO_DISTRIB_LOCAL``    ``0`` disables the local fallback entirely
                           (CI uses this to prove remote execution)
=========================  ==========================================
"""

from __future__ import annotations

import os
from typing import Any, Callable, Iterator, Sequence

from ..runtime.executors import Executor, SegmentSupport
from .coordinator import Coordinator
from .protocol import parse_endpoint

_T = Any
_R = Any


def is_distrib_spec(spec: object) -> bool:
    """True when a scheduler spec string names distributed dispatch."""
    return isinstance(spec, str) and \
        spec.strip().lower().startswith("distrib:")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number, got {raw!r}"
        ) from None


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer, got {raw!r}"
        ) from None


class DistribExecutor(Executor):
    """Campaign executor that dispatches jobs to remote workers.

    The embedded coordinator starts lazily on the first
    :meth:`imap_unordered` call and stays alive across calls — the
    service's job queue runs many single-config campaigns against one
    executor instance, and workers should not have to reconnect per
    config.  Call :meth:`close` (tests do; process exit otherwise
    reaps the daemon threads) to tear the socket down.
    """

    name = "distrib"
    parallel = True
    in_process = False

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 600.0,
        max_attempts: int = 3,
        grace_s: float = 5.0,
        heartbeat_timeout_s: float = 10.0,
        local_fallback: bool = True,
    ) -> None:
        self.coordinator = Coordinator(
            host,
            port,
            timeout_s=timeout_s,
            max_attempts=max_attempts,
            grace_s=grace_s,
            heartbeat_timeout_s=heartbeat_timeout_s,
            local_fallback=local_fallback,
        )
        # one slot per connected worker would be honest, but the pool
        # changes at runtime; report 1 so nothing sizes around us
        self.workers = 1

    @classmethod
    def from_spec(cls, spec: str) -> "DistribExecutor":
        """Build from ``"distrib:HOST:PORT"`` plus the env knobs."""
        host, port = parse_endpoint(spec)
        return cls(
            host,
            port,
            timeout_s=_env_float("REPRO_DISTRIB_TIMEOUT", 600.0),
            max_attempts=_env_int("REPRO_DISTRIB_ATTEMPTS", 3),
            grace_s=_env_float("REPRO_DISTRIB_GRACE", 5.0),
            local_fallback=os.environ.get("REPRO_DISTRIB_LOCAL", "1")
            != "0",
        )

    @property
    def stats(self):
        return self.coordinator.stats

    def segment_support(self) -> SegmentSupport:
        return SegmentSupport(
            False,
            "distrib schedules whole campaign configs across hosts; "
            "rank segments close over live solver memory and cannot "
            "cross a socket",
        )

    def map(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> list[_R]:
        """Ordered barrier map over the dispatch seam (rarely used —
        the engine drives :meth:`imap_unordered`)."""
        results: list = [None] * len(list(items))
        for index, payload, exc in self.imap_unordered(fn, items):
            if exc is not None:
                raise exc
            results[index] = payload
        return results

    def imap_unordered(
        self, fn: Callable[[_T], _R], items: Sequence[_T]
    ) -> Iterator[tuple[int, _R | None, BaseException | None]]:
        """Dispatch ``(config_dict, cache_root)`` jobs to the worker
        pool; ``fn`` (the engine passes ``run_and_cache``) doubles as
        the local-fallback execution path."""
        yield from self.coordinator.dispatch(list(items), local_fn=fn)

    def close(self) -> None:
        self.coordinator.stop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DistribExecutor({self.coordinator.endpoint!r}, "
            f"workers={len(self.coordinator.workers())})"
        )
