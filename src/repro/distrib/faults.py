"""Failure accounting for distributed dispatch.

Three small, lock-free-by-construction pieces (every method is called
under the coordinator's lock):

* :class:`AttemptTracker` — the bounded retry budget.  Every way a
  config execution can end badly (worker returned ``failed``, worker
  died mid-config, per-config timeout expired) consumes one attempt;
  while budget remains the config is requeued for another worker, and
  when it runs out the accumulated error history becomes the config's
  terminal error.
* :class:`WorkerHealth` — per-connection liveness bookkeeping: the
  timestamp of the last message (any type — ``next`` polls and
  ``heartbeat``\\ s both count) and the currently assigned ticket.  A
  busy worker that goes silent past the heartbeat timeout is declared
  dead and its assignment is retried elsewhere.
* :class:`DistribStats` — the dispatch counters the benchmarks, tests,
  and CI assertions read.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class DistribStats:
    """Counters for one coordinator's lifetime of dispatching."""

    #: Configs handed to a worker (re-dispatches count again).
    dispatched: int = 0
    #: Configs that came home with a result.
    completed: int = 0
    #: Configs that exhausted their attempt budget.
    failed: int = 0
    #: Requeues after a failure/death/timeout (budget permitting).
    retried: int = 0
    #: Per-config deadlines that expired.
    timeouts: int = 0
    #: Workers declared dead (socket error, EOF, or silent heartbeat).
    dead_workers: int = 0
    #: Configs executed by the coordinator's local fallback path.
    local_runs: int = 0
    #: Workers turned away at ``hello`` (version mismatch).
    rejected_workers: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "dispatched": self.dispatched,
            "completed": self.completed,
            "failed": self.failed,
            "retried": self.retried,
            "timeouts": self.timeouts,
            "dead_workers": self.dead_workers,
            "local_runs": self.local_runs,
            "rejected_workers": self.rejected_workers,
        }


class AttemptTracker:
    """Bounded attempt budget with an error history per ticket."""

    def __init__(self, max_attempts: int) -> None:
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self._attempts: dict[int, int] = {}
        self._errors: dict[int, list[str]] = {}

    def attempts(self, tid: int) -> int:
        return self._attempts.get(tid, 0)

    def record_failure(self, tid: int, error: str) -> bool:
        """Book one failed attempt; True while budget remains."""
        n = self._attempts.get(tid, 0) + 1
        self._attempts[tid] = n
        self._errors.setdefault(tid, []).append(error)
        return n < self.max_attempts

    def history(self, tid: int) -> str:
        """The accumulated failure story for a terminal error message."""
        errors = self._errors.get(tid, [])
        if not errors:
            return "no recorded attempts"
        story = "; ".join(
            f"attempt {i + 1}: {err}" for i, err in enumerate(errors)
        )
        return f"{len(errors)}/{self.max_attempts} attempt(s) failed — {story}"


class WorkerHealth:
    """Liveness + assignment bookkeeping for one worker connection."""

    __slots__ = ("name", "host", "cpu_count", "version", "last_seen",
                 "busy_tid")

    def __init__(
        self,
        name: str,
        *,
        host: str = "",
        cpu_count: int = 0,
        version: str = "",
    ) -> None:
        self.name = name
        self.host = host
        self.cpu_count = cpu_count
        self.version = version
        self.last_seen = time.monotonic()
        #: Ticket id currently assigned to this worker, or ``None``.
        self.busy_tid: int | None = None

    def touch(self) -> None:
        self.last_seen = time.monotonic()

    def silent_for(self) -> float:
        return time.monotonic() - self.last_seen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"busy:{self.busy_tid}" if self.busy_tid is not None else "idle"
        return f"WorkerHealth({self.name!r}, {state})"
