"""The remote half of distributed dispatch: ``repro-distrib worker``.

A :class:`DistribWorker` connects to a coordinator, introduces itself
(``hello`` with host, cpu_count, and package version), then loops:
``next`` -> run the config / sleep on ``wait`` / leave on
``shutdown``.  Configs execute through the same
:func:`repro.campaign.worker.run_and_cache` path a local campaign
uses — but with ``cache_root=None``, because the worker may be on a
host that cannot see the campaign's cache directory; the coordinator
publishes the shipped result into the content-addressed cache itself.

While a config is computing (in a thread), the connection thread sends
``heartbeat`` frames so the coordinator can tell "slow but alive" from
"dead" — a worker that stops heartbeating past the coordinator's
heartbeat timeout gets its assignment retried elsewhere.

The worker exits cleanly when the coordinator says ``shutdown`` or
simply goes away (EOF): campaign over, nothing to reconnect to.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .. import __version__
from ..campaign.worker import run_and_cache
from .protocol import recv_msg, send_msg

#: Heartbeat cadence while a config is computing.  Must be comfortably
#: inside the coordinator's ``heartbeat_timeout_s`` (default 10s).
HEARTBEAT_S = 2.0
#: How long to wait for the coordinator's reply to ``hello``/``next``
#: (both are answered immediately; a silent coordinator is a dead one).
REPLY_TIMEOUT_S = 30.0
#: Cap on how long a ``wait`` reply can make us sleep.
MAX_WAIT_S = 5.0


class WorkerError(RuntimeError):
    """The coordinator rejected us or broke the handshake contract."""


@dataclass
class WorkerStats:
    """What one worker session did, for the CLI summary line."""

    completed: int = 0
    failed: int = 0
    waits: int = 0
    heartbeats: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "waits": self.waits,
            "heartbeats": self.heartbeats,
        }


def _default_runner(config: dict[str, Any]) -> dict[str, Any]:
    """Execute one config dict the way a local campaign worker would,
    minus the cache publish (the coordinator owns the cache)."""
    return run_and_cache((config, None))["result"]


class DistribWorker:
    """One pull-based worker session against a coordinator.

    ``runner`` is injectable for tests (e.g. a barrier-gated stub that
    guarantees two workers each take work); the default is the real
    campaign execution path.
    """

    def __init__(
        self,
        endpoint: str,
        *,
        name: str | None = None,
        runner: "Callable[[dict[str, Any]], dict[str, Any]] | None" = None,
        heartbeat_s: float = HEARTBEAT_S,
        reply_timeout_s: float = REPLY_TIMEOUT_S,
    ) -> None:
        from .protocol import parse_endpoint

        self.host, self.port = parse_endpoint(endpoint)
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.runner = runner or _default_runner
        self.heartbeat_s = float(heartbeat_s)
        self.reply_timeout_s = float(reply_timeout_s)
        self.stats = WorkerStats()
        #: The (possibly deduplicated) name the coordinator assigned.
        self.assigned_name: str | None = None
        self._stop = threading.Event()

    def stop(self) -> None:
        """Finish the in-flight config (if any), then disconnect."""
        self._stop.set()

    # -- session ----------------------------------------------------------

    def run(self, max_configs: int | None = None) -> WorkerStats:
        """Connect, pull configs until the campaign ends, return stats.

        ``max_configs`` bounds how many configs this session will take
        (tests use it to force a predictable split across workers).
        """
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.reply_timeout_s
        )
        try:
            sock.settimeout(self.reply_timeout_s)
            send_msg(
                sock,
                {
                    "type": "hello",
                    "name": self.name,
                    "host": socket.gethostname(),
                    "cpu_count": os.cpu_count() or 1,
                    "version": __version__,
                },
            )
            welcome = recv_msg(sock)
            if welcome is None:
                raise WorkerError("coordinator hung up during the handshake")
            if welcome.get("type") == "reject":
                raise WorkerError(
                    "coordinator rejected this worker: "
                    f"{welcome.get('reason', 'no reason given')}"
                )
            if welcome.get("type") != "welcome":
                raise WorkerError(
                    f"expected welcome/reject, got {welcome.get('type')!r}"
                )
            self.assigned_name = str(welcome.get("name") or self.name)

            taken = 0
            while not self._stop.is_set():
                if max_configs is not None and taken >= max_configs:
                    break
                send_msg(sock, {"type": "next"})
                reply = recv_msg(sock)
                if reply is None:
                    return self.stats  # coordinator gone: campaign over
                kind = reply.get("type")
                if kind == "shutdown":
                    break
                if kind == "wait":
                    self.stats.waits += 1
                    time.sleep(
                        min(
                            float(reply.get("seconds") or 0.25),
                            MAX_WAIT_S,
                        )
                    )
                    continue
                if kind != "run":
                    continue  # forward compatibility: ignore the unknown
                taken += 1
                self._execute(sock, reply)
            try:
                send_msg(sock, {"type": "bye"})
            except OSError:
                pass
        finally:
            sock.close()
        return self.stats

    def _execute(self, sock: socket.socket, msg: dict[str, Any]) -> None:
        """Run one assigned config, heartbeating while it computes."""
        tid = msg.get("tid")
        key = msg.get("key")
        config = msg.get("config") or {}
        box: dict[str, Any] = {}

        def _target() -> None:
            try:
                box["result"] = self.runner(config)
            except BaseException as exc:  # noqa: BLE001 - shipped as failed
                box["error"] = exc

        thread = threading.Thread(
            target=_target, name="distrib-run", daemon=True
        )
        thread.start()
        while True:
            thread.join(self.heartbeat_s)
            if not thread.is_alive():
                break
            self.stats.heartbeats += 1
            # an OSError here means the coordinator vanished mid-config;
            # let it propagate — there is nobody to ship the result to
            send_msg(sock, {"type": "heartbeat", "tid": tid})

        error = box.get("error")
        if error is not None:
            self.stats.failed += 1
            send_msg(
                sock,
                {
                    "type": "failed",
                    "tid": tid,
                    "key": key,
                    "error": f"{type(error).__name__}: {error}",
                },
            )
            return
        result = dict(box.get("result") or {})
        # per-worker provenance: the campaign manifest journals this so
        # repro-perfdb can tell which host computed which cell
        result.setdefault("worker", self.assigned_name or self.name)
        self.stats.completed += 1
        send_msg(
            sock,
            {"type": "result", "tid": tid, "key": key, "result": result},
        )
