"""Distributed campaigns: socket-dispatched remote campaign workers.

``repro.distrib`` scales :mod:`repro.campaign` past one host.  A
coordinator (embedded in whichever process called
:func:`~repro.campaign.engine.run_campaign` with a
``scheduler="distrib:HOST:PORT"`` spec) listens on a TCP socket;
``repro-distrib worker`` processes — on this host or any other —
connect, pull one :class:`~repro.campaign.spec.RunConfig` at a time,
execute it through the existing campaign worker path, and ship the
result home.  Pull-based dispatch *is* work stealing: a slow host asks
less often and naturally takes fewer cells.

The coordinator publishes every remote result into the same
content-addressed :class:`~repro.campaign.cache.ResultCache` a local
campaign would use, and the engine journals the standard manifest
events (now with per-worker host/cpu_count/version provenance), so
distributed results flow into ``repro-perfdb`` unchanged.

Failure model: per-config timeouts, retry-on-another-worker with a
bounded attempt budget, dead-worker detection via heartbeats, and a
clean fallback to local execution when no workers connect.  See
``docs/distrib.md``.
"""

from .coordinator import Coordinator, RemoteRunError
from .dispatch import DistribExecutor, is_distrib_spec
from .faults import AttemptTracker, DistribStats
from .protocol import ProtocolError, parse_endpoint, recv_msg, send_msg
from .worker import DistribWorker, WorkerError, WorkerStats

__all__ = [
    "AttemptTracker",
    "Coordinator",
    "DistribExecutor",
    "DistribStats",
    "DistribWorker",
    "ProtocolError",
    "RemoteRunError",
    "WorkerError",
    "WorkerStats",
    "is_distrib_spec",
    "parse_endpoint",
    "recv_msg",
    "send_msg",
]
