"""``repro-distrib`` — run a campaign worker against a coordinator.

The coordinator side needs no CLI of its own: it is embedded in
whatever process runs the campaign (``repro-campaign run --scheduler
distrib:HOST:PORT``, or the service with the same scheduler spec).
This command is the other half — start it on each host that should
take work::

    repro-distrib worker 10.0.0.5:7713
    repro-distrib worker 10.0.0.5:7713 --name vector-node-3

The worker pulls configs one at a time (that *is* the work-stealing
scheduler), executes them through the standard campaign worker path,
ships results home, and exits when the coordinator shuts down or goes
away.  Exit status: 0 on a clean campaign end, 2 when the coordinator
rejects the worker (typically a package version mismatch), 1 on a
transport failure mid-session.
"""

from __future__ import annotations

import argparse
import socket
import sys

from .. import __version__
from .protocol import ProtocolError
from .worker import DistribWorker, WorkerError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-distrib",
        description="distributed campaign workers "
        "(coordinator lives in the campaign process)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser(
        "worker",
        help="connect to a coordinator and pull configs until the "
        "campaign ends",
    )
    worker.add_argument(
        "endpoint",
        help="coordinator address, HOST:PORT (distrib:HOST:PORT also "
        "accepted, so the campaign's --scheduler value pastes straight "
        "in)",
    )
    worker.add_argument(
        "--name",
        default=None,
        help="worker name for manifest provenance "
        "(default: hostname:pid)",
    )
    worker.add_argument(
        "--max-configs",
        type=int,
        default=None,
        metavar="N",
        help="disconnect after taking N configs (testing aid)",
    )
    worker.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-session summary line",
    )
    return parser


def cmd_worker(args: argparse.Namespace) -> int:
    worker = DistribWorker(
        args.endpoint,
        name=args.name,
    )
    try:
        stats = worker.run(max_configs=args.max_configs)
    except WorkerError as exc:
        print(f"repro-distrib: {exc}", file=sys.stderr)
        return 2
    except (ProtocolError, TimeoutError, OSError) as exc:
        print(
            f"repro-distrib: transport failure: {exc}", file=sys.stderr
        )
        return 1
    except KeyboardInterrupt:
        print("repro-distrib: interrupted", file=sys.stderr)
        return 130
    if not args.quiet:
        print(
            f"worker {worker.assigned_name or worker.name} on "
            f"{socket.gethostname()}: {stats.completed} completed, "
            f"{stats.failed} failed, {stats.waits} wait(s)"
        )
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "worker":
        return cmd_worker(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
