"""The campaign-side half of distributed dispatch.

A :class:`Coordinator` owns a listening TCP socket and a table of work
*tickets*.  ``repro-distrib worker`` processes connect, identify
themselves (``hello``), and then *pull* configs one at a time
(``next``) — pull-based dispatch is the work-stealing scheduler: a
host that finishes fast asks again sooner and naturally takes more
cells, a slow host takes fewer, and nobody needs to know anybody's
speed in advance.

:meth:`Coordinator.dispatch` is the campaign engine's seam.  It takes
the same ``(config_dict, cache_root)`` job tuples the engine hands any
executor, registers them as tickets, and yields
``(index, payload, exc)`` triples in completion order — exactly the
``imap_unordered`` contract — while connection handler threads move
frames.  Results coming home from remote workers are published into
the content-addressed :class:`~repro.campaign.cache.ResultCache` by
the coordinator (workers may be on hosts that cannot see the cache
directory), so a campaign killed mid-sweep still resumes from
whatever completed.

Failure model (every path bounded and accounted in
:class:`~repro.distrib.faults.DistribStats`):

* **per-config timeout** — an assigned ticket whose deadline expires
  is retried on another worker;
* **dead worker** — EOF, a socket error, or heartbeat silence while
  busy requeues the assignment;
* **attempt budget** — each failure/death/timeout consumes one of
  ``max_attempts``; exhaustion surfaces as the config's terminal
  error (the campaign engine's per-config failure isolation takes it
  from there);
* **no workers at all** — after ``grace_s`` with nobody connected,
  pending tickets are drained by a local fallback thread running the
  ordinary in-process worker function, so ``--scheduler distrib:...``
  degrades to a slow-but-correct local campaign instead of hanging.

Version discipline: a worker whose package version differs from the
coordinator's is rejected at ``hello`` — content keys hash the
version, so a mismatched worker would publish results under keys this
campaign can never look up.
"""

from __future__ import annotations

import select
import socket
import threading
import time
from collections import deque
from queue import Empty, Queue
from typing import Any, Callable, Iterator

from .. import __version__
from ..campaign.cache import ResultCache
from ..campaign.spec import RunConfig
from .faults import AttemptTracker, DistribStats, WorkerHealth
from .protocol import ProtocolError, recv_msg, send_msg

#: Ticket lifecycle states.
PENDING, ASSIGNED, DONE, FAILED = "pending", "assigned", "done", "failed"

#: How long a connecting worker has to say ``hello``.
HELLO_TIMEOUT_S = 10.0
#: Poll cadence for handler select loops and the monitor thread.
POLL_S = 0.2
#: What ``wait`` replies tell an idle worker to sleep.
IDLE_WAIT_S = 0.25


class RemoteRunError(RuntimeError):
    """A config exhausted its attempt budget across the worker pool."""


#: The engine-side job tuple and worker function shapes.
Job = "tuple[dict[str, Any], str | None]"
LocalFn = Callable[[Any], dict[str, Any]]


class _Ticket:
    """One config's journey through the dispatch table."""

    __slots__ = ("tid", "owner", "index", "config", "cache_root", "key",
                 "state", "worker", "deadline")

    def __init__(self, tid, owner, index, config, cache_root, key):
        self.tid = tid
        self.owner = owner
        self.index = index
        self.config = config
        self.cache_root = cache_root
        self.key = key
        self.state = PENDING
        self.worker: str | None = None
        self.deadline: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    @property
    def label(self) -> str:
        return str(self.config.get("app", "?"))


class _Dispatch:
    """One :meth:`Coordinator.dispatch` invocation's routing state."""

    __slots__ = ("results", "outstanding", "local_fn")

    def __init__(self, outstanding: int, local_fn: "LocalFn | None"):
        self.results: "Queue[tuple[int, dict | None, BaseException | None]]" \
            = Queue()
        self.outstanding = outstanding
        self.local_fn = local_fn


class Coordinator:
    """Listen for workers; dispatch campaign configs pull-based."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: float = 600.0,
        max_attempts: int = 3,
        grace_s: float = 5.0,
        heartbeat_timeout_s: float = 10.0,
        local_fallback: bool = True,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if grace_s < 0:
            raise ValueError(f"grace_s must be >= 0, got {grace_s}")
        self.host = host
        self.port = port
        self.timeout_s = float(timeout_s)
        self.grace_s = float(grace_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.local_fallback = bool(local_fallback)
        self.stats = DistribStats()
        self.attempts = AttemptTracker(max_attempts)

        self._lock = threading.RLock()
        self._tickets: dict[int, _Ticket] = {}
        self._pending: deque[_Ticket] = deque()
        self._workers: dict[str, WorkerHealth] = {}
        self._conns: dict[str, socket.socket] = {}
        self._caches: dict[str, ResultCache] = {}
        self._next_tid = 0
        self._no_worker_since: float | None = None
        self._stopping = False
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._local_thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._listener is not None

    def ensure_started(self) -> None:
        """Bind, listen, and spin up the accept + monitor threads."""
        with self._lock:
            if self._listener is not None:
                return
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                listener.bind((self.host, self.port))
            except OSError as exc:
                listener.close()
                raise OSError(
                    f"distrib coordinator cannot bind "
                    f"{self.host}:{self.port}: {exc}"
                ) from exc
            listener.listen(64)
            listener.settimeout(POLL_S)
            self._listener = listener
            self.port = listener.getsockname()[1]
            self._no_worker_since = time.monotonic()
            for fn, name in (
                (self._accept_loop, "accept"),
                (self._monitor_loop, "monitor"),
            ):
                t = threading.Thread(
                    target=fn, name=f"distrib-{name}", daemon=True
                )
                t.start()
                self._threads.append(t)

    def stop(self) -> None:
        """Close the listener and every worker connection; join threads."""
        with self._lock:
            if self._listener is None:
                return
            self._stopping = True
            listener, self._listener = self._listener, None
            conns = list(self._conns.values())
        listener.close()
        for conn in conns:
            _close(conn)
        for t in self._threads:
            t.join(timeout=5.0)
        local = self._local_thread
        if local is not None:
            local.join(timeout=5.0)
        with self._lock:
            self._threads.clear()
            self._stopping = False

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def workers(self) -> list[WorkerHealth]:
        """A snapshot of the currently connected workers."""
        with self._lock:
            return list(self._workers.values())

    # -- the engine seam --------------------------------------------------

    def dispatch(
        self, jobs: "list[Job]", local_fn: "LocalFn | None" = None
    ) -> Iterator[tuple[int, dict[str, Any] | None, BaseException | None]]:
        """Schedule ``(config_dict, cache_root)`` jobs; yield completions.

        The generator satisfies the executor ``imap_unordered``
        contract: one ``(index, payload, exc)`` triple per job, in
        completion order, with ``payload`` shaped like
        :func:`repro.campaign.worker.run_and_cache`'s return value.
        ``local_fn`` is that very worker function — the fallback path
        runs it in-process when no workers are connected.

        Concurrent ``dispatch`` calls are safe (the service's job queue
        runs several single-config campaigns at once); tickets from all
        of them share one pending deque and one worker pool.
        """
        self.ensure_started()
        jobs = list(jobs)
        disp = _Dispatch(len(jobs), local_fn if self.local_fallback else None)
        tickets: list[_Ticket] = []
        with self._lock:
            for index, (config, cache_root) in enumerate(jobs):
                key = RunConfig.from_dict(config).key()
                self._next_tid += 1
                ticket = _Ticket(
                    self._next_tid, disp, index, config, cache_root, key
                )
                self._tickets[ticket.tid] = ticket
                self._pending.append(ticket)
                tickets.append(ticket)
        try:
            done = 0
            while done < disp.outstanding:
                try:
                    triple = disp.results.get(timeout=POLL_S)
                except Empty:
                    continue
                done += 1
                yield triple
        finally:
            # consumer gone (or sweep complete): retire our tickets so
            # late worker messages and the fallback thread skip them
            with self._lock:
                for ticket in tickets:
                    if not ticket.terminal:
                        ticket.state = FAILED
                    self._tickets.pop(ticket.tid, None)

    # -- ticket state transitions (always under the lock) -----------------

    def _complete(self, ticket: _Ticket, result: dict[str, Any]) -> None:
        ticket.state = DONE
        ticket.deadline = None
        self.stats.completed += 1
        if ticket.cache_root is not None:
            cache = self._caches.get(ticket.cache_root)
            if cache is None:
                cache = ResultCache(ticket.cache_root)
                self._caches[ticket.cache_root] = cache
            cache.put(RunConfig.from_dict(ticket.config), result)
            cache.persist_stats()  # lifetime put counters survive a kill
        ticket.owner.results.put(
            (ticket.index, {"key": ticket.key, "result": result}, None)
        )

    def _fail_attempt(self, ticket: _Ticket, error: str) -> None:
        """Book one failed attempt: requeue while budget remains,
        otherwise the ticket is terminal with the whole history."""
        ticket.deadline = None
        ticket.worker = None
        if self.attempts.record_failure(ticket.tid, error):
            ticket.state = PENDING
            self._pending.append(ticket)
            self.stats.retried += 1
            return
        ticket.state = FAILED
        self.stats.failed += 1
        ticket.owner.results.put(
            (
                ticket.index,
                None,
                RemoteRunError(
                    f"config {ticket.label!r} (key {ticket.key[:8]}): "
                    + self.attempts.history(ticket.tid)
                ),
            )
        )

    def _pop_pending(self) -> _Ticket | None:
        while self._pending:
            ticket = self._pending.popleft()
            if not ticket.terminal:
                return ticket
        return None

    # -- accept / connection handling -------------------------------------

    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                listener = self._listener
                if listener is None:
                    return
            try:
                conn, addr = listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutting down
            t = threading.Thread(
                target=self._serve_worker,
                args=(conn, addr),
                name=f"distrib-conn-{addr[0]}:{addr[1]}",
                daemon=True,
            )
            t.start()

    def _register(self, hello: dict[str, Any], conn: socket.socket,
                  addr) -> WorkerHealth | str:
        """Validate a ``hello``; returns the health record or a
        rejection reason."""
        version = str(hello.get("version", ""))
        if version != __version__:
            return (
                f"version mismatch: worker runs {version or 'unknown'}, "
                f"coordinator runs {__version__} (content keys would "
                "never match)"
            )
        base = str(hello.get("name") or f"{addr[0]}:{addr[1]}")
        with self._lock:
            name = base
            n = 1
            while name in self._workers:
                n += 1
                name = f"{base}#{n}"
            health = WorkerHealth(
                name,
                host=str(hello.get("host", "")),
                cpu_count=int(hello.get("cpu_count") or 0),
                version=version,
            )
            self._workers[name] = health
            self._conns[name] = conn
            self._no_worker_since = None
        return health

    def _unregister(self, health: WorkerHealth | None,
                    conn: socket.socket) -> None:
        _close(conn)
        if health is None:
            return
        with self._lock:
            self._workers.pop(health.name, None)
            self._conns.pop(health.name, None)
            if not self._workers:
                self._no_worker_since = time.monotonic()
            tid = health.busy_tid
            health.busy_tid = None
            ticket = self._tickets.get(tid) if tid is not None else None
            if ticket is not None and ticket.state == ASSIGNED \
                    and ticket.worker == health.name:
                self.stats.dead_workers += 1
                self._fail_attempt(
                    ticket,
                    f"worker {health.name!r} died mid-config",
                )

    def _serve_worker(self, conn: socket.socket, addr) -> None:
        health: WorkerHealth | None = None
        try:
            conn.settimeout(HELLO_TIMEOUT_S)
            hello = recv_msg(conn)
            if hello is None or hello.get("type") != "hello":
                return
            outcome = self._register(hello, conn, addr)
            if isinstance(outcome, str):
                with self._lock:
                    self.stats.rejected_workers += 1
                send_msg(conn, {"type": "reject", "reason": outcome})
                return
            health = outcome
            send_msg(conn, {"type": "welcome", "version": __version__,
                            "name": health.name})
            conn.settimeout(HELLO_TIMEOUT_S)  # safety net per frame
            while True:
                with self._lock:
                    if self._stopping:
                        return
                ready, _, _ = select.select([conn], [], [], POLL_S)
                if not ready:
                    continue
                msg = recv_msg(conn)
                if msg is None:
                    return  # clean EOF
                health.touch()
                kind = msg.get("type")
                if kind == "next":
                    self._handle_next(health, conn)
                elif kind == "result":
                    self._handle_result(health, msg)
                elif kind == "failed":
                    self._handle_failed(health, msg)
                elif kind == "heartbeat":
                    pass  # touch() above is the whole point
                elif kind == "bye":
                    return
                # unknown types are ignored: forward compatibility
        except (ProtocolError, TimeoutError, OSError):
            pass  # handled as a dead worker below
        finally:
            self._unregister(health, conn)

    def _handle_next(self, health: WorkerHealth,
                     conn: socket.socket) -> None:
        with self._lock:
            if self._stopping:
                reply = {"type": "shutdown"}
            else:
                ticket = self._pop_pending()
                if ticket is None:
                    reply = {"type": "wait", "seconds": IDLE_WAIT_S}
                else:
                    ticket.state = ASSIGNED
                    ticket.worker = health.name
                    ticket.deadline = time.monotonic() + self.timeout_s
                    health.busy_tid = ticket.tid
                    self.stats.dispatched += 1
                    reply = {
                        "type": "run",
                        "tid": ticket.tid,
                        "key": ticket.key,
                        "attempt": self.attempts.attempts(ticket.tid) + 1,
                        "config": ticket.config,
                    }
        send_msg(conn, reply)

    def _ticket_for(self, health: WorkerHealth,
                    msg: dict[str, Any]) -> _Ticket | None:
        """The live ticket a result/failed message refers to (by tid
        echo), or ``None`` when it is stale — already completed
        elsewhere, or retired with its dispatch."""
        tid = msg.get("tid")
        if not isinstance(tid, int):
            return None
        if health.busy_tid == tid:
            health.busy_tid = None
        ticket = self._tickets.get(tid)
        if ticket is None or ticket.terminal:
            return None
        return ticket

    def _handle_result(self, health: WorkerHealth,
                       msg: dict[str, Any]) -> None:
        with self._lock:
            ticket = self._ticket_for(health, msg)
            if ticket is None:
                return
            result = msg.get("result")
            if msg.get("key") != ticket.key or not isinstance(result, dict):
                self._fail_attempt(
                    ticket,
                    f"worker {health.name!r} returned a mismatched "
                    "result frame (key or payload)",
                )
                return
            # a ticket requeued by timeout may still be in the pending
            # deque; _pop_pending skips it once terminal
            self._complete(ticket, result)

    def _handle_failed(self, health: WorkerHealth,
                       msg: dict[str, Any]) -> None:
        with self._lock:
            ticket = self._ticket_for(health, msg)
            if ticket is None:
                return
            self._fail_attempt(
                ticket,
                f"worker {health.name!r}: "
                f"{str(msg.get('error') or 'unknown failure')}",
            )

    # -- monitor: deadlines, heartbeats, local fallback -------------------

    def _monitor_loop(self) -> None:
        while True:
            with self._lock:
                if self._listener is None:
                    return
                now = time.monotonic()
                for ticket in list(self._tickets.values()):
                    if ticket.state != ASSIGNED or ticket.deadline is None:
                        continue
                    if now < ticket.deadline:
                        continue
                    worker = self._workers.get(ticket.worker or "")
                    if worker is not None and worker.busy_tid == ticket.tid:
                        worker.busy_tid = None
                    self.stats.timeouts += 1
                    self._fail_attempt(
                        ticket,
                        f"timed out after {self.timeout_s:g}s on worker "
                        f"{ticket.worker!r}",
                    )
                dead: list[str] = []
                for name, worker in self._workers.items():
                    if worker.busy_tid is not None and \
                            worker.silent_for() > self.heartbeat_timeout_s:
                        dead.append(name)
                conns = [self._conns.get(name) for name in dead]
                want_local = self._want_local_fallback(now)
            for conn in conns:
                if conn is not None:
                    # handler thread sees the error and unregisters,
                    # which books the failed attempt exactly once
                    _close(conn)
            if want_local:
                self._start_local_runner()
            time.sleep(POLL_S / 2)

    def _want_local_fallback(self, now: float) -> bool:
        if self._workers or self._no_worker_since is None:
            return False
        if now - self._no_worker_since < self.grace_s:
            return False
        if self._local_thread is not None and self._local_thread.is_alive():
            return False
        return any(
            not t.terminal and t.owner.local_fn is not None
            for t in self._pending
        )

    def _start_local_runner(self) -> None:
        t = threading.Thread(
            target=self._local_loop, name="distrib-local", daemon=True
        )
        with self._lock:
            if self._local_thread is not None and \
                    self._local_thread.is_alive():
                return
            self._local_thread = t
        t.start()

    def _local_loop(self) -> None:
        """Drain pending tickets in-process while no workers exist.

        Stops the moment a worker connects (it will pull the rest) or
        the pending deque empties.  Runs the engine's own worker
        function, so fallback results are bitwise what a plain local
        campaign would produce.
        """
        while True:
            with self._lock:
                if self._stopping or self._workers:
                    return
                ticket = self._pop_pending()
                if ticket is None:
                    return
                if ticket.owner.local_fn is None:
                    # can't run it here; put it back for a future worker
                    self._pending.append(ticket)
                    return
                ticket.state = ASSIGNED
                ticket.worker = "<local>"
                fn = ticket.owner.local_fn
            try:
                payload = fn((ticket.config, ticket.cache_root))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - isolation seam
                with self._lock:
                    self.stats.local_runs += 1
                    if not ticket.terminal:
                        self._fail_attempt(
                            ticket,
                            f"local fallback: {type(exc).__name__}: {exc}",
                        )
                continue
            with self._lock:
                self.stats.local_runs += 1
                if not ticket.terminal:
                    # run_and_cache already published worker-side;
                    # don't publish again
                    ticket.state = DONE
                    self.stats.completed += 1
                    ticket.owner.results.put(
                        (ticket.index, payload, None)
                    )


def _close(conn: socket.socket) -> None:
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:  # pragma: no cover - close never raises in practice
        pass
