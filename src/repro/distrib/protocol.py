"""The wire format: length-prefixed JSON frames over a stream socket.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON encoding a single object (in the spirit of
TACCJM-style cluster submission: small structured control messages, no
pickling, nothing executable on the wire).  The framing makes message
boundaries explicit, so a reader either gets a whole message or knows
the stream died mid-frame (:class:`ProtocolError`) — a half-written
frame is never silently parsed.

Message vocabulary (all plain dicts with a ``type`` field):

==============  =========================  ==============================
direction       type                       payload
==============  =========================  ==============================
worker -> coord ``hello``                  name, host, cpu_count, version
coord -> worker ``welcome`` / ``reject``   reason (reject only)
worker -> coord ``next``                   (asks for one config)
coord -> worker ``run``                    tid, key, attempt, config dict
coord -> worker ``wait``                   seconds (no work right now)
coord -> worker ``shutdown``               (campaign over, disconnect)
worker -> coord ``heartbeat``              tid (still computing)
worker -> coord ``result``                 tid, key, result dict
worker -> coord ``failed``                 tid, key, error string
worker -> coord ``bye``                    (clean disconnect)
==============  =========================  ==============================

The conversation is strictly worker-driven: every coordinator message
is a response to ``hello`` or ``next``; ``heartbeat``/``result``/
``failed``/``bye`` expect no reply.  That keeps both ends free of
send/recv interleaving hazards with one socket and no extra threads.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

#: 4-byte unsigned big-endian payload length.
HEADER = struct.Struct("!I")

#: Frames above this are a protocol violation, not a big result — a
#: traced 64-rank result is a few MiB; 64 MiB means a corrupt length.
MAX_FRAME = 64 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The stream violated the framing contract (torn frame, oversized
    length, undecodable payload, or a non-object message)."""


def send_msg(sock: socket.socket, obj: dict[str, Any]) -> None:
    """Write one framed message (blocking, whole frame or exception)."""
    payload = json.dumps(obj, sort_keys=True).encode()
    if len(payload) > MAX_FRAME:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(MAX_FRAME is {MAX_FRAME})"
        )
    sock.sendall(HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on EOF before the first byte,
    :class:`ProtocolError` on EOF mid-read (a torn frame)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_msg(sock: socket.socket) -> dict[str, Any] | None:
    """Read one framed message.

    Returns ``None`` on a clean EOF at a frame boundary (the peer hung
    up between messages).  Raises :class:`ProtocolError` for a torn
    frame, an oversized length prefix, undecodable JSON, or a message
    that is not a JSON object.  A socket timeout configured by the
    caller propagates as :class:`TimeoutError`.
    """
    header = _recv_exact(sock, HEADER.size)
    if header is None:
        return None
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(
            f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME}); "
            "stream is corrupt or not speaking this protocol"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ProtocolError(
            f"connection closed between header and {length}-byte payload"
        )
    try:
        obj = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame payload: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def parse_endpoint(spec: str) -> tuple[str, int]:
    """``"HOST:PORT"`` -> ``(host, port)`` with validation.

    Accepts a bare ``HOST:PORT`` or the full scheduler spec
    ``distrib:HOST:PORT`` (the CLI and the executor seam share this).
    """
    text = spec.strip()
    head, _, rest = text.partition(":")
    if head.strip().lower() == "distrib":
        text = rest
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"bad distrib endpoint {spec!r}: expected HOST:PORT "
            "(e.g. 127.0.0.1:7713)"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad port in distrib endpoint {spec!r}: {port_text!r}"
        ) from None
    if not (0 <= port <= 65535):
        raise ValueError(
            f"port out of range in distrib endpoint {spec!r}: {port}"
        )
    return host.strip(), port
