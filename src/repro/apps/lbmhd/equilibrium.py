"""Equilibrium distributions of the Dellar lattice-Boltzmann MHD scheme.

Hydrodynamic equilibrium (moment-matched to second order)::

    f_i^eq = w_i [ rho + xi.(rho u)/cs^2 + (A : (xi xi - cs^2 I)) / (2 cs^4) ]
    A = rho u u + (|B|^2 / 2) I - B B        (momentum flux + Maxwell stress)

Magnetic equilibrium (vector-valued, one 3-vector per direction)::

    g_a^eq = W_a [ B + eta_a . (u B - B u) / cs^2 ]

whose first moment is the induction electric-field tensor
``Lambda_jk = u_j B_k - B_j u_k``, recovering resistive MHD with
viscosity ``nu = cs^2 (tau - 1/2)`` and resistivity
``eta = cs^2 (tau_m - 1/2)`` (Dellar, J. Comput. Phys. 2002 — reference
[8] of the paper).

The moment identities (density, momentum, stress, induction) are
verified numerically by the test suite.
"""

from __future__ import annotations

import numpy as np

from ...runtime.arena import Arena, scratch_or_empty
from .lattice import (
    CS2,
    NQ_F,
    NQ_G,
    Q15_VELOCITIES,
    Q15_WEIGHTS,
    Q27_VELOCITIES,
    Q27_WEIGHTS,
)

#: Lattice constants hoisted out of the per-step kernels (the seed
#: re-derived them via ``astype``/``sum`` on every call).
_XI27 = Q27_VELOCITIES.astype(np.float64)
_XI27_SQ = (_XI27**2).sum(axis=1)  # |xi_i|^2, shape (27,)
#: 0.5 |xi_i|^2 — |xi|^2 is a small integer, so the halving is exact and
#: ``(0.5 xi2) * B2`` is bitwise ``(xi2 * B2) * 0.5`` in one fewer pass.
_XI27_SQ_HALF = 0.5 * _XI27_SQ
_XI27_T = np.ascontiguousarray(_XI27.T)
_ETA15 = Q15_VELOCITIES.astype(np.float64)


def _dot_lattice(mat: np.ndarray, x: np.ndarray, out: np.ndarray) -> np.ndarray:
    """``mat @ x`` over the leading axis, written into ``out``.

    Contracts a small ``(q, 3)`` lattice matrix against ``x`` of shape
    ``(3, ...)`` into ``out`` of shape ``(q, ...)`` via a flattened BLAS
    ``matmul``.  At this contraction depth (K=3) the per-element result
    is measured invariant to how the trailing points are sliced or
    batched on every width from 1 upward, so decomposition-independence
    is preserved bitwise; deeper contractions (e.g. the 27-term momentum
    sum) hit size-dependent BLAS kernels and must stay on einsum.
    Non-viewable operands are staged through contiguous copies so the
    arithmetic is the same matmul on every input layout.
    """
    if mat.shape[1] != 3:
        raise ValueError("_dot_lattice is validated for K=3 contractions only")
    try:
        xv = x.view()
        xv.shape = (3, -1)
    except AttributeError:
        xv = np.ascontiguousarray(x).reshape(3, -1)
    try:
        ov = out.view()
        ov.shape = (mat.shape[0], -1)
    except AttributeError:
        out[...] = np.matmul(mat, xv).reshape(out.shape)
        return out
    np.matmul(mat, xv, out=ov)
    return out


#: Fixed contraction tile width for :func:`dot_moments`.  The width (not
#: the data) selects the BLAS kernel, so pinning it makes every call use
#: the same kernel; at these contraction depths the per-column result is
#: then measured independent of the column's offset within the tile, of
#: the other columns' values (zero padding), and of the operands' leading
#: strides — which is exactly what bitwise decomposition-independence
#: needs, since different rank layouts place the same lattice point at
#: different positions.
_TILE = 512


def _build_feq_matrix() -> np.ndarray:
    """(27, 11) map from quadratic moment fields to f-equilibrium.

    Field order: [rho, m_x, m_y, m_z, P_xx, P_yy, P_zz, P_xy, P_xz,
    P_yz, |B|^2] with ``m = rho u`` and ``P_ab = rho u_a u_b - B_a B_b``
    (the traceless part of the Maxwell-stress-augmented momentum flux).
    Row i collects the coefficients of
    ``w_i [rho + xi.m/cs^2 + (A:xixi - cs^2 trA)/(2 cs^4)]`` with
    ``A:xixi = xi_a xi_b P_ab + |xi|^2 |B|^2 / 2`` and
    ``trA = P_aa + 3|B|^2/2``.
    """
    w = Q27_WEIGHTS
    C = np.empty((w.size, 11))
    C[:, 0] = w
    C[:, 1:4] = w[:, None] * _XI27 / CS2
    c2 = w / (2.0 * CS2 * CS2)
    for d, a in enumerate(range(3)):
        C[:, 4 + d] = c2 * (_XI27[:, a] ** 2 - CS2)
    C[:, 7] = c2 * 2.0 * _XI27[:, 0] * _XI27[:, 1]
    C[:, 8] = c2 * 2.0 * _XI27[:, 0] * _XI27[:, 2]
    C[:, 9] = c2 * 2.0 * _XI27[:, 1] * _XI27[:, 2]
    C[:, 10] = c2 * (0.5 * _XI27_SQ - 1.5 * CS2)
    return C


def _build_geq_matrix() -> np.ndarray:
    """(45, 6) map from [B_x, B_y, B_z, l_xy, l_xz, l_yz] to g-equilibrium.

    ``l_ab = u_a B_b - B_a u_b`` are the independent components of the
    antisymmetric induction tensor; row ``3a + k`` is
    ``W_a [B_k + (eta_a . Lambda)_k / cs^2]`` expanded over them.
    """
    W = Q15_WEIGHTS
    G = np.zeros((W.size * 3, 6))
    for a in range(W.size):
        e0, e1, e2 = _ETA15[a] / CS2
        for k in range(3):
            G[3 * a + k, k] = W[a]
        G[3 * a + 0, 3] = -W[a] * e1
        G[3 * a + 0, 4] = -W[a] * e2
        G[3 * a + 1, 3] = W[a] * e0
        G[3 * a + 1, 5] = -W[a] * e2
        G[3 * a + 2, 4] = W[a] * e0
        G[3 * a + 2, 5] = W[a] * e1
    return G


FEQ_MOMENT_MATRIX = _build_feq_matrix()
GEQ_MOMENT_MATRIX = _build_geq_matrix()


def dot_moments(
    mat: np.ndarray,
    fields: np.ndarray,
    out: np.ndarray,
    arena: Arena | None = None,
) -> np.ndarray:
    """``mat @ fields`` in fixed-width tiles: fast and decomposition-safe.

    ``fields`` is ``(K, N)``, ``out`` ``(M, N)``; both may be views with
    arbitrary leading stride.  Full tiles contract via BLAS ``matmul``
    at the pinned width ``_TILE`` (see the note there); the tail is
    staged through a zero-padded contiguous tile, which is measured
    bitwise-equal to the full-width kernel column-for-column.
    """
    ntotal = fields.shape[1]
    nfull = (ntotal // _TILE) * _TILE
    for s in range(0, nfull, _TILE):
        np.matmul(mat, fields[:, s : s + _TILE], out=out[:, s : s + _TILE])
    if nfull < ntotal:
        w = ntotal - nfull
        key = f"lbmhd.dot.tile.{mat.shape[0]}x{mat.shape[1]}"
        tile = scratch_or_empty(arena, key, (mat.shape[1], _TILE))
        tile[:, :w] = fields[:, nfull:]
        tile[:, w:] = 0.0
        res = scratch_or_empty(arena, key + ".out", (mat.shape[0], _TILE))
        np.matmul(mat, tile, out=res)
        out[:, nfull:] = res[:, :w]
    return out


def f_equilibrium(
    rho: np.ndarray,
    u: np.ndarray,
    B: np.ndarray,
    out: np.ndarray | None = None,
    arena: Arena | None = None,
) -> np.ndarray:
    """Hydrodynamic equilibrium, shape (27, ...).

    Parameters
    ----------
    rho:
        Density, shape ``(...)``.
    u, B:
        Velocity and magnetic field, shape ``(3, ...)``.
    out:
        Optional destination for the result (fully overwritten).
    arena:
        Optional scratch arena; every temporary of the kernel is drawn
        from it instead of freshly allocated.  The arithmetic (and its
        evaluation order) is identical either way, so the two modes are
        bitwise-interchangeable.
    """
    n = rho.shape
    lead = (slice(None),) + (None,) * rho.ndim

    def sc(key: str, shape: tuple[int, ...]) -> np.ndarray:
        return scratch_or_empty(arena, "lbmhd.feq." + key, shape)

    xu = _dot_lattice(_XI27, u, sc("xu", (NQ_F, *n)))
    xB = _dot_lattice(_XI27, B, sc("xB", (NQ_F, *n)))
    usq = np.multiply(u, u, out=sc("usq", u.shape))
    u2 = np.add.reduce(usq, axis=0, out=sc("u2", n))
    Bsq = np.multiply(B, B, out=sc("Bsq", B.shape))
    B2 = np.add.reduce(Bsq, axis=0, out=sc("B2", n))

    # A : xi xi  =  rho (xi.u)^2 + |B|^2/2 |xi|^2 - (xi.B)^2
    A = np.multiply(xu, xu, out=sc("A", (NQ_F, *n)))
    np.multiply(A, rho, out=A)
    t = np.multiply(_XI27_SQ_HALF[lead], B2, out=sc("outer", (NQ_F, *n)))
    np.add(A, t, out=A)
    np.multiply(xB, xB, out=xB)
    np.subtract(A, xB, out=A)

    # tr(A) = rho |u|^2 + 3 |B|^2/2 - |B|^2 = rho|u|^2 + |B|^2/2
    trA = np.multiply(rho, u2, out=sc("trA", n))
    np.multiply(B2, 0.5, out=B2)
    np.add(trA, B2, out=trA)

    # feq = w [ rho + rho xi.u / cs^2 + (A:xixi - cs^2 trA) / (2 cs^4) ]
    if out is None:
        out = np.empty((NQ_F, *n))
    np.multiply(rho, xu, out=out)
    np.divide(out, CS2, out=out)
    np.add(out, rho, out=out)
    np.multiply(trA, CS2, out=trA)
    np.subtract(A, trA, out=A)
    np.divide(A, 2.0 * CS2 * CS2, out=A)
    np.add(out, A, out=out)
    np.multiply(out, Q27_WEIGHTS[lead], out=out)
    return out


def g_equilibrium(
    u: np.ndarray,
    B: np.ndarray,
    out: np.ndarray | None = None,
    arena: Arena | None = None,
) -> np.ndarray:
    """Magnetic equilibrium, shape (15, 3, ...).

    ``out``/``arena`` behave as in :func:`f_equilibrium`.
    """
    n = u.shape[1:]

    def sc(key: str, shape: tuple[int, ...]) -> np.ndarray:
        return scratch_or_empty(arena, "lbmhd.geq." + key, shape)

    # Lambda_jk = u_j B_k - B_j u_k  (antisymmetric), shape (3, 3, ...)
    lam = np.multiply(u[:, None], B[None, :], out=sc("lam", (3, 3, *n)))
    t = np.multiply(B[:, None], u[None, :], out=sc("lam2", (3, 3, *n)))
    np.subtract(lam, t, out=lam)

    # eta_a . Lambda -> shape (15, 3(k), ...)
    if out is None:
        out = np.empty((NQ_G, 3, *n))
    _dot_lattice(_ETA15, lam, out)
    np.divide(out, CS2, out=out)
    np.add(out, B[None, ...], out=out)
    np.multiply(out, Q15_WEIGHTS[(slice(None), None) + (None,) * (u.ndim - 1)], out=out)
    return out


#: Analytic flop count per lattice point for the collision kernel
#: (moments + both equilibria + BGK relaxation), derived by counting the
#: arithmetic in the expressions above.  This is the constant used by the
#: instrumented solver *and* by the paper-scale workload generator, so
#: the two stay consistent by construction:
#:   moments: f-sum 26, momentum 3*(27 mul + 26 add), B 3*14 ............ 241
#:   xi.u / xi.B dot products: 2 * 27 * 5 ............................... 270
#:   u^2, B^2, A:xixi, trA, feq assembly: 27 * ~14 + 20 ................. 398
#:   g_eq: lambda 9*3, eta.lam 15*3*5(sparse), assembly 15*3*3 .......... 387
#:   BGK relaxation: 2 * (27 + 45) ....................................... 144
FLOPS_PER_POINT = 241 + 270 + 398 + 387 + 144  # = 1440
