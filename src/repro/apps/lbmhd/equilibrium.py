"""Equilibrium distributions of the Dellar lattice-Boltzmann MHD scheme.

Hydrodynamic equilibrium (moment-matched to second order)::

    f_i^eq = w_i [ rho + xi.(rho u)/cs^2 + (A : (xi xi - cs^2 I)) / (2 cs^4) ]
    A = rho u u + (|B|^2 / 2) I - B B        (momentum flux + Maxwell stress)

Magnetic equilibrium (vector-valued, one 3-vector per direction)::

    g_a^eq = W_a [ B + eta_a . (u B - B u) / cs^2 ]

whose first moment is the induction electric-field tensor
``Lambda_jk = u_j B_k - B_j u_k``, recovering resistive MHD with
viscosity ``nu = cs^2 (tau - 1/2)`` and resistivity
``eta = cs^2 (tau_m - 1/2)`` (Dellar, J. Comput. Phys. 2002 — reference
[8] of the paper).

The moment identities (density, momentum, stress, induction) are
verified numerically by the test suite.
"""

from __future__ import annotations

import numpy as np

from .lattice import CS2, Q15_VELOCITIES, Q15_WEIGHTS, Q27_VELOCITIES, Q27_WEIGHTS


def f_equilibrium(rho: np.ndarray, u: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Hydrodynamic equilibrium, shape (27, ...).

    Parameters
    ----------
    rho:
        Density, shape ``(...)``.
    u, B:
        Velocity and magnetic field, shape ``(3, ...)``.
    """
    xi = Q27_VELOCITIES.astype(np.float64)
    w = Q27_WEIGHTS

    xu = np.einsum("ia,a...->i...", xi, u)  # xi . u, shape (27, ...)
    xB = np.einsum("ia,a...->i...", xi, B)
    u2 = (u**2).sum(axis=0)
    B2 = (B**2).sum(axis=0)

    # A : xi xi  =  rho (xi.u)^2 + |B|^2/2 |xi|^2 - (xi.B)^2
    xi2 = (xi**2).sum(axis=1)  # |xi_i|^2, shape (27,)
    A_xixi = (
        rho * xu**2
        + 0.5 * np.multiply.outer(xi2, B2)
        - xB**2
    )
    # tr(A) = rho |u|^2 + 3 |B|^2/2 - |B|^2 = rho|u|^2 + |B|^2/2
    trA = rho * u2 + 0.5 * B2

    feq = w[(slice(None),) + (None,) * rho.ndim] * (
        rho + rho * xu / CS2 + (A_xixi - CS2 * trA) / (2.0 * CS2 * CS2)
    )
    return feq


def g_equilibrium(u: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Magnetic equilibrium, shape (15, 3, ...)."""
    eta = Q15_VELOCITIES.astype(np.float64)
    W = Q15_WEIGHTS

    # Lambda_jk = u_j B_k - B_j u_k  (antisymmetric), shape (3, 3, ...)
    lam = np.einsum("j...,k...->jk...", u, B) - np.einsum(
        "j...,k...->jk...", B, u
    )
    # eta_a . Lambda -> shape (15, 3(k), ...)
    eta_lam = np.einsum("aj,jk...->ak...", eta, lam)

    shape_tail = (None,) * (u.ndim - 1)
    Wb = W[(slice(None), None) + shape_tail]
    geq = Wb * (B[None, ...] + eta_lam / CS2)
    return geq


#: Analytic flop count per lattice point for the collision kernel
#: (moments + both equilibria + BGK relaxation), derived by counting the
#: arithmetic in the expressions above.  This is the constant used by the
#: instrumented solver *and* by the paper-scale workload generator, so
#: the two stay consistent by construction:
#:   moments: f-sum 26, momentum 3*(27 mul + 26 add), B 3*14 ............ 241
#:   xi.u / xi.B dot products: 2 * 27 * 5 ............................... 270
#:   u^2, B^2, A:xixi, trA, feq assembly: 27 * ~14 + 20 ................. 398
#:   g_eq: lambda 9*3, eta.lam 15*3*5(sparse), assembly 15*3*3 .......... 387
#:   BGK relaxation: 2 * (27 + 45) ....................................... 144
FLOPS_PER_POINT = 241 + 270 + 398 + 387 + 144  # = 1440
