"""LBMHD2D — the predecessor code LBMHD3D extends.

"As a further development of previous 2D codes, LBMHD3D simulates the
behavior of a three-dimensional conducting fluid..."  This module is
that predecessor: Dellar's two-dimensional lattice Boltzmann MHD on a
D2Q9 hydrodynamic lattice with a vector-valued D2Q5 magnetic lattice —
the configuration of Macnab et al. (reference [14] of the paper).  It
shares the 3-D code's structure (moment-matched equilibria, BGK
collision, pull streaming) at a quarter of the state size, and runs the
classic 2-D Orszag–Tang vortex.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...workload import Work

#: D2Q9 velocities (rest first) and weights.
Q9_VELOCITIES = np.array(
    [
        (0, 0),
        (1, 0), (-1, 0), (0, 1), (0, -1),
        (1, 1), (-1, -1), (1, -1), (-1, 1),
    ],
    dtype=np.int64,
)
Q9_WEIGHTS = np.array(
    [4 / 9] + [1 / 9] * 4 + [1 / 36] * 4, dtype=np.float64
)

#: D2Q5 velocities and weights for the magnetic distributions.
Q5_VELOCITIES = np.array(
    [(0, 0), (1, 0), (-1, 0), (0, 1), (0, -1)], dtype=np.int64
)
Q5_WEIGHTS = np.array([1 / 3] + [1 / 6] * 4, dtype=np.float64)

CS2 = 1.0 / 3.0


def f_equilibrium_2d(
    rho: np.ndarray, u: np.ndarray, B: np.ndarray
) -> np.ndarray:
    """D2Q9 equilibrium with the 2-D Maxwell stress, shape (9, ...)."""
    xi = Q9_VELOCITIES.astype(np.float64)
    w = Q9_WEIGHTS
    xu = np.einsum("ia,a...->i...", xi, u)
    xB = np.einsum("ia,a...->i...", xi, B)
    u2 = (u**2).sum(axis=0)
    B2 = (B**2).sum(axis=0)
    xi2 = (xi**2).sum(axis=1)
    A_xixi = rho * xu**2 + 0.5 * np.multiply.outer(xi2, B2) - xB**2
    # A = rho u u + (|B|^2/2) I - B B; the magnetic part is traceless
    # in two dimensions, so tr(A) = rho |u|^2.
    trA = rho * u2
    feq = w[(slice(None),) + (None,) * rho.ndim] * (
        rho + rho * xu / CS2 + (A_xixi - CS2 * trA) / (2.0 * CS2 * CS2)
    )
    return feq


def g_equilibrium_2d(u: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Vector D2Q5 magnetic equilibrium, shape (5, 2, ...)."""
    eta = Q5_VELOCITIES.astype(np.float64)
    W = Q5_WEIGHTS
    lam = np.einsum("j...,k...->jk...", u, B) - np.einsum(
        "j...,k...->jk...", B, u
    )
    eta_lam = np.einsum("aj,jk...->ak...", eta, lam)
    shape_tail = (None,) * (u.ndim - 1)
    Wb = W[(slice(None), None) + shape_tail]
    # D2Q5 first moment: sum W eta eta = (1/3) I  -> same cs^2
    return Wb * (B[None, ...] + eta_lam / CS2)


@dataclass(frozen=True)
class LBMHD2DParams:
    """2-D run configuration (periodic square lattice)."""

    shape: tuple[int, int] = (32, 32)
    tau: float = 0.8
    tau_m: float = 0.8
    u0: float = 0.05
    b0: float = 0.05

    def __post_init__(self) -> None:
        if any(n < 4 for n in self.shape):
            raise ValueError("lattice must be at least 4 cells per side")
        if self.tau <= 0.5 or self.tau_m <= 0.5:
            raise ValueError("relaxation times must exceed 1/2")


class LBMHD2D:
    """Serial 2-D lattice Boltzmann MHD (the 3-D code's ancestor)."""

    app_key = "lbmhd2d"

    def __init__(self, params: LBMHD2DParams) -> None:
        self.params = params
        nx, ny = params.shape
        x = 2.0 * np.pi * np.arange(nx) / nx
        y = 2.0 * np.pi * np.arange(ny) / ny
        X, Y = np.meshgrid(x, y, indexing="ij")
        rho = np.ones(params.shape)
        # the classic 2-D Orszag-Tang vortex
        u = np.stack([-params.u0 * np.sin(Y), params.u0 * np.sin(X)])
        B = np.stack([-params.b0 * np.sin(Y), params.b0 * np.sin(2.0 * X)])
        self.f = f_equilibrium_2d(rho, u, B)
        self.g = g_equilibrium_2d(u, B)
        self.step_count = 0

    # -- moments --------------------------------------------------------

    def moments(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        rho = self.f.sum(axis=0)
        mom = np.einsum(
            "i...,ia->a...", self.f, Q9_VELOCITIES.astype(np.float64)
        )
        B = self.g.sum(axis=0)
        return rho, mom / rho, B

    def total_mass(self) -> float:
        return float(self.f.sum())

    def total_momentum(self) -> np.ndarray:
        return np.einsum(
            "ixy,ia->a", self.f, Q9_VELOCITIES.astype(np.float64)
        )

    def total_B(self) -> np.ndarray:
        return self.g.sum(axis=(0, 2, 3))

    def energies(self) -> tuple[float, float]:
        rho, u, B = self.moments()
        return (
            float(0.5 * (rho * (u**2).sum(axis=0)).sum()),
            float(0.5 * (B**2).sum()),
        )

    # -- update -----------------------------------------------------------

    def step(self) -> None:
        rho, u, B = self.moments()
        feq = f_equilibrium_2d(rho, u, B)
        geq = g_equilibrium_2d(u, B)
        self.f = self.f + (feq - self.f) / self.params.tau
        self.g = self.g + (geq - self.g) / self.params.tau_m
        # pull streaming via periodic rolls
        for i, (cx, cy) in enumerate(Q9_VELOCITIES):
            self.f[i] = np.roll(self.f[i], (cx, cy), axis=(0, 1))
        for a, (cx, cy) in enumerate(Q5_VELOCITIES):
            self.g[a] = np.roll(self.g[a], (cx, cy), axis=(1, 2))
        self.step_count += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def vorticity(self) -> np.ndarray:
        _, u, _ = self.moments()

        def d(arr, axis):
            return (np.roll(arr, -1, axis) - np.roll(arr, 1, axis)) / 2.0

        return d(u[1], 0) - d(u[0], 1)


#: Per-point arithmetic of the 2-D collision (counted as in 3-D).
FLOPS_PER_POINT_2D = 9 * 14 + 5 * 2 * 8 + 110  # ~ 316


def step_work_2d(num_points: int) -> Work:
    """Workload of one 2-D step — a quarter of the 3-D state traffic."""
    return Work(
        name="lbmhd2d.step",
        flops=float(FLOPS_PER_POINT_2D) * num_points,
        bytes_unit=2.0 * (9 + 10) * 8.0 * num_points,
        vector_fraction=0.994,
        avg_vector_length=256.0,
        fma_fraction=0.75,
    )
