"""Multiple-relaxation-time (projected/regularized) collision option.

Production lattice Boltzmann codes rarely stop at plain BGK: relaxing
the non-hydrodynamic ("ghost") content of the distributions at its own
rate decouples stability from viscosity.  This module implements the
projection form of that idea for the LBMHD state:

* the non-equilibrium part of ``f`` is split into its traceless
  second-moment (shear-stress) projection — relaxed at ``tau`` so the
  viscosity is unchanged — and the ghost remainder, relaxed at
  ``tau_ghost``;
* the non-equilibrium part of ``g`` is split into its first-moment
  (induction) projection — relaxed at ``tau_m``, preserving the
  resistivity — and its ghost remainder.

With ``tau_ghost == tau`` (and the magnetic analogue) the operator is
*algebraically identical* to BGK, which the test suite checks; with
``tau_ghost = 1`` the ghost modes are wiped each step (the fully
"regularized" scheme), markedly more robust at low viscosity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .collision import CollisionParams
from .equilibrium import f_equilibrium, g_equilibrium
from .fields import magnetic_field, momentum, split_state
from .lattice import CS2, Q15_VELOCITIES, Q15_WEIGHTS, Q27_VELOCITIES, Q27_WEIGHTS


@dataclass(frozen=True)
class MRTParams:
    """Relaxation rates of the projected-MRT collision.

    ``tau``/``tau_m`` keep their BGK meaning (viscosity/resistivity);
    ``tau_ghost``/``tau_ghost_m`` govern the non-hydrodynamic modes.
    """

    tau: float = 0.8
    tau_m: float = 0.8
    tau_ghost: float = 1.0
    tau_ghost_m: float = 1.0

    def __post_init__(self) -> None:
        for name in ("tau", "tau_m", "tau_ghost", "tau_ghost_m"):
            if getattr(self, name) <= 0.5:
                raise ValueError(f"{name} must exceed 1/2 for stability")

    @property
    def bgk(self) -> CollisionParams:
        return CollisionParams(tau=self.tau, tau_m=self.tau_m)


def _project_f_neq(f_neq: np.ndarray) -> np.ndarray:
    """Shear-stress projection of a hydrodynamic non-equilibrium part.

    Builds the traceless symmetric second moment of ``f_neq`` and
    re-expands it onto the lattice; the projection carries zero density
    and momentum by construction.
    """
    xi = Q27_VELOCITIES.astype(np.float64)
    w = Q27_WEIGHTS
    pi = np.einsum("i...,ia,ib->ab...", f_neq, xi, xi)
    trace = np.einsum("aa...->...", pi)
    eye = np.eye(3)
    pi_traceless = pi - (trace / 3.0) * eye[(...,) + (None,) * (pi.ndim - 2)]
    # w_i (xi xi - cs^2 I) : Pi / (2 cs^4)
    quad = np.einsum("ia,ib->iab", xi, xi) - CS2 * eye[None, :, :]
    contracted = np.einsum(
        "iab,ab...->i...", w[:, None, None] * quad, pi_traceless
    )
    return contracted / (2.0 * CS2 * CS2)


def _project_g_neq(g_neq: np.ndarray) -> np.ndarray:
    """First-moment (induction) projection of the magnetic residue."""
    eta = Q15_VELOCITIES.astype(np.float64)
    W = Q15_WEIGHTS
    lam = np.einsum("ak...,aj->jk...", g_neq, eta)
    # W_a eta_a . Lambda / cs^2, with zero zeroth moment by oddness
    proj = np.einsum("aj,jk...->ak...", eta, lam) / CS2
    return W[(slice(None), None) + (None,) * (g_neq.ndim - 2)] * proj


def collide_mrt(state: np.ndarray, params: MRTParams) -> np.ndarray:
    """Projected-MRT collision over the whole (local) grid.

    Conserves density, momentum, and total magnetic field point-wise,
    exactly like the BGK operator it generalizes.
    """
    f, g = split_state(state)
    rho = f.sum(axis=0)
    u = momentum(f) / rho
    B = magnetic_field(g)

    feq = f_equilibrium(rho, u, B)
    geq = g_equilibrium(u, B)

    f_neq = f - feq
    g_neq = g - geq
    f_shear = _project_f_neq(f_neq)
    g_ind = _project_g_neq(g_neq)

    out = np.empty_like(state)
    f_out, g_out = split_state(out)
    f_out[:] = (
        feq
        + (1.0 - 1.0 / params.tau) * f_shear
        + (1.0 - 1.0 / params.tau_ghost) * (f_neq - f_shear)
    )
    g_out[:] = (
        geq
        + (1.0 - 1.0 / params.tau_m) * g_ind
        + (1.0 - 1.0 / params.tau_ghost_m) * (g_neq - g_ind)
    )
    return out
