"""Paper-scale performance prediction for LBMHD3D (Table 5).

The analytic workload generator reuses the *same* per-point kernel
descriptor (:func:`repro.apps.lbmhd.collision.collision_work`) that the
instrumented solver charges, evaluated at the paper's grid sizes
(256^3 ... 1024^3) and concurrencies (16 ... 4800), plus the halo
communication model.  Tests verify the generator against instrumented
miniature runs, so the paper-scale numbers and the real numerics cannot
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ...machines.catalog import get_machine
from ...machines.processor import make_model
from ...machines.spec import MachineSpec
from ...network.collectives import CollectiveModel
from ...network.model import NetworkModel
from ...perfmodel.efficiency import get_calibration
from ...perfmodel.report import PerfResult
from .collision import COLLISION_REGISTER_DEMAND, collision_work
from .decomp import CartesianDecomposition3D
from .stream import halo_bytes


@dataclass(frozen=True)
class LBMHDScenario:
    """One Table 5 row: a global grid run at a fixed concurrency."""

    grid: int
    nprocs: int

    @property
    def global_shape(self) -> tuple[int, int, int]:
        return (self.grid,) * 3

    @property
    def label(self) -> str:
        return f"{self.grid}^3"


#: The concurrency/grid pairs of Table 5 (plus the 4800-processor ES
#: headline run from the abstract).
TABLE5_ROWS: tuple[LBMHDScenario, ...] = (
    LBMHDScenario(256, 16),
    LBMHDScenario(256, 64),
    LBMHDScenario(512, 256),
    LBMHDScenario(512, 512),
    LBMHDScenario(1024, 1024),
    LBMHDScenario(1024, 2048),
)

ES_HEADLINE = LBMHDScenario(1024, 4800)


def kernel_works(spec: MachineSpec, scenario: LBMHDScenario) -> dict:
    """Named per-rank compute kernels of one step (for breakdowns)."""
    try:
        decomp = CartesianDecomposition3D.create(
            scenario.global_shape, scenario.nprocs
        )
        local_shape = decomp.local_shape
    except ValueError:
        side = (scenario.grid**3 / scenario.nprocs) ** (1.0 / 3.0)
        local_shape = (side, side, side)  # type: ignore[assignment]
    local_points = float(np.prod(local_shape))
    work = collision_work(int(round(local_points)))
    vl = min(256.0, local_points)
    return {"collide+stream": replace(work, avg_vector_length=vl)}


def comm_times(spec: MachineSpec, scenario: LBMHDScenario) -> dict:
    """Named per-rank communication costs of one step."""
    try:
        decomp = CartesianDecomposition3D.create(
            scenario.global_shape, scenario.nprocs
        )
        local_shape = decomp.local_shape
    except ValueError:
        side = (scenario.grid**3 / scenario.nprocs) ** (1.0 / 3.0)
        local_shape = (side, side, side)  # type: ignore[assignment]
    net = NetworkModel(spec, scenario.nprocs)
    coll = CollectiveModel(net)
    face_bytes = halo_bytes(tuple(int(round(x)) for x in local_shape)) / 6.0
    return {"halo exchange": coll.halo_exchange(face_bytes, num_neighbors=6)}


def step_time(spec: MachineSpec, scenario: LBMHDScenario) -> tuple[float, float]:
    """(compute_seconds, comm_seconds) per time step per rank."""
    # 4800 does not factor into a divisible cube of 1024; fall back to a
    # load-balanced ideal split for the headline estimate.
    try:
        decomp = CartesianDecomposition3D.create(
            scenario.global_shape, scenario.nprocs
        )
        local_shape = decomp.local_shape
    except ValueError:
        side = (scenario.grid**3 / scenario.nprocs) ** (1.0 / 3.0)
        local_shape = (side, side, side)  # type: ignore[assignment]

    local_points = float(np.prod(local_shape))
    work = collision_work(int(round(local_points)))
    # The fused grid-point loop is strip-mined over the whole subgrid:
    # trip counts saturate the 256-word registers for any realistic
    # block, so the effective vector length is the register-length cap.
    vl = min(256.0, local_points)
    work = replace(work, avg_vector_length=vl)

    model = make_model(spec, loop_registers=COLLISION_REGISTER_DEMAND)
    t_comp = model.time(work)

    net = NetworkModel(spec, scenario.nprocs)
    coll = CollectiveModel(net)
    face_bytes = halo_bytes(tuple(int(round(s)) for s in local_shape)) / 6.0
    t_comm = coll.halo_exchange(face_bytes, num_neighbors=6)
    return t_comp, t_comm


def predict(machine: str, scenario: LBMHDScenario) -> PerfResult:
    """Modeled Table 5 cell for one machine."""
    spec = get_machine(machine)
    t_comp, t_comm = step_time(spec, scenario)
    residual = get_calibration("lbmhd", spec.name)
    t_total = t_comp / residual + t_comm
    flops_per_rank = collision_work(
        int(round(scenario.grid**3 / scenario.nprocs))
    ).flops
    gflops = flops_per_rank / t_total / 1e9
    return PerfResult(
        app="lbmhd",
        machine=spec.name,
        nprocs=scenario.nprocs,
        gflops_per_proc=gflops,
        config=scenario.label,
        wall_seconds=t_total,
        total_flops=flops_per_rank * scenario.nprocs,
    )
