"""3-D block decomposition of the LBMHD lattice over ranks.

"The 3D spatial grid is coupled to a 3D Q27 streaming lattice and block
distributed over a 3D Cartesian processor grid."  Ranks are arranged in
a near-cubic ``(px, py, pz)`` grid; each owns a contiguous block and
exchanges one-cell face halos with its six neighbors.  The diagonal
(edge/corner) ghost data that D3Q27 streaming needs is obtained by
exchanging the axes *in order*, each phase forwarding the ghosts
received in the previous ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simmpi.comm import Communicator, Message


def factor3d(nprocs: int) -> tuple[int, int, int]:
    """Near-cubic factorization of a processor count.

    Returns ``(px, py, pz)`` with ``px * py * pz == nprocs`` minimizing
    the spread between factors (greedy over the sorted prime factors).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    dims = [1, 1, 1]
    remaining = nprocs
    primes = []
    d = 2
    while d * d <= remaining:
        while remaining % d == 0:
            primes.append(d)
            remaining //= d
        d += 1
    if remaining > 1:
        primes.append(remaining)
    for p in sorted(primes, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))  # type: ignore[return-value]


@dataclass(frozen=True)
class CartesianDecomposition3D:
    """Maps ranks to blocks of a ``(gx, gy, gz)`` global lattice."""

    global_shape: tuple[int, int, int]
    proc_grid: tuple[int, int, int]

    @classmethod
    def create(
        cls, global_shape: tuple[int, int, int], nprocs: int
    ) -> "CartesianDecomposition3D":
        grid = factor3d(nprocs)
        return cls(global_shape=tuple(global_shape), proc_grid=grid)

    def __post_init__(self) -> None:
        for g, p in zip(self.global_shape, self.proc_grid):
            if g % p != 0:
                raise ValueError(
                    f"global shape {self.global_shape} not divisible by "
                    f"processor grid {self.proc_grid}"
                )

    @property
    def nprocs(self) -> int:
        px, py, pz = self.proc_grid
        return px * py * pz

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return tuple(
            g // p for g, p in zip(self.global_shape, self.proc_grid)
        )  # type: ignore[return-value]

    def coords(self, rank: int) -> tuple[int, int, int]:
        px, py, pz = self.proc_grid
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range")
        return (rank // (py * pz), (rank // pz) % py, rank % pz)

    def rank_of(self, cx: int, cy: int, cz: int) -> int:
        px, py, pz = self.proc_grid
        return ((cx % px) * py + (cy % py)) * pz + (cz % pz)

    def neighbor(self, rank: int, axis: int, direction: int) -> int:
        """Periodic neighbor along ``axis`` (+1 or -1)."""
        c = list(self.coords(rank))
        c[axis] += direction
        return self.rank_of(*c)

    def local_slices(self, rank: int) -> tuple[slice, slice, slice]:
        """Global-array slices of this rank's block."""
        lx, ly, lz = self.local_shape
        cx, cy, cz = self.coords(rank)
        return (
            slice(cx * lx, (cx + 1) * lx),
            slice(cy * ly, (cy + 1) * ly),
            slice(cz * lz, (cz + 1) * lz),
        )

    def scatter(self, global_array: np.ndarray) -> list[np.ndarray]:
        """Split a (..., gx, gy, gz) array into per-rank local blocks."""
        if global_array.shape[-3:] != self.global_shape:
            raise ValueError("array does not match the global shape")
        return [
            np.ascontiguousarray(global_array[(..., *self.local_slices(r))])
            for r in range(self.nprocs)
        ]

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Assemble per-rank blocks back into a global array."""
        if len(locals_) != self.nprocs:
            raise ValueError("need one block per rank")
        lead = locals_[0].shape[:-3]
        out = np.empty((*lead, *self.global_shape), dtype=locals_[0].dtype)
        for r, block in enumerate(locals_):
            out[(..., *self.local_slices(r))] = block
        return out


def exchange_halos(
    comm: Communicator,
    decomp: CartesianDecomposition3D,
    padded: list[np.ndarray],
) -> None:
    """Fill the one-cell ghost layers of every rank's padded state.

    ``padded[r]`` has shape ``(slots, lx+2, ly+2, lz+2)`` with the core
    already written.  Axes are exchanged in order so that the second and
    third phases forward previously received ghosts, populating the
    edge/corner ghosts needed by diagonal streaming.  Self-neighboring
    axes (a single rank along that axis) wrap locally at zero cost,
    matching the physical periodic boundary.
    """
    if len(padded) != decomp.nprocs:
        raise ValueError("need one padded block per rank")
    core_hi = [n for n in decomp.local_shape]  # index of last core plane

    for axis in range(3):
        ax = axis + 1  # slot axis is 0
        n = core_hi[axis]
        messages: list[Message] = []
        local_wrap: list[int] = []
        for rank in range(decomp.nprocs):
            lo_nbr = decomp.neighbor(rank, axis, -1)
            hi_nbr = decomp.neighbor(rank, axis, +1)
            if lo_nbr == rank and hi_nbr == rank:
                local_wrap.append(rank)
                continue
            lo_plane = np.take(padded[rank], 1, axis=ax)
            hi_plane = np.take(padded[rank], n, axis=ax)
            messages.append(Message(src=rank, dst=lo_nbr, payload=lo_plane, tag=axis))
            messages.append(Message(src=rank, dst=hi_nbr, payload=hi_plane, tag=axis + 8))
        received = comm.exchange(messages)

        # Single rank along this axis: wrap the planes locally.
        for rank in local_wrap:
            idx_lo = [slice(None)] * 4
            idx_hi = [slice(None)] * 4
            idx_lo[ax], idx_hi[ax] = 0, n + 1
            src_lo = [slice(None)] * 4
            src_hi = [slice(None)] * 4
            src_lo[ax], src_hi[ax] = 1, n
            padded[rank][tuple(idx_lo)] = padded[rank][tuple(src_hi)]
            padded[rank][tuple(idx_hi)] = padded[rank][tuple(src_lo)]

        # exchange() delivers payload copies per destination in posting
        # order; pair them back up with their messages and use the tag
        # to pick the ghost plane: a *low* core plane sent leftwards
        # lands in the receiver's *high* ghost, and vice versa.
        counters: dict[int, int] = {}
        for m in messages:
            i = counters.get(m.dst, 0)
            counters[m.dst] = i + 1
            payload = received[m.dst][i]
            ghost = [slice(None)] * 4
            ghost[ax] = n + 1 if m.tag == axis else 0
            padded[m.dst][tuple(ghost)] = payload
