"""3-D block decomposition of the LBMHD lattice over ranks.

"The 3D spatial grid is coupled to a 3D Q27 streaming lattice and block
distributed over a 3D Cartesian processor grid."  Ranks are arranged in
a near-cubic ``(px, py, pz)`` grid; each owns a contiguous block and
exchanges one-cell face halos with its six neighbors.  The diagonal
(edge/corner) ghost data that D3Q27 streaming needs is obtained by
exchanging the axes *in order*, each phase forwarding the ghosts
received in the previous ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ...simmpi.comm import Communicator, Message


def factor3d(nprocs: int) -> tuple[int, int, int]:
    """Near-cubic factorization of a processor count.

    Returns ``(px, py, pz)`` with ``px * py * pz == nprocs`` minimizing
    the spread between factors (greedy over the sorted prime factors).
    """
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    dims = [1, 1, 1]
    remaining = nprocs
    primes = []
    d = 2
    while d * d <= remaining:
        while remaining % d == 0:
            primes.append(d)
            remaining //= d
        d += 1
    if remaining > 1:
        primes.append(remaining)
    for p in sorted(primes, reverse=True):
        dims[int(np.argmin(dims))] *= p
    return tuple(sorted(dims, reverse=True))  # type: ignore[return-value]


@dataclass(frozen=True)
class CartesianDecomposition3D:
    """Maps ranks to blocks of a ``(gx, gy, gz)`` global lattice."""

    global_shape: tuple[int, int, int]
    proc_grid: tuple[int, int, int]

    @classmethod
    def create(
        cls, global_shape: tuple[int, int, int], nprocs: int
    ) -> "CartesianDecomposition3D":
        grid = factor3d(nprocs)
        return cls(global_shape=tuple(global_shape), proc_grid=grid)

    def __post_init__(self) -> None:
        for g, p in zip(self.global_shape, self.proc_grid):
            if g % p != 0:
                raise ValueError(
                    f"global shape {self.global_shape} not divisible by "
                    f"processor grid {self.proc_grid}"
                )

    @property
    def nprocs(self) -> int:
        px, py, pz = self.proc_grid
        return px * py * pz

    @property
    def local_shape(self) -> tuple[int, int, int]:
        return tuple(
            g // p for g, p in zip(self.global_shape, self.proc_grid)
        )  # type: ignore[return-value]

    def coords(self, rank: int) -> tuple[int, int, int]:
        px, py, pz = self.proc_grid
        if not 0 <= rank < self.nprocs:
            raise IndexError(f"rank {rank} out of range")
        return (rank // (py * pz), (rank // pz) % py, rank % pz)

    def rank_of(self, cx: int, cy: int, cz: int) -> int:
        px, py, pz = self.proc_grid
        return ((cx % px) * py + (cy % py)) * pz + (cz % pz)

    def neighbor(self, rank: int, axis: int, direction: int) -> int:
        """Periodic neighbor along ``axis`` (+1 or -1)."""
        c = list(self.coords(rank))
        c[axis] += direction
        return self.rank_of(*c)

    def local_slices(self, rank: int) -> tuple[slice, slice, slice]:
        """Global-array slices of this rank's block."""
        lx, ly, lz = self.local_shape
        cx, cy, cz = self.coords(rank)
        return (
            slice(cx * lx, (cx + 1) * lx),
            slice(cy * ly, (cy + 1) * ly),
            slice(cz * lz, (cz + 1) * lz),
        )

    def scatter(self, global_array: np.ndarray) -> list[np.ndarray]:
        """Split a (..., gx, gy, gz) array into per-rank local blocks."""
        if global_array.shape[-3:] != self.global_shape:
            raise ValueError("array does not match the global shape")
        return [
            np.ascontiguousarray(global_array[(..., *self.local_slices(r))])
            for r in range(self.nprocs)
        ]

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Assemble per-rank blocks back into a global array."""
        if len(locals_) != self.nprocs:
            raise ValueError("need one block per rank")
        lead = locals_[0].shape[:-3]
        out = np.empty((*lead, *self.global_shape), dtype=locals_[0].dtype)
        for r, block in enumerate(locals_):
            out[(..., *self.local_slices(r))] = block
        return out


def exchange_halos(
    comm: Communicator,
    decomp: CartesianDecomposition3D,
    padded: list[np.ndarray],
    zero_copy: bool = False,
) -> None:
    """Fill the one-cell ghost layers of every rank's padded state.

    ``padded[r]`` has shape ``(slots, lx+2, ly+2, lz+2)`` with the core
    already written.  Axes are exchanged in order so that the second and
    third phases forward previously received ghosts, populating the
    edge/corner ghosts needed by diagonal streaming.  Self-neighboring
    axes (a single rank along that axis) wrap locally at zero cost,
    matching the physical periodic boundary.

    ``zero_copy=True`` posts boundary-plane *views* and delivers them
    uncopied (``exchange(..., copy=False)``): each halo plane then
    moves with a single strided copy — the ghost-layer write — instead
    of three (plane extraction, runtime delivery, ghost write).  This
    is safe here because sends read core planes while receives write
    only ghost planes, which never overlap; the filled ghosts are
    bitwise-identical either way.
    """
    if len(padded) != decomp.nprocs:
        raise ValueError("need one padded block per rank")
    core_hi = [n for n in decomp.local_shape]  # index of last core plane

    for axis in range(3):
        ax = axis + 1  # slot axis is 0
        n = core_hi[axis]
        lo_idx = [slice(None)] * 4
        hi_idx = [slice(None)] * 4
        lo_idx[ax], hi_idx[ax] = 1, n
        messages: list[Message] = []
        local_wrap: list[int] = []
        for rank in range(decomp.nprocs):
            lo_nbr = decomp.neighbor(rank, axis, -1)
            hi_nbr = decomp.neighbor(rank, axis, +1)
            if lo_nbr == rank and hi_nbr == rank:
                local_wrap.append(rank)
                continue
            if zero_copy:
                lo_plane = padded[rank][tuple(lo_idx)]
                hi_plane = padded[rank][tuple(hi_idx)]
            else:
                lo_plane = np.take(padded[rank], 1, axis=ax)
                hi_plane = np.take(padded[rank], n, axis=ax)
            messages.append(Message(src=rank, dst=lo_nbr, payload=lo_plane, tag=axis))
            messages.append(Message(src=rank, dst=hi_nbr, payload=hi_plane, tag=axis + 8))
        received = comm.exchange(messages, copy=not zero_copy)

        # Single rank along this axis: wrap the planes locally.
        for rank in local_wrap:
            idx_lo = [slice(None)] * 4
            idx_hi = [slice(None)] * 4
            idx_lo[ax], idx_hi[ax] = 0, n + 1
            src_lo = [slice(None)] * 4
            src_hi = [slice(None)] * 4
            src_lo[ax], src_hi[ax] = 1, n
            padded[rank][tuple(idx_lo)] = padded[rank][tuple(src_hi)]
            padded[rank][tuple(idx_hi)] = padded[rank][tuple(src_lo)]

        # exchange() delivers payload copies per destination in posting
        # order; pair them back up with their messages and use the tag
        # to pick the ghost plane: a *low* core plane sent leftwards
        # lands in the receiver's *high* ghost, and vice versa.
        counters: dict[int, int] = {}
        for m in messages:
            i = counters.get(m.dst, 0)
            counters[m.dst] = i + 1
            payload = received[m.dst][i]
            ghost = [slice(None)] * 4
            ghost[ax] = n + 1 if m.tag == axis else 0
            padded[m.dst][tuple(ghost)] = payload


@lru_cache(maxsize=None)
def _halo_plan(
    decomp: CartesianDecomposition3D,
) -> tuple[
    tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None, ...
]:
    """Per-axis neighbor topology of the halo exchange, computed once.

    For each axis: ``None`` when the processor grid is flat along it
    (every rank wraps locally), else ``(lo, hi, srcs, dsts)`` where
    ``lo[r]``/``hi[r]`` are rank ``r``'s periodic neighbors and
    ``srcs``/``dsts`` spell out the legacy per-rank message order
    (rank 0's low send, rank 0's high send, rank 1's low send, ...) for
    clock/trace accounting.
    """
    axes = []
    ranks = np.arange(decomp.nprocs, dtype=np.intp)
    for axis in range(3):
        if decomp.proc_grid[axis] == 1:
            axes.append(None)
            continue
        lo = np.array(
            [decomp.neighbor(r, axis, -1) for r in ranks], dtype=np.intp
        )
        hi = np.array(
            [decomp.neighbor(r, axis, +1) for r in ranks], dtype=np.intp
        )
        srcs = np.repeat(ranks, 2)
        dsts = np.empty(2 * decomp.nprocs, dtype=np.intp)
        dsts[0::2] = lo
        dsts[1::2] = hi
        axes.append((lo, hi, srcs, dsts))
    return tuple(axes)


def exchange_halos_block(
    comm: Communicator,
    decomp: CartesianDecomposition3D,
    padded_block: np.ndarray,
) -> None:
    """Batched :func:`exchange_halos` over a stacked multi-rank block.

    ``padded_block`` has shape ``(slots, nranks, lx+2, ly+2, lz+2)``
    with every core already written.  Each axis phase moves all ranks'
    boundary planes in two strided gather-copies (instead of two Python
    messages per rank) and charges the communicator through
    :meth:`~repro.simmpi.comm.Communicator.exchange_phase` with the
    legacy message ordering, so clocks, traces, and the filled ghosts
    are all identical to the per-rank path bitwise.
    """
    if padded_block.ndim != 5 or padded_block.shape[1] != decomp.nprocs:
        raise ValueError("padded_block must be (slots, nranks, x, y, z)")
    if not padded_block.flags.c_contiguous:
        # The slice algebra below needs the rank axis reshaped in place;
        # a strided block takes the (equivalent) per-rank path instead.
        exchange_halos(
            comm,
            decomp,
            [padded_block[:, r] for r in range(decomp.nprocs)],
            zero_copy=True,
        )
        return
    plan = _halo_plan(decomp)
    itemsize = padded_block.itemsize
    # Ranks are laid out C-order over the processor grid
    # (``rank = (cx*py + cy)*pz + cz``), so splitting the rank axis into
    # (px, py, pz) turns each neighbor shift into plain slice algebra.
    slots = padded_block.shape[0]
    grid = decomp.proc_grid
    block7 = padded_block.reshape(slots, *grid, *padded_block.shape[2:])
    for axis in range(3):
        n = decomp.local_shape[axis]
        ga = axis + 1  # processor-grid axis in the 7-d frame
        sp = axis + 4  # spatial axis in the 7-d frame
        p_ax = grid[axis]

        def idx(grid_sel: slice | int, plane: int) -> tuple:
            ix: list = [slice(None)] * 7
            ix[ga] = grid_sel
            ix[sp] = plane
            return tuple(ix)

        # Hi ghost <- hi neighbor's low core plane; lo ghost <- lo
        # neighbor's high core plane.  Each direction is a bulk
        # coordinate shift plus the periodic wrap column — all basic
        # (view) slices, no gather temporaries.  With a flat grid along
        # this axis only the wrap assignments run: the local periodic
        # wrap, charged nothing, exactly like the per-rank path.
        if p_ax > 1:
            block7[idx(slice(0, p_ax - 1), n + 1)] = block7[
                idx(slice(1, p_ax), 1)
            ]
            block7[idx(slice(1, p_ax), 0)] = block7[
                idx(slice(0, p_ax - 1), n)
            ]
        block7[idx(p_ax - 1, n + 1)] = block7[idx(0, 1)]
        block7[idx(0, 0)] = block7[idx(p_ax - 1, n)]

        if plan[axis] is not None:
            _, _, srcs, dsts = plan[axis]
            plane_bytes = itemsize * int(
                np.prod(
                    [padded_block.shape[i] for i in (0, 2, 3, 4) if i != axis + 2]
                )
            )
            comm.exchange_phase(srcs, dsts, plane_bytes)
