"""Lattice definitions for LBMHD3D.

The hydrodynamic distribution streams on the full D3Q27 lattice ("a 3D
Q27 streaming lattice ... 27 (26 plus the null vector)"); the
vector-valued magnetic distribution uses the D3Q15 sublattice, matching
the paper's "inner loops over velocity streaming vectors and magnetic
field streaming vectors (typically 10-30 loop iterations)".

Both lattices are isothermal with sound speed ``c_s^2 = 1/3`` and
satisfy the moment identities (checked by tests):

    sum_i w_i           = 1
    sum_i w_i xi_ia xi_ib = c_s^2 delta_ab
    sum_i w_i xi_ia xi_ib xi_ic xi_id
        = c_s^4 (delta_ab delta_cd + delta_ac delta_bd + delta_ad delta_bc)
"""

from __future__ import annotations

import itertools

import numpy as np

#: Lattice sound speed squared (both lattices).
CS2 = 1.0 / 3.0


def _build_d3q27() -> tuple[np.ndarray, np.ndarray]:
    velocities = np.array(
        list(itertools.product((0, 1, -1), repeat=3)), dtype=np.int64
    )
    # Reorder: rest first, then faces, edges, corners (by |xi|^2).
    order = np.argsort([v @ v for v in velocities], kind="stable")
    velocities = velocities[order]
    weights = np.empty(27, dtype=np.float64)
    for i, v in enumerate(velocities):
        s = int(v @ v)
        weights[i] = {0: 8.0 / 27.0, 1: 2.0 / 27.0, 2: 1.0 / 54.0, 3: 1.0 / 216.0}[s]
    return velocities, weights


def _build_d3q15() -> tuple[np.ndarray, np.ndarray]:
    vels = [(0, 0, 0)]
    vels += [
        tuple(int(x) for x in row)
        for row in np.vstack([np.eye(3, dtype=int), -np.eye(3, dtype=int)])
    ]
    vels += list(itertools.product((1, -1), repeat=3))
    velocities = np.array(vels, dtype=np.int64)
    weights = np.empty(15, dtype=np.float64)
    for i, v in enumerate(velocities):
        s = int(v @ v)
        weights[i] = {0: 2.0 / 9.0, 1: 1.0 / 9.0, 3: 1.0 / 72.0}[s]
    return velocities, weights


#: D3Q27 velocities, shape (27, 3), integer lattice units; rest vector first.
Q27_VELOCITIES, Q27_WEIGHTS = _build_d3q27()

#: D3Q15 velocities, shape (15, 3); rest vector first.
Q15_VELOCITIES, Q15_WEIGHTS = _build_d3q15()

#: Number of hydrodynamic / magnetic streaming directions.
NQ_F = 27
NQ_G = 15

#: State-vector slots: f occupies [0, 27), the three Cartesian components
#: of each magnetic direction occupy [27, 27 + 45).
NSLOTS = NQ_F + 3 * NQ_G


def slot_shifts() -> np.ndarray:
    """Streaming shift (3-vector) of every slot of the packed state.

    f slots shift by their D3Q27 velocity; each magnetic direction's
    three components shift together by the D3Q15 velocity.
    """
    shifts = np.empty((NSLOTS, 3), dtype=np.int64)
    shifts[:NQ_F] = Q27_VELOCITIES
    for a in range(NQ_G):
        for k in range(3):
            shifts[NQ_F + 3 * a + k] = Q15_VELOCITIES[a]
    return shifts


def opposite_index(velocities: np.ndarray) -> np.ndarray:
    """Index of the opposite lattice vector for each direction."""
    n = len(velocities)
    opp = np.empty(n, dtype=np.int64)
    for i, v in enumerate(velocities):
        matches = np.nonzero((velocities == -v).all(axis=1))[0]
        if len(matches) != 1:
            raise ValueError("lattice is not inversion symmetric")
        opp[i] = matches[0]
    return opp


def moment0(weights: np.ndarray) -> float:
    return float(weights.sum())


def moment2(velocities: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Second weight moment  sum_i w_i xi_i xi_i, shape (3, 3)."""
    return np.einsum("i,ia,ib->ab", weights, velocities, velocities)


def moment4(velocities: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Fourth weight moment, shape (3, 3, 3, 3)."""
    return np.einsum(
        "i,ia,ib,ic,id->abcd",
        weights,
        velocities,
        velocities,
        velocities,
        velocities,
    )
