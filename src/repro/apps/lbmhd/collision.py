"""BGK collision step for the LBMHD scheme.

Collision is entirely local ("data local only to that spatial point,
allowing concurrent, dependence-free point updates") — it is the
perfectly vectorizable kernel that lets LBMHD3D hit 68% of peak on the
Earth Simulator.  The loop body is, however, *complex*: it exhausts the
X1's 32 vector registers ("vectorizing these complex loops will exhaust
the hardware limits and force spilling to memory"), which the
performance model charges via the register-demand hint
``COLLISION_REGISTER_DEMAND``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...workload import Work
from .equilibrium import FLOPS_PER_POINT, f_equilibrium, g_equilibrium
from .fields import magnetic_field, momentum, split_state
from .lattice import NSLOTS

#: Vector-register demand of the fused collision loop body (live
#: temporaries across the 27+45-component update); exceeds the X1's 32.
COLLISION_REGISTER_DEMAND = 48.0

#: Bytes touched per lattice point by a fused collide+stream sweep on a
#: vector machine: read 72 words + write 72 words of state, plus ~20
#: words of macroscopic temporaries that spill out of registers.
BYTES_PER_POINT = 2 * NSLOTS * 8 + 160

#: Cache-machine traffic per point: the cache-optimal layout still pays
#: write-allocate line fills on the 72-word store stream, a separate
#: moments pass over the 72-word state, and temporary spills — roughly
#: 600 words/point.  This constant is fitted to the superscalar STREAM
#: bandwidths and the paper's measured rates (see DESIGN.md §4).
SCALAR_BYTES_PER_POINT = 600 * 8


@dataclass(frozen=True)
class CollisionParams:
    """Relaxation times of the two BGK operators.

    ``tau`` sets the viscosity ``nu = cs^2 (tau - 1/2)``; ``tau_m`` the
    resistivity ``eta = cs^2 (tau_m - 1/2)``.  Stability needs both
    > 1/2.
    """

    tau: float = 1.0
    tau_m: float = 1.0

    def __post_init__(self) -> None:
        if self.tau <= 0.5 or self.tau_m <= 0.5:
            raise ValueError("relaxation times must exceed 1/2 for stability")

    @property
    def viscosity(self) -> float:
        return (self.tau - 0.5) / 3.0

    @property
    def resistivity(self) -> float:
        return (self.tau_m - 0.5) / 3.0


def collide(state: np.ndarray, params: CollisionParams) -> np.ndarray:
    """One BGK collision over the whole (local) grid; returns new state.

    The input is not modified.  Density, momentum, and total magnetic
    field are conserved point-wise to round-off (tests enforce this).
    """
    f, g = split_state(state)
    rho = f.sum(axis=0)
    u = momentum(f) / rho
    B = magnetic_field(g)

    feq = f_equilibrium(rho, u, B)
    geq = g_equilibrium(u, B)

    out = np.empty_like(state)
    f_out, g_out = split_state(out)
    f_out[:] = f + (feq - f) / params.tau
    g_out[:] = g + (geq - g) / params.tau_m
    return out


def collision_work(num_points: int, name: str = "lbmhd.collide_stream") -> Work:
    """Workload descriptor for a fused collide+stream over ``num_points``.

    Used both when charging virtual time during instrumented runs and by
    the analytic paper-scale workload generator.  Vectorization traits:
    the grid-point loop fully vectorizes with trip counts of a full
    pencil (hundreds of points), with a tiny unvectorized remainder for
    loop setup and boundary bookkeeping.
    """
    return Work(
        name=name,
        flops=float(FLOPS_PER_POINT) * num_points,
        bytes_unit=float(BYTES_PER_POINT) * num_points,
        scalar_bytes_unit=float(SCALAR_BYTES_PER_POINT) * num_points,
        vector_fraction=0.994,
        avg_vector_length=256.0,
        fma_fraction=0.75,
        cache_fraction=0.10,
    )
