"""BGK collision step for the LBMHD scheme.

Collision is entirely local ("data local only to that spatial point,
allowing concurrent, dependence-free point updates") — it is the
perfectly vectorizable kernel that lets LBMHD3D hit 68% of peak on the
Earth Simulator.  The loop body is, however, *complex*: it exhausts the
X1's 32 vector registers ("vectorizing these complex loops will exhaust
the hardware limits and force spilling to memory"), which the
performance model charges via the register-demand hint
``COLLISION_REGISTER_DEMAND``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...runtime.arena import Arena, scratch_or_empty
from ...workload import Work
from .equilibrium import (
    _XI27,
    FEQ_MOMENT_MATRIX,
    FLOPS_PER_POINT,
    GEQ_MOMENT_MATRIX,
    dot_moments,
)
from .fields import split_state
from .lattice import NQ_F, NQ_G, NSLOTS

#: Vector-register demand of the fused collision loop body (live
#: temporaries across the 27+45-component update); exceeds the X1's 32.
COLLISION_REGISTER_DEMAND = 48.0

#: Bytes touched per lattice point by a fused collide+stream sweep on a
#: vector machine: read 72 words + write 72 words of state, plus ~20
#: words of macroscopic temporaries that spill out of registers.
BYTES_PER_POINT = 2 * NSLOTS * 8 + 160

#: Cache-machine traffic per point: the cache-optimal layout still pays
#: write-allocate line fills on the 72-word store stream, a separate
#: moments pass over the 72-word state, and temporary spills — roughly
#: 600 words/point.  This constant is fitted to the superscalar STREAM
#: bandwidths and the paper's measured rates (see DESIGN.md §4).
SCALAR_BYTES_PER_POINT = 600 * 8


@dataclass(frozen=True)
class CollisionParams:
    """Relaxation times of the two BGK operators.

    ``tau`` sets the viscosity ``nu = cs^2 (tau - 1/2)``; ``tau_m`` the
    resistivity ``eta = cs^2 (tau_m - 1/2)``.  Stability needs both
    > 1/2.
    """

    tau: float = 1.0
    tau_m: float = 1.0

    def __post_init__(self) -> None:
        if self.tau <= 0.5 or self.tau_m <= 0.5:
            raise ValueError("relaxation times must exceed 1/2 for stability")

    @property
    def viscosity(self) -> float:
        return (self.tau - 0.5) / 3.0

    @property
    def resistivity(self) -> float:
        return (self.tau_m - 0.5) / 3.0


def collide(
    state: np.ndarray,
    params: CollisionParams,
    out: np.ndarray | None = None,
    arena: Arena | None = None,
) -> np.ndarray:
    """One BGK collision over the whole (local) grid; returns new state.

    The input is not modified (unless ``out is state``, which is
    supported: every read of a cell completes before its write).
    Density, momentum, and total magnetic field are conserved
    point-wise to round-off (tests enforce this).

    Parameters
    ----------
    out:
        Optional destination array, shape/dtype of ``state`` (e.g. the
        core view of a ghost-padded buffer); fully overwritten.
    arena:
        Optional :class:`~repro.runtime.arena.Arena` the kernel draws
        its moment/equilibrium workspaces from instead of allocating.
        The arithmetic is identical with or without an arena, so the
        two modes produce bitwise-identical states.

    The grid may carry extra leading batch axes — a stacked
    ``(NSLOTS, nranks, nx, ny, nz)`` multi-rank block collides exactly
    as ``nranks`` separate calls would, since every operation is
    point-local.
    """
    f, g = split_state(state)
    n = state.shape[1:]
    npts = int(np.prod(n))

    def sc(key: str, shape: tuple[int, ...]) -> np.ndarray:
        return scratch_or_empty(arena, "lbmhd.collide." + key, shape)

    rho = np.add.reduce(f, axis=0, out=sc("rho", n))
    # NOTE: this 27-term contraction stays einsum — BLAS matmul picks
    # size-dependent kernels at K=27, which would break bitwise
    # decomposition-independence (dot_moments pins the tile width for
    # exactly this reason, but a 27-deep contraction is unstable even
    # then at small widths, so the momentum stays on einsum).
    m = np.einsum("i...,ia->a...", f, _XI27, out=sc("m", (3, *n)))
    u = np.divide(m, rho, out=sc("u", (3, *n)))
    B = np.add.reduce(g, axis=0, out=sc("B", (3, *n)))

    # Quadratic moment fields; both equilibria are constant linear maps
    # of these (FEQ_MOMENT_MATRIX / GEQ_MOMENT_MATRIX), so the (27, ...)
    # and (45, ...) expression trees collapse into two tiled matmuls
    # over small (11, ...) / (6, ...) field stacks.
    V = sc("V", (11, *n))
    t = sc("t", n)
    V[0] = rho
    V[1:4] = m
    for idx, (a, b) in enumerate(
        ((0, 0), (1, 1), (2, 2), (0, 1), (0, 2), (1, 2))
    ):
        np.multiply(B[a], B[b], out=t)
        np.multiply(m[a], u[b], out=V[4 + idx])
        np.subtract(V[4 + idx], t, out=V[4 + idx])
    np.multiply(B[0], B[0], out=V[10])
    np.multiply(B[1], B[1], out=t)
    np.add(V[10], t, out=V[10])
    np.multiply(B[2], B[2], out=t)
    np.add(V[10], t, out=V[10])

    VG = sc("VG", (6, *n))
    VG[0:3] = B
    for idx, (a, b) in enumerate(((0, 1), (0, 2), (1, 2))):
        np.multiply(u[a], B[b], out=VG[3 + idx])
        np.multiply(B[a], u[b], out=t)
        np.subtract(VG[3 + idx], t, out=VG[3 + idx])

    # BGK relaxation folded into the moment maps:
    #   f' = (1 - 1/tau) f + (C/tau) V
    feq_t = sc("feq_t", (NQ_F, *n))
    dot_moments(
        FEQ_MOMENT_MATRIX / params.tau,
        V.reshape(11, npts),
        feq_t.reshape(NQ_F, npts),
        arena=arena,
    )
    geq_t = sc("geq_t", (NQ_G, 3, *n))
    dot_moments(
        GEQ_MOMENT_MATRIX / params.tau_m,
        VG.reshape(6, npts),
        geq_t.reshape(NQ_G * 3, npts),
        arena=arena,
    )

    if out is None:
        out = np.empty_like(state)
    f_out, g_out = split_state(out)
    np.multiply(f, 1.0 - 1.0 / params.tau, out=f_out)
    np.add(f_out, feq_t, out=f_out)
    np.multiply(g, 1.0 - 1.0 / params.tau_m, out=g_out)
    np.add(g_out, geq_t, out=g_out)
    return out


def collision_work(num_points: int, name: str = "lbmhd.collide_stream") -> Work:
    """Workload descriptor for a fused collide+stream over ``num_points``.

    Used both when charging virtual time during instrumented runs and by
    the analytic paper-scale workload generator.  Vectorization traits:
    the grid-point loop fully vectorizes with trip counts of a full
    pencil (hundreds of points), with a tiny unvectorized remainder for
    loop setup and boundary bookkeeping.
    """
    return Work(
        name=name,
        flops=float(FLOPS_PER_POINT) * num_points,
        bytes_unit=float(BYTES_PER_POINT) * num_points,
        scalar_bytes_unit=float(SCALAR_BYTES_PER_POINT) * num_points,
        vector_fraction=0.994,
        avg_vector_length=256.0,
        fma_fraction=0.75,
        cache_fraction=0.10,
    )
