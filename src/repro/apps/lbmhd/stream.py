"""Streaming step: advect distributions along their lattice vectors.

Implements the Wellein et al. fused formulation the paper adopted
("data could be gathered from adjacent cells to calculate the updated
value for the current cell ... only the points on cell boundaries
require copying"): post-collision values are *pulled* from the
upstream neighbor, so only one ghost layer per face moves between
ranks.

Two entry points:

* :func:`stream_periodic` — serial reference on a fully periodic grid
  (``np.roll``), used by correctness tests;
* :func:`stream_from_padded` — the parallel path: pull from a
  ghost-padded post-collision array whose halo the solver has filled
  via the simulated MPI exchange.
"""

from __future__ import annotations

import numpy as np

from .lattice import NSLOTS, slot_shifts

_SHIFTS = slot_shifts()


def stream_periodic(state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Pull-streaming with global periodic wrap (single-rank reference).

    ``new[s, x] = old[s, x - c_s]`` — implemented as a positive roll by
    ``c_s`` along each axis.  ``out`` must not alias ``state``.
    """
    if state.shape[0] != NSLOTS:
        raise ValueError(f"state must have {NSLOTS} slots")
    if out is None:
        out = np.empty_like(state)
    for s in range(NSLOTS):
        cx, cy, cz = _SHIFTS[s]
        out[s] = np.roll(state[s], (cx, cy, cz), axis=(0, 1, 2))
    return out


def pad_state(state: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """A one-cell ghost-padded copy of a packed state.

    With ``out=None`` a fresh zeroed padded array is allocated (the
    seed behavior).  Passing a reusable ``out`` buffer only rewrites
    the core; ghost contents are left as-is, which is safe because the
    halo exchange fully rewrites every ghost layer before streaming
    reads it.
    """
    nx, ny, nz = state.shape[1:]
    if out is None:
        out = np.zeros(
            (state.shape[0], nx + 2, ny + 2, nz + 2), dtype=state.dtype
        )
    out[:, 1 : nx + 1, 1 : ny + 1, 1 : nz + 1] = state
    return out


def stream_from_padded(
    padded: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Pull-streaming out of a ghost-padded array with filled halos.

    For interior point ``x`` (1-based in the padded frame) the update is
    ``new[s, x-1] = padded[s, x - c_s]`` — a shifted window over the
    padded array, touching the ghost layer for boundary points.
    ``out`` (optional, fully overwritten) must not alias ``padded``.
    """
    if padded.shape[0] != NSLOTS:
        raise ValueError(f"state must have {NSLOTS} slots")
    nx, ny, nz = (d - 2 for d in padded.shape[1:])
    if out is None:
        out = np.empty((NSLOTS, nx, ny, nz), dtype=padded.dtype)
    for s in range(NSLOTS):
        cx, cy, cz = _SHIFTS[s]
        out[s] = padded[
            s,
            1 - cx : 1 - cx + nx,
            1 - cy : 1 - cy + ny,
            1 - cz : 1 - cz + nz,
        ]
    return out


def stream_from_padded_batch(
    padded: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Batched pull-streaming over a stacked multi-rank padded block.

    ``padded`` has shape ``(NSLOTS, nranks, nx+2, ny+2, nz+2)`` — every
    rank's ghost-padded post-collision state side by side — and the
    window slicing of :func:`stream_from_padded` is applied to all
    ranks in one strided copy per slot (72 array ops per step instead
    of ``72 * nranks``).  Bitwise-identical to streaming each rank
    separately.
    """
    if padded.shape[0] != NSLOTS:
        raise ValueError(f"state must have {NSLOTS} slots")
    nranks = padded.shape[1]
    nx, ny, nz = (d - 2 for d in padded.shape[2:])
    if out is None:
        out = np.empty((NSLOTS, nranks, nx, ny, nz), dtype=padded.dtype)
    for s in range(NSLOTS):
        cx, cy, cz = _SHIFTS[s]
        out[s] = padded[
            s,
            :,
            1 - cx : 1 - cx + nx,
            1 - cy : 1 - cy + ny,
            1 - cz : 1 - cz + nz,
        ]
    return out


def halo_bytes(local_shape: tuple[int, int, int]) -> int:
    """Bytes exchanged per rank per step for the one-cell face halos.

    Six faces, each carrying the full 72-slot state at 8 bytes/word.
    This is what the paper-scale communication model charges.
    """
    nx, ny, nz = local_shape
    return 2 * NSLOTS * 8 * (nx * ny + ny * nz + nx * nz)
