"""Streaming step: advect distributions along their lattice vectors.

Implements the Wellein et al. fused formulation the paper adopted
("data could be gathered from adjacent cells to calculate the updated
value for the current cell ... only the points on cell boundaries
require copying"): post-collision values are *pulled* from the
upstream neighbor, so only one ghost layer per face moves between
ranks.

Two entry points:

* :func:`stream_periodic` — serial reference on a fully periodic grid
  (``np.roll``), used by correctness tests;
* :func:`stream_from_padded` — the parallel path: pull from a
  ghost-padded post-collision array whose halo the solver has filled
  via the simulated MPI exchange.
"""

from __future__ import annotations

import numpy as np

from .lattice import NSLOTS, slot_shifts

_SHIFTS = slot_shifts()


def stream_periodic(state: np.ndarray) -> np.ndarray:
    """Pull-streaming with global periodic wrap (single-rank reference).

    ``new[s, x] = old[s, x - c_s]`` — implemented as a positive roll by
    ``c_s`` along each axis.
    """
    if state.shape[0] != NSLOTS:
        raise ValueError(f"state must have {NSLOTS} slots")
    out = np.empty_like(state)
    for s in range(NSLOTS):
        cx, cy, cz = _SHIFTS[s]
        out[s] = np.roll(state[s], (cx, cy, cz), axis=(0, 1, 2))
    return out


def pad_state(state: np.ndarray) -> np.ndarray:
    """Allocate a one-cell ghost-padded copy of a packed state."""
    nx, ny, nz = state.shape[1:]
    padded = np.zeros((state.shape[0], nx + 2, ny + 2, nz + 2), dtype=state.dtype)
    padded[:, 1 : nx + 1, 1 : ny + 1, 1 : nz + 1] = state
    return padded


def stream_from_padded(padded: np.ndarray) -> np.ndarray:
    """Pull-streaming out of a ghost-padded array with filled halos.

    For interior point ``x`` (1-based in the padded frame) the update is
    ``new[s, x-1] = padded[s, x - c_s]`` — a shifted window over the
    padded array, touching the ghost layer for boundary points.
    """
    if padded.shape[0] != NSLOTS:
        raise ValueError(f"state must have {NSLOTS} slots")
    nx, ny, nz = (d - 2 for d in padded.shape[1:])
    out = np.empty((NSLOTS, nx, ny, nz), dtype=padded.dtype)
    for s in range(NSLOTS):
        cx, cy, cz = _SHIFTS[s]
        out[s] = padded[
            s,
            1 - cx : 1 - cx + nx,
            1 - cy : 1 - cy + ny,
            1 - cz : 1 - cz + nz,
        ]
    return out


def halo_bytes(local_shape: tuple[int, int, int]) -> int:
    """Bytes exchanged per rank per step for the one-cell face halos.

    Six faces, each carrying the full 72-slot state at 8 bytes/word.
    This is what the paper-scale communication model charges.
    """
    nx, ny, nz = local_shape
    return 2 * NSLOTS * 8 * (nx * ny + ny * nz + nx * nz)
