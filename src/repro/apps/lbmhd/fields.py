"""Macroscopic moments of the LBMHD state.

The packed state array has shape ``(NSLOTS, nx, ny, nz)``: slots
``[0, 27)`` are the hydrodynamic distribution ``f_i`` and slots
``[27, 72)`` are the three Cartesian components of the fifteen
vector-valued magnetic distributions ``g_a``.  Macroscopic fields:

    rho = sum_i f_i                 (density)
    rho u = sum_i f_i xi_i          (momentum)
    B = sum_a g_a                   (magnetic field)
"""

from __future__ import annotations

import numpy as np

from .lattice import NQ_F, NQ_G, Q15_VELOCITIES, Q27_VELOCITIES


def split_state(state: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Views of the hydrodynamic and magnetic parts of a packed state.

    Returns ``(f, g)`` with ``f`` of shape (27, ...) and ``g`` of shape
    (15, 3, ...).  Both are views — mutating them mutates ``state``.
    """
    f = state[:NQ_F]
    g = state[NQ_F:].reshape(NQ_G, 3, *state.shape[1:])
    return f, g


def density(f: np.ndarray) -> np.ndarray:
    """rho(x) = sum_i f_i."""
    return f.sum(axis=0)


def momentum(f: np.ndarray) -> np.ndarray:
    """rho*u (x), shape (3, ...)."""
    return np.einsum("i...,ia->a...", f, Q27_VELOCITIES.astype(np.float64))


def velocity(f: np.ndarray, rho: np.ndarray | None = None) -> np.ndarray:
    """u(x) = momentum / rho, shape (3, ...)."""
    if rho is None:
        rho = density(f)
    return momentum(f) / rho


def magnetic_field(g: np.ndarray) -> np.ndarray:
    """B(x) = sum_a g_a, shape (3, ...)."""
    return g.sum(axis=0)


def moments(state: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(rho, u, B) of a packed state."""
    f, g = split_state(state)
    rho = density(f)
    u = momentum(f) / rho
    return rho, u, magnetic_field(g)


def kinetic_energy(rho: np.ndarray, u: np.ndarray) -> float:
    """Total kinetic energy  1/2 sum rho |u|^2 over the (local) grid."""
    return float(0.5 * (rho * (u**2).sum(axis=0)).sum())


def magnetic_energy(B: np.ndarray) -> float:
    """Total magnetic energy  1/2 sum |B|^2 over the (local) grid."""
    return float(0.5 * (B**2).sum())


def current_density(B: np.ndarray) -> np.ndarray:
    """J = curl B via centered differences on the periodic lattice."""

    def d(arr: np.ndarray, axis: int) -> np.ndarray:
        return (np.roll(arr, -1, axis=axis) - np.roll(arr, 1, axis=axis)) / 2.0

    jx = d(B[2], 1) - d(B[1], 2)
    jy = d(B[0], 2) - d(B[2], 0)
    jz = d(B[1], 0) - d(B[0], 1)
    return np.stack([jx, jy, jz])


def vorticity(u: np.ndarray) -> np.ndarray:
    """omega = curl u via centered differences on the periodic lattice."""
    return current_density(u)  # identical stencil


def divergence(B: np.ndarray) -> np.ndarray:
    """div B via centered differences (diagnostic; ~0 for valid states)."""

    def d(arr: np.ndarray, axis: int) -> np.ndarray:
        return (np.roll(arr, -1, axis=axis) - np.roll(arr, 1, axis=axis)) / 2.0

    return d(B[0], 0) + d(B[1], 1) + d(B[2], 2)
