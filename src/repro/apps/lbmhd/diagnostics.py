"""Turbulence diagnostics and checkpointing for LBMHD3D.

The paper uses LBMHD3D "to study the onset evolution of plasma
turbulence"; the standard observables for that are the shell-averaged
kinetic and magnetic energy spectra (whose high-k tails fill in as the
tube-like vorticity structures of Figure 6 break up) and the
cross-field transfer between flow and field.  Production runs at 4800
processors also need checkpoint/restart, provided here as exact
(bit-preserving) state serialization.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from ...simmpi.comm import Communicator
from .fields import moments
from .solver import LBMHD3D, LBMHDParams


def shell_spectrum(field: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged energy spectrum of a (3, nx, ny, nz) vector field.

    Returns ``(k, E_k)`` with integer shells ``|k| in [1, k_max]``;
    Parseval holds: ``sum(E_k) + E_0 == 0.5 * mean(|field|^2)`` in the
    grid-average normalization (tests verify).
    """
    if field.ndim != 4 or field.shape[0] != 3:
        raise ValueError("expected a (3, nx, ny, nz) vector field")
    shape = field.shape[1:]
    n = np.prod(shape)
    f_hat = np.fft.fftn(field, axes=(1, 2, 3)) / n
    energy = 0.5 * (np.abs(f_hat) ** 2).sum(axis=0)

    freqs = [np.fft.fftfreq(m, d=1.0 / m) for m in shape]
    kx, ky, kz = np.meshgrid(*freqs, indexing="ij")
    k_mag = np.sqrt(kx**2 + ky**2 + kz**2)
    k_shell = np.rint(k_mag).astype(int)

    k_max = int(k_shell.max())
    spectrum = np.bincount(
        k_shell.ravel(), weights=energy.ravel(), minlength=k_max + 1
    )
    k = np.arange(1, k_max + 1)
    return k, spectrum[1:]


@dataclass(frozen=True)
class TurbulenceReport:
    """Spectral summary of one snapshot."""

    step: int
    kinetic_spectrum: np.ndarray
    magnetic_spectrum: np.ndarray
    shells: np.ndarray

    @property
    def kinetic_centroid(self) -> float:
        """Energy-weighted mean wavenumber of the flow (rises as
        turbulence develops and energy cascades to small scales)."""
        total = self.kinetic_spectrum.sum()
        if total == 0:
            return 0.0
        return float((self.shells * self.kinetic_spectrum).sum() / total)

    @property
    def magnetic_centroid(self) -> float:
        total = self.magnetic_spectrum.sum()
        if total == 0:
            return 0.0
        return float((self.shells * self.magnetic_spectrum).sum() / total)


def turbulence_report(sim: LBMHD3D) -> TurbulenceReport:
    """Spectra of the current global state."""
    state = sim.global_state()
    rho, u, B = moments(state)
    k, ek = shell_spectrum(u * np.sqrt(rho)[None])
    _, eb = shell_spectrum(B)
    return TurbulenceReport(
        step=sim.step_count,
        kinetic_spectrum=ek,
        magnetic_spectrum=eb,
        shells=k,
    )


def save_checkpoint(sim: LBMHD3D) -> bytes:
    """Serialize the full simulation state (exact, compressed)."""
    buffer = io.BytesIO()
    np.savez_compressed(
        buffer,
        step=np.array(sim.step_count),
        shape=np.array(sim.params.shape),
        tau=np.array(sim.params.tau),
        tau_m=np.array(sim.params.tau_m),
        u0=np.array(sim.params.u0),
        b0=np.array(sim.params.b0),
        state=sim.global_state(),
    )
    return buffer.getvalue()


def load_checkpoint(blob: bytes, comm: Communicator) -> LBMHD3D:
    """Restore a simulation onto a (possibly different-size) communicator.

    Restart across a different processor count is exact because the
    physics is decomposition independent (tests assert bit equality of
    subsequent steps).
    """
    with np.load(io.BytesIO(blob)) as data:
        params = LBMHDParams(
            shape=tuple(int(x) for x in data["shape"]),
            tau=float(data["tau"]),
            tau_m=float(data["tau_m"]),
            u0=float(data["u0"]),
            b0=float(data["b0"]),
        )
        sim = LBMHD3D(params, comm)
        sim.states = sim.decomp.scatter(data["state"])
        sim.step_count = int(data["step"])
    return sim
