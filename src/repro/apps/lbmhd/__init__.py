"""LBMHD3D — 3-D lattice Boltzmann magneto-hydrodynamics (paper §5)."""

from .collision import CollisionParams, collide, collision_work
from .decomp import CartesianDecomposition3D, exchange_halos, factor3d
from .diagnostics import (
    TurbulenceReport,
    load_checkpoint,
    save_checkpoint,
    shell_spectrum,
    turbulence_report,
)
from .equilibrium import FLOPS_PER_POINT, f_equilibrium, g_equilibrium
from .fields import (
    current_density,
    density,
    divergence,
    magnetic_field,
    moments,
    momentum,
    split_state,
    velocity,
    vorticity,
)
from .lattice import (
    CS2,
    NQ_F,
    NQ_G,
    NSLOTS,
    Q15_VELOCITIES,
    Q15_WEIGHTS,
    Q27_VELOCITIES,
    Q27_WEIGHTS,
)
from .solver import (
    Diagnostics,
    LBMHD3D,
    LBMHDParams,
    equilibrium_state,
    orszag_tang_fields,
)
from .mrt import MRTParams, collide_mrt
from .two_d import (
    LBMHD2D,
    LBMHD2DParams,
    f_equilibrium_2d,
    g_equilibrium_2d,
    step_work_2d,
)
from .stream import halo_bytes, pad_state, stream_from_padded, stream_periodic
from .workload import ES_HEADLINE, TABLE5_ROWS, LBMHDScenario, predict

__all__ = [
    "CS2",
    "CartesianDecomposition3D",
    "CollisionParams",
    "Diagnostics",
    "ES_HEADLINE",
    "FLOPS_PER_POINT",
    "LBMHD2D",
    "LBMHD2DParams",
    "LBMHD3D",
    "MRTParams",
    "LBMHDParams",
    "LBMHDScenario",
    "NQ_F",
    "NQ_G",
    "NSLOTS",
    "Q15_VELOCITIES",
    "Q15_WEIGHTS",
    "Q27_VELOCITIES",
    "Q27_WEIGHTS",
    "TABLE5_ROWS",
    "TurbulenceReport",
    "collide",
    "collide_mrt",
    "collision_work",
    "current_density",
    "density",
    "divergence",
    "equilibrium_state",
    "exchange_halos",
    "f_equilibrium",
    "f_equilibrium_2d",
    "factor3d",
    "g_equilibrium",
    "g_equilibrium_2d",
    "halo_bytes",
    "load_checkpoint",
    "magnetic_field",
    "moments",
    "momentum",
    "orszag_tang_fields",
    "pad_state",
    "predict",
    "save_checkpoint",
    "shell_spectrum",
    "split_state",
    "step_work_2d",
    "stream_from_padded",
    "stream_periodic",
    "turbulence_report",
    "velocity",
    "vorticity",
]
