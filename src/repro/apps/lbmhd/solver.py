"""LBMHD3D driver: the paper's lattice Boltzmann MHD application.

"LBMHD3D simulates the behavior of a three-dimensional conducting fluid
evolving from simple initial conditions through the onset of
turbulence."  The default initial condition is the 3-D Orszag–Tang-like
vortex used in the LBM-MHD literature, whose "well-defined tube-like
structures" of vorticity distort into turbulence (the paper's
Figure 6).

The solver runs all simulated ranks in-process against a
:class:`repro.simmpi.Communicator`; pass an ideal (machine-less)
communicator for pure-numerics work or a platform-backed one to collect
virtual timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from types import SimpleNamespace

import numpy as np

from ...kernels import KernelBackend, get_backend
from ...runtime.arena import Arena
from ...simmpi.comm import Communicator
from .collision import (
    COLLISION_REGISTER_DEMAND,
    CollisionParams,
    collision_work,
)
from .decomp import (
    CartesianDecomposition3D,
    exchange_halos,
    exchange_halos_block,
)
from .equilibrium import f_equilibrium, g_equilibrium
from .fields import (
    kinetic_energy,
    magnetic_energy,
    magnetic_field,
    moments,
    split_state,
)
from .lattice import NSLOTS
from .stream import pad_state


@dataclass(frozen=True)
class LBMHDParams:
    """Physical and numerical parameters of an LBMHD3D run.

    Attributes
    ----------
    shape:
        Global lattice dimensions ``(gx, gy, gz)``.
    tau, tau_m:
        BGK relaxation times (viscosity / resistivity).
    u0, b0:
        Amplitudes of the initial velocity and magnetic vortices.
    """

    shape: tuple[int, int, int] = (16, 16, 16)
    tau: float = 0.8
    tau_m: float = 0.8
    u0: float = 0.05
    b0: float = 0.05
    use_mrt: bool = False
    tau_ghost: float = 1.0

    def __post_init__(self) -> None:
        if any(n < 4 for n in self.shape):
            raise ValueError("lattice must be at least 4 cells per side")
        if abs(self.u0) > 0.2 or abs(self.b0) > 0.2:
            raise ValueError("initial amplitudes must stay well below c_s")

    @property
    def collision(self) -> CollisionParams:
        return CollisionParams(tau=self.tau, tau_m=self.tau_m)

    @property
    def mrt(self):
        from .mrt import MRTParams

        return MRTParams(
            tau=self.tau,
            tau_m=self.tau_m,
            tau_ghost=self.tau_ghost,
            tau_ghost_m=self.tau_ghost,
        )


def orszag_tang_fields(
    shape: tuple[int, int, int], u0: float, b0: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Initial (rho, u, B): a 3-D Orszag–Tang-like vortex.

    Divergence-free velocity and magnetic fields built from sinusoids,
    the standard onset-of-MHD-turbulence configuration.
    """
    gx, gy, gz = shape
    x = 2.0 * np.pi * np.arange(gx) / gx
    y = 2.0 * np.pi * np.arange(gy) / gy
    z = 2.0 * np.pi * np.arange(gz) / gz
    X, Y, Z = np.meshgrid(x, y, z, indexing="ij")

    rho = np.ones(shape)
    u = np.stack(
        [
            -u0 * np.sin(Y) * np.cos(Z),
            u0 * np.sin(X) * np.cos(Z),
            u0 * np.sin(X) * np.cos(Y) * 0.0,
        ]
    )
    B = np.stack(
        [
            -b0 * np.sin(Y),
            b0 * np.sin(2.0 * X),
            np.zeros(shape),
        ]
    )
    return rho, u, B


def equilibrium_state(
    rho: np.ndarray, u: np.ndarray, B: np.ndarray
) -> np.ndarray:
    """Packed equilibrium state for given macroscopic fields."""
    shape = rho.shape
    state = np.empty((NSLOTS, *shape))
    f, g = split_state(state)
    f[:] = f_equilibrium(rho, u, B)
    g[:] = g_equilibrium(u, B).reshape(g.shape)
    return state


# -- rank segments -----------------------------------------------------
#
# Module-level callables with the ``(rank, shm, args)`` signature the
# executor seam requires (docs/executors.md): ``shm`` is the run's
# arena (shared-memory-backed under a process executor, or None) and
# ``args`` a namespace of region inputs bound once per region with
# ``functools.partial``.  Segments either return their effects (the
# allocating path) or write through shared arena views (the batched
# fast path) — never through private parent memory, which a forked
# worker cannot mutate.


def _collide_segment(rank: int, shm, args) -> np.ndarray:
    """Collide one rank's state; returns the post-collision state."""
    if args.mrt is not None:
        from .mrt import collide_mrt

        new = collide_mrt(args.states[rank], args.mrt)
    else:
        new = args.kernels.lbmhd_collide(
            args.states[rank],
            args.collision,
            arena=None if shm is None else shm.for_rank(rank),
        )
    args.comm.compute(rank, args.work)
    return new


def _pad_segment(rank: int, shm, args) -> np.ndarray:
    """Ghost-pad one rank's post-collision state for the halo phase."""
    return pad_state(args.post[rank])


def _stream_segment(rank: int, shm, args) -> np.ndarray:
    """Stream one rank from its halo-complete padded state."""
    return args.kernels.lbmhd_stream_from_padded(args.padded[rank])


def _collide_block_segment(rank: int, shm, args) -> None:
    """Batched-block collide: writes the rank's padded-core slice.

    Effectful through arena views (``args.block``/``args.core`` live in
    the run arena), so under a process executor this segment is only
    scheduled when that arena is shared memory.
    """
    args.kernels.lbmhd_collide(
        args.block[:, rank],
        args.collision,
        out=args.core[:, rank],
        arena=shm.for_rank(rank),
    )
    args.comm.compute(rank, args.work)


def _stream_block_segment(rank: int, shm, args) -> None:
    """Batched-block stream: padded slice back into the state block."""
    args.kernels.lbmhd_stream_from_padded(
        args.padded[:, rank], out=args.block[:, rank]
    )


@dataclass
class Diagnostics:
    """Global conserved/monitored quantities at one step."""

    step: int
    mass: float
    momentum: tuple[float, float, float]
    total_B: tuple[float, float, float]
    kinetic_energy: float
    magnetic_energy: float


class LBMHD3D:
    """Parallel LBMHD3D simulation over a simulated communicator.

    Passing an :class:`~repro.runtime.arena.Arena` enables the
    allocation-free fast path: all rank states live side by side in one
    ``(NSLOTS, nranks, lx, ly, lz)`` block, collision runs batched over
    every rank at once into a persistent ghost-padded buffer, the halo
    exchange moves plane views without intermediate copies, and
    streaming writes straight back into the state block.  The fast path
    is bitwise-identical to the allocating path (the regression suite
    enforces this across decompositions).
    """

    app_key = "lbmhd"
    #: IPM phase labels of one step.
    phases = ("collision", "stream")

    def __init__(
        self,
        params: LBMHDParams,
        comm: Communicator,
        arena: Arena | None = None,
        kernels: "str | KernelBackend | None" = None,
    ) -> None:
        self.params = params
        self.comm = comm
        self.arena = arena
        self.kernels = get_backend(kernels)
        self.decomp = CartesianDecomposition3D.create(params.shape, comm.nprocs)
        rho, u, B = orszag_tang_fields(params.shape, params.u0, params.b0)
        global_state = equilibrium_state(rho, u, B)
        self.states: list[np.ndarray] = self.decomp.scatter(global_state)
        self._state_block: np.ndarray | None = None
        # The batched fast path mutates the state block in place from
        # rank segments; a forked worker's writes only reach the parent
        # when the block lives in shared memory, so on a process
        # executor the fast path requires a shared arena (the harness
        # provisions one) and otherwise the allocating path — whose
        # segments return their results — carries the run.
        fast_ok = (
            arena is not None
            and comm.nprocs > 1
            and not params.use_mrt
            and (comm.executor.in_process or arena.shared)
        )
        if fast_ok:
            lx, ly, lz = self.decomp.local_shape
            block = arena.scratch(
                "lbmhd.state_block", (NSLOTS, comm.nprocs, lx, ly, lz)
            )
            for r, s in enumerate(self.states):
                block[:, r] = s
            self._state_block = block
            self.states = [block[:, r] for r in range(comm.nprocs)]
        self.step_count = 0

    # -- time stepping ---------------------------------------------------

    def step(self) -> None:
        """One fused collide+stream update across all ranks."""
        if self._state_block is not None:
            self._step_fast()
            self.step_count += 1
            return
        local_points = int(np.prod(self.decomp.local_shape))
        args = SimpleNamespace(
            comm=self.comm,
            states=self.states,
            collision=self.params.collision,
            mrt=self.params.mrt if self.params.use_mrt else None,
            work=collision_work(local_points),
            kernels=self.kernels,
        )

        with self.comm.phase("collision"):
            post = self.comm.map_ranks(
                partial(_collide_segment, shm=self.arena, args=args)
            )

        with self.comm.phase("stream"):
            if self.comm.nprocs == 1:
                self.states = [self.kernels.lbmhd_stream_periodic(post[0])]
            else:
                args.post = post
                padded = self.comm.map_ranks(
                    partial(_pad_segment, shm=self.arena, args=args)
                )
                exchange_halos(self.comm, self.decomp, padded)
                args.padded = padded
                self.states = self.comm.map_ranks(
                    partial(_stream_segment, shm=self.arena, args=args)
                )
        self.step_count += 1

    def _step_fast(self) -> None:
        """Arena-backed batched step: zero allocations at steady state."""
        arena = self.arena
        assert arena is not None and self._state_block is not None
        nranks = self.comm.nprocs
        lx, ly, lz = self.decomp.local_shape
        block = self._state_block

        padded_block = arena.scratch(
            "lbmhd.padded_block", (NSLOTS, nranks, lx + 2, ly + 2, lz + 2)
        )
        core = padded_block[:, :, 1 : lx + 1, 1 : ly + 1, 1 : lz + 1]
        work = collision_work(lx * ly * lz)

        # The per-rank slice kernels are bitwise-identical to the
        # batched whole-block kernels (point-local arithmetic, pinned
        # tile width), so the executor only picks which shape runs: a
        # serial executor keeps the batched calls (one large NumPy op
        # beats 2P small ones on a single core), a parallel executor
        # gets per-rank segments that overlap across worker threads.
        # Either way each rank's charge lands in rank order.
        if not self.comm.executor.parallel:

            def collide_rank(rank: int) -> None:
                if rank == 0:
                    # Collide straight into the ghost-padded core: no
                    # separate post-collision buffer, no pack copy.
                    self.kernels.lbmhd_collide(
                        block, self.params.collision, out=core, arena=arena
                    )
                self.comm.compute(rank, work)

            def stream_rank(rank: int) -> None:
                if rank == 0:
                    self.kernels.lbmhd_stream_from_padded_batch(
                        padded_block, out=block
                    )

        else:
            # Each segment writes a disjoint [:, rank] slice and
            # scratches from its own per-rank child arena, so segments
            # are independent (across threads or forked workers alike).
            args = SimpleNamespace(
                comm=self.comm,
                block=block,
                core=core,
                padded=padded_block,
                collision=self.params.collision,
                work=work,
                kernels=self.kernels,
            )
            collide_rank = partial(_collide_block_segment, shm=arena, args=args)
            stream_rank = partial(_stream_block_segment, shm=arena, args=args)

        with self.comm.phase("collision"):
            self.comm.map_ranks(collide_rank)

        with self.comm.phase("stream"):
            exchange_halos_block(self.comm, self.decomp, padded_block)
            self.comm.map_ranks(stream_rank)

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    # -- checkpoint/restart ------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Snapshot the distributions (``repro.resilience.Checkpointable``)."""
        return {
            "step_count": self.step_count,
            "states": [np.array(s, copy=True) for s in self.states],
        }

    def restore_state(self, snapshot: dict) -> None:
        states = snapshot["states"]
        if len(states) != len(self.states):
            raise ValueError("checkpoint rank count mismatch")
        # copy in place: in arena-block mode states[r] are views into
        # the batched block, which _step_fast reads directly
        for dst, src in zip(self.states, states):
            dst[...] = src
        self.step_count = int(snapshot["step_count"])

    # -- observation ------------------------------------------------------

    def global_state(self) -> np.ndarray:
        """Assemble the full (72, gx, gy, gz) state (test/diagnostic use)."""
        return self.decomp.gather(self.states)

    def diagnostics(self) -> Diagnostics:
        """Globally summed conserved quantities (computed exactly)."""
        mass = 0.0
        mom = np.zeros(3)
        totB = np.zeros(3)
        ke = 0.0
        me = 0.0
        for state in self.states:
            rho, u, B = moments(state)
            f, g = split_state(state)
            mass += float(rho.sum())
            mom += np.einsum("ixyz,ia->a", f, _q27_float())
            totB += magnetic_field(g).reshape(3, -1).sum(axis=1)
            ke += kinetic_energy(rho, u)
            me += magnetic_energy(B)
        return Diagnostics(
            step=self.step_count,
            mass=mass,
            momentum=tuple(mom),
            total_B=tuple(totB),
            kinetic_energy=ke,
            magnetic_energy=me,
        )

    @property
    def flops_per_step(self) -> float:
        """Total useful flops per time step (all ranks)."""
        points = int(np.prod(self.params.shape))
        return collision_work(points).flops

    @property
    def register_demand(self) -> float:
        return COLLISION_REGISTER_DEMAND


def _q27_float() -> np.ndarray:
    from .lattice import Q27_VELOCITIES

    return Q27_VELOCITIES.astype(np.float64)
