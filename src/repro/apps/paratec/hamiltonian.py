"""Kohn–Sham Hamiltonian: kinetic + local pseudopotential.

The mini-app uses norm-conserving-style *local* Gaussian
pseudopotentials: each atom contributes

    V_a(G) = -amplitude * exp(-|G|^2 sigma^2 / 2) * e^{-i G . tau_a}

built on the dense FFT grid and transformed to real space once.  The
Hamiltonian application is PARATEC's inner kernel: diagonal kinetic in
G-space plus a real-space potential multiply reached through the
parallel 3-D FFT (forward + inverse per application).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...workload import Work
from .fft3d import ParallelFFT3D
from .gvectors import GSphere, SphereDistribution


@dataclass(frozen=True)
class Atom:
    """One pseudo-atom: fractional position and Gaussian potential."""

    position: tuple[float, float, float]
    amplitude: float = 4.0
    sigma: float = 0.6

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")


def build_local_potential(
    grid_shape: tuple[int, int, int], atoms: list[Atom]
) -> np.ndarray:
    """Real-space local potential on the dense grid (real-valued)."""
    n1, n2, n3 = grid_shape
    g1 = np.fft.fftfreq(n1, d=1.0 / n1)
    g2 = np.fft.fftfreq(n2, d=1.0 / n2)
    g3 = np.fft.fftfreq(n3, d=1.0 / n3)
    gx, gy, gz = np.meshgrid(g1, g2, g3, indexing="ij")
    g_sq = gx**2 + gy**2 + gz**2

    v_g = np.zeros(grid_shape, dtype=complex)
    for atom in atoms:
        tau = np.asarray(atom.position, dtype=float)
        phase = np.exp(
            -2j * np.pi * (gx * tau[0] + gy * tau[1] + gz * tau[2])
        )
        v_g += -atom.amplitude * np.exp(-0.5 * g_sq * atom.sigma**2) * phase
    v_r = np.fft.ifftn(v_g) * (n1 * n2 * n3)
    return v_r.real


@dataclass
class Hamiltonian:
    """Distributed H = -1/2 nabla^2 + V_loc(r) over a sphere distribution."""

    fft: ParallelFFT3D
    potential_slabs: list[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        dist = self.fft.dist
        kin = dist.sphere.kinetic
        self._kinetic_local = [
            kin[dist.points_of(r)] for r in range(dist.nranks)
        ]
        if not self.potential_slabs:
            self.potential_slabs = [
                np.zeros(self.fft.slab_shape(r))
                for r in range(dist.nranks)
            ]
        for r, slab in enumerate(self.potential_slabs):
            if slab.shape != self.fft.slab_shape(r):
                raise ValueError("potential slab shape mismatch")

    @classmethod
    def from_atoms(
        cls,
        fft: ParallelFFT3D,
        atoms: list[Atom],
    ) -> "Hamiltonian":
        v_full = build_local_potential(fft.grid_shape, atoms)
        slabs = [
            np.ascontiguousarray(
                v_full[:, :, slice(*fft.slab_range(r))]
            )
            for r in range(fft.dist.nranks)
        ]
        return cls(fft=fft, potential_slabs=slabs)

    def set_potential(self, slabs: list[np.ndarray]) -> None:
        """Replace the local potential (SCF update)."""
        for r, slab in enumerate(slabs):
            if slab.shape != self.fft.slab_shape(r):
                raise ValueError("potential slab shape mismatch")
        self.potential_slabs = [s.copy() for s in slabs]

    def kinetic_of(self, rank: int) -> np.ndarray:
        return self._kinetic_local[rank]

    def apply(self, psi_locals: list[np.ndarray]) -> list[np.ndarray]:
        """H |psi> for one band stored as per-rank sphere slices."""
        slabs = self.fft.sphere_to_real(psi_locals)
        for r, slab in enumerate(slabs):
            slab *= self.potential_slabs[r]
        v_psi = self.fft.real_to_sphere(slabs)
        return [
            self._kinetic_local[r] * psi_locals[r] + v_psi[r]
            for r in range(len(psi_locals))
        ]

    def apply_work(self, name: str = "paratec.h_apply") -> Work:
        """Per-rank compute Work of one H application (2 FFTs + axpys)."""
        fft_work = self.fft.transform_work(name)
        points = self.fft.dist.sphere.num_g / self.fft.dist.nranks
        extra = Work(
            name=name,
            flops=8.0 * points,
            bytes_unit=16.0 * points * 3,
            vector_fraction=0.97,
            fma_fraction=0.9,
        )
        return fft_work.scaled(2.0).combined(extra, name=name)
