"""Kleinman–Bylander nonlocal pseudopotential projectors.

"The pseudopotentials are of the standard norm-conserving variety" —
norm-conserving pseudopotentials carry, besides the local part, a
separable *nonlocal* term acting per angular-momentum channel:

    V_nl |psi> = sum_a sum_p  D_p  |beta_p^a> <beta_p^a | psi>

The projectors live naturally in G-space (a radial form factor times a
structure phase), so applying ``V_nl`` is two zgemm-shaped contractions
per band — more of exactly the BLAS3-regime work the paper's PARATEC
analysis leans on.

The mini-app uses Gaussian s-channel projectors (one per atom), which
keeps the Hamiltonian Hermitian (tested) and shifts eigenvalues with
the sign of ``D_p`` (tested against perturbation theory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...simmpi.comm import Communicator
from ...workload import Work
from .gvectors import SphereDistribution
from .hamiltonian import Atom


@dataclass(frozen=True)
class NonlocalChannel:
    """One separable projector channel on one atom."""

    atom: Atom
    strength: float = 1.0  # D_p: positive = repulsive channel
    width: float = 0.8  # Gaussian form-factor width (reciprocal units)

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("projector width must be positive")


class NonlocalPotential:
    """Distributed separable V_nl over a sphere distribution.

    Projector coefficients are precomputed per rank; an application is
    ``<beta|psi>`` (local dots + subgroup Allreduce) followed by the
    rank-one updates — the same communication/BLAS3 pattern as the
    production code's nonlocal term.
    """

    def __init__(
        self,
        dist: SphereDistribution,
        comm: Communicator,
        channels: list[NonlocalChannel],
    ) -> None:
        if comm.nprocs != dist.nranks:
            raise ValueError("communicator size does not match distribution")
        self.dist = dist
        self.comm = comm
        self.channels = list(channels)

        sphere = dist.sphere
        g = sphere.vectors.astype(np.float64)
        g_sq = (g**2).sum(axis=1)
        self._beta_local: list[list[np.ndarray]] = []  # [channel][rank]
        for ch in self.channels:
            tau = np.asarray(ch.atom.position)
            phase = np.exp(-2j * np.pi * (g @ tau))
            form = np.exp(-0.5 * g_sq * ch.width**2)
            beta = form * phase
            # normalize so <beta|beta> = 1 over the full sphere
            beta = beta / np.linalg.norm(beta)
            self._beta_local.append(
                [beta[dist.points_of(r)] for r in range(dist.nranks)]
            )

    @property
    def num_projectors(self) -> int:
        return len(self.channels)

    def projections(self, psi_locals: list[np.ndarray]) -> np.ndarray:
        """<beta_p | psi> for every channel (one Allreduce per apply)."""
        partial = np.zeros((self.comm.nprocs, self.num_projectors), dtype=complex)
        for r, psi_r in enumerate(psi_locals):
            for p, betas in enumerate(self._beta_local):
                partial[r, p] = np.vdot(betas[r], psi_r)
        reduced = self.comm.allreduce([partial[r] for r in range(self.comm.nprocs)])
        return reduced[0]

    def apply(self, psi_locals: list[np.ndarray]) -> list[np.ndarray]:
        """V_nl |psi> as per-rank sphere slices."""
        coeffs = self.projections(psi_locals)
        out = [np.zeros_like(p) for p in psi_locals]
        for p, ch in enumerate(self.channels):
            amp = ch.strength * coeffs[p]
            for r in range(self.comm.nprocs):
                out[r] += amp * self._beta_local[p][r]
        return out

    def apply_work(self, name: str = "paratec.nonlocal") -> Work:
        """Per-rank Work of one application (2 x nproj x ng_local zaxpy)."""
        ng_local = self.dist.sphere.num_g / self.dist.nranks
        flops = 16.0 * self.num_projectors * ng_local
        return Work(
            name=name,
            flops=flops,
            bytes_unit=16.0 * self.num_projectors * ng_local * 2,
            blas3_fraction=1.0,
            cache_fraction=0.8,
        )


def attach_nonlocal(hamiltonian, vnl: NonlocalPotential):
    """Wrap a Hamiltonian's ``apply`` to include the nonlocal term.

    Returns the same Hamiltonian object with a composed ``apply``; the
    original local-only behaviour stays available as ``apply_local``.
    """
    if getattr(hamiltonian, "_nonlocal_attached", False):
        raise ValueError("nonlocal term already attached")
    local_apply = hamiltonian.apply

    def apply_with_nonlocal(psi_locals):
        out = local_apply(psi_locals)
        extra = vnl.apply(psi_locals)
        return [a + b for a, b in zip(out, extra)]

    hamiltonian.apply_local = local_apply
    hamiltonian.apply = apply_with_nonlocal
    hamiltonian._nonlocal_attached = True
    hamiltonian.nonlocal_term = vnl
    return hamiltonian
