"""PARATEC mini-app driver tying the pieces to the simulated runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from types import SimpleNamespace

import numpy as np

from ...kernels import KernelBackend, get_backend
from ...simmpi.comm import Communicator
from .cg import Bands, CGOptions, blas3_work
from .fft3d import ParallelFFT3D
from .gvectors import GSphere, SphereDistribution
from .hamiltonian import Atom, Hamiltonian
from .scf import SCFDriver, SCFResult, initial_bands


@dataclass(frozen=True)
class ParatecParams:
    """Configuration of a PARATEC mini-run (laptop-scale defaults)."""

    ecut: float = 8.0
    grid_shape: tuple[int, int, int] = (12, 12, 12)
    nbands: int = 4
    atoms: tuple[Atom, ...] = (
        Atom(position=(0.25, 0.25, 0.25)),
        Atom(position=(0.75, 0.75, 0.75)),
    )
    cg_iterations: int = 5
    scf_iterations: int = 3
    mixing: float = 0.4
    seed: int = 11

    def __post_init__(self) -> None:
        if self.nbands < 1:
            raise ValueError("need at least one band")


def _sweep_segment(rank: int, shm, args) -> None:
    """One rank's CG-sweep compute charges (band loops + BLAS3).

    Module-level ``(rank, shm, args)`` segment (docs/executors.md):
    pure accounting, so it marshals home from forked workers as
    deferred charges with no state to return.
    """
    for _ in range(args.nbands):
        args.comm.compute(rank, args.per_band)
    args.comm.compute(rank, args.blas3)


class Paratec:
    """Distributed plane-wave DFT solve over a simulated communicator."""

    app_key = "paratec"
    #: IPM phase labels of one SCF iteration ("fft" nests inside both:
    #: the global transposes attribute their traffic to it).
    phases = ("cg", "density", "fft")

    def __init__(
        self,
        params: ParatecParams,
        comm: Communicator,
        kernels: "str | KernelBackend | None" = None,
    ) -> None:
        self.params = params
        self.comm = comm
        self.kernels = get_backend(kernels)
        self.sphere = GSphere(params.ecut, params.grid_shape)
        self.dist = SphereDistribution(self.sphere, comm.nprocs)
        self.fft = ParallelFFT3D(self.dist, comm, kernels=self.kernels)
        self.ham = Hamiltonian.from_atoms(self.fft, list(params.atoms))
        self.bands: Bands = initial_bands(
            self.fft, params.nbands, seed=params.seed
        )
        occ = np.zeros(params.nbands)
        occ[: max(1, params.nbands // 2)] = 2.0
        self.driver = SCFDriver(
            comm=comm,
            ham=self.ham,
            occupations=occ,
            cg_options=CGOptions(iterations=params.cg_iterations),
            mixing=params.mixing,
        )
        self.result: SCFResult | None = None

    def run(self, update_density: bool = True) -> SCFResult:
        """Run the SCF cycle, charging compute work as it goes."""
        # charge per-sweep work: per band, ~2 H-applications per CG
        # iteration (each 2 FFTs) + the BLAS3 subspace work.
        self.comm.map_ranks(self._sweep_partial())
        self.result = self.driver.run(
            self.bands,
            max_iterations=self.params.scf_iterations,
            update_density=update_density,
        )
        return self.result

    def scf_step(self, update_density: bool = True) -> SCFResult:
        """One SCF iteration (band solve + density/potential update).

        The harness-facing unit of stepping: charges the per-sweep
        compute work under the "cg" phase, then runs exactly one
        ``solve_bands`` / ``update_potential`` round.  ``run()`` above
        keeps its original all-at-once behavior for direct users.
        """
        with self.comm.phase("cg"):
            self.comm.map_ranks(self._sweep_partial())
        eigenvalues = self.driver.solve_bands(self.bands)
        dv = (
            self.driver.update_potential(self.bands)
            if update_density
            else 0.0
        )
        band_energy = float((self.driver.occupations * eigenvalues).sum())
        self.result = SCFResult(
            eigenvalues=eigenvalues,
            band_energy=band_energy,
            potential_change=dv,
            iterations=1,
        )
        return self.result

    def _sweep_partial(self):
        """The bound per-rank sweep segment for one charging region."""
        ng_local = self.sphere.num_g / self.comm.nprocs
        per_band = self.ham.apply_work().scaled(
            2.0 * self.params.cg_iterations
        )
        return partial(
            _sweep_segment,
            shm=None,
            args=SimpleNamespace(
                comm=self.comm,
                nbands=self.params.nbands,
                per_band=per_band,
                blas3=blas3_work(self.params.nbands, ng_local),
            ),
        )

    def _charge_sweep(self, rank: int, per_band, ng_local: float) -> None:
        """One rank's CG-sweep compute charges (band loops + BLAS3)."""
        for _ in range(self.params.nbands):
            self.comm.compute(rank, per_band)
        self.comm.compute(rank, blas3_work(self.params.nbands, ng_local))

    @property
    def flops_per_step(self) -> float:
        """Total useful flops of one SCF iteration across all ranks."""
        ng_local = self.sphere.num_g / self.comm.nprocs
        per_band = self.ham.apply_work().scaled(
            2.0 * self.params.cg_iterations
        )
        per_rank = (
            self.params.nbands * per_band.flops
            + blas3_work(self.params.nbands, ng_local).flops
        )
        return per_rank * self.comm.nprocs

    # -- checkpoint/restart ------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Snapshot wavefunctions + potential (``Checkpointable``).

        The SCF driver itself is stateless between sweeps: the mixed
        potential lives in the Hamiltonian and ``v_external`` is a
        constant, so bands + potential slabs reproduce any later sweep.
        """
        return {
            "bands": [
                [np.array(a, copy=True) for a in band]
                for band in self.bands
            ],
            "potential_slabs": [
                np.array(s, copy=True) for s in self.ham.potential_slabs
            ],
        }

    def restore_state(self, snapshot: dict) -> None:
        if len(snapshot["bands"]) != len(self.bands):
            raise ValueError("checkpoint band count mismatch")
        self.bands = [
            [np.array(a, copy=True) for a in band]
            for band in snapshot["bands"]
        ]
        self.ham.set_potential(
            [np.array(s, copy=True) for s in snapshot["potential_slabs"]]
        )
        self.result = None

    @property
    def eigenvalues(self) -> np.ndarray:
        if self.result is None:
            raise RuntimeError("run() first")
        return self.result.eigenvalues

    def density(self) -> np.ndarray:
        """Gathered real-space density of the current bands."""
        from .density import accumulate_density

        band_slabs = [self.fft.sphere_to_real(b) for b in self.bands]
        rho = accumulate_density(band_slabs, self.driver.occupations)
        return np.concatenate(rho, axis=2)
