"""Hand-written parallel 3-D FFT between the G-sphere and real space.

"We use our own handwritten 3D FFTs rather than library routines as the
data layout in Fourier space is a sphere of points ... The global data
transposes within these FFT operations account for the bulk of
PARATEC's communication overhead, and can quickly become the bottleneck
at high concurrencies."

Layout and algorithm (the standard PARATEC scheme):

* In Fourier space each rank owns whole (gx, gy) *columns* of the
  sphere (load balanced, :mod:`repro.apps.paratec.gvectors`).
* In real space each rank owns a contiguous slab of z-planes.
* Sphere -> real: scatter sphere points into the owned columns, 1-D
  inverse FFT along z per column, global transpose (Alltoallv) from
  column to slab layout, then 2-D inverse FFTs in each z-plane.
* Real -> sphere reverses the steps with forward FFTs.

The transforms are exact inverses of each other and match the dense
``numpy.fft`` reference (tests enforce both to machine precision).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from types import SimpleNamespace

import numpy as np

from ...kernels import KernelBackend, get_backend
from ...runtime.arena import Arena
from ...simmpi.comm import Communicator
from ...workload import Work
from .gvectors import GSphere, SphereDistribution, _wrap_index

# -- rank segments -----------------------------------------------------
#
# Module-level ``(rank, shm, args)`` callables (docs/executors.md).
# ``args.plan`` is the ParallelFFT3D engine itself: its column/slab
# tables are built once in ``__post_init__`` and immutable afterwards
# (partition-and-build-once), so segments only read it.  Every segment
# returns a fresh array — arena staging buffers are scratch, never the
# result — which keeps the transforms correct under forked workers.


def _line_segment(rank: int, shm, args) -> np.ndarray:
    """Scatter one rank's sphere points into columns; inverse-FFT in z."""
    plan = args.plan
    ncol = len(plan._col_keys[rank])
    n3 = plan.grid_shape[2]
    if shm is not None:
        line = shm.for_rank(rank).scratch(
            "paratec.line", (ncol, n3), np.complex128
        )
        line.fill(0.0)
    else:
        line = np.zeros((ncol, n3), dtype=complex)
    line[plan._col_of_point[rank], plan._gz_of_point[rank]] = args.coeffs[
        rank
    ]
    return plan.kernels.paratec_ifft_z(line)


def _ifft2_segment(rank: int, shm, args) -> np.ndarray:
    return args.kernels.paratec_ifft2_planes(args.slabs[rank])


def _fft2_segment(rank: int, shm, args) -> np.ndarray:
    return args.kernels.paratec_fft2_planes(args.slabs[rank])


def _pack_columns_segment(i: int, shm, args) -> list[np.ndarray]:
    """Allocating-path pack: one contiguous z-window per destination."""
    plan = args.plan
    return [
        np.ascontiguousarray(
            args.lines[i][
                :, plan._slab_bounds[j] : plan._slab_bounds[j + 1]
            ]
        )
        for j in range(args.p)
    ]


def _unpack_slab_segment(j: int, shm, args) -> np.ndarray:
    """Place every rank's delivered columns into rank j's slab."""
    plan = args.plan
    n1, n2, _ = plan.grid_shape
    nz = plan.slab_shape(j)[2]
    if shm is not None:
        rank_arena = shm.for_rank(j)
        slab = rank_arena.scratch(
            "paratec.slab", (n1, n2, nz), np.complex128
        )
        slab.fill(0.0)
        off = plan._col_offsets
        rows = rank_arena.scratch(
            "paratec.rows", (int(off[-1]), nz), np.complex128
        )
        for i in range(args.p):
            rows[off[i] : off[i + 1]] = args.recv[j][i]
        slab[plan._all_keys[:, 0], plan._all_keys[:, 1], :] = rows
    else:
        slab = np.zeros((n1, n2, nz), dtype=complex)
        for i in range(args.p):
            keys = plan._col_keys[i]
            slab[keys[:, 0], keys[:, 1], :] = args.recv[j][i]
    return slab


def _zline_segment(i: int, shm, args) -> np.ndarray:
    """Reassemble full z-lines, forward-FFT, pull the sphere points."""
    plan = args.plan
    n3 = plan.grid_shape[2]
    ncol = len(plan._col_keys[i])
    if shm is not None:
        line = shm.for_rank(i).scratch(
            "paratec.zline", (ncol, n3), np.complex128
        )
    else:
        line = np.empty((ncol, n3), dtype=complex)
    for j in range(args.p):
        lo, hi = plan.slab_range(j)
        line[:, lo:hi] = args.recv[i][j]
    fz = plan.kernels.paratec_fft_z(line)
    return fz[plan._col_of_point[i], plan._gz_of_point[i]]


def _pack_slab_segment(j: int, shm, args) -> list[np.ndarray]:
    """Allocating-path pack: gather each destination's columns."""
    plan = args.plan
    return [
        np.ascontiguousarray(
            args.f2s[j][
                plan._col_keys[i][:, 0], plan._col_keys[i][:, 1], :
            ]
        )
        for i in range(args.p)
    ]


def _pack_slab_stacked_segment(j: int, shm, args) -> list[np.ndarray]:
    """Arena-path pack: one stacked gather, row-range views per rank."""
    plan = args.plan
    off = plan._col_offsets
    allcols = args.f2s[j][plan._all_keys[:, 0], plan._all_keys[:, 1], :]
    return [allcols[off[i] : off[i + 1]] for i in range(args.p)]


@dataclass
class ParallelFFT3D:
    """Distributed sphere <-> slab transform engine over a communicator.

    With an :class:`~repro.runtime.arena.Arena` the global transposes
    run the zero-copy fast path: boundary sub-blocks are posted as
    views (``alltoallv(copy=False)``), scatter/gather staging buffers
    are drawn from the arena, and per-pair unpack loops collapse into
    one stacked placement per rank.  The moved values are identical, so
    transforms are bitwise-equal to the allocating path.
    """

    dist: SphereDistribution
    comm: Communicator
    arena: Arena | None = None
    kernels: "str | KernelBackend | None" = None

    def __post_init__(self) -> None:
        self.kernels = get_backend(self.kernels)
        if self.comm.nprocs != self.dist.nranks:
            raise ValueError("communicator size does not match distribution")
        sphere = self.dist.sphere
        n1, n2, n3 = sphere.grid_shape
        ix, iy, iz = sphere.grid_indices()
        cols = sphere.columns()

        # Per-rank column bookkeeping.
        self._col_keys: list[np.ndarray] = []  # (ncol, 2) wrapped (ix, iy)
        self._col_of_point: list[np.ndarray] = []  # local point -> local col
        self._gz_of_point: list[np.ndarray] = []  # local point -> z index
        for rank in range(self.dist.nranks):
            col_ids = self.dist.columns_of(rank)
            keys = np.array(
                [
                    (
                        _wrap_index(np.array(cols[c][0][0]), n1),
                        _wrap_index(np.array(cols[c][0][1]), n2),
                    )
                    for c in col_ids
                ],
                dtype=np.int64,
            ).reshape(-1, 2)
            self._col_keys.append(keys)

            pts = self.dist.points_of(rank)
            # map each owned point to its local column index
            key_lookup = {
                (int(k[0]), int(k[1])): idx for idx, k in enumerate(keys)
            }
            col_idx = np.array(
                [key_lookup[(int(ix[p]), int(iy[p]))] for p in pts],
                dtype=np.int64,
            )
            self._col_of_point.append(col_idx)
            self._gz_of_point.append(iz[pts])

        # z-slab ownership in real space.
        self._slab_bounds = np.linspace(0, n3, self.dist.nranks + 1).astype(
            int
        )

        # Stacked column bookkeeping for the batched transpose: all
        # ranks' column keys concatenated, plus each rank's offset into
        # the stack (rank i owns rows off[i]:off[i+1]).
        self._all_keys = np.concatenate(self._col_keys, axis=0)
        ncols = np.array([len(k) for k in self._col_keys], dtype=np.int64)
        self._col_offsets = np.concatenate(([0], np.cumsum(ncols)))

    # -- layout helpers -----------------------------------------------------

    @property
    def grid_shape(self) -> tuple[int, int, int]:
        return self.dist.sphere.grid_shape

    def slab_range(self, rank: int) -> tuple[int, int]:
        """Half-open z-plane range owned by a rank."""
        return int(self._slab_bounds[rank]), int(self._slab_bounds[rank + 1])

    def slab_shape(self, rank: int) -> tuple[int, int, int]:
        n1, n2, _ = self.grid_shape
        lo, hi = self.slab_range(rank)
        return (n1, n2, hi - lo)

    def gather_slabs(self, slabs: list[np.ndarray]) -> np.ndarray:
        """Assemble per-rank z-slabs into the full real-space grid."""
        return np.concatenate(slabs, axis=2)

    # -- transforms -----------------------------------------------------------

    def sphere_to_real(self, coeffs: list[np.ndarray]) -> list[np.ndarray]:
        """psi(G) (per-rank sphere slices) -> psi(r) (per-rank z-slabs).

        Uses the ``numpy.fft.ifftn`` normalization (1/N on the inverse),
        so the composition with :meth:`real_to_sphere` is the identity.
        """
        # 1. scatter points into columns; 1-D inverse FFT along z.
        lines = self.comm.map_ranks(
            partial(
                _line_segment,
                shm=self.arena,
                args=SimpleNamespace(plan=self, coeffs=coeffs),
            )
        )

        # 2 + 3. global transpose, then 2-D inverse FFT per plane.
        slabs = self.transpose_columns_to_slabs(lines)
        return self.comm.map_ranks(
            partial(
                _ifft2_segment,
                shm=self.arena,
                args=SimpleNamespace(slabs=slabs, kernels=self.kernels),
            )
        )

    def transpose_columns_to_slabs(
        self, lines: list[np.ndarray]
    ) -> list[np.ndarray]:
        """The column->slab global transpose (pack, Alltoallv, unpack).

        ``lines[i]`` is rank i's ``(ncol_i, n3)`` z-lines; returns each
        rank's ``(n1, n2, nz_j)`` slab with the sphere columns placed
        (zero elsewhere), before any planar FFT.  The allocating path
        packs every ``(i, j)`` sub-block contiguously and lets the
        Alltoallv copy; the arena path posts z-window *views*, delivers
        them uncopied, and stages each destination's rows once for a
        single stacked scatter per rank.
        """
        p = self.comm.nprocs
        if self.arena is None:
            send = self.comm.map_ranks(
                partial(
                    _pack_columns_segment,
                    shm=None,
                    args=SimpleNamespace(plan=self, lines=lines, p=p),
                )
            )
            with self.comm.phase("fft"):
                recv = self.comm.alltoallv(send)
        else:
            send = [
                [
                    lines[i][
                        :, self._slab_bounds[j] : self._slab_bounds[j + 1]
                    ]
                    for j in range(p)
                ]
                for i in range(p)
            ]
            with self.comm.phase("fft"):
                recv = self.comm.alltoallv(send, copy=False)

        return self.comm.map_ranks(
            partial(
                _unpack_slab_segment,
                shm=self.arena,
                args=SimpleNamespace(plan=self, recv=recv, p=p),
            )
        )

    def real_to_sphere(self, slabs: list[np.ndarray]) -> list[np.ndarray]:
        """psi(r) (per-rank z-slabs) -> psi(G) (per-rank sphere slices).

        High-frequency grid content outside the sphere is discarded —
        exactly PARATEC's cutoff projection.
        """
        p = self.comm.nprocs

        # 1. 2-D forward FFT per plane.
        f2s = self.comm.map_ranks(
            partial(
                _fft2_segment,
                shm=self.arena,
                args=SimpleNamespace(slabs=slabs, kernels=self.kernels),
            )
        )

        # 2. global transpose slabs -> columns.
        recv = self.transpose_slabs_to_columns(f2s)

        # 3. reassemble full z-lines; forward FFT along z; pull points.
        return self.comm.map_ranks(
            partial(
                _zline_segment,
                shm=self.arena,
                args=SimpleNamespace(plan=self, recv=recv, p=p),
            )
        )

    def transpose_slabs_to_columns(
        self, f2s: list[np.ndarray]
    ) -> list[list[np.ndarray]]:
        """The slab->column global transpose (pack, Alltoallv, unpack).

        ``f2s[j]`` is rank j's planar-transformed ``(n1, n2, nz_j)``
        slab; returns ``recv`` with ``recv[i][j]`` = rank i's columns
        restricted to rank j's planes (rank j sends ``send[j][i]`` to
        rank i).  The allocating path gathers each ``(j, i)`` block
        contiguously; the arena path gathers *all* columns of a slab in
        one stacked fancy-index per rank and posts row-range views,
        delivered uncopied.
        """
        p = self.comm.nprocs
        if self.arena is None:
            send = self.comm.map_ranks(
                partial(
                    _pack_slab_segment,
                    shm=None,
                    args=SimpleNamespace(plan=self, f2s=f2s, p=p),
                )
            )
            with self.comm.phase("fft"):
                return self.comm.alltoallv(send)

        # One gather for every destination at once; the per-rank blocks
        # are row ranges (views) of the stacked result.
        send = self.comm.map_ranks(
            partial(
                _pack_slab_stacked_segment,
                shm=self.arena,
                args=SimpleNamespace(plan=self, f2s=f2s, p=p),
            )
        )
        with self.comm.phase("fft"):
            return self.comm.alltoallv(send, copy=False)

    # -- cost accounting --------------------------------------------------

    def transform_work(self, name: str = "paratec.fft3d") -> Work:
        """Per-rank compute Work of one distributed transform."""
        n1, n2, n3 = self.grid_shape
        n_total = n1 * n2 * n3
        flops = 5.0 * n_total * np.log2(max(n_total, 2)) / self.comm.nprocs
        return Work(
            name=name,
            flops=flops,
            bytes_unit=16.0 * n_total / self.comm.nprocs * 4,
            vector_fraction=0.95,
            avg_vector_length=float(min(256, max(n1, n3))),
            fma_fraction=0.8,
            cache_fraction=0.6,
        )
