"""Self-consistent field driver for the PARATEC mini-app."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...simmpi.comm import Communicator
from .cg import Bands, CGOptions, cg_band, dot, subspace_rotation
from .density import (
    accumulate_density,
    exchange_potential,
    hartree_potential,
    mix_potentials,
)
from .fft3d import ParallelFFT3D
from .hamiltonian import Hamiltonian


@dataclass
class SCFResult:
    """Outcome of one SCF cycle."""

    eigenvalues: np.ndarray
    band_energy: float
    potential_change: float
    iterations: int


def initial_bands(
    fft: ParallelFFT3D, nbands: int, seed: int = 11
) -> Bands:
    """Random starting bands (orthogonalized by the first CG sweep).

    Coefficients are drawn for the *full sphere* and then scattered, so
    the starting point — and hence every SCF iterate — is independent of
    the processor count (tests rely on this decomposition invariance).
    """
    rng = np.random.default_rng(seed)
    dist = fft.dist
    bands: Bands = []
    for _ in range(nbands):
        full = rng.standard_normal(dist.sphere.num_g) + 1j * rng.standard_normal(
            dist.sphere.num_g
        )
        bands.append(dist.scatter(full))
    return bands


@dataclass
class SCFDriver:
    """Iterates bands -> density -> potential to self-consistency."""

    comm: Communicator
    ham: Hamiltonian
    occupations: np.ndarray
    cg_options: CGOptions = field(default_factory=CGOptions)
    mixing: float = 0.5
    v_external: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.v_external is None:
            # the current hamiltonian potential *is* the external one
            self.v_external = self.ham.fft.gather_slabs(
                self.ham.potential_slabs
            ).copy()

    def solve_bands(self, bands: Bands) -> np.ndarray:
        """One CG sweep over all bands + subspace rotation."""
        with self.comm.phase("cg"):
            for b, band in enumerate(bands):
                cg_band(self.comm, self.ham, band, bands[:b], self.cg_options)
            return subspace_rotation(self.comm, self.ham, bands)

    def update_potential(self, bands: Bands) -> float:
        """Recompute V_eff from the band density; returns |dV|_max."""
        fft = self.ham.fft
        with self.comm.phase("density"):
            band_slabs = [fft.sphere_to_real(band) for band in bands]
            rho_slabs = accumulate_density(band_slabs, self.occupations)
            rho = np.concatenate(rho_slabs, axis=2)
            v_new = (
                self.v_external
                + hartree_potential(rho)
                + exchange_potential(rho)
            )
            v_old = fft.gather_slabs(self.ham.potential_slabs)
            v_mixed = mix_potentials(v_old, v_new, self.mixing)
            slabs = [
                np.ascontiguousarray(v_mixed[:, :, slice(*fft.slab_range(r))])
                for r in range(fft.dist.nranks)
            ]
            self.ham.set_potential(slabs)
            return float(np.abs(v_mixed - v_old).max())

    def run(
        self,
        bands: Bands,
        max_iterations: int = 5,
        tolerance: float = 1e-4,
        update_density: bool = True,
    ) -> SCFResult:
        eigenvalues = np.zeros(len(bands))
        dv = 0.0
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            eigenvalues = self.solve_bands(bands)
            if not update_density:
                dv = 0.0
                break
            dv = self.update_potential(bands)
            if dv < tolerance:
                break
        band_energy = float((self.occupations * eigenvalues).sum())
        return SCFResult(
            eigenvalues=eigenvalues,
            band_energy=band_energy,
            potential_change=dv,
            iterations=iterations,
        )
