"""PARATEC — plane-wave density functional theory (paper §6)."""

from .cg import (
    Bands,
    CGOptions,
    axpy,
    blas3_work,
    cg_band,
    dot,
    normalize,
    orthogonalize,
    subspace_rotation,
)
from .density import (
    accumulate_density,
    exchange_potential,
    hartree_potential,
    mix_potentials,
    total_potential,
)
from .fft3d import ParallelFFT3D
from .forces import (
    external_energy,
    hellmann_feynman_forces,
    relax_atoms,
)
from .projectors import (
    NonlocalChannel,
    NonlocalPotential,
    attach_nonlocal,
)
from .gvectors import GSphere, SphereDistribution, load_balance_columns
from .hamiltonian import Atom, Hamiltonian, build_local_potential
from .scf import SCFDriver, SCFResult, initial_bands
from .solver import Paratec, ParatecParams
from .workload import (
    FLOPS_PER_CG_STEP,
    NBANDS,
    NUM_G,
    TABLE6_ROWS,
    ParatecScenario,
    predict,
)

__all__ = [
    "Atom",
    "Bands",
    "CGOptions",
    "FLOPS_PER_CG_STEP",
    "GSphere",
    "Hamiltonian",
    "NBANDS",
    "NonlocalChannel",
    "NonlocalPotential",
    "NUM_G",
    "ParallelFFT3D",
    "Paratec",
    "ParatecParams",
    "ParatecScenario",
    "SCFDriver",
    "SCFResult",
    "SphereDistribution",
    "TABLE6_ROWS",
    "accumulate_density",
    "attach_nonlocal",
    "axpy",
    "blas3_work",
    "build_local_potential",
    "cg_band",
    "dot",
    "exchange_potential",
    "external_energy",
    "hartree_potential",
    "hellmann_feynman_forces",
    "initial_bands",
    "load_balance_columns",
    "mix_potentials",
    "normalize",
    "orthogonalize",
    "predict",
    "relax_atoms",
    "subspace_rotation",
    "total_potential",
]
