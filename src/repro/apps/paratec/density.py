"""Charge density and self-consistent potentials (Hartree + LDA-x).

The density is accumulated in real space on the distributed z-slabs as
bands come out of the FFT; the SCF potential update (Hartree solve in
G-space plus a Slater exchange term) runs on the gathered dense grid —
a replicated, O(grid) step that is negligible next to the per-band FFT
and BLAS3 work, mirroring PARATEC's own cost structure.
"""

from __future__ import annotations

import numpy as np


def accumulate_density(
    band_slabs: list[list[np.ndarray]], occupations: np.ndarray
) -> list[np.ndarray]:
    """rho(r) slabs from per-band real-space slabs.

    ``band_slabs[b][rank]`` is band b's wavefunction on rank's slab.
    """
    if len(band_slabs) != len(occupations):
        raise ValueError("need one occupation per band")
    nranks = len(band_slabs[0])
    rho = [np.zeros(band_slabs[0][r].shape) for r in range(nranks)]
    for occ, slabs in zip(occupations, band_slabs):
        for r in range(nranks):
            rho[r] += occ * np.abs(slabs[r]) ** 2
    return rho


def hartree_potential(rho: np.ndarray) -> np.ndarray:
    """V_H from  nabla^2 V_H = -4 pi rho  on the periodic dense grid.

    The G=0 component (net charge) is dropped, as in any plane-wave
    code with a compensating background.
    """
    shape = rho.shape
    axes_freqs = [np.fft.fftfreq(n, d=1.0 / n) for n in shape]
    gx, gy, gz = np.meshgrid(*axes_freqs, indexing="ij")
    g_sq = (2.0 * np.pi) ** 2 * (gx**2 + gy**2 + gz**2)
    rho_g = np.fft.fftn(rho)
    with np.errstate(divide="ignore", invalid="ignore"):
        v_g = np.where(g_sq > 0, 4.0 * np.pi * rho_g / g_sq, 0.0)
    return np.fft.ifftn(v_g).real


def exchange_potential(rho: np.ndarray) -> np.ndarray:
    """Slater LDA exchange  V_x = -(3 rho / pi)^(1/3)."""
    return -np.cbrt(3.0 * np.maximum(rho, 0.0) / np.pi)


def total_potential(
    rho: np.ndarray, v_external: np.ndarray
) -> np.ndarray:
    """V_eff = V_ext + V_H[rho] + V_x[rho]."""
    if rho.shape != v_external.shape:
        raise ValueError("density and potential grids differ")
    return v_external + hartree_potential(rho) + exchange_potential(rho)


def mix_potentials(
    v_old: np.ndarray, v_new: np.ndarray, alpha: float = 0.5
) -> np.ndarray:
    """Linear (Kerker-free) potential mixing for SCF stability."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("mixing parameter must be in (0, 1]")
    return (1.0 - alpha) * v_old + alpha * v_new
