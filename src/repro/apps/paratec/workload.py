"""Paper-scale performance prediction for PARATEC (Table 6).

The benchmark is "3 CG steps of a 488 atom CdSe quantum dot ... with a
35 Ry cut-off", the largest cell ever run with the code.  The synthetic
workload keeps the real run's proportions: ~60% of the flops in BLAS3
(subspace linear algebra), ~30% in the handwritten 3-D FFTs, ~10% in
other F90 loops, with the FFT transposes carrying essentially all of
the communication — "architectures with a poor balance between their
bisection bandwidth and computational rate will suffer performance
degradation at higher concurrencies".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...machines.catalog import get_machine
from ...machines.processor import make_model
from ...machines.spec import MachineSpec
from ...network.collectives import CollectiveModel
from ...network.model import NetworkModel
from ...perfmodel.efficiency import get_calibration
from ...perfmodel.report import PerfResult
from ...workload import Work, combine

#: CdSe quantum-dot benchmark geometry (§6.1): 488 atoms, 35 Ry.
NBANDS = 1100
FFT_GRID = (180, 180, 180)
NUM_G = 1_200_000

#: Total flops of one CG step (all ranks), and their split.
FLOPS_PER_CG_STEP = 8.0e12
BLAS3_FRACTION = 0.60
FFT_FRACTION = 0.30
OTHER_FRACTION = 0.10

#: Distributed FFTs per band per CG step (H|p>: forward + inverse) and
#: the band blocking of the transposes (bands aggregated per Alltoall).
FFTS_PER_BAND = 2
TRANSPOSES_PER_FFT = 2
BAND_BLOCK = 64


@dataclass(frozen=True)
class ParatecScenario:
    """One Table 6 row: the CdSe dot at one concurrency."""

    nprocs: int

    @property
    def label(self) -> str:
        return "488-CdSe"


TABLE6_ROWS: tuple[ParatecScenario, ...] = tuple(
    ParatecScenario(p) for p in (64, 128, 256, 512, 1024, 2048)
)


def rank_work(spec: MachineSpec, nprocs: int) -> Work:
    """Per-rank compute Work of one CG step."""
    flops = FLOPS_PER_CG_STEP / nprocs
    n_total = float(np.prod(FFT_GRID))

    blas3 = Work(
        name="paratec.blas3",
        flops=flops * BLAS3_FRACTION,
        bytes_unit=flops * BLAS3_FRACTION / 16.0,  # high reuse zgemm
        blas3_fraction=1.0,
        cache_fraction=0.9,
    )
    fft = Work(
        name="paratec.fft",
        flops=flops * FFT_FRACTION,
        bytes_unit=flops * FFT_FRACTION / 1.5,  # ~1.5 flops/byte
        vector_fraction=0.94,
        avg_vector_length=float(min(256, FFT_GRID[0])),
        fma_fraction=0.8,
        cache_fraction=0.6,
    )
    other = Work(
        name="paratec.f90",
        flops=flops * OTHER_FRACTION,
        bytes_unit=flops * OTHER_FRACTION / 1.0,
        vector_fraction=0.88,
        avg_vector_length=128.0,
        fma_fraction=0.7,
        cache_fraction=0.4,
    )
    return combine([blas3, fft, other], name="paratec.cg_step")


def kernel_works(spec: MachineSpec, scenario: ParatecScenario) -> dict:
    """Named per-rank compute kernels of one CG step (for breakdowns)."""
    flops = FLOPS_PER_CG_STEP / scenario.nprocs
    return {
        "BLAS3 (subspace)": Work(
            name="paratec.blas3",
            flops=flops * BLAS3_FRACTION,
            bytes_unit=flops * BLAS3_FRACTION / 16.0,
            blas3_fraction=1.0,
            cache_fraction=0.9,
        ),
        "3D FFT": Work(
            name="paratec.fft",
            flops=flops * FFT_FRACTION,
            bytes_unit=flops * FFT_FRACTION / 1.5,
            vector_fraction=0.94,
            avg_vector_length=float(min(256, FFT_GRID[0])),
            fma_fraction=0.8,
            cache_fraction=0.6,
        ),
        "other F90": Work(
            name="paratec.f90",
            flops=flops * OTHER_FRACTION,
            bytes_unit=flops * OTHER_FRACTION / 1.0,
            vector_fraction=0.88,
            avg_vector_length=128.0,
            fma_fraction=0.7,
            cache_fraction=0.4,
        ),
    }


def comm_times(spec: MachineSpec, scenario: ParatecScenario) -> dict:
    """Named per-rank communication costs of one CG step."""
    p = scenario.nprocs
    net = NetworkModel(spec, p)
    coll = CollectiveModel(net)
    bytes_per_rank_per_fft = TRANSPOSES_PER_FFT * 16.0 * NUM_G / p
    total_bytes = NBANDS * FFTS_PER_BAND * bytes_per_rank_per_fft
    num_alltoalls = max(
        1, NBANDS * FFTS_PER_BAND * TRANSPOSES_PER_FFT // BAND_BLOCK
    )
    per_alltoall_bytes = total_bytes / num_alltoalls
    return {
        "FFT transposes": num_alltoalls
        * coll.transpose(per_alltoall_bytes, p)
    }


def step_time(spec: MachineSpec, scenario: ParatecScenario) -> tuple[float, float]:
    """(compute_seconds, comm_seconds) per CG step per rank."""
    p = scenario.nprocs
    model = make_model(spec)
    t_comp = model.time(rank_work(spec, p))

    net = NetworkModel(spec, p)
    coll = CollectiveModel(net)
    # "Even though the 3D FFT was written to minimize global
    # communications": only the populated sphere columns move through
    # the transposes — every rank redistributes its 1/P share of the
    # ~NUM_G complex coefficients, twice per FFT.
    bytes_per_rank_per_fft = TRANSPOSES_PER_FFT * 16.0 * NUM_G / p
    total_bytes = NBANDS * FFTS_PER_BAND * bytes_per_rank_per_fft
    num_alltoalls = max(
        1, NBANDS * FFTS_PER_BAND * TRANSPOSES_PER_FFT // (BAND_BLOCK)
    )
    per_alltoall_bytes = total_bytes / num_alltoalls
    t_comm = num_alltoalls * coll.transpose(per_alltoall_bytes, p)
    return t_comp, t_comm


def predict(machine: str, scenario: ParatecScenario) -> PerfResult:
    """Modeled Table 6 cell for one machine."""
    spec = get_machine(machine)
    t_comp, t_comm = step_time(spec, scenario)
    residual = get_calibration("paratec", spec.name)
    t_total = t_comp / residual + t_comm
    flops = FLOPS_PER_CG_STEP / scenario.nprocs
    return PerfResult(
        app="paratec",
        machine=spec.name,
        nprocs=scenario.nprocs,
        gflops_per_proc=flops / t_total / 1e9,
        config=scenario.label,
        wall_seconds=t_total,
        total_flops=FLOPS_PER_CG_STEP,
    )
