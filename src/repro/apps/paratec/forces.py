"""Hellmann–Feynman forces and structural relaxation.

"Forces can be easily calculated and used to relax the atoms into their
equilibrium positions."  For the local Gaussian pseudopotentials of the
mini-app the force on atom ``a`` is the Hellmann–Feynman expression

    F_a = - dE_ext / d tau_a
        = - sum_G  conj(rho(G)) * (-2 pi i G) * V_a(G)

with the electron density's Fourier coefficients ``rho(G)`` and the
atom's bare potential ``V_a(G)``.  Forces are validated against finite
differences of the external energy in the test suite.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .hamiltonian import Atom, build_local_potential


def _grid_frequencies(shape: tuple[int, int, int]):
    axes = [np.fft.fftfreq(n, d=1.0 / n) for n in shape]
    return np.meshgrid(*axes, indexing="ij")


def _atom_potential_g(
    shape: tuple[int, int, int], atom: Atom
) -> np.ndarray:
    gx, gy, gz = _grid_frequencies(shape)
    g_sq = gx**2 + gy**2 + gz**2
    tau = np.asarray(atom.position)
    phase = np.exp(-2j * np.pi * (gx * tau[0] + gy * tau[1] + gz * tau[2]))
    return -atom.amplitude * np.exp(-0.5 * g_sq * atom.sigma**2) * phase


def external_energy(rho: np.ndarray, atoms: list[Atom]) -> float:
    """E_ext = sum_r rho(r) V_ext(r) / N (grid-average convention)."""
    v = build_local_potential(rho.shape, atoms)
    return float((rho * v).sum() / np.prod(rho.shape))


def hellmann_feynman_forces(
    rho: np.ndarray, atoms: list[Atom]
) -> np.ndarray:
    """Forces on every atom, shape (natoms, 3), in fractional units.

    ``rho`` is the real-space electron density on the dense grid.
    """
    shape = rho.shape
    n = np.prod(shape)
    rho_g = np.fft.fftn(rho) / n
    gx, gy, gz = _grid_frequencies(shape)

    forces = np.zeros((len(atoms), 3))
    for a, atom in enumerate(atoms):
        v_g = _atom_potential_g(shape, atom)
        common = np.conj(rho_g) * v_g
        # dE/dtau_alpha = sum_G conj(rho) * (-2 pi i G_alpha) V; F = -dE.
        for alpha, g_alpha in enumerate((gx, gy, gz)):
            dE = np.real((common * (-2j * np.pi * g_alpha)).sum())
            forces[a, alpha] = -dE
    return forces


def relax_atoms(
    rho: np.ndarray,
    atoms: list[Atom],
    step: float = 0.02,
    iterations: int = 20,
    force_tolerance: float = 1e-4,
) -> tuple[list[Atom], np.ndarray, list[float]]:
    """Steepest-descent relaxation of atoms in a *frozen* density.

    Returns (relaxed atoms, final forces, energy history).  A frozen-
    density relaxation is the inner step of the full self-consistent
    relaxation loop; each energy must be non-increasing when the step
    is small (tests enforce this).
    """
    if step <= 0 or iterations < 1:
        raise ValueError("need positive step and at least one iteration")
    current = list(atoms)
    energies = [external_energy(rho, current)]
    forces = hellmann_feynman_forces(rho, current)
    for _ in range(iterations):
        if np.abs(forces).max() < force_tolerance:
            break
        current = [
            replace(
                atom,
                position=tuple(
                    (np.asarray(atom.position) + step * f) % 1.0
                ),
            )
            for atom, f in zip(current, forces)
        ]
        energies.append(external_energy(rho, current))
        forces = hellmann_feynman_forces(rho, current)
    return current, forces, energies
