"""Band-by-band conjugate-gradient eigensolver with subspace rotation.

PARATEC "uses an all-band conjugate gradient (CG) approach to solve the
Kohn-Sham equations".  The mini-app implements the classic
Teter–Payne–Allan band-sweep CG: each band is relaxed by preconditioned
CG on the Rayleigh quotient while kept orthogonal to the lower bands,
followed by a subspace rotation (the dense-linear-algebra/BLAS3 part).
All inner products over the distributed G-sphere go through subgroup
``Allreduce`` — scalar results are identical to a serial run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...kernels import get_backend
from ...simmpi.comm import Communicator
from ...workload import Work
from .hamiltonian import Hamiltonian

#: Distributed band storage: bands x per-rank sphere slices.
Bands = list[list[np.ndarray]]


def dot(comm: Communicator, a: list[np.ndarray], b: list[np.ndarray]) -> complex:
    """Global <a|b> over per-rank slices (one scalar Allreduce)."""
    partial = [
        np.array([np.vdot(ar, br)]) for ar, br in zip(a, b)
    ]
    return complex(comm.allreduce(partial)[0][0])


def axpy(y: list[np.ndarray], alpha: complex, x: list[np.ndarray]) -> None:
    """y += alpha x, slice-wise in place (kernel-backend dispatched)."""
    kernels = get_backend()
    for yr, xr in zip(y, x):
        kernels.paratec_cg_axpy(yr, alpha, xr)


def scale(x: list[np.ndarray], alpha: complex) -> None:
    kernels = get_backend()
    for xr in x:
        kernels.paratec_cg_scale(xr, alpha)


def normalize(comm: Communicator, x: list[np.ndarray]) -> float:
    norm = np.sqrt(abs(dot(comm, x, x)))
    if norm == 0.0:
        raise ZeroDivisionError("cannot normalize a zero vector")
    scale(x, 1.0 / norm)
    return float(norm)


def orthogonalize(
    comm: Communicator, x: list[np.ndarray], against: Bands
) -> None:
    """Project the span of ``against`` (assumed orthonormal) out of x."""
    for band in against:
        overlap = dot(comm, band, x)
        axpy(x, -overlap, band)


@dataclass(frozen=True)
class CGOptions:
    iterations: int = 5
    preconditioner_energy: float = 2.0

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("need at least one CG iteration")
        if self.preconditioner_energy <= 0:
            raise ValueError("preconditioner energy must be positive")


def _precondition(
    ham: Hamiltonian, g: list[np.ndarray], e_ref: float
) -> list[np.ndarray]:
    """Teter-style diagonal kinetic preconditioner 1/(1 + T/E)."""
    kernels = get_backend()
    out = []
    for r, gr in enumerate(g):
        t = ham.kinetic_of(r)
        out.append(kernels.paratec_cg_precondition(gr, t, e_ref))
    return out


def cg_band(
    comm: Communicator,
    ham: Hamiltonian,
    x: list[np.ndarray],
    lower_bands: Bands,
    opts: CGOptions,
) -> float:
    """Relax one band in place; returns its final Rayleigh quotient."""
    orthogonalize(comm, x, lower_bands)
    normalize(comm, x)
    hx = ham.apply(x)
    eps = dot(comm, x, hx).real

    d_prev: list[np.ndarray] | None = None
    g_dot_prev = 0.0
    for _ in range(opts.iterations):
        # steepest descent residual, projected
        g = [hr - eps * xr for hr, xr in zip(hx, x)]
        pg = _precondition(ham, g, opts.preconditioner_energy)
        orthogonalize(comm, pg, lower_bands)
        overlap = dot(comm, x, pg)
        axpy(pg, -overlap, x)

        g_dot = dot(comm, g, pg).real
        if abs(g_dot) < 1e-30:
            break
        if d_prev is None:
            d = [p.copy() for p in pg]
        else:
            beta = g_dot / g_dot_prev
            d = [p + beta * dp for p, dp in zip(pg, d_prev)]
            overlap = dot(comm, x, d)
            axpy(d, -overlap, x)
        g_dot_prev = g_dot
        d_norm = np.sqrt(abs(dot(comm, d, d)))
        if d_norm < 1e-15:
            break
        scale(d, 1.0 / d_norm)

        # analytic line minimization on the unit circle x cos + d sin
        hd = ham.apply(d)
        e_xd = dot(comm, d, hx).real
        e_dd = dot(comm, d, hd).real
        theta = 0.5 * np.arctan2(2.0 * e_xd, eps - e_dd)
        c, s = np.cos(theta), np.sin(theta)
        e_trial = c * c * eps + s * s * e_dd + 2 * s * c * e_xd
        if e_trial > eps:  # wrong branch: rotate by pi/2
            theta += 0.5 * np.pi
            c, s = np.cos(theta), np.sin(theta)
        for r in range(len(x)):
            x[r] = c * x[r] + s * d[r]
            hx[r] = c * hx[r] + s * hd[r]
        d_prev = d
        eps = dot(comm, x, hx).real
    normalize(comm, x)
    return float(eps)


def subspace_rotation(
    comm: Communicator, ham: Hamiltonian, bands: Bands
) -> np.ndarray:
    """Rayleigh–Ritz in the current band span; returns eigenvalues.

    Builds the nb x nb subspace Hamiltonian (BLAS3 zgemm territory in
    the real code), diagonalizes, and rotates the bands in place.
    """
    nb = len(bands)
    h_bands = [ham.apply(b) for b in bands]
    h_sub = np.empty((nb, nb), dtype=complex)
    s_sub = np.empty((nb, nb), dtype=complex)
    for i in range(nb):
        for j in range(nb):
            h_sub[i, j] = dot(comm, bands[i], h_bands[j])
            s_sub[i, j] = dot(comm, bands[i], bands[j])
    # solve the (nearly identity-overlap) generalized problem
    from scipy.linalg import eigh

    vals, vecs = eigh(h_sub, s_sub)
    nranks = len(bands[0])
    for r in range(nranks):
        stack = np.stack([bands[b][r] for b in range(nb)])  # (nb, ng_local)
        rotated = vecs.T.conj() @ stack
        for b in range(nb):
            bands[b][r] = rotated[b]
    return vals.real


def blas3_work(
    nbands: int, ng_local: float, name: str = "paratec.blas3"
) -> Work:
    """Subspace construction + rotation cost (the BLAS3 fraction)."""
    flops = 8.0 * nbands * nbands * ng_local * 2.0
    return Work(
        name=name,
        flops=flops,
        bytes_unit=16.0 * nbands * ng_local,
        blas3_fraction=1.0,
        cache_fraction=0.9,
    )
