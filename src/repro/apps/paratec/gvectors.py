"""Plane-wave basis: the G-vector sphere and its column distribution.

PARATEC expands the Kohn–Sham wavefunctions in plane waves with kinetic
energy below a cutoff — "the data layout in Fourier space is a sphere
of points, rather than a standard square grid.  The sphere is load
balanced by distributing the different length columns from the sphere
to different processors such that each processor holds a similar number
of points in Fourier space."

A *column* is the set of sphere points sharing (gx, gy); columns near
the sphere's equator are long, those near the rim short.  The greedy
longest-column-first assignment used here is the standard scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _wrap_index(k: np.ndarray, n: int) -> np.ndarray:
    """Map signed frequency index to FFT array index (0..n-1)."""
    return np.mod(k, n)


@dataclass(frozen=True)
class GSphere:
    """All integer G-vectors with  |G|^2 / 2 <= ecut  (units of 2 pi / L).

    Attributes
    ----------
    grid_shape:
        Real-space FFT grid (n1, n2, n3); must hold the sphere with
        margin (checked), since products of wavefunctions need up to
        2 G_max per dimension.
    """

    ecut: float
    grid_shape: tuple[int, int, int]
    vectors: np.ndarray = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if self.ecut <= 0:
            raise ValueError("ecut must be positive")
        gmax = int(np.floor(np.sqrt(2.0 * self.ecut)))
        for n in self.grid_shape:
            if n < 2 * gmax + 1:
                raise ValueError(
                    f"FFT grid {self.grid_shape} too small for ecut "
                    f"{self.ecut} (need >= {2 * gmax + 1} per dimension)"
                )
        rng = np.arange(-gmax, gmax + 1)
        gx, gy, gz = np.meshgrid(rng, rng, rng, indexing="ij")
        g2 = gx**2 + gy**2 + gz**2
        mask = 0.5 * g2 <= self.ecut
        vecs = np.stack([gx[mask], gy[mask], gz[mask]], axis=1)
        # canonical ordering: by column (gx, gy), then gz
        order = np.lexsort((vecs[:, 2], vecs[:, 1], vecs[:, 0]))
        object.__setattr__(self, "vectors", vecs[order])

    @property
    def num_g(self) -> int:
        return len(self.vectors)

    @property
    def kinetic(self) -> np.ndarray:
        """|G|^2 / 2 for every sphere point (the kinetic operator)."""
        return 0.5 * (self.vectors.astype(np.float64) ** 2).sum(axis=1)

    def grid_indices(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """FFT-grid indices of each sphere point (negative wrapped)."""
        n1, n2, n3 = self.grid_shape
        return (
            _wrap_index(self.vectors[:, 0], n1),
            _wrap_index(self.vectors[:, 1], n2),
            _wrap_index(self.vectors[:, 2], n3),
        )

    def columns(self) -> list[tuple[tuple[int, int], np.ndarray]]:
        """Sphere points grouped into (gx, gy) columns.

        Returns ``[(key, point_indices), ...]`` where ``point_indices``
        index into :attr:`vectors` (contiguous by construction).
        """
        keys = self.vectors[:, 0] * 100_000 + self.vectors[:, 1]
        change = np.nonzero(np.diff(keys))[0] + 1
        bounds = np.concatenate([[0], change, [self.num_g]])
        out = []
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            key = (int(self.vectors[lo, 0]), int(self.vectors[lo, 1]))
            out.append((key, np.arange(lo, hi)))
        return out


def load_balance_columns(
    columns: list[tuple[tuple[int, int], np.ndarray]], nranks: int
) -> list[list[int]]:
    """Greedy longest-first assignment of column indices to ranks.

    Returns ``assignment[rank] = [column_index, ...]`` minimizing the
    spread of per-rank point counts; the imbalance is bounded by one
    (longest remaining) column, which tests verify.
    """
    if nranks < 1:
        raise ValueError("nranks must be >= 1")
    order = sorted(
        range(len(columns)), key=lambda c: len(columns[c][1]), reverse=True
    )
    loads = np.zeros(nranks, dtype=np.int64)
    assignment: list[list[int]] = [[] for _ in range(nranks)]
    for c in order:
        r = int(np.argmin(loads))
        assignment[r].append(c)
        loads[r] += len(columns[c][1])
    return assignment


@dataclass(frozen=True)
class SphereDistribution:
    """A G-sphere split over ranks by load-balanced columns."""

    sphere: GSphere
    nranks: int

    def __post_init__(self) -> None:
        cols = self.sphere.columns()
        assignment = load_balance_columns(cols, self.nranks)
        point_lists = []
        for rank_cols in assignment:
            if rank_cols:
                pts = np.concatenate([cols[c][1] for c in rank_cols])
            else:
                pts = np.empty(0, dtype=np.int64)
            point_lists.append(np.sort(pts))
        object.__setattr__(self, "_points", point_lists)
        object.__setattr__(self, "_columns", assignment)
        object.__setattr__(self, "_all_columns", cols)

    def points_of(self, rank: int) -> np.ndarray:
        """Sphere-point indices owned by a rank."""
        return self._points[rank]

    def columns_of(self, rank: int) -> list[int]:
        return list(self._columns[rank])

    def counts(self) -> np.ndarray:
        return np.array([len(p) for p in self._points])

    def max_imbalance(self) -> int:
        """Largest minus smallest per-rank point count."""
        c = self.counts()
        return int(c.max() - c.min())

    def scatter(self, coefficients: np.ndarray) -> list[np.ndarray]:
        """Split full-sphere coefficient array(s) into per-rank slices.

        Works on shape (..., num_g).
        """
        if coefficients.shape[-1] != self.sphere.num_g:
            raise ValueError("coefficient array does not match the sphere")
        return [coefficients[..., p].copy() for p in self._points]

    def gather(self, locals_: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank slices into the full-sphere array."""
        if len(locals_) != self.nranks:
            raise ValueError("need one slice per rank")
        lead = locals_[0].shape[:-1]
        out = np.zeros((*lead, self.sphere.num_g), dtype=locals_[0].dtype)
        for rank, arr in enumerate(locals_):
            out[..., self._points[rank]] = arr
        return out
